//! Benign workload generators, standing in for the paper's SPEC CPU 2006
//! selection (§VII: compression, optimization scheduling, an Ethernet
//! network simulator, artificial intelligence, discrete-event simulation,
//! gene-sequence protein analysis, the A* algorithm, "and more").
//!
//! Each generator emits a program with the *microarchitectural character* of
//! its SPEC counterpart: branchy vs. streaming, pointer-chasing vs. dense,
//! compute-bound vs. memory-bound — so the detector's "benign" class covers
//! a diverse utilization space (the property §VIII-C credits for EVAX's
//! generalization).

use evax_sim::isa::{AluOp, Cond, Program, ProgramBuilder, Reg};
use rand::Rng;

use crate::common::{emit_loop, layout, regs};

/// A scale knob: roughly how many dynamic instructions the workload should
/// execute (the builders translate it to loop bounds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale(pub u64);

impl Default for Scale {
    fn default() -> Self {
        Scale(20_000)
    }
}

fn a(i: u8) -> Reg {
    regs::attack(i)
}

/// Compression-like (bzip2/gzip analog): byte histogram + match scanning —
/// sequential loads, data-dependent branches, stores to a table.
pub fn compression(scale: Scale, rng: &mut impl Rng) -> Program {
    let (src, tbl, i, byte, cnt, cmp) = (a(0), a(1), a(2), a(3), a(4), a(5));
    let mut b = ProgramBuilder::new("benign-compression");
    b.li(src, layout::SCRATCH + (rng.gen_range(0..16u64)) * 4096);
    b.li(tbl, layout::SCRATCH + 0x40_0000);
    let iters = scale.0 / 10;
    emit_loop(&mut b, i, iters, |b| {
        b.alu_imm(AluOp::Shl, byte, i, 3);
        b.alu(AluOp::Add, byte, src, byte);
        b.load(byte, byte, 0);
        b.alu_imm(AluOp::And, byte, byte, 0xFF);
        // Histogram update.
        b.alu_imm(AluOp::Shl, cmp, byte, 3);
        b.alu(AluOp::Add, cmp, tbl, cmp);
        b.load(cnt, cmp, 0);
        b.alu_imm(AluOp::Add, cnt, cnt, 1);
        b.store(cnt, cmp, 0);
        // Match heuristic: branch on byte value.
        let skip = b.forward_label();
        b.alu_imm(AluOp::And, cmp, byte, 0x7);
        b.branch(Cond::Ne, cmp, Reg::ZERO, skip);
        b.alu(AluOp::Xor, cnt, cnt, byte);
        b.bind(skip);
    });
    b.halt();
    b.build()
}

/// A*-like grid search (astar analog): irregular loads over a grid, a
/// priority frontier approximated by min-scans, heavy branching.
pub fn astar(scale: Scale, rng: &mut impl Rng) -> Program {
    let (grid, i, node, cost, best, tmp) = (a(0), a(1), a(2), a(3), a(4), a(5));
    let mut b = ProgramBuilder::new("benign-astar");
    b.li(
        grid,
        layout::SCRATCH + 0x50_0000 + (rng.gen_range(0..8u64)) * 64,
    );
    b.li(best, u64::MAX);
    b.li(node, 1);
    let iters = scale.0 / 12;
    emit_loop(&mut b, i, iters, |b| {
        // Expand: hash-walk to a neighbour.
        b.alu_imm(AluOp::Mul, node, node, 0x9E37);
        b.alu_imm(AluOp::Shr, tmp, node, 7);
        b.alu(AluOp::Xor, node, node, tmp);
        b.alu_imm(AluOp::And, tmp, node, 0x3FFF);
        b.alu_imm(AluOp::Shl, tmp, tmp, 3);
        b.alu(AluOp::Add, tmp, grid, tmp);
        b.load(cost, tmp, 0);
        b.alu_imm(AluOp::And, cost, cost, 0xFFFF);
        // Relax: keep the best.
        let skip = b.forward_label();
        b.branch(Cond::Ge, cost, best, skip);
        b.alu(AluOp::Add, best, cost, Reg::ZERO);
        b.store(best, tmp, 0);
        b.bind(skip);
    });
    b.halt();
    b.build()
}

/// Dense matrix kernel (AI analog, e.g. the paper's "high-rank artificial
/// intelligence programs"): streaming loads, multiply-accumulate, few
/// branches.
pub fn matrix_ai(scale: Scale, rng: &mut impl Rng) -> Program {
    let (ma, mb, i, x, y, acc) = (a(0), a(1), a(2), a(3), a(4), a(5));
    let n = 24u64;
    let mut b = ProgramBuilder::new("benign-matrix");
    b.li(
        ma,
        layout::SCRATCH + 0x60_0000 + (rng.gen_range(0..4u64)) * 4096,
    );
    b.li(mb, layout::SCRATCH + 0x62_0000);
    b.li(acc, 0);
    let iters = (scale.0 / 8).max(n);
    emit_loop(&mut b, i, iters, |b| {
        b.alu_imm(AluOp::And, x, i, n - 1);
        b.alu_imm(AluOp::Shl, x, x, 3);
        b.alu(AluOp::Add, x, ma, x);
        b.load(x, x, 0);
        b.alu_imm(AluOp::And, y, i, (n * 2) - 1);
        b.alu_imm(AluOp::Shl, y, y, 3);
        b.alu(AluOp::Add, y, mb, y);
        b.load(y, y, 0);
        b.alu(AluOp::Mul, x, x, y);
        b.alu(AluOp::Add, acc, acc, x);
    });
    b.li(x, layout::RESULT);
    b.store(acc, x, 0);
    b.halt();
    b.build()
}

/// Discrete-event simulation (omnetpp analog): a calendar-queue walk with
/// pointer-chasing loads and stores of event records.
pub fn discrete_event(scale: Scale, rng: &mut impl Rng) -> Program {
    let (q, i, ev, nxt, t) = (a(0), a(1), a(2), a(3), a(4));
    let mut b = ProgramBuilder::new("benign-devent");
    b.li(
        q,
        layout::SCRATCH + 0x70_0000 + (rng.gen_range(0..8u64)) * 512,
    );
    b.li(ev, 0);
    let iters = scale.0 / 9;
    emit_loop(&mut b, i, iters, |b| {
        // Pop: chase the next-event pointer.
        b.alu_imm(AluOp::And, nxt, ev, 0x1FFF);
        b.alu_imm(AluOp::Shl, nxt, nxt, 3);
        b.alu(AluOp::Add, nxt, q, nxt);
        b.load(ev, nxt, 0);
        // Process: schedule a follow-up event.
        b.alu_imm(AluOp::Add, t, ev, 17);
        b.alu_imm(AluOp::Mul, ev, ev, 31);
        b.alu_imm(AluOp::Add, ev, ev, 7);
        b.store(t, nxt, 8);
    });
    b.halt();
    b.build()
}

/// Gene-sequence DP (hmmer analog): a banded dynamic-programming sweep —
/// regular loads/stores with short dependence chains.
pub fn gene_dp(scale: Scale, rng: &mut impl Rng) -> Program {
    let (dp, i, up, left, cur) = (a(0), a(1), a(2), a(3), a(4));
    let mut b = ProgramBuilder::new("benign-gene");
    b.li(
        dp,
        layout::SCRATCH + 0x78_0000 + (rng.gen_range(0..4u64)) * 1024,
    );
    let iters = scale.0 / 8;
    emit_loop(&mut b, i, iters, |b| {
        b.alu_imm(AluOp::And, cur, i, 0xFF);
        b.alu_imm(AluOp::Shl, cur, cur, 3);
        b.alu(AluOp::Add, cur, dp, cur);
        b.load(up, cur, 0);
        b.load(left, cur, 8);
        b.alu(AluOp::Add, up, up, left);
        let skip = b.forward_label();
        b.alu_imm(AluOp::And, left, i, 3);
        b.branch(Cond::Ne, left, Reg::ZERO, skip);
        b.alu_imm(AluOp::Add, up, up, 2); // match bonus
        b.bind(skip);
        b.store(up, cur, 16);
    });
    b.halt();
    b.build()
}

/// Scheduling/sorting (libquantum/mcf-flavored): repeated partial sorting
/// passes over a worklist — compare-and-swap loads/stores, very branchy.
pub fn scheduler(scale: Scale, rng: &mut impl Rng) -> Program {
    let (arr, i, x, y, addr) = (a(0), a(1), a(2), a(3), a(4));
    let mut b = ProgramBuilder::new("benign-sched");
    b.li(
        arr,
        layout::SCRATCH + 0x7C_0000 + (rng.gen_range(0..8u64)) * 256,
    );
    let iters = scale.0 / 11;
    emit_loop(&mut b, i, iters, |b| {
        b.alu_imm(AluOp::And, addr, i, 0x7F);
        b.alu_imm(AluOp::Shl, addr, addr, 3);
        b.alu(AluOp::Add, addr, arr, addr);
        b.load(x, addr, 0);
        b.load(y, addr, 8);
        let inorder = b.forward_label();
        b.branch(Cond::Lt, x, y, inorder);
        b.store(y, addr, 0);
        b.store(x, addr, 8);
        b.bind(inorder);
    });
    b.halt();
    b.build()
}

/// Ethernet/network simulation: random pointer chasing across a large
/// footprint — TLB- and cache-miss heavy, the workload whose misses most
/// resemble attack noise.
pub fn network_sim(scale: Scale, rng: &mut impl Rng) -> Program {
    let (heap, i, p, tmp) = (a(0), a(1), a(2), a(3));
    let mut b = ProgramBuilder::new("benign-netsim");
    b.li(heap, layout::SCRATCH + 0x100_0000);
    b.li(p, rng.gen_range(0..0x4000u64));
    let iters = scale.0 / 7;
    emit_loop(&mut b, i, iters, |b| {
        b.alu_imm(AluOp::Mul, p, p, 0x5851_F42D);
        b.alu_imm(AluOp::Add, p, p, 12345);
        b.alu_imm(AluOp::Shr, tmp, p, 16);
        b.alu_imm(AluOp::And, tmp, tmp, 0x1F_FFC0);
        b.alu(AluOp::Add, tmp, heap, tmp);
        b.load(tmp, tmp, 0);
        b.alu(AluOp::Xor, p, p, tmp);
    });
    b.halt();
    b.build()
}

/// Syscall-flavored interactive workload: bursts of compute punctuated by
/// kernel crossings — the "full-system noise" the paper says pollutes
/// samples (§VIII-D).
pub fn syscall_heavy(scale: Scale, rng: &mut impl Rng) -> Program {
    let (i, x, buf) = (a(0), a(1), a(2));
    let mut b = ProgramBuilder::new("benign-syscalls");
    b.li(
        buf,
        layout::SCRATCH + 0x7E_0000 + (rng.gen_range(0..8u64)) * 128,
    );
    let iters = (scale.0 / 40).max(4);
    emit_loop(&mut b, i, iters, |b| {
        for k in 0..6i64 {
            b.load(x, buf, k * 8);
            b.alu_imm(AluOp::Add, x, x, 1);
            b.store(x, buf, k * 8);
        }
        b.syscall();
    });
    b.halt();
    b.build()
}

/// Profiler-like workload: a *benign* heavy user of the timing primitives —
/// `rdcycle` around measured sections, exactly the instructions timing
/// attacks use. This is what makes real-world detection hard: the paper's
/// full-system traces contain legitimate timer users, so the detector must
/// key on conjunctions, not the mere presence of timing reads.
pub fn profiler(scale: Scale, rng: &mut impl Rng) -> Program {
    let (buf, i, t1, t2, acc, x) = (a(0), a(1), a(2), a(3), a(4), a(5));
    let mut b = ProgramBuilder::new("benign-profiler");
    b.li(
        buf,
        layout::SCRATCH + 0x74_0000 + (rng.gen_range(0..8u64)) * 256,
    );
    b.li(acc, 0);
    let iters = scale.0 / 30;
    emit_loop(&mut b, i, iters, |b| {
        // Measured section: a small unit of work.
        b.rdcycle(t1);
        for k in 0..4i64 {
            b.load(x, buf, k * 8);
            b.alu(AluOp::Add, acc, acc, x);
        }
        b.alu_imm(AluOp::Mul, x, acc, 31);
        b.rdcycle(t2);
        b.alu(AluOp::Sub, t2, t2, t1);
        // Record the measurement.
        b.store(t2, buf, 64);
    });
    b.halt();
    b.build()
}

/// Persistent-memory flush pattern: a *benign* heavy user of `clflush` —
/// store, flush the line, fence — the durability idiom of pmem libraries.
/// Shares the flush-dense footprint of Flush+Flush/Flush+Reload without any
/// victim, probe array or timing correlation.
pub fn pmem_flusher(scale: Scale, rng: &mut impl Rng) -> Program {
    let (log, i, val, addr) = (a(0), a(1), a(2), a(3));
    let mut b = ProgramBuilder::new("benign-pmem");
    b.li(
        log,
        layout::SCRATCH + 0x76_0000 + (rng.gen_range(0..4u64)) * 4096,
    );
    let iters = scale.0 / 14;
    emit_loop(&mut b, i, iters, |b| {
        // Append a record and make it durable.
        b.alu_imm(AluOp::And, addr, i, 0x3F);
        b.alu_imm(AluOp::Shl, addr, addr, 6);
        b.alu(AluOp::Add, addr, log, addr);
        b.alu_imm(AluOp::Mul, val, i, 0x9E37);
        b.store(val, addr, 0);
        b.store(i, addr, 8);
        b.flush(addr, 0);
        b.fence();
    });
    b.halt();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use evax_sim::{Cpu, CpuConfig};
    use rand::SeedableRng;

    fn run(p: &Program) -> (evax_sim::RunResult, Cpu) {
        let mut cpu = Cpu::new(CpuConfig::default());
        let res = cpu.run(p, 1_000_000);
        assert!(res.halted, "workload {} must halt", p.name());
        (res, cpu)
    }

    #[test]
    fn all_workloads_run_to_completion() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let scale = Scale(5_000);
        for prog in [
            compression(scale, &mut rng),
            astar(scale, &mut rng),
            matrix_ai(scale, &mut rng),
            discrete_event(scale, &mut rng),
            gene_dp(scale, &mut rng),
            scheduler(scale, &mut rng),
            network_sim(scale, &mut rng),
            syscall_heavy(scale, &mut rng),
            profiler(scale, &mut rng),
            pmem_flusher(scale, &mut rng),
        ] {
            let (res, _) = run(&prog);
            assert!(
                res.committed_instructions > 1_000,
                "{} too short",
                prog.name()
            );
        }
    }

    #[test]
    fn workloads_do_not_fault_or_flush() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for prog in [
            compression(Scale(4_000), &mut rng),
            network_sim(Scale(4_000), &mut rng),
            scheduler(Scale(4_000), &mut rng),
        ] {
            let (_, cpu) = run(&prog);
            assert_eq!(cpu.stats().faults_raised, 0, "{}", prog.name());
            assert_eq!(cpu.dcache().stats().flushes, 0, "{}", prog.name());
        }
    }

    #[test]
    fn profiles_are_distinct() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let (_, stream) = run(&matrix_ai(Scale(8_000), &mut rng));
        let (_, chase) = run(&network_sim(Scale(8_000), &mut rng));
        let stream_miss = stream.dcache().stats().read_misses as f64
            / (stream.dcache().stats().read_hits + stream.dcache().stats().read_misses).max(1)
                as f64;
        let chase_miss = chase.dcache().stats().read_misses as f64
            / (chase.dcache().stats().read_hits + chase.dcache().stats().read_misses).max(1) as f64;
        assert!(
            chase_miss > stream_miss * 2.0,
            "pointer chasing should miss far more: {chase_miss} vs {stream_miss}"
        );
    }

    #[test]
    fn hard_benign_workloads_share_attack_primitives() {
        // The profiler times like a side channel; the pmem flusher flushes
        // like Flush+Flush — benign programs that stress the detector.
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let (_, prof) = run(&profiler(Scale(6_000), &mut rng));
        assert!(prof.stats().commit_membars > 20, "profiler must use timers");
        let (_, pmem) = run(&pmem_flusher(Scale(6_000), &mut rng));
        assert!(
            pmem.dcache().stats().flushes > 50,
            "pmem must flush heavily"
        );
        assert_eq!(pmem.stats().faults_raised, 0);
    }

    #[test]
    fn syscall_workload_crosses_kernel() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let (_, cpu) = run(&syscall_heavy(Scale(4_000), &mut rng));
        assert!(cpu.stats().syscalls > 0);
    }
}
