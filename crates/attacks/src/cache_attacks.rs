//! Classic cache side-channel kernels: Flush+Reload, Flush+Flush,
//! Prime+Probe, and FlushConflict (the KASLR bypass from Osiris that "is not
//! mitigated by any of the current hardware fixes", paper §VIII-C).

use evax_sim::isa::{AluOp, Program, ProgramBuilder};
use rand::Rng;

use crate::common::{emit_decoys, emit_delay, emit_loop, layout, regs, KernelParams};

/// Flush+Reload: flush shared probe lines, let the victim touch the
/// secret-selected one, reload each line and time it.
pub fn flush_reload(p: &KernelParams, rng: &mut impl Rng) -> Program {
    let (rpr, sec, t1, t2, tmp, victim) = (
        regs::attack(0),
        regs::attack(1),
        regs::attack(2),
        regs::attack(3),
        regs::attack(4),
        regs::attack(5),
    );
    let lines = p.probe_lines.max(2) as i64;
    let stride = p.stride as i64;
    let mut b = ProgramBuilder::new("flush-reload");
    b.li(rpr, layout::PROBE);
    b.li(victim, layout::VICTIM);
    b.li(sec, layout::DEFAULT_SECRET ^ (p.seed & 0x7));
    b.store(sec, victim, 0);
    let rounds = regs::attack(7);
    emit_loop(&mut b, rounds, p.iterations as u64, |b| {
        // Flush phase.
        for i in 0..lines {
            b.flush(rpr, i * stride);
        }
        // Victim phase: touch PROBE + secret*stride.
        b.load(sec, victim, 0);
        b.alu_imm(AluOp::Mul, tmp, sec, stride as u64);
        b.alu(AluOp::Add, tmp, rpr, tmp);
        b.load(tmp, tmp, 0);
        // Reload + time each line (recovery).
        for i in 0..lines {
            b.rdcycle(t1);
            b.load(sec, rpr, i * stride);
            b.rdcycle(t2);
            b.alu(AluOp::Sub, t2, t2, t1);
        }
    });
    emit_decoys(&mut b, p.decoy_ops, rng);
    emit_delay(&mut b, p.delay_ops);
    b.halt();
    b.build()
}

/// Flush+Flush: like Flush+Reload but times the `clflush` itself (flushing
/// a cached line is slower), never loading the probe — the stealthier
/// variant with a flush-heavy, load-light footprint.
pub fn flush_flush(p: &KernelParams, rng: &mut impl Rng) -> Program {
    let (rpr, sec, t1, t2, tmp, victim) = (
        regs::attack(0),
        regs::attack(1),
        regs::attack(2),
        regs::attack(3),
        regs::attack(4),
        regs::attack(5),
    );
    let lines = p.probe_lines.max(2) as i64;
    let stride = p.stride as i64;
    let mut b = ProgramBuilder::new("flush-flush");
    b.li(rpr, layout::PROBE2);
    b.li(victim, layout::VICTIM);
    b.li(sec, layout::DEFAULT_SECRET ^ (p.seed & 0x7));
    b.store(sec, victim, 0);
    let rounds = regs::attack(7);
    emit_loop(&mut b, rounds, p.iterations as u64, |b| {
        // Victim phase.
        b.load(sec, victim, 0);
        b.alu_imm(AluOp::Mul, tmp, sec, stride as u64);
        b.alu(AluOp::Add, tmp, rpr, tmp);
        b.load(tmp, tmp, 0);
        // Timed-flush phase.
        for i in 0..lines {
            b.rdcycle(t1);
            b.flush(rpr, i * stride);
            b.rdcycle(t2);
            b.alu(AluOp::Sub, t2, t2, t1);
        }
    });
    emit_decoys(&mut b, p.decoy_ops, rng);
    emit_delay(&mut b, p.delay_ops);
    b.halt();
    b.build()
}

/// Prime+Probe: fill a cache set with attacker lines, let the victim evict
/// one, re-probe the set and time it — no flush instruction needed.
pub fn prime_probe(p: &KernelParams, rng: &mut impl Rng) -> Program {
    let (rbase, sec, t1, t2, tmp, victim) = (
        regs::attack(0),
        regs::attack(1),
        regs::attack(2),
        regs::attack(3),
        regs::attack(4),
        regs::attack(5),
    );
    // L1D: 128 sets x 64B lines -> same set every 8 KiB; 8 ways.
    let set_stride = 64 * 128i64;
    let ways = 8i64;
    let mut b = ProgramBuilder::new("prime-probe");
    b.li(rbase, layout::SCRATCH + 0x3C0); // attacker's eviction set
    b.li(victim, layout::VICTIM + 0x3C0); // congruent victim line
    b.li(sec, layout::DEFAULT_SECRET ^ (p.seed & 0x7));
    let rounds = regs::attack(7);
    emit_loop(&mut b, rounds, p.iterations as u64, |b| {
        // Prime: own every way of the target set.
        for w in 0..ways {
            b.load(tmp, rbase, w * set_stride);
        }
        // Victim: touches its congruent line if the secret bit is set.
        let skip = b.forward_label();
        b.alu_imm(AluOp::And, tmp, sec, 1);
        b.branch(evax_sim::isa::Cond::Eq, tmp, evax_sim::isa::Reg::ZERO, skip);
        b.load(tmp, victim, 0);
        b.bind(skip);
        // Probe: re-access the set and time it.
        b.rdcycle(t1);
        for w in 0..ways {
            b.load(tmp, rbase, w * set_stride);
        }
        b.rdcycle(t2);
        b.alu(AluOp::Sub, t2, t2, t1);
    });
    emit_decoys(&mut b, p.decoy_ops, rng);
    emit_delay(&mut b, p.delay_ops);
    b.halt();
    b.build()
}

/// FlushConflict (Osiris-discovered KASLR bypass): times `clflush`-then-
/// prefetch conflicts against kernel addresses; mapped kernel lines behave
/// measurably differently. Prefetches never fault, so the probe is silent
/// architecturally.
pub fn flush_conflict(p: &KernelParams, rng: &mut impl Rng) -> Program {
    let (rk, t1, t2, tmp) = (
        regs::attack(0),
        regs::attack(1),
        regs::attack(2),
        regs::attack(3),
    );
    let kernel = 0xFFFF_0000_0000u64;
    let mut b = ProgramBuilder::new("flush-conflict");
    let rounds = regs::attack(7);
    emit_loop(&mut b, rounds, p.iterations as u64, |b| {
        // Scan candidate kernel pages.
        for i in 0..p.probe_lines.max(2) as u64 {
            b.li(rk, kernel + i * 0x1000);
            b.prefetch(rk, 0); // load candidate translation + line
            b.rdcycle(t1);
            b.flush(rk, 0); // conflict timing on the (maybe) cached line
            b.prefetch(rk, 0);
            b.rdcycle(t2);
            b.alu(AluOp::Sub, tmp, t2, t1);
        }
    });
    emit_decoys(&mut b, p.decoy_ops, rng);
    emit_delay(&mut b, p.delay_ops);
    b.halt();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use evax_sim::{Cpu, CpuConfig};
    use rand::SeedableRng;

    fn run(p: &Program) -> Cpu {
        let mut cpu = Cpu::new(CpuConfig::default());
        let res = cpu.run(p, 500_000);
        assert!(res.halted, "kernel {} must halt", p.name());
        cpu
    }

    #[test]
    fn flush_reload_flushes_and_reloads() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let cpu = run(&flush_reload(&KernelParams::default(), &mut rng));
        assert!(cpu.dcache().stats().flushes > 0);
        // Reload pattern produces repeated misses on the flushed lines.
        assert!(cpu.dcache().stats().read_misses as f64 > 8.0);
        assert!(cpu.stats().commit_membars > 0, "timing reads present");
    }

    #[test]
    fn flush_flush_avoids_probe_loads() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let ff = run(&flush_flush(&KernelParams::default(), &mut rng));
        let fr = run(&flush_reload(&KernelParams::default(), &mut rng));
        // F+F flushes at least as much but loads far less from the probe.
        assert!(ff.dcache().stats().flushes > 0);
        assert!(
            fr.stats().commit_loads > ff.stats().commit_loads,
            "F+F should be load-light: fr={} ff={}",
            fr.stats().commit_loads,
            ff.stats().commit_loads
        );
    }

    #[test]
    fn prime_probe_causes_conflict_evictions() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let cpu = run(&prime_probe(&KernelParams::default(), &mut rng));
        // Priming a set beyond its associativity forces clean evictions,
        // without any flush instructions.
        assert!(cpu.dcache().stats().clean_evicts > 0);
        assert_eq!(cpu.dcache().stats().flushes, 0);
    }

    #[test]
    fn flush_conflict_probes_kernel_without_faulting() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let cpu = run(&flush_conflict(&KernelParams::default(), &mut rng));
        assert_eq!(
            cpu.stats().faults_raised,
            0,
            "prefetch probing must not fault"
        );
        assert!(cpu.dcache().stats().flushes > 0);
        assert!(cpu.dcache().stats().prefetch_fills > 0);
    }
}
