//! Multi-tenant carrier workloads: interrupt/timer/DMA-driven benign
//! programs ("busy carriers") and composed attacks that ride on them.
//!
//! ROADMAP item 4 notes that real full-system traces are never the clean
//! single-program streams the paper evaluates on: timers tick, schedulers
//! preempt, DMA engines stream in the background. A detector calibrated on
//! quiet benign traffic sees all of that as anomaly pressure. This module
//! supplies both sides of that experiment:
//!
//! * [`CarrierKind`] — four benign carriers whose character comes from the
//!   asynchronous-event subsystem ([`evax_sim::DeviceConfig`]): a timer
//!   tick handler, an IRQ-driven scheduler, a DMA-fed streaming reader, and
//!   a DMA-completion consumer. Each carries its own device configuration
//!   ([`CarrierKind::device_config`]); built programs install the matching
//!   service routines and stay architecturally correct whether or not
//!   devices are enabled (handlers sit past the terminator and only run on
//!   delivery).
//! * [`CarrierAttack`] — composed attacks spliced mid-stream into a busy
//!   carrier with [`crate::compose::compose`]: the carrier's handlers stay
//!   live while the attack phase executes, so the attack's HPC footprint is
//!   buried in interrupt and port-steal noise.
//!
//! Service routines use registers `r26`–`r28` and `r31`, which no attack
//! kernel, benign generator, decoy or harness touches — an interrupt can
//! land on any instruction of any segment without corrupting it.

use evax_sim::isa::{AluOp, Op, Program, ProgramBuilder, Reg};
use evax_sim::{DeviceConfig, DmaConfig, DMA_DST_BASE, DMA_LINE_BYTES};
use rand::Rng;

use crate::benign::Scale;
use crate::common::{emit_loop, layout, regs};
use crate::compose::compose;
use crate::registry::{build_attack, build_benign, AttackClass, BenignKind};
use crate::KernelParams;

/// Tick-count register for service routines (never used by kernels).
const HV: Reg = Reg::new(31);
/// Address scratch register for service routines.
const HA: Reg = Reg::new(28);
/// Data scratch register for service routines.
const HB: Reg = Reg::new(27);

/// Where the tick handler publishes its count.
const TICK_SLOT: u64 = layout::SCRATCH + 0x7E_0000;
/// Run-queue the scheduler handler round-robins over.
const RUN_QUEUE: u64 = layout::SCRATCH + 0x7C_0000;
/// Where the DMA-completion handler accumulates consumed words.
const DMA_SINK: u64 = layout::SCRATCH + 0x7A_0000;

/// Benign carrier workloads driven by asynchronous device events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CarrierKind {
    /// Compute-bound work under a periodic timer tick whose handler bumps a
    /// counter in memory (an OS-tick analog).
    TimerTicker,
    /// Branchy scheduling work preempted by a faster timer whose handler
    /// round-robins a run queue (a preemptive-scheduler analog).
    IrqScheduler,
    /// Streaming reads over the DMA destination ring while the engine
    /// copies lines and steals memory ports — no interrupts, pure
    /// contention (a device-polling analog).
    DmaStreamer,
    /// Pointer-chasing work whose vector-1 handler consumes each DMA
    /// completion (an interrupt-driven driver analog).
    DmaIrqConsumer,
}

/// All carrier kinds, in canonical order.
pub const CARRIER_KINDS: [CarrierKind; 4] = [
    CarrierKind::TimerTicker,
    CarrierKind::IrqScheduler,
    CarrierKind::DmaStreamer,
    CarrierKind::DmaIrqConsumer,
];

impl CarrierKind {
    /// Stable lowercase name (used in reports and dataset labels).
    pub fn name(self) -> &'static str {
        match self {
            CarrierKind::TimerTicker => "timer-ticker",
            CarrierKind::IrqScheduler => "irq-scheduler",
            CarrierKind::DmaStreamer => "dma-streamer",
            CarrierKind::DmaIrqConsumer => "dma-irq-consumer",
        }
    }

    /// The device configuration this carrier is meant to run under. The
    /// program itself is valid under any configuration (including devices
    /// off); this is the pairing the benches evaluate.
    pub fn device_config(self) -> DeviceConfig {
        let b = DeviceConfig::builder().enabled(true);
        match self {
            CarrierKind::TimerTicker => b.timer_period(600),
            CarrierKind::IrqScheduler => b.timer_period(350),
            CarrierKind::DmaStreamer => b.dma(DmaConfig {
                period: 96,
                burst_lines: 4,
                region_lines: 128,
                irq_every: 0,
            }),
            CarrierKind::DmaIrqConsumer => b.dma(DmaConfig {
                period: 128,
                burst_lines: 2,
                region_lines: 64,
                irq_every: 2,
            }),
        }
        .build()
        .expect("carrier device configs are valid by construction")
    }
}

impl std::fmt::Display for CarrierKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Appends a straight-line service routine to `base` and installs it on
/// `vector`. The handler lives past the terminator, so it is unreachable
/// except through IRQ delivery and the program stays correct with devices
/// disabled.
fn with_irq_handler(base: Program, vector: usize, handler: &Program) -> Program {
    debug_assert!(
        handler
            .instructions()
            .iter()
            .all(|op| !matches!(op, Op::Branch { .. } | Op::Jmp { .. } | Op::Call { .. })),
        "service routines must be straight-line (targets are not rebased)"
    );
    let mut instrs = base.instructions().to_vec();
    let entry = instrs.len();
    instrs.extend_from_slice(handler.instructions());
    let mut p = Program::from_instructions(format!("{}+irq{vector}", base.name()), instrs);
    p.set_fault_handler(base.fault_handler());
    for (v, h) in base.irq_handlers().into_iter().enumerate() {
        p.set_irq_handler(v, h);
    }
    p.set_irq_handler(vector, Some(entry));
    p
}

/// OS-tick service routine: bump the tick count and publish it.
fn tick_handler() -> Program {
    let mut b = ProgramBuilder::new("h-tick");
    b.alu_imm(AluOp::Add, HV, HV, 1);
    b.li(HA, TICK_SLOT);
    b.store(HV, HA, 0);
    b.iret();
    b.build()
}

/// Scheduler service routine: round-robin a 64-entry run queue, touching
/// (load + store) one record per preemption.
fn scheduler_handler() -> Program {
    let mut b = ProgramBuilder::new("h-sched");
    b.alu_imm(AluOp::Add, HV, HV, 1);
    b.alu_imm(AluOp::And, HA, HV, 0x3F);
    b.alu_imm(AluOp::Shl, HA, HA, 3);
    b.li(HB, RUN_QUEUE);
    b.alu(AluOp::Add, HA, HB, HA);
    b.load(HB, HA, 0);
    b.alu_imm(AluOp::Add, HB, HB, 1);
    b.store(HB, HA, 0);
    b.iret();
    b.build()
}

/// DMA-completion service routine: read one line from the destination ring
/// and fold it into a sink word.
fn dma_consumer_handler() -> Program {
    let mut b = ProgramBuilder::new("h-dma");
    b.alu_imm(AluOp::Add, HV, HV, 1);
    b.alu_imm(AluOp::And, HA, HV, 0x3F);
    b.alu_imm(AluOp::Shl, HA, HA, 6);
    b.li(HB, DMA_DST_BASE);
    b.alu(AluOp::Add, HA, HB, HA);
    b.load(HB, HA, 0);
    b.li(HA, DMA_SINK);
    b.store(HB, HA, 0);
    b.iret();
    b.build()
}

/// Streaming reader over the DMA destination ring: the engine overwrites
/// lines underneath these loads, so the miss pattern is device-driven.
fn dma_stream_body(scale: Scale, rng: &mut impl Rng) -> Program {
    let a = regs::attack;
    let (base, i, x, acc, tmp) = (a(0), a(1), a(2), a(3), a(4));
    let mut b = ProgramBuilder::new("carrier-dma-stream");
    b.li(base, DMA_DST_BASE + rng.gen_range(0..4u64) * DMA_LINE_BYTES);
    b.li(acc, 0);
    let iters = scale.0 / 7;
    emit_loop(&mut b, i, iters, |b| {
        b.alu_imm(AluOp::And, x, i, 0x7F);
        b.alu_imm(AluOp::Shl, x, x, 6);
        b.alu(AluOp::Add, x, base, x);
        b.load(tmp, x, 0);
        b.alu(AluOp::Xor, acc, acc, tmp);
    });
    b.li(x, layout::RESULT);
    b.store(acc, x, 0);
    b.halt();
    b.build()
}

/// Builds a benign carrier of roughly `scale` dynamic instructions,
/// including its service routines. Run it under
/// [`CarrierKind::device_config`] for the intended event pressure.
pub fn build_carrier<R: Rng>(kind: CarrierKind, scale: Scale, rng: &mut R) -> Program {
    match kind {
        CarrierKind::TimerTicker => with_irq_handler(
            build_benign(BenignKind::Compression, scale, rng),
            0,
            &tick_handler(),
        ),
        CarrierKind::IrqScheduler => with_irq_handler(
            build_benign(BenignKind::Scheduler, scale, rng),
            0,
            &scheduler_handler(),
        ),
        CarrierKind::DmaStreamer => dma_stream_body(scale, rng),
        CarrierKind::DmaIrqConsumer => with_irq_handler(
            build_benign(BenignKind::DiscreteEvent, scale, rng),
            1,
            &dma_consumer_handler(),
        ),
    }
}

/// Benign continuation after an attack phase: same microarchitectural
/// character as the carrier, but without service routines (the composed
/// prefix already installed them).
fn carrier_tail<R: Rng>(kind: CarrierKind, scale: Scale, rng: &mut R) -> Program {
    match kind {
        CarrierKind::TimerTicker => build_benign(BenignKind::Compression, scale, rng),
        CarrierKind::IrqScheduler => build_benign(BenignKind::Scheduler, scale, rng),
        CarrierKind::DmaStreamer => dma_stream_body(scale, rng),
        CarrierKind::DmaIrqConsumer => build_benign(BenignKind::DiscreteEvent, scale, rng),
    }
}

/// Composed attacks riding on busy carriers: carrier prefix, attack phase,
/// benign tail — with the carrier's interrupt handlers live throughout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CarrierAttack {
    /// Spectre v1 under periodic timer ticks.
    SpectreOnTicker,
    /// Meltdown under preemptive scheduling interrupts.
    MeltdownOnScheduler,
    /// Flush+Reload against a DMA-saturated memory system.
    FlushReloadOnStreamer,
    /// Rowhammer sharing DRAM with DMA completion traffic.
    RowhammerOnConsumer,
}

/// All carrier-attack compositions, in canonical order.
pub const CARRIER_ATTACKS: [CarrierAttack; 4] = [
    CarrierAttack::SpectreOnTicker,
    CarrierAttack::MeltdownOnScheduler,
    CarrierAttack::FlushReloadOnStreamer,
    CarrierAttack::RowhammerOnConsumer,
];

impl CarrierAttack {
    /// Stable name `<attack>@<carrier>` (used in reports).
    pub fn name(self) -> &'static str {
        match self {
            CarrierAttack::SpectreOnTicker => "spectre-pht@timer-ticker",
            CarrierAttack::MeltdownOnScheduler => "meltdown@irq-scheduler",
            CarrierAttack::FlushReloadOnStreamer => "flush-reload@dma-streamer",
            CarrierAttack::RowhammerOnConsumer => "rowhammer@dma-irq-consumer",
        }
    }

    /// The carrier this attack hides in.
    pub fn carrier(self) -> CarrierKind {
        match self {
            CarrierAttack::SpectreOnTicker => CarrierKind::TimerTicker,
            CarrierAttack::MeltdownOnScheduler => CarrierKind::IrqScheduler,
            CarrierAttack::FlushReloadOnStreamer => CarrierKind::DmaStreamer,
            CarrierAttack::RowhammerOnConsumer => CarrierKind::DmaIrqConsumer,
        }
    }

    /// The attack class spliced into the carrier.
    pub fn attack_class(self) -> AttackClass {
        match self {
            CarrierAttack::SpectreOnTicker => AttackClass::SpectrePht,
            CarrierAttack::MeltdownOnScheduler => AttackClass::Meltdown,
            CarrierAttack::FlushReloadOnStreamer => AttackClass::FlushReload,
            CarrierAttack::RowhammerOnConsumer => AttackClass::Rowhammer,
        }
    }
}

impl std::fmt::Display for CarrierAttack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds the composed program: half of `scale` as carrier prefix (with
/// handlers), the attack kernel, then the other half as a handler-free
/// benign tail. Run under [`CarrierKind::device_config`] of
/// [`CarrierAttack::carrier`].
pub fn build_carrier_attack<R: Rng>(
    which: CarrierAttack,
    scale: Scale,
    params: &KernelParams,
    rng: &mut R,
) -> Program {
    let kind = which.carrier();
    let prefix = build_carrier(kind, Scale(scale.0 / 2), rng);
    let attack = build_attack(which.attack_class(), params, rng);
    let tail = carrier_tail(kind, Scale(scale.0 / 2), rng);
    compose(&[prefix, attack, tail]).expect("prefix handlers and tail never conflict")
}

#[cfg(test)]
mod tests {
    use super::*;
    use evax_sim::{Cpu, CpuConfig};
    use rand::SeedableRng;

    fn cfg_for(kind: CarrierKind) -> CpuConfig {
        CpuConfig {
            devices: kind.device_config(),
            ..CpuConfig::default()
        }
    }

    #[test]
    fn carrier_and_attack_names_are_unique() {
        let mut names: Vec<String> = CARRIER_KINDS.iter().map(|k| k.name().into()).collect();
        names.extend(CARRIER_ATTACKS.iter().map(|a| a.name().to_string()));
        assert_eq!(names.len(), 8, "four carriers + four composed attacks");
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8, "names must be unique");
    }

    #[test]
    fn every_carrier_halts_under_its_devices_with_event_pressure() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for kind in CARRIER_KINDS {
            let p = build_carrier(kind, Scale(4_000), &mut rng);
            let mut cpu = Cpu::new(cfg_for(kind));
            let res = cpu.run(&p, 400_000);
            assert!(res.halted, "{kind} did not halt");
            let s = cpu.device_stats().expect("devices enabled");
            match kind {
                CarrierKind::TimerTicker | CarrierKind::IrqScheduler => {
                    assert!(s.irq_taken > 0, "{kind} handler never ran");
                    assert_eq!(s.irq_dropped, 0, "{kind} dropped raises");
                }
                CarrierKind::DmaStreamer => {
                    assert!(s.dma_port_steal_cycles > 0, "{kind} saw no contention");
                    assert_eq!(s.irq_raised, 0);
                }
                CarrierKind::DmaIrqConsumer => {
                    assert!(s.irq_taken > 0, "{kind} consumed no completions");
                    assert!(s.dma_bursts > 0);
                }
            }
        }
    }

    #[test]
    fn carriers_are_benign_without_devices() {
        // The same programs are architecturally valid with devices off: the
        // handlers are simply dead code past the terminator.
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for kind in CARRIER_KINDS {
            let p = build_carrier(kind, Scale(3_000), &mut rng);
            let mut cpu = Cpu::new(CpuConfig::default());
            let res = cpu.run(&p, 400_000);
            assert!(res.halted, "{kind} did not halt with devices off");
        }
    }

    #[test]
    fn every_composed_attack_halts_and_is_serviced() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let params = KernelParams {
            iterations: 8,
            ..Default::default()
        };
        for which in CARRIER_ATTACKS {
            let p = build_carrier_attack(which, Scale(6_000), &params, &mut rng);
            let mut cpu = Cpu::new(cfg_for(which.carrier()));
            let res = cpu.run(&p, 2_000_000);
            assert!(res.halted, "{which} did not halt");
            let s = cpu.device_stats().expect("devices enabled");
            match which.carrier() {
                CarrierKind::DmaStreamer => assert!(s.dma_port_steal_cycles > 0),
                _ => assert!(s.irq_taken > 0, "{which} carrier was not serviced"),
            }
        }
    }

    #[test]
    fn spectre_on_ticker_still_leaks_under_interrupts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let params = KernelParams {
            iterations: 16,
            ..Default::default()
        };
        let p = build_carrier_attack(
            CarrierAttack::SpectreOnTicker,
            Scale(6_000),
            &params,
            &mut rng,
        );
        let mut cpu = Cpu::new(cfg_for(CarrierKind::TimerTicker));
        let res = cpu.run(&p, 2_000_000);
        assert!(res.halted);
        let secret_line = layout::PROBE + layout::DEFAULT_SECRET * 64;
        assert!(
            cpu.dcache().contains(secret_line) || cpu.l2().contains(secret_line),
            "attack riding a busy carrier must still leak"
        );
    }
}
