//! Shared kernel-building vocabulary: parameters, register conventions,
//! decoys and delays.

use evax_sim::isa::{AluOp, Cond, ProgramBuilder, Reg};
use rand::Rng;

/// Well-known addresses shared by attack kernels and their harnesses.
pub mod layout {
    /// User array the Spectre bounds check guards.
    pub const ARRAY1: u64 = 0x1000;
    /// Location of the bounds variable (`array1_size`).
    pub const SIZE_ADDR: u64 = 0x2000;
    /// Probe (transmission) array base; the secret selects line
    /// `PROBE + secret * 64`.
    pub const PROBE: u64 = 0x10_0000;
    /// Secondary probe array (Flush+Flush, covert receivers).
    pub const PROBE2: u64 = 0x20_0000;
    /// Victim working set for cache attacks.
    pub const VICTIM: u64 = 0x40_0000;
    /// Scratch heap for benign phases and decoys.
    pub const SCRATCH: u64 = 0x80_0000;
    /// Where kernels write recovered secrets for the harness to check.
    pub const RESULT: u64 = 0xE0_0000;
    /// Default planted secret value (small so `secret * 64` stays in range).
    pub const DEFAULT_SECRET: u64 = 7;
}

/// Tunable knobs of every attack kernel — the surface fuzzers mutate.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct KernelParams {
    /// Outer attack iterations (flush→leak→transmit rounds).
    pub iterations: u32,
    /// Training iterations for mistraining-based attacks.
    pub train_iters: u32,
    /// Byte stride between probe lines (64 = one line per value).
    pub stride: u64,
    /// Benign decoy instructions interleaved per attack round (evasion:
    /// dilutes the footprint).
    pub decoy_ops: u32,
    /// Idle delay (dependent ALU chain) between rounds (evasion: lowers
    /// the attack's bandwidth under the sampling window).
    pub delay_ops: u32,
    /// Number of probe lines / aggressor rows touched per round.
    pub probe_lines: u32,
    /// Deterministic seed folded into address perturbation.
    pub seed: u64,
}

impl Default for KernelParams {
    fn default() -> Self {
        KernelParams {
            iterations: 24,
            train_iters: 24,
            stride: 64,
            decoy_ops: 0,
            delay_ops: 0,
            probe_lines: 8,
            seed: 0,
        }
    }
}

impl KernelParams {
    /// Randomly perturbs every knob — one fuzzing mutation step.
    pub fn mutate<R: Rng>(&self, rng: &mut R) -> KernelParams {
        let mut p = self.clone();
        match rng.gen_range(0..6) {
            0 => p.iterations = rng.gen_range(4..64),
            1 => p.train_iters = rng.gen_range(4..64),
            2 => p.stride = 64 * rng.gen_range(1..8u64),
            3 => p.decoy_ops = rng.gen_range(0..48),
            4 => p.delay_ops = rng.gen_range(0..96),
            _ => p.probe_lines = rng.gen_range(1..24),
        }
        p.seed = rng.gen();
        p
    }
}

/// Register conventions: kernels use `r1..=r15`; decoys use `r16..=r29`;
/// `r30`/`r31` are reserved for harness results.
pub mod regs {
    use evax_sim::isa::Reg;
    /// Attack working registers.
    pub fn attack(i: u8) -> Reg {
        assert!(i < 15, "attack register index out of range");
        Reg::new(1 + i)
    }
    /// Decoy working registers.
    pub fn decoy(i: u8) -> Reg {
        assert!(i < 14, "decoy register index out of range");
        Reg::new(16 + i)
    }
    /// Harness result register.
    pub const RESULT: Reg = Reg::new(30);
}

/// Emits `n` benign-looking decoy instructions (ALU mix + scratch loads),
/// the evasion padding fuzzers insert to dilute attack footprints.
pub fn emit_decoys(b: &mut ProgramBuilder, n: u32, rng: &mut impl Rng) {
    if n == 0 {
        return;
    }
    let d0 = regs::decoy(0);
    let d1 = regs::decoy(1);
    let d2 = regs::decoy(2);
    b.li(d2, layout::SCRATCH + (rng.gen_range(0..64u64)) * 64);
    for i in 0..n {
        match rng.gen_range(0..5) {
            0 => {
                b.alu_imm(AluOp::Add, d0, d0, rng.gen_range(1..100));
            }
            1 => {
                b.alu_imm(AluOp::Xor, d1, d1, rng.gen());
            }
            2 => {
                b.alu(AluOp::Mul, d0, d0, d1);
            }
            3 => {
                b.load(d1, d2, (i as i64 % 16) * 8);
            }
            _ => {
                b.alu_imm(AluOp::Shr, d1, d1, 1);
            }
        }
    }
}

/// Emits a dependent-chain delay of roughly `n` cycles (bandwidth evasion).
pub fn emit_delay(b: &mut ProgramBuilder, n: u32) {
    if n == 0 {
        return;
    }
    let d = regs::decoy(3);
    b.li(d, 1);
    for _ in 0..n {
        b.alu_imm(AluOp::Add, d, d, 1);
        b.alu_imm(AluOp::Sub, d, d, 1);
    }
}

/// Emits a bounded counting loop: `body` runs `count` times using `ctr` as
/// the induction register.
pub fn emit_loop(
    b: &mut ProgramBuilder,
    ctr: Reg,
    count: u64,
    body: impl FnOnce(&mut ProgramBuilder),
) {
    let limit = regs::decoy(13);
    b.li(ctr, 0);
    let top = b.label();
    body(b);
    // The limit register is shared across nested emit_loops, so it must be
    // reloaded after the body (an inner loop clobbers it).
    b.li(limit, count);
    b.alu_imm(AluOp::Add, ctr, ctr, 1);
    b.branch(Cond::Lt, ctr, limit, top);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn default_params_sane() {
        let p = KernelParams::default();
        assert!(p.iterations > 0 && p.stride >= 64);
    }

    #[test]
    fn mutate_changes_something() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let base = KernelParams::default();
        let changed = (0..20).any(|_| {
            let m = base.mutate(&mut rng);
            m.iterations != base.iterations
                || m.stride != base.stride
                || m.decoy_ops != base.decoy_ops
                || m.delay_ops != base.delay_ops
                || m.probe_lines != base.probe_lines
                || m.train_iters != base.train_iters
        });
        assert!(changed);
    }

    #[test]
    fn loop_helper_runs_body_n_times() {
        use evax_sim::{Cpu, CpuConfig};
        let acc = regs::attack(0);
        let ctr = regs::attack(1);
        let mut b = ProgramBuilder::new("loop-test");
        b.li(acc, 0);
        emit_loop(&mut b, ctr, 10, |b| {
            b.alu_imm(AluOp::Add, acc, acc, 1);
        });
        b.halt();
        let mut cpu = Cpu::new(CpuConfig::default());
        let res = cpu.run(&b.build(), 10_000);
        assert_eq!(res.regs[acc.index()], 10);
    }

    #[test]
    fn decoys_are_executable() {
        use evax_sim::{Cpu, CpuConfig};
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut b = ProgramBuilder::new("decoys");
        emit_decoys(&mut b, 32, &mut rng);
        emit_delay(&mut b, 16);
        b.halt();
        let mut cpu = Cpu::new(CpuConfig::default());
        assert!(cpu.run(&b.build(), 10_000).halted);
    }

    #[test]
    #[should_panic(expected = "attack register index out of range")]
    fn attack_reg_bounds() {
        let _ = regs::attack(15);
    }
}
