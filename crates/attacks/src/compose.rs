//! Program composition: splice several programs into one instruction
//! stream, running each segment to completion before falling through to the
//! next. This builds the paper's Fig. 14 scenario — benign execution with
//! attack phases injected mid-stream — without needing OS-level context
//! switching in the simulator.

use evax_sim::isa::{Op, Program};
use evax_sim::NUM_IRQ_VECTORS;

/// Errors composing programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComposeError {
    /// Nothing to compose.
    Empty,
    /// More than one segment declares a fault handler; a composite program
    /// has a single architectural handler.
    MultipleFaultHandlers {
        /// Index of the first segment with a handler.
        first: usize,
        /// Index of the conflicting segment.
        second: usize,
    },
    /// More than one segment installs a service routine for the same IRQ
    /// vector; a composite program has one handler per vector.
    MultipleIrqHandlers {
        /// The contested vector.
        vector: usize,
        /// Index of the first segment with a handler on that vector.
        first: usize,
        /// Index of the conflicting segment.
        second: usize,
    },
}

impl std::fmt::Display for ComposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComposeError::Empty => write!(f, "cannot compose zero programs"),
            ComposeError::MultipleFaultHandlers { first, second } => write!(
                f,
                "segments {first} and {second} both declare fault handlers; only one is allowed"
            ),
            ComposeError::MultipleIrqHandlers {
                vector,
                first,
                second,
            } => write!(
                f,
                "segments {first} and {second} both install IRQ vector {vector} handlers; \
                 only one per vector is allowed"
            ),
        }
    }
}

impl std::error::Error for ComposeError {}

/// Concatenates programs into one stream: each segment's `Halt` is replaced
/// by fall-through into the next segment (the final segment keeps its
/// terminator), and every control-flow target is rebased.
///
/// Fault and IRQ handlers are rebased along with the code: a carrier
/// segment's interrupt service routines keep working across the whole
/// composite stream, including while a later attack segment executes.
///
/// # Errors
/// [`ComposeError::Empty`] for an empty slice;
/// [`ComposeError::MultipleFaultHandlers`] when two segments both declare a
/// fault handler; [`ComposeError::MultipleIrqHandlers`] when two segments
/// install a service routine on the same IRQ vector.
///
/// # Example
/// ```
/// use evax_attacks::compose::compose;
/// use evax_sim::isa::{ProgramBuilder, Reg};
/// let mut a = ProgramBuilder::new("a");
/// a.li(Reg::new(1), 1);
/// a.halt();
/// let mut b = ProgramBuilder::new("b");
/// b.li(Reg::new(2), 2);
/// b.halt();
/// let combined = compose(&[a.build(), b.build()]).unwrap();
/// // Segment A's halt became a jump into segment B.
/// assert_eq!(combined.len(), 4);
/// ```
pub fn compose(programs: &[Program]) -> Result<Program, ComposeError> {
    if programs.is_empty() {
        return Err(ComposeError::Empty);
    }
    let mut instrs: Vec<Op> = Vec::new();
    let mut fault_handler: Option<(usize, usize)> = None; // (segment, absolute target)
    let mut irq_handlers: [Option<(usize, usize)>; NUM_IRQ_VECTORS] = [None; NUM_IRQ_VECTORS];
    let last = programs.len() - 1;
    let mut name = String::new();
    for (k, p) in programs.iter().enumerate() {
        if k > 0 {
            name.push('+');
        }
        name.push_str(p.name());
        let offset = instrs.len();
        if let Some(h) = p.fault_handler() {
            if let Some((first, _)) = fault_handler {
                return Err(ComposeError::MultipleFaultHandlers { first, second: k });
            }
            fault_handler = Some((k, h + offset));
        }
        for (vector, h) in p.irq_handlers().into_iter().enumerate() {
            if let Some(h) = h {
                if let Some((first, _)) = irq_handlers[vector] {
                    return Err(ComposeError::MultipleIrqHandlers {
                        vector,
                        first,
                        second: k,
                    });
                }
                irq_handlers[vector] = Some((k, h + offset));
            }
        }
        let mut body: Vec<Op> = p
            .instructions()
            .iter()
            .map(|op| match *op {
                Op::Branch { cond, a, b, target } => Op::Branch {
                    cond,
                    a,
                    b,
                    target: target + offset,
                },
                Op::Jmp { target } => Op::Jmp {
                    target: target + offset,
                },
                Op::Call { target } => Op::Call {
                    target: target + offset,
                },
                other => other,
            })
            .collect();
        if k != last {
            // Fall through into the next segment instead of halting. Interior
            // halts (if any) also fall through; the program's own control
            // flow never reaches past its terminator anyway.
            let next_start = offset + body.len();
            for op in &mut body {
                if matches!(op, Op::Halt) {
                    *op = Op::Jmp { target: next_start };
                }
            }
        }
        instrs.extend(body);
    }
    let mut out = Program::from_instructions(name, instrs);
    out.set_fault_handler(fault_handler.map(|(_, h)| h));
    for (vector, h) in irq_handlers.into_iter().enumerate() {
        out.set_irq_handler(vector, h.map(|(_, h)| h));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benign::Scale;
    use crate::{build_attack, build_benign, AttackClass, BenignKind, KernelParams};
    use evax_sim::isa::{AluOp, Cond, ProgramBuilder, Reg};
    use evax_sim::{Cpu, CpuConfig};
    use rand::SeedableRng;

    #[test]
    fn segments_run_in_order() {
        let r = |i| Reg::new(i);
        let mut a = ProgramBuilder::new("a");
        a.li(r(1), 10);
        a.halt();
        let mut b = ProgramBuilder::new("b");
        b.alu_imm(AluOp::Add, r(1), r(1), 5);
        b.halt();
        let p = compose(&[a.build(), b.build()]).unwrap();
        let mut cpu = Cpu::new(CpuConfig::default());
        let res = cpu.run(&p, 10_000);
        assert!(res.halted);
        assert_eq!(res.regs[1], 15, "both segments must execute");
    }

    #[test]
    fn branch_targets_are_rebased() {
        let r = |i| Reg::new(i);
        // Segment B contains a loop; its targets must survive rebasing.
        let mut a = ProgramBuilder::new("a");
        a.li(r(1), 0);
        a.halt();
        let mut b = ProgramBuilder::new("b");
        b.li(r(2), 0);
        let top = b.label();
        b.alu_imm(AluOp::Add, r(2), r(2), 1);
        b.branch(Cond::Lt, r(2), r(3), top);
        b.halt();
        let mut cpu = Cpu::new(CpuConfig::default());
        let mut setup = ProgramBuilder::new("setup");
        setup.li(r(3), 7);
        setup.halt();
        let p = compose(&[setup.build(), a.build(), b.build()]).unwrap();
        let res = cpu.run(&p, 10_000);
        assert!(res.halted);
        assert_eq!(res.regs[2], 7, "loop in rebased segment must iterate");
    }

    #[test]
    fn attack_phase_inside_benign_timeline_still_leaks() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let before = build_benign(BenignKind::Compression, Scale(3_000), &mut rng);
        let attack = build_attack(
            AttackClass::SpectrePht,
            &KernelParams {
                iterations: 16,
                ..Default::default()
            },
            &mut rng,
        );
        let after = build_benign(BenignKind::GeneDp, Scale(3_000), &mut rng);
        let p = compose(&[before, attack, after]).unwrap();
        let mut cpu = Cpu::new(CpuConfig::default());
        let res = cpu.run(&p, 300_000);
        assert!(res.halted);
        let secret_line = crate::common::layout::PROBE + crate::common::layout::DEFAULT_SECRET * 64;
        assert!(
            cpu.dcache().contains(secret_line) || cpu.l2().contains(secret_line),
            "spliced attack must still leak"
        );
    }

    #[test]
    fn fault_handler_segments_compose_once() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let benign = build_benign(BenignKind::Scheduler, Scale(2_000), &mut rng);
        let meltdown = build_attack(AttackClass::Meltdown, &KernelParams::default(), &mut rng);
        let p = compose(&[benign.clone(), meltdown.clone()]).unwrap();
        assert!(p.fault_handler().is_some());
        // Two fault-handling segments conflict.
        let err = compose(&[meltdown.clone(), meltdown]).unwrap_err();
        assert!(matches!(
            err,
            ComposeError::MultipleFaultHandlers {
                first: 0,
                second: 1
            }
        ));
    }

    #[test]
    fn empty_composition_rejected() {
        assert_eq!(compose(&[]).unwrap_err(), ComposeError::Empty);
    }

    #[test]
    fn irq_handlers_are_rebased_and_stay_live_across_segments() {
        use evax_sim::DeviceConfig;
        let r = |i| Reg::new(i);
        // Segment A installs a vector-0 tick handler; segment B is a plain
        // busy loop. The handler must keep servicing fires while B runs.
        let mut a = ProgramBuilder::new("carrier");
        a.li(r(1), 0);
        a.halt();
        let h = a.label();
        a.alu_imm(AluOp::Add, r(31), r(31), 1);
        a.iret();
        a.on_irq(0, h);
        let mut b = ProgramBuilder::new("busy");
        b.li(r(2), 0);
        b.li(r(3), 4_000);
        let top = b.label();
        b.alu_imm(AluOp::Add, r(2), r(2), 1);
        b.branch(Cond::Lt, r(2), r(3), top);
        b.halt();
        let (pa, pb) = (a.build(), b.build());
        let expected = pa.irq_handler(0).unwrap();
        let p = compose(&[pa.clone(), pb]).unwrap();
        assert_eq!(p.irq_handler(0), Some(expected), "handler target rebased");
        let cfg = evax_sim::CpuConfig {
            devices: DeviceConfig::builder()
                .enabled(true)
                .timer_period(300)
                .build()
                .unwrap(),
            ..evax_sim::CpuConfig::default()
        };
        let mut cpu = Cpu::new(cfg);
        let res = cpu.run(&p, 100_000);
        assert!(res.halted);
        assert_eq!(res.regs[2], 4_000, "segment B completed");
        assert!(res.regs[31] > 0, "handler serviced fires during segment B");
        // Two segments claiming the same vector conflict.
        let err = compose(&[pa.clone(), pa]).unwrap_err();
        assert_eq!(
            err,
            ComposeError::MultipleIrqHandlers {
                vector: 0,
                first: 0,
                second: 1
            }
        );
    }
}
