//! Contention and replay kernels: the RDRAND covert channel, SMotherSpectre
//! (port contention), BranchScope (directional-predictor probing),
//! MicroScope (replay amplification) and Leaky Buddies (CPU-side contention
//! covert channel).
//!
//! Per the paper (§VIII-C), MicroScope, Leaky Buddies and SMotherSpectre are
//! the *hard* cases — they evade detection in the leave-one-out setting —
//! so their kernels are deliberately subtler: less squashing, more
//! contention.

use evax_sim::isa::{AluOp, Cond, Program, ProgramBuilder, Reg};
use rand::Rng;

use crate::common::{emit_decoys, emit_delay, emit_loop, layout, regs, KernelParams};

/// RDRAND covert channel: the sender modulates use of the shared RNG unit;
/// the receiver times its own RDRANDs — contended cycles encode bits
/// (Weber et al., "not easily detected nor prevented by any of the current
/// software approaches").
pub fn rdrand_covert(p: &KernelParams, rng: &mut impl Rng) -> Program {
    let (v, t1, t2, bit, secret) = (
        regs::attack(0),
        regs::attack(1),
        regs::attack(2),
        regs::attack(3),
        regs::attack(4),
    );
    let mut b = ProgramBuilder::new("rdrand-covert");
    b.li(secret, 0b1011_0010 ^ (p.seed & 0xFF));
    let rounds = regs::attack(7);
    emit_loop(&mut b, rounds, p.iterations as u64 * 8, |b| {
        // Sender: if the current secret bit is 1, hammer the RNG.
        b.alu_imm(AluOp::And, bit, secret, 1);
        b.alu_imm(AluOp::Shr, secret, secret, 1);
        let quiet = b.forward_label();
        b.branch(Cond::Eq, bit, Reg::ZERO, quiet);
        for _ in 0..6 {
            b.rdrand(v);
        }
        b.bind(quiet);
        // Receiver: time one RDRAND — contention stretches it.
        b.rdcycle(t1);
        b.rdrand(v);
        b.rdcycle(t2);
        b.alu(AluOp::Sub, t2, t2, t1);
    });
    emit_decoys(&mut b, p.decoy_ops, rng);
    emit_delay(&mut b, p.delay_ops);
    b.halt();
    b.build()
}

/// SMotherSpectre: port contention inside a mispredicted-branch shadow.
/// The transient path's instruction mix (div-heavy vs. light) modulates
/// issue-port pressure that the attacker times — little cache footprint,
/// mostly FU/IQ pressure.
pub fn smotherspectre(p: &KernelParams, rng: &mut impl Rng) -> Program {
    let (x, y, t1, t2, rsz, idx, tmp) = (
        regs::attack(0),
        regs::attack(1),
        regs::attack(2),
        regs::attack(3),
        regs::attack(4),
        regs::attack(5),
        regs::attack(6),
    );
    let mut b = ProgramBuilder::new("smotherspectre");
    b.li(x, 12345);
    b.li(tmp, layout::SIZE_ADDR);
    b.li(y, 16);
    b.store(y, tmp, 0);
    let rounds = regs::attack(7);
    emit_loop(&mut b, rounds, p.iterations as u64 * 4, |b| {
        // Train the bounds branch not-taken (victim body has the divs).
        crate::common::emit_loop(b, idx, p.train_iters.max(1) as u64, |b| {
            b.li(y, 1);
            b.li(tmp, layout::SIZE_ADDR);
            b.load(rsz, tmp, 0);
            let skip = b.forward_label();
            b.branch(Cond::Ge, y, rsz, skip);
            b.alu(AluOp::Div, x, x, rsz);
            b.bind(skip);
        });
        // Attack: slow condition + out-of-bounds index — the branch is
        // actually taken (skipping the divs) but predicted not-taken, so the
        // div-heavy arm runs *transiently*, saturating the divide unit while
        // the attacker times its own division.
        b.li(tmp, layout::SIZE_ADDR);
        b.flush(tmp, 0);
        b.load(rsz, tmp, 0);
        b.li(y, 64);
        let skip = b.forward_label();
        b.branch(Cond::Ge, y, rsz, skip);
        b.alu(AluOp::Div, x, x, rsz);
        b.alu(AluOp::Div, x, x, rsz);
        b.alu(AluOp::Div, x, x, rsz);
        b.bind(skip);
        b.rdcycle(t1);
        b.alu(AluOp::Div, y, x, x);
        b.rdcycle(t2);
        b.alu(AluOp::Sub, t2, t2, t1);
    });
    emit_decoys(&mut b, p.decoy_ops, rng);
    emit_delay(&mut b, p.delay_ops);
    b.halt();
    b.build()
}

/// BranchScope: probes the *directional* predictor — the attacker briefly
/// perturbs a target branch then measures its own mispredict rate on an
/// aliasing branch, leaving a condIncorrect-heavy, cache-quiet footprint.
pub fn branchscope(p: &KernelParams, rng: &mut impl Rng) -> Program {
    let (bitr, i, secret, t1, t2) = (
        regs::attack(0),
        regs::attack(1),
        regs::attack(2),
        regs::attack(3),
        regs::attack(4),
    );
    let mut b = ProgramBuilder::new("branchscope");
    b.li(secret, 0b0110_1001 ^ (p.seed & 0xFF));
    let rounds = regs::attack(7);
    emit_loop(&mut b, rounds, p.iterations as u64 * 8, |b| {
        // Victim: one branch whose direction is the current secret bit.
        b.alu_imm(AluOp::And, bitr, secret, 1);
        b.alu_imm(AluOp::Shr, secret, secret, 1);
        let skip = b.forward_label();
        b.branch(Cond::Eq, bitr, Reg::ZERO, skip);
        b.nop();
        b.bind(skip);
        // Attacker: drive the shared pattern tables through a burst of
        // alternating-direction branches and time the burst; the victim's
        // state shifts the mispredict count.
        b.rdcycle(t1);
        crate::common::emit_loop(b, i, 6, |b| {
            b.alu_imm(AluOp::And, bitr, i, 1);
            let skip2 = b.forward_label();
            b.branch(Cond::Eq, bitr, Reg::ZERO, skip2);
            b.nop();
            b.bind(skip2);
        });
        b.rdcycle(t2);
        b.alu(AluOp::Sub, t2, t2, t1);
    });
    emit_decoys(&mut b, p.decoy_ops, rng);
    emit_delay(&mut b, p.delay_ops);
    b.halt();
    b.build()
}

/// MicroScope: replay amplification. The real attack manipulates the
/// victim's page tables so one load keeps faulting and the surrounding
/// window re-executes; from the attacker's (monitored) side the footprint
/// is only repeated TLB displacement plus a timed measurement — subtle,
/// which is why the paper reports it *evades* detection until the detector
/// is retrained on it (§VIII-C).
pub fn microscope(p: &KernelParams, rng: &mut impl Rng) -> Program {
    let (pgbase, sec, tmp, t1, t2, i) = (
        regs::attack(0),
        regs::attack(1),
        regs::attack(2),
        regs::attack(3),
        regs::attack(4),
        regs::attack(5),
    );
    let mut b = ProgramBuilder::new("microscope");
    b.li(pgbase, layout::SCRATCH + 0x200_0000);
    let rounds = regs::attack(7);
    emit_loop(&mut b, rounds, p.iterations as u64 * 4, |b| {
        // Replay handle: displace the victim translation by touching a walk
        // of other pages (page-table pressure, no faults on our side).
        for pg in 0..12i64 {
            b.load(tmp, pgbase, pg * 4096);
        }
        b.alu_imm(AluOp::Add, pgbase, pgbase, 4096 * 16);
        b.alu_imm(AluOp::And, pgbase, pgbase, 0x2FF_FFFF);
        b.alu_imm(AluOp::Add, pgbase, pgbase, layout::SCRATCH);
        // The replayed measurement of the victim window.
        b.rdcycle(t1);
        b.load(sec, pgbase, 0);
        b.alu(AluOp::Mul, sec, sec, sec);
        b.rdcycle(t2);
        b.alu(AluOp::Sub, t2, t2, t1);
        // Benign-looking accumulation between replays.
        crate::common::emit_loop(b, i, 4, |b| {
            b.alu_imm(AluOp::Add, tmp, tmp, 13);
            b.alu_imm(AluOp::Xor, tmp, tmp, 7);
        });
    });
    emit_decoys(&mut b, p.decoy_ops, rng);
    emit_delay(&mut b, p.delay_ops);
    b.halt();
    b.build()
}

/// Leaky Buddies (CPU side): a cross-component contention covert channel —
/// the sender thrashes shared L2 sets, the receiver times L2-resident
/// accesses. No flushes, no faults: pure occupancy contention.
pub fn leaky_buddies(p: &KernelParams, rng: &mut impl Rng) -> Program {
    let (s, v, t1, t2, bit, secret) = (
        regs::attack(0),
        regs::attack(1),
        regs::attack(2),
        regs::attack(3),
        regs::attack(4),
        regs::attack(5),
    );
    // L2: 4096 sets x 64B -> same set every 256 KiB; 8 ways.
    let set_stride = 64 * 4096i64;
    let mut b = ProgramBuilder::new("leaky-buddies");
    b.li(secret, 0b1100_0101 ^ (p.seed & 0xFF));
    b.li(s, layout::SCRATCH + 0x100_0000);
    b.li(v, layout::VICTIM + 0x3000);
    // Receiver warms its line.
    b.load(t1, v, 0);
    let rounds = regs::attack(7);
    emit_loop(&mut b, rounds, p.iterations as u64 * 4, |b| {
        // Sender: on a 1 bit, lean on the receiver's L2 set — only a few
        // ways, so the occupancy shift is statistical, not a full eviction
        // (the subtlety that lets the CPU-side channel evade detection).
        b.alu_imm(AluOp::And, bit, secret, 1);
        b.alu_imm(AluOp::Shr, secret, secret, 1);
        let quiet = b.forward_label();
        b.branch(Cond::Eq, bit, Reg::ZERO, quiet);
        for w in 0..5i64 {
            b.load(t1, s, w * set_stride);
        }
        b.bind(quiet);
        // Receiver: time its own access.
        b.rdcycle(t1);
        b.load(bit, v, 0);
        b.rdcycle(t2);
        b.alu(AluOp::Sub, t2, t2, t1);
        // Cover traffic: ordinary streaming work between bits.
        let d = regs::decoy(5);
        for k in 0..6i64 {
            b.load(d, s, 0x40_0000 + k * 64);
            b.alu(AluOp::Add, d, d, bit);
        }
    });
    emit_decoys(&mut b, p.decoy_ops, rng);
    emit_delay(&mut b, p.delay_ops);
    b.halt();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use evax_sim::{Cpu, CpuConfig};
    use rand::SeedableRng;

    fn run(p: &Program) -> Cpu {
        let mut cpu = Cpu::new(CpuConfig::default());
        let res = cpu.run(p, 500_000);
        assert!(res.halted, "kernel {} must halt", p.name());
        cpu
    }

    #[test]
    fn rdrand_contention_fires() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let cpu = run(&rdrand_covert(&KernelParams::default(), &mut rng));
        assert!(cpu.stats().rdrand_ops > 50);
        assert!(cpu.stats().rdrand_contention_cycles > 0);
    }

    #[test]
    fn smotherspectre_squashes_divs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let cpu = run(&smotherspectre(&KernelParams::default(), &mut rng));
        assert!(cpu.stats().iew_exec_squashed_insts > 0, "no transient arm");
        // Cache-quiet: flushes only on the condition variable.
        assert!(cpu.dcache().stats().flushes > 0);
    }

    #[test]
    fn branchscope_is_mispredict_heavy_cache_quiet() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let cpu = run(&branchscope(&KernelParams::default(), &mut rng));
        assert!(cpu.stats().bp_cond_incorrect > 20, "needs mispredict churn");
        assert_eq!(cpu.dcache().stats().flushes, 0);
        assert_eq!(cpu.stats().faults_raised, 0);
    }

    #[test]
    fn microscope_is_fault_free_but_tlb_heavy() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let p = KernelParams {
            iterations: 8,
            ..Default::default()
        };
        let cpu = run(&microscope(&p, &mut rng));
        // Attacker-side subtlety: no architectural faults, but heavy TLB
        // displacement plus serialized timing reads.
        assert_eq!(cpu.stats().faults_raised, 0);
        assert!(
            cpu.dtlb().stats().rd_misses > 50,
            "replay needs TLB pressure"
        );
        assert!(
            cpu.stats().commit_membars > 10,
            "timed measurements present"
        );
    }

    #[test]
    fn leaky_buddies_contends_in_l2() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let cpu = run(&leaky_buddies(&KernelParams::default(), &mut rng));
        assert_eq!(cpu.dcache().stats().flushes, 0);
        assert_eq!(cpu.stats().faults_raised, 0);
        assert!(cpu.l2().stats().read_misses > 10, "sender must churn L2");
    }
}
