//! DRAM-side kernels: Rowhammer (integrity) and DRAMA (row-buffer covert /
//! side channel). These exercise the counters EVAX's DRAM detection keys on:
//! `selfRefreshEnergy`, `bytesPerActivate`, `bytesReadWrQ` (paper §VIII-C).

use evax_dram::Dram;
use evax_sim::isa::{AluOp, Program, ProgramBuilder};
use evax_sim::CpuConfig;
use rand::Rng;

use crate::common::{emit_decoys, emit_delay, emit_loop, regs, KernelParams};

/// Rowhammer: alternately activates aggressor rows adjacent to a victim,
/// defeating the row buffer with flushes so every access reaches DRAM.
/// Double-sided by construction (aggressors at victim±1).
pub fn rowhammer(p: &KernelParams, rng: &mut impl Rng) -> Program {
    // Compute aggressor addresses with the same mapping the CPU's DRAM uses.
    let dram = Dram::new(CpuConfig::default().dram);
    let base_row = 32 + (p.seed % 64) * 4;
    let (a1, a2, v, i) = (
        regs::attack(0),
        regs::attack(1),
        regs::attack(2),
        regs::attack(3),
    );
    let mut b = ProgramBuilder::new("rowhammer");
    b.li(a1, dram.address_of(0, base_row));
    b.li(a2, dram.address_of(0, base_row + 2));
    let rounds = regs::attack(7);
    emit_loop(&mut b, rounds, p.iterations as u64 * 32, |b| {
        b.load(v, a1, 0);
        b.load(v, a2, 0);
        b.flush(a1, 0);
        b.flush(a2, 0);
    });
    // A second aggressor pair widens the blast pattern (TRRespass-style
    // many-sided hammering mutates this structure).
    b.li(a1, dram.address_of(0, base_row + 8));
    b.li(a2, dram.address_of(0, base_row + 10));
    emit_loop(&mut b, i, p.iterations as u64 * 16, |b| {
        b.load(v, a1, 0);
        b.load(v, a2, 0);
        b.flush(a1, 0);
        b.flush(a2, 0);
    });
    emit_decoys(&mut b, p.decoy_ops, rng);
    emit_delay(&mut b, p.delay_ops);
    b.halt();
    b.build()
}

/// DRAMA: a row-buffer timing channel — alternating accesses to two rows in
/// the same bank produce row conflicts whose latency encodes the victim's
/// row, yielding an activation-heavy, low-bytes-per-activate footprint.
pub fn drama(p: &KernelParams, rng: &mut impl Rng) -> Program {
    let dram = Dram::new(CpuConfig::default().dram);
    let row_a = 128 + (p.seed % 32) * 2;
    let (ra, rb, v, t1, t2) = (
        regs::attack(0),
        regs::attack(1),
        regs::attack(2),
        regs::attack(3),
        regs::attack(4),
    );
    let mut b = ProgramBuilder::new("drama");
    b.li(ra, dram.address_of(1, row_a));
    b.li(rb, dram.address_of(1, row_a + 5));
    let rounds = regs::attack(7);
    emit_loop(&mut b, rounds, p.iterations as u64 * 16, |b| {
        // Sender: open row A (conflict with B), then time access to B.
        b.load(v, ra, 0);
        b.flush(ra, 0);
        b.rdcycle(t1);
        b.load(v, rb, 0);
        b.rdcycle(t2);
        b.alu(AluOp::Sub, t2, t2, t1);
        b.flush(rb, 0);
        // Write-queue pressure: stores the receiver reads back (the
        // `bytesReadWrQ` signature TRRespass detection correlates with).
        b.store(v, ra, 8);
        b.load(v, ra, 8);
    });
    emit_decoys(&mut b, p.decoy_ops, rng);
    emit_delay(&mut b, p.delay_ops);
    b.halt();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use evax_dram::DramConfig;
    use evax_sim::{Cpu, CpuConfig};
    use rand::SeedableRng;

    #[test]
    fn rowhammer_flips_bits_with_scaled_threshold() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let cfg = CpuConfig {
            dram: DramConfig {
                hammer_threshold: 100,
                hammer_jitter: 16,
                refresh_interval: 50_000_000,
                ..Default::default()
            },
            ..Default::default()
        };
        let p = KernelParams {
            iterations: 16,
            ..Default::default()
        };
        let prog = rowhammer(&p, &mut rng);
        let mut cpu = Cpu::new(cfg);
        let res = cpu.run(&prog, 500_000);
        assert!(res.halted);
        assert!(cpu.dram().stats().bit_flips > 0, "hammering must flip bits");
        assert!(cpu.dram().stats().activations > 500);
    }

    #[test]
    fn rowhammer_has_low_bytes_per_activate() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let prog = rowhammer(&KernelParams::default(), &mut rng);
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.run(&prog, 500_000);
        let bpa = cpu.dram().stats().bytes_per_activate();
        assert!(bpa < 256.0, "hammering thrashes activations: bpa={bpa}");
    }

    #[test]
    fn drama_generates_row_conflicts_and_wrq_reads() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let prog = drama(&KernelParams::default(), &mut rng);
        let mut cpu = Cpu::new(CpuConfig::default());
        let res = cpu.run(&prog, 500_000);
        assert!(res.halted);
        assert!(
            cpu.dram().stats().row_buffer_conflicts > 50,
            "no row conflicts"
        );
        assert!(
            cpu.dram().stats().bytes_read_wr_q > 0,
            "no write-queue reads"
        );
    }
}
