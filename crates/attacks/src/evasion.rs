//! Evasion-attack generator: the adversary's half of the arms race.
//!
//! The paper's reactive loop (§VI-C, Fig. 17) assumes attackers respond to
//! a deployed detector with *evasive* variants — the same exploit phases,
//! reshaped so their per-window HPC footprint slides under the decision
//! boundary. This module generates those variants deterministically, in
//! three escalating strategies:
//!
//! * [`EvasionStrategy::BenignPadding`] — interleave benign-looking decoy
//!   instructions inside every attack round, diluting the malicious
//!   fraction of each sampling window (the malware-community "mimicry"
//!   technique).
//! * [`EvasionStrategy::RateModulation`] — stretch the attack over time
//!   with dependent-chain delays and fewer rounds, lowering the leak
//!   bandwidth each window observes.
//! * [`EvasionStrategy::WeightGuided`] — the white-box step: read the
//!   victim detector's weight vector, bucket its mass over the HPC groups
//!   ([`WeightProfile`]), and steer the knobs that feed the heaviest
//!   counters (probe lines for cache-heavy detectors, training iterations
//!   for branch-heavy ones, hammer rounds for DRAM-heavy ones) while
//!   scaling dilution with the detector's concentration.
//!
//! Generation is a pure function of `(strategy, victim weights, intensity,
//! seed)` — the same determinism contract as [`crate::registry`] — so an
//! arms-race harness replays identically at any thread count.
//!
//! The victim weights arrive as a plain `&[f32]` aligned with the victim's
//! [`evax_sim::FeatureSchema`] (any engineered-feature tail beyond the
//! sensor columns is ignored): this crate sits below the detector crates,
//! so the adversary sees exactly what a real one could dump from a stolen
//! model file — numbers, not types.

use evax_sim::isa::{Program, ProgramBuilder};
use evax_sim::FeatureSchema;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::{emit_decoys, emit_delay, KernelParams};
use crate::compose::compose;
use crate::registry::{build_attack, AttackClass, ATTACK_CLASSES};

/// An evasion strategy — how the adversary reshapes a kernel's footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvasionStrategy {
    /// Dilute each window with benign decoy instructions.
    BenignPadding,
    /// Lower leak bandwidth: long idle stretches, fewer rounds.
    RateModulation,
    /// White-box: target the knobs behind the victim's heaviest weights.
    WeightGuided,
}

impl EvasionStrategy {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            EvasionStrategy::BenignPadding => "benign_padding",
            EvasionStrategy::RateModulation => "rate_modulation",
            EvasionStrategy::WeightGuided => "weight_guided",
        }
    }
}

impl std::fmt::Display for EvasionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Every strategy, in escalation order.
pub const EVASION_STRATEGIES: [EvasionStrategy; 3] = [
    EvasionStrategy::BenignPadding,
    EvasionStrategy::RateModulation,
    EvasionStrategy::WeightGuided,
];

/// Absolute weight mass of a victim detector, bucketed over the HPC
/// counter groups the attack knobs can actually influence.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WeightProfile {
    /// Branch-prediction counters (`bp.*` plus mispredict/branch-named
    /// pipeline counters).
    pub branch: f32,
    /// Cache-hierarchy counters (`icache.*`, `dcache.*`, `l2.*`).
    pub cache: f32,
    /// TLB counters (`itlb.*`, `dtlb.*`).
    pub tlb: f32,
    /// DRAM counters (`dram.*`).
    pub dram: f32,
    /// Transient-execution counters (`spec.*`, `faults.*`).
    pub speculation: f32,
    /// Everything else (pipeline occupancy, derived rates, ...).
    pub other: f32,
}

impl WeightProfile {
    /// Buckets `weights` by the counter name at the same index.
    ///
    /// `weights` is read positionally against the baseline
    /// [`FeatureSchema`] ([`WeightProfile::from_weights_with_schema`]
    /// takes an explicit schema); a shorter slice profiles a prefix, and
    /// entries past the schema's sensor columns (engineered features) are
    /// ignored — their provenance is opaque to the adversary.
    pub fn from_weights(weights: &[f32]) -> WeightProfile {
        WeightProfile::from_weights_with_schema(weights, &FeatureSchema::baseline())
    }

    /// [`WeightProfile::from_weights`] against an explicit schema (e.g. an
    /// energy-enabled sensor configuration, whose `energy.*` columns
    /// bucket with the structures they meter).
    pub fn from_weights_with_schema(weights: &[f32], schema: &FeatureSchema) -> WeightProfile {
        let mut p = WeightProfile::default();
        for ((name, modality), &w) in schema.columns().zip(weights.iter()) {
            if modality == evax_sim::Modality::Engineered {
                continue;
            }
            let mass = if w.is_finite() { w.abs() } else { 0.0 };
            let group = name.split('.').next().unwrap_or("");
            let bucket = match group {
                "bp" => &mut p.branch,
                _ if name.contains("Branch")
                    || name.contains("Mispredict")
                    || name.contains("Predicted") =>
                {
                    &mut p.branch
                }
                "icache" | "dcache" | "l2" => &mut p.cache,
                "itlb" | "dtlb" => &mut p.tlb,
                "dram" => &mut p.dram,
                "spec" | "faults" => &mut p.speculation,
                _ => &mut p.other,
            };
            *bucket += mass;
        }
        p
    }

    /// Total bucketed mass.
    pub fn total(&self) -> f32 {
        self.branch + self.cache + self.tlb + self.dram + self.speculation + self.other
    }

    /// Name of the heaviest *attack-steerable* group (ties break in the
    /// declaration order above; `other` is never dominant — the adversary
    /// has no knob for it).
    pub fn dominant(&self) -> &'static str {
        let groups = [
            ("branch", self.branch),
            ("cache", self.cache),
            ("tlb", self.tlb),
            ("dram", self.dram),
            ("speculation", self.speculation),
        ];
        let mut best = groups[0];
        for g in &groups[1..] {
            if g.1 > best.1 {
                best = *g;
            }
        }
        best.0
    }

    /// Fraction of steerable mass held by the dominant group — how
    /// concentrated (and therefore how steerable) the victim is.
    pub fn concentration(&self) -> f32 {
        let steerable = self.branch + self.cache + self.tlb + self.dram + self.speculation;
        if steerable <= 0.0 {
            return 0.0;
        }
        let top = [
            self.branch,
            self.cache,
            self.tlb,
            self.dram,
            self.speculation,
        ]
        .into_iter()
        .fold(0.0f32, f32::max);
        top / steerable
    }
}

/// Derives one evasive [`KernelParams`] draw for `strategy` against a
/// victim with weight profile `profile`, at escalation `intensity`
/// (1-based round number, clamped to `1..=8`).
pub fn evasive_params(
    strategy: EvasionStrategy,
    profile: &WeightProfile,
    intensity: u32,
    rng: &mut StdRng,
) -> KernelParams {
    let level = intensity.clamp(1, 8);
    let mut p = KernelParams {
        seed: rng.gen(),
        ..Default::default()
    };
    match strategy {
        EvasionStrategy::BenignPadding => {
            // Mimicry: the attack round itself shrinks while the benign
            // interleave grows with every escalation.
            p.decoy_ops = (rng.gen_range(48..128u32) * level).min(768);
            p.iterations = rng.gen_range(12..40);
            p.delay_ops = rng.gen_range(16..64);
        }
        EvasionStrategy::RateModulation => {
            // Bandwidth evasion: long dependent-chain idles between rounds
            // spread the leak across many sampling windows.
            p.delay_ops = (rng.gen_range(128..384u32) * level).min(2048);
            p.iterations = rng.gen_range(6..24);
            p.decoy_ops = rng.gen_range(8..32);
        }
        EvasionStrategy::WeightGuided => {
            // White-box: starve the counters the victim weighs heaviest,
            // and scale dilution with how concentrated the victim is.
            let dilution = 1.0 + profile.concentration();
            p.decoy_ops = ((rng.gen_range(32..96u32) * level) as f32 * dilution) as u32;
            p.delay_ops = ((rng.gen_range(64..256u32) * level) as f32 * dilution) as u32;
            p.decoy_ops = p.decoy_ops.min(768);
            p.delay_ops = p.delay_ops.min(2048);
            match profile.dominant() {
                "cache" => {
                    // Fewer probe lines + wider stride: less eviction and
                    // flush traffic per window.
                    p.probe_lines = rng.gen_range(1..4);
                    p.stride = 64 * rng.gen_range(4..8u64);
                    p.iterations = rng.gen_range(8..32);
                }
                "branch" => {
                    // Longer well-predicted training runs amortize the
                    // mispredict burst the detector keys on.
                    p.train_iters = rng.gen_range(48..128);
                    p.iterations = rng.gen_range(4..16);
                }
                "dram" => {
                    // Fewer hammer rounds per window.
                    p.iterations = rng.gen_range(4..12);
                    p.probe_lines = rng.gen_range(1..4);
                }
                "tlb" => {
                    // Stay inside a few pages: narrow stride, few lines.
                    p.stride = 64;
                    p.probe_lines = rng.gen_range(1..3);
                    p.iterations = rng.gen_range(8..32);
                }
                _ => {
                    // Speculation-heavy (or flat) victims get rate cuts.
                    p.iterations = rng.gen_range(4..16);
                    p.train_iters = rng.gen_range(8..24);
                }
            }
        }
    }
    p
}

/// Emits a benign-mimicry padding segment: `ops` decoy instructions (ALU
/// mix + scratch loads) that execute once and fall through.
fn decoy_pad(ops: u32, rng: &mut StdRng) -> Program {
    let mut b = ProgramBuilder::new("pad-decoy");
    emit_decoys(&mut b, ops, rng);
    b.halt();
    b.build()
}

/// Emits a bandwidth-modulation padding segment: a dependent ALU chain of
/// roughly `2 * ops` instructions with no memory or branch traffic.
fn delay_pad(ops: u32) -> Program {
    let mut b = ProgramBuilder::new("pad-delay");
    emit_delay(&mut b, ops);
    b.halt();
    b.build()
}

/// Builds one evasive attack: the kernel (with `params` already steered by
/// [`evasive_params`]) spliced between two padding segments, so most of
/// the program's sampling windows carry no attack footprint at all.
///
/// Padding is the load-bearing half of evasion here: the kernels' own
/// decoy/delay knobs execute once per *program*, which a per-window
/// detector barely notices, while composed padding segments occupy whole
/// sampling windows. The pad *mix* follows the strategy — benign-mimicry
/// decoys for [`EvasionStrategy::BenignPadding`], silent dependent-chain
/// delays for [`EvasionStrategy::RateModulation`], and a blend scaled by
/// the victim's weight concentration for [`EvasionStrategy::WeightGuided`].
pub fn build_evasive_attack(
    strategy: EvasionStrategy,
    class: AttackClass,
    params: &KernelParams,
    profile: &WeightProfile,
    intensity: u32,
    rng: &mut StdRng,
) -> Program {
    let level = intensity.clamp(1, 8);
    let attack = build_attack(class, params, rng);
    let (pre, post) = match strategy {
        EvasionStrategy::BenignPadding => {
            let ops = (800 + 400 * level).min(3200);
            (decoy_pad(ops, rng), decoy_pad(ops, rng))
        }
        EvasionStrategy::RateModulation => {
            let ops = (600 + 300 * level).min(2400);
            (delay_pad(ops), delay_pad(ops))
        }
        EvasionStrategy::WeightGuided => {
            // Dilution effort tracks how concentrated (steerable) the
            // victim is; the mix covers both pad signatures.
            let ops = (((500 + 250 * level) as f32) * (1.0 + profile.concentration())) as u32;
            (decoy_pad(ops.min(3200), rng), delay_pad(ops.min(2400)))
        }
    };
    // Kernels with register-indirect control flow (`jmp_ind`) bake
    // absolute instruction indices into registers, which composition
    // cannot rebase — those stay at offset 0 and take all padding as a
    // suffix. A single attack segment keeps at most one fault handler in
    // the composite, so composition cannot fail either way.
    let position_dependent = attack
        .instructions()
        .iter()
        .any(|op| matches!(op, evax_sim::isa::Op::JmpInd { .. }));
    let segments = if position_dependent {
        [attack, pre, post]
    } else {
        [pre, attack, post]
    };
    compose(&segments).expect("pad/attack/pad composition is structurally valid")
}

/// Generates `n_programs` evasive attack programs against a victim whose
/// (stolen) weight vector is `victim_weights`, cycling through
/// [`ATTACK_CLASSES`] so every class appears in a large enough corpus.
/// Each program is returned with its ground-truth class.
///
/// Deterministic in `(strategy, victim_weights, intensity, seed)`.
pub fn generate_evasive_programs(
    strategy: EvasionStrategy,
    n_programs: usize,
    victim_weights: &[f32],
    intensity: u32,
    seed: u64,
) -> Vec<(Program, AttackClass)> {
    let profile = WeightProfile::from_weights(victim_weights);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE7A5_E0DE);
    let mut out = Vec::with_capacity(n_programs);
    for i in 0..n_programs {
        // Deterministic class rotation (not an RNG draw): corpus class
        // balance is independent of how many RNG values each kernel
        // builder consumes.
        let class = ATTACK_CLASSES[i % ATTACK_CLASSES.len()];
        let params = evasive_params(strategy, &profile, intensity, &mut rng);
        out.push((
            build_evasive_attack(strategy, class, &params, &profile, intensity, &mut rng),
            class,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use evax_sim::{Cpu, CpuConfig, HPC_BASE_DIM};

    fn fake_weights(heavy: &str) -> Vec<f32> {
        FeatureSchema::baseline()
            .names()
            .map(|n| if n.starts_with(heavy) { 1.0 } else { 0.01 })
            .collect()
    }

    #[test]
    fn profile_buckets_mass_by_group() {
        let p = WeightProfile::from_weights(&fake_weights("dcache"));
        assert_eq!(p.dominant(), "cache");
        assert!(p.cache > p.branch && p.cache > p.dram);
        assert!(p.concentration() > 0.5);
        // A longer-than-base vector (engineered tail) must not panic and
        // must not change the bucketed mass.
        let mut extended = fake_weights("dcache");
        extended.extend([100.0; 7]);
        assert_eq!(WeightProfile::from_weights(&extended), p);
        assert_eq!(extended.len(), HPC_BASE_DIM + 7);
    }

    #[test]
    fn profile_ignores_non_finite_weights() {
        let mut w = fake_weights("bp");
        w[0] = f32::NAN;
        w[1] = f32::INFINITY;
        let p = WeightProfile::from_weights(&w);
        assert!(p.total().is_finite());
        assert_eq!(p.dominant(), "branch");
    }

    #[test]
    fn every_strategy_generates_runnable_programs() {
        let weights = fake_weights("l2");
        for strategy in EVASION_STRATEGIES {
            for (program, _class) in generate_evasive_programs(strategy, 4, &weights, 2, 17) {
                let mut cpu = Cpu::new(CpuConfig::default());
                cpu.memory_mut()
                    .write_u64(crate::mds::KERNEL_SECRET_ADDR, 5);
                let res = cpu.run(&program, 400_000);
                assert!(res.halted, "{strategy}: {} did not halt", program.name());
            }
        }
    }

    #[test]
    fn weight_guided_targets_the_dominant_group() {
        let mut rng = StdRng::seed_from_u64(3);
        let cache_victim = WeightProfile::from_weights(&fake_weights("l2"));
        let branch_victim = WeightProfile::from_weights(&fake_weights("bp"));
        for _ in 0..8 {
            let pc = evasive_params(EvasionStrategy::WeightGuided, &cache_victim, 1, &mut rng);
            assert!(pc.probe_lines < 4, "cache-heavy victims get fewer lines");
            let pb = evasive_params(EvasionStrategy::WeightGuided, &branch_victim, 1, &mut rng);
            assert!(pb.train_iters >= 48, "branch-heavy victims get long runs");
        }
    }

    #[test]
    fn escalation_raises_dilution() {
        let profile = WeightProfile::from_weights(&fake_weights("dram"));
        let mean_decoys = |intensity: u32| {
            let mut rng = StdRng::seed_from_u64(9);
            (0..16)
                .map(|_| {
                    evasive_params(
                        EvasionStrategy::BenignPadding,
                        &profile,
                        intensity,
                        &mut rng,
                    )
                    .decoy_ops as u64
                })
                .sum::<u64>()
        };
        assert!(mean_decoys(4) > mean_decoys(1));
    }

    #[test]
    fn deterministic_given_seed() {
        let weights = fake_weights("dram");
        let a = generate_evasive_programs(EvasionStrategy::WeightGuided, 5, &weights, 3, 7);
        let b = generate_evasive_programs(EvasionStrategy::WeightGuided, 5, &weights, 3, 7);
        assert_eq!(a.len(), b.len());
        for ((pa, ca), (pb, cb)) in a.iter().zip(b.iter()) {
            assert_eq!(ca, cb);
            assert_eq!(pa.len(), pb.len());
        }
    }
}
