//! # evax-attacks — attack kernels and benign workloads
//!
//! The EVAX paper evaluates 19 categories of microarchitectural attacks plus
//! three classic cache attacks, all run inside gem5 (§VII, *Workload*). This
//! crate provides the analog: every attack is a *kernel builder* that emits a
//! parameterized instruction stream for `evax-sim`, performing the same
//! microarchitectural phases (flush, mistrain, transient access, transmit,
//! recover) as the real exploit, so the HPC footprint the detector sees is of
//! the same class.
//!
//! Kernels take [`KernelParams`] — iteration counts, strides, decoy density,
//! delays — which is exactly the surface the paper's fuzzing tools
//! (Transynther, TRRespass, Osiris) mutate to generate evasive variants; the
//! fuzzer analogs in `evax-core` drive these knobs.
//!
//! Benign workloads ([`benign`]) mirror the paper's SPEC CPU 2006 selection
//! in microarchitectural character: compression, A* search, matrix AI,
//! discrete-event simulation, gene-sequence DP, scheduling/sorting and
//! pointer-chasing network simulation.
//!
//! ## Example
//!
//! ```
//! use evax_attacks::{AttackClass, KernelParams, build_attack};
//! use evax_sim::{Cpu, CpuConfig};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let program = build_attack(AttackClass::SpectrePht, &KernelParams::default(), &mut rng);
//! let mut cpu = Cpu::new(CpuConfig::default());
//! let res = cpu.run(&program, 400_000);
//! assert!(res.committed_instructions > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benign;
pub mod cache_attacks;
pub mod carriers;
pub mod common;
pub mod compose;
pub mod covert;
pub mod dram_attacks;
pub mod evasion;
pub mod mds;
pub mod registry;
pub mod spectre;

pub use carriers::{
    build_carrier, build_carrier_attack, CarrierAttack, CarrierKind, CARRIER_ATTACKS, CARRIER_KINDS,
};
pub use common::KernelParams;
pub use evasion::{
    build_evasive_attack, evasive_params, generate_evasive_programs, EvasionStrategy,
    WeightProfile, EVASION_STRATEGIES,
};
pub use registry::{
    build_attack, build_benign, AttackClass, BenignKind, ATTACK_CLASSES, BENIGN_KINDS,
};
