//! Fault/assist-based transient kernels: Meltdown, LVI, Fallout, and the
//! three Medusa variants (paper §II, §VII).

use evax_sim::isa::{AluOp, Program, ProgramBuilder};
use rand::Rng;

use crate::common::{emit_decoys, emit_delay, emit_loop, layout, regs, KernelParams};

/// The kernel-space address kernels read from. The harness (or the kernel's
/// own setup phase, which stands in for the victim OS) plants the secret
/// here via `Cpu::memory_mut()`.
pub const KERNEL_SECRET_ADDR: u64 = 0xFFFF_0000_0000;

/// Meltdown: prefetch the kernel line (no fault), transiently read the
/// privileged secret, transmit through the probe array, catch the fault and
/// repeat (paper §II *Transient Attack Examples*, steps 1–6).
pub fn meltdown(p: &KernelParams, rng: &mut impl Rng) -> Program {
    let (rk, rpr, sec, paddr, tmp, filler) = (
        regs::attack(0),
        regs::attack(1),
        regs::attack(2),
        regs::attack(3),
        regs::attack(4),
        regs::attack(5),
    );
    let mut b = ProgramBuilder::new("meltdown");
    let handler = b.forward_label();
    b.on_fault(handler);
    b.li(rk, KERNEL_SECRET_ADDR);
    b.li(rpr, layout::PROBE);
    let rounds = regs::attack(7);
    let top = b.label();
    // Step 1: flush the probe lines.
    for i in 0..p.probe_lines.max(1) as i64 {
        b.flush(rpr, i * p.stride as i64);
    }
    // Step 2: prefetch to have the kernel address in L1.
    b.prefetch(rk, 0);
    // Step 4: fill the ROB with long-latency filler on another unit.
    b.li(filler, 3);
    for _ in 0..4 {
        b.alu(AluOp::Mul, filler, filler, filler);
    }
    // Steps 3+5: transient privileged load + dependent probe access.
    b.load(sec, rk, 0);
    b.alu_imm(AluOp::Shl, sec, sec, 6);
    b.alu(AluOp::Add, paddr, rpr, sec);
    b.load(tmp, paddr, 0);
    b.nop();
    b.bind(handler);
    // Step 6: time the reload of a probe line (recovery phase).
    b.rdcycle(tmp);
    b.load(tmp, rpr, 0);
    b.alu_imm(AluOp::Add, rounds, rounds, 1);
    b.li(tmp, p.iterations as u64);
    b.branch(evax_sim::isa::Cond::Lt, rounds, tmp, top);
    emit_decoys(&mut b, p.decoy_ops, rng);
    emit_delay(&mut b, p.delay_ops);
    b.halt();
    b.build()
}

/// LVI (load value injection): the attacker plants a value in the store
/// buffer; the victim's assisted load (cold TLB, 4K-aliasing) transiently
/// computes on the injected value and transmits it.
pub fn lvi(p: &KernelParams, rng: &mut impl Rng) -> Program {
    let (sa, la, rpr, inj, out, dep) = (
        regs::attack(0),
        regs::attack(1),
        regs::attack(2),
        regs::attack(3),
        regs::attack(4),
        regs::attack(5),
    );
    let mut b = ProgramBuilder::new("lvi");
    b.li(rpr, layout::PROBE);
    let rounds = regs::attack(7);
    emit_loop(&mut b, rounds, p.iterations as u64, |b| {
        // Fresh page each round keeps the victim load's TLB entry cold.
        b.alu_imm(AluOp::Shl, la, rounds, 12);
        b.alu_imm(AluOp::Add, la, la, layout::VICTIM + 0x340);
        b.li(sa, layout::SCRATCH + 0x340); // 4K-aliases the victim load
                                           // Attacker injection: poison the store buffer.
        b.li(inj, layout::DEFAULT_SECRET ^ 0x1);
        b.store(inj, sa, 0);
        // Victim: assisted load picks up the poison transiently.
        b.load(out, la, 0);
        b.alu_imm(AluOp::Shl, dep, out, 6);
        b.alu(AluOp::Add, dep, rpr, dep);
        b.load(inj, dep, 0); // transmit
    });
    emit_decoys(&mut b, p.decoy_ops, rng);
    emit_delay(&mut b, p.delay_ops);
    b.halt();
    b.build()
}

/// Fallout (store-buffer data sampling): the *victim* stores a secret; the
/// attacker's 4K-aliasing assisted load reads it out of the write
/// buffer transiently.
pub fn fallout(p: &KernelParams, rng: &mut impl Rng) -> Program {
    let (sa, la, rpr, secv, out, dep) = (
        regs::attack(0),
        regs::attack(1),
        regs::attack(2),
        regs::attack(3),
        regs::attack(4),
        regs::attack(5),
    );
    let mut b = ProgramBuilder::new("fallout");
    b.li(rpr, layout::PROBE2);
    let rounds = regs::attack(7);
    emit_loop(&mut b, rounds, p.iterations as u64, |b| {
        // Victim phase: store a secret to victim memory.
        b.li(sa, layout::VICTIM + 0x7C0);
        b.li(secv, layout::DEFAULT_SECRET ^ 0x2);
        b.store(secv, sa, 0);
        // Attacker phase: read a cold 4K-aliasing address; the store buffer
        // forwards the victim's in-flight secret.
        b.alu_imm(AluOp::Shl, la, rounds, 12);
        b.alu_imm(AluOp::Add, la, la, layout::SCRATCH + 0x10_0000 + 0x7C0);
        b.load(out, la, 0);
        b.alu_imm(AluOp::Shl, dep, out, 6);
        b.alu(AluOp::Add, dep, rpr, dep);
        b.load(out, dep, 0); // transmit
    });
    emit_decoys(&mut b, p.decoy_ops, rng);
    emit_delay(&mut b, p.delay_ops);
    b.halt();
    b.build()
}

/// Which Medusa leakage variant to build (paper §VIII-C: "cache indexing,
/// unaligned store-to-load forwarding, and shadow REP MOV").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MedusaVariant {
    /// V1: cache-indexing conflicts while sampling.
    CacheIndexing,
    /// V2: unaligned store-to-load forwarding.
    UnalignedStoreLoad,
    /// V3: shadow REP MOV — block-copy storms through the store buffer.
    ShadowRepMov,
}

/// Medusa: Meltdown-style sampling through write-combining/store-buffer
/// assists, in three variants with distinct microarchitectural mixes.
pub fn medusa(variant: MedusaVariant, p: &KernelParams, rng: &mut impl Rng) -> Program {
    let (sa, la, rpr, val, out, dep, idx) = (
        regs::attack(0),
        regs::attack(1),
        regs::attack(2),
        regs::attack(3),
        regs::attack(4),
        regs::attack(5),
        regs::attack(6),
    );
    let name = match variant {
        MedusaVariant::CacheIndexing => "medusa-cache-indexing",
        MedusaVariant::UnalignedStoreLoad => "medusa-unaligned-stl",
        MedusaVariant::ShadowRepMov => "medusa-rep-mov",
    };
    let mut b = ProgramBuilder::new(name);
    b.li(rpr, layout::PROBE);
    let rounds = regs::attack(7);
    emit_loop(&mut b, rounds, p.iterations as u64, |b| {
        match variant {
            MedusaVariant::CacheIndexing => {
                // Conflicting same-set stores precede the sampling load.
                let set_stride = 64 * 128; // L1D sets * line
                b.li(val, layout::DEFAULT_SECRET ^ 0x3);
                for w in 0..4i64 {
                    b.li(sa, layout::VICTIM + 0x3C0);
                    b.store(val, sa, w * set_stride);
                }
            }
            MedusaVariant::UnalignedStoreLoad => {
                // Straddling (unaligned) store before the aliasing load.
                b.li(sa, layout::VICTIM + 0x3C0 + 4);
                b.li(val, (layout::DEFAULT_SECRET ^ 0x3) << 32);
                b.store(val, sa, 0);
                b.li(sa, layout::VICTIM + 0x3C0);
                b.li(val, layout::DEFAULT_SECRET ^ 0x3);
                b.store(val, sa, 0);
            }
            MedusaVariant::ShadowRepMov => {
                // Block-copy storm: a run of stores through the write queue.
                b.li(val, layout::DEFAULT_SECRET ^ 0x3);
                b.li(idx, layout::VICTIM + 0x3C0);
                for w in 0..8i64 {
                    b.store(val, idx, w * 8);
                }
            }
        }
        // Sampling load on a cold 4K-aliasing page (assist + forward).
        b.alu_imm(AluOp::Shl, la, rounds, 12);
        b.alu_imm(AluOp::Add, la, la, layout::SCRATCH + 0x20_0000 + 0x3C0);
        b.load(out, la, 0);
        b.alu_imm(AluOp::And, out, out, 0xF);
        b.alu_imm(AluOp::Shl, dep, out, 6);
        b.alu(AluOp::Add, dep, rpr, dep);
        b.load(out, dep, 0); // transmit
    });
    emit_decoys(&mut b, p.decoy_ops, rng);
    emit_delay(&mut b, p.delay_ops);
    b.halt();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use evax_sim::{Cpu, CpuConfig};
    use rand::SeedableRng;

    fn run(p: &Program) -> Cpu {
        let mut cpu = Cpu::new(CpuConfig::default());
        // The harness stands in for the OS: plant a kernel secret.
        cpu.memory_mut().write_u64(KERNEL_SECRET_ADDR, 5);
        let res = cpu.run(p, 500_000);
        assert!(res.halted, "kernel {} must halt", p.name());
        cpu
    }

    #[test]
    fn meltdown_faults_and_leaks() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let prog = meltdown(&KernelParams::default(), &mut rng);
        let cpu = run(&prog);
        assert!(cpu.stats().faults_raised >= 1);
        assert!(cpu.stats().faults_deferred_with_data >= 1);
        let line = layout::PROBE + 5 * 64;
        assert!(
            cpu.dcache().contains(line) || cpu.l2().contains(line),
            "Meltdown probe footprint missing"
        );
    }

    #[test]
    fn lvi_injects_through_store_buffer() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let prog = lvi(&KernelParams::default(), &mut rng);
        let cpu = run(&prog);
        assert!(cpu.stats().lsq_false_forwards >= 1, "no LVI injection");
        let line = layout::PROBE + (layout::DEFAULT_SECRET ^ 0x1) * 64;
        assert!(
            cpu.dcache().contains(line) || cpu.l2().contains(line),
            "LVI poisoned footprint missing"
        );
    }

    #[test]
    fn fallout_samples_victim_store() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let prog = fallout(&KernelParams::default(), &mut rng);
        let cpu = run(&prog);
        assert!(
            cpu.stats().lsq_false_forwards >= 1,
            "no store-buffer sample"
        );
        let line = layout::PROBE2 + (layout::DEFAULT_SECRET ^ 0x2) * 64;
        assert!(
            cpu.dcache().contains(line) || cpu.l2().contains(line),
            "Fallout footprint missing"
        );
    }

    #[test]
    fn medusa_variants_run_and_forward() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for variant in [
            MedusaVariant::CacheIndexing,
            MedusaVariant::UnalignedStoreLoad,
            MedusaVariant::ShadowRepMov,
        ] {
            let prog = medusa(variant, &KernelParams::default(), &mut rng);
            let cpu = run(&prog);
            assert!(
                cpu.stats().lsq_false_forwards >= 1,
                "{variant:?}: no assist forwarding"
            );
        }
    }

    #[test]
    fn medusa_variants_have_distinct_store_mixes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let p = KernelParams::default();
        let v3 = medusa(MedusaVariant::ShadowRepMov, &p, &mut rng);
        let v2 = medusa(MedusaVariant::UnalignedStoreLoad, &p, &mut rng);
        let c3 = run(&v3).stats().commit_stores;
        let c2 = run(&v2).stats().commit_stores;
        assert!(c3 > c2, "rep-mov should store more: {c3} vs {c2}");
    }
}
