//! Central registry mapping the paper's 19 attack categories (plus benign
//! workload kinds) to kernel builders.

use evax_sim::isa::Program;
use rand::Rng;

use crate::benign::{self, Scale};
use crate::cache_attacks;
use crate::common::KernelParams;
use crate::covert;
use crate::dram_attacks;
use crate::mds::{self, MedusaVariant};
use crate::spectre;

/// The attack categories the paper evaluates (§VII, *Workload*).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum AttackClass {
    /// Spectre v1 (bounds-check bypass through the PHT).
    SpectrePht,
    /// Spectre v2 (branch target injection through the BTB).
    SpectreBtb,
    /// Spectre-RSB (return stack buffer).
    SpectreRsb,
    /// Spectre v4 (speculative store bypass).
    SpectreStl,
    /// Meltdown (deferred-fault kernel read).
    Meltdown,
    /// Medusa variant 1: cache indexing.
    MedusaCacheIndexing,
    /// Medusa variant 2: unaligned store-to-load forwarding.
    MedusaUnalignedStl,
    /// Medusa variant 3: shadow REP MOV.
    MedusaShadowRepMov,
    /// LVI (load value injection).
    Lvi,
    /// Fallout (store-buffer data sampling).
    Fallout,
    /// Rowhammer (DRAM disturbance).
    Rowhammer,
    /// DRAMA (row-buffer side channel).
    Drama,
    /// SMotherSpectre (port contention in a speculative shadow).
    SmotherSpectre,
    /// BranchScope (directional predictor probing).
    BranchScope,
    /// MicroScope (replay amplification).
    MicroScope,
    /// Leaky Buddies, CPU side (cross-component contention).
    LeakyBuddies,
    /// RDRAND covert channel.
    RdRand,
    /// FlushConflict (KASLR bypass).
    FlushConflict,
    /// Flush+Reload.
    FlushReload,
    /// Flush+Flush.
    FlushFlush,
    /// Prime+Probe.
    PrimeProbe,
}

/// All attack classes, in canonical order. 21 entries: the paper's "19
/// categories" plus the classic cache attacks it also runs.
pub const ATTACK_CLASSES: [AttackClass; 21] = [
    AttackClass::SpectrePht,
    AttackClass::SpectreBtb,
    AttackClass::SpectreRsb,
    AttackClass::SpectreStl,
    AttackClass::Meltdown,
    AttackClass::MedusaCacheIndexing,
    AttackClass::MedusaUnalignedStl,
    AttackClass::MedusaShadowRepMov,
    AttackClass::Lvi,
    AttackClass::Fallout,
    AttackClass::Rowhammer,
    AttackClass::Drama,
    AttackClass::SmotherSpectre,
    AttackClass::BranchScope,
    AttackClass::MicroScope,
    AttackClass::LeakyBuddies,
    AttackClass::RdRand,
    AttackClass::FlushConflict,
    AttackClass::FlushReload,
    AttackClass::FlushFlush,
    AttackClass::PrimeProbe,
];

impl AttackClass {
    /// Stable lowercase name (used in reports and dataset labels).
    pub fn name(self) -> &'static str {
        match self {
            AttackClass::SpectrePht => "spectre-pht",
            AttackClass::SpectreBtb => "spectre-btb",
            AttackClass::SpectreRsb => "spectre-rsb",
            AttackClass::SpectreStl => "spectre-stl",
            AttackClass::Meltdown => "meltdown",
            AttackClass::MedusaCacheIndexing => "medusa-cache-indexing",
            AttackClass::MedusaUnalignedStl => "medusa-unaligned-stl",
            AttackClass::MedusaShadowRepMov => "medusa-rep-mov",
            AttackClass::Lvi => "lvi",
            AttackClass::Fallout => "fallout",
            AttackClass::Rowhammer => "rowhammer",
            AttackClass::Drama => "drama",
            AttackClass::SmotherSpectre => "smotherspectre",
            AttackClass::BranchScope => "branchscope",
            AttackClass::MicroScope => "microscope",
            AttackClass::LeakyBuddies => "leaky-buddies",
            AttackClass::RdRand => "rdrand-covert",
            AttackClass::FlushConflict => "flush-conflict",
            AttackClass::FlushReload => "flush-reload",
            AttackClass::FlushFlush => "flush-flush",
            AttackClass::PrimeProbe => "prime-probe",
        }
    }

    /// Index into the conditional-GAN label space (benign is class 0; attack
    /// classes are 1-based).
    pub fn label(self) -> usize {
        1 + ATTACK_CLASSES
            .iter()
            .position(|&c| c == self)
            .expect("class in table")
    }

    /// The attacks the paper groups as "transient execution" (leakage via a
    /// squashed window).
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            AttackClass::SpectrePht
                | AttackClass::SpectreBtb
                | AttackClass::SpectreRsb
                | AttackClass::SpectreStl
                | AttackClass::Meltdown
                | AttackClass::MedusaCacheIndexing
                | AttackClass::MedusaUnalignedStl
                | AttackClass::MedusaShadowRepMov
                | AttackClass::Lvi
                | AttackClass::Fallout
                | AttackClass::MicroScope
                | AttackClass::SmotherSpectre
        )
    }
}

impl std::fmt::Display for AttackClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds the kernel for an attack class.
pub fn build_attack<R: Rng>(class: AttackClass, p: &KernelParams, rng: &mut R) -> Program {
    match class {
        AttackClass::SpectrePht => spectre::spectre_pht(p, rng),
        AttackClass::SpectreBtb => spectre::spectre_btb(p, rng),
        AttackClass::SpectreRsb => spectre::spectre_rsb(p, rng),
        AttackClass::SpectreStl => spectre::spectre_stl(p, rng),
        AttackClass::Meltdown => mds::meltdown(p, rng),
        AttackClass::MedusaCacheIndexing => mds::medusa(MedusaVariant::CacheIndexing, p, rng),
        AttackClass::MedusaUnalignedStl => mds::medusa(MedusaVariant::UnalignedStoreLoad, p, rng),
        AttackClass::MedusaShadowRepMov => mds::medusa(MedusaVariant::ShadowRepMov, p, rng),
        AttackClass::Lvi => mds::lvi(p, rng),
        AttackClass::Fallout => mds::fallout(p, rng),
        AttackClass::Rowhammer => dram_attacks::rowhammer(p, rng),
        AttackClass::Drama => dram_attacks::drama(p, rng),
        AttackClass::SmotherSpectre => covert::smotherspectre(p, rng),
        AttackClass::BranchScope => covert::branchscope(p, rng),
        AttackClass::MicroScope => covert::microscope(p, rng),
        AttackClass::LeakyBuddies => covert::leaky_buddies(p, rng),
        AttackClass::RdRand => covert::rdrand_covert(p, rng),
        AttackClass::FlushConflict => cache_attacks::flush_conflict(p, rng),
        AttackClass::FlushReload => cache_attacks::flush_reload(p, rng),
        AttackClass::FlushFlush => cache_attacks::flush_flush(p, rng),
        AttackClass::PrimeProbe => cache_attacks::prime_probe(p, rng),
    }
}

/// Benign workload kinds (SPEC CPU 2006 analogs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum BenignKind {
    /// bzip2-like compression.
    Compression,
    /// astar-like grid search.
    Astar,
    /// Dense matrix AI kernel.
    MatrixAi,
    /// omnetpp-like discrete-event simulation.
    DiscreteEvent,
    /// hmmer-like gene-sequence DP.
    GeneDp,
    /// Scheduling/sorting passes.
    Scheduler,
    /// Pointer-chasing network simulation.
    NetworkSim,
    /// Syscall-heavy interactive bursts.
    SyscallHeavy,
    /// Profiler: benign heavy user of timing reads.
    Profiler,
    /// Persistent-memory flusher: benign heavy user of `clflush`.
    PmemFlusher,
}

/// All benign kinds, in canonical order.
pub const BENIGN_KINDS: [BenignKind; 10] = [
    BenignKind::Compression,
    BenignKind::Astar,
    BenignKind::MatrixAi,
    BenignKind::DiscreteEvent,
    BenignKind::GeneDp,
    BenignKind::Scheduler,
    BenignKind::NetworkSim,
    BenignKind::SyscallHeavy,
    BenignKind::Profiler,
    BenignKind::PmemFlusher,
];

impl BenignKind {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            BenignKind::Compression => "compression",
            BenignKind::Astar => "astar",
            BenignKind::MatrixAi => "matrix-ai",
            BenignKind::DiscreteEvent => "discrete-event",
            BenignKind::GeneDp => "gene-dp",
            BenignKind::Scheduler => "scheduler",
            BenignKind::NetworkSim => "network-sim",
            BenignKind::SyscallHeavy => "syscall-heavy",
            BenignKind::Profiler => "profiler",
            BenignKind::PmemFlusher => "pmem-flusher",
        }
    }
}

impl std::fmt::Display for BenignKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds a benign workload of roughly `scale` dynamic instructions.
pub fn build_benign<R: Rng>(kind: BenignKind, scale: Scale, rng: &mut R) -> Program {
    match kind {
        BenignKind::Compression => benign::compression(scale, rng),
        BenignKind::Astar => benign::astar(scale, rng),
        BenignKind::MatrixAi => benign::matrix_ai(scale, rng),
        BenignKind::DiscreteEvent => benign::discrete_event(scale, rng),
        BenignKind::GeneDp => benign::gene_dp(scale, rng),
        BenignKind::Scheduler => benign::scheduler(scale, rng),
        BenignKind::NetworkSim => benign::network_sim(scale, rng),
        BenignKind::SyscallHeavy => benign::syscall_heavy(scale, rng),
        BenignKind::Profiler => benign::profiler(scale, rng),
        BenignKind::PmemFlusher => benign::pmem_flusher(scale, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evax_sim::{Cpu, CpuConfig};
    use rand::SeedableRng;

    #[test]
    fn twenty_one_attack_classes() {
        assert_eq!(ATTACK_CLASSES.len(), 21);
        let mut names: Vec<_> = ATTACK_CLASSES.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 21, "names must be unique");
    }

    #[test]
    fn labels_are_one_based_and_dense() {
        for (i, c) in ATTACK_CLASSES.iter().enumerate() {
            assert_eq!(c.label(), i + 1);
        }
    }

    #[test]
    fn every_attack_class_builds_and_halts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let p = KernelParams {
            iterations: 4,
            ..Default::default()
        };
        for class in ATTACK_CLASSES {
            let prog = build_attack(class, &p, &mut rng);
            let mut cpu = Cpu::new(CpuConfig::default());
            let res = cpu.run(&prog, 300_000);
            assert!(res.halted, "{class} did not halt");
        }
    }

    #[test]
    fn every_benign_kind_builds_and_halts() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for kind in BENIGN_KINDS {
            let prog = build_benign(kind, Scale(3_000), &mut rng);
            let mut cpu = Cpu::new(CpuConfig::default());
            let res = cpu.run(&prog, 300_000);
            assert!(res.halted, "{kind} did not halt");
        }
    }

    #[test]
    fn transient_grouping() {
        assert!(AttackClass::SpectrePht.is_transient());
        assert!(AttackClass::Lvi.is_transient());
        assert!(!AttackClass::FlushReload.is_transient());
        assert!(!AttackClass::Rowhammer.is_transient());
    }
}
