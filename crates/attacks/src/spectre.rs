//! Spectre-family kernels: PHT (v1), BTB (v2), RSB, and STL (v4 /
//! speculative store bypass).
//!
//! Each kernel performs the canonical phases (paper §II): flush the guard,
//! mistrain the predicting structure, transiently access out-of-bounds data,
//! and transmit it through a cache probe line — so the HPC footprint carries
//! the speculative-squash + value-dependent-cache signature the detector
//! learns.

use evax_sim::isa::{AluOp, Cond, Program, ProgramBuilder};
use rand::Rng;

use crate::common::{emit_decoys, emit_delay, layout, regs, KernelParams};

/// Spectre-PHT (bounds-check bypass): mistrains the conditional predictor,
/// then leaks `array1[64]` through `PROBE + secret * stride`.
pub fn spectre_pht(p: &KernelParams, rng: &mut impl Rng) -> Program {
    let (ra1, rsz, rpr, idx, tmp, sec, paddr, it) = (
        regs::attack(0),
        regs::attack(1),
        regs::attack(2),
        regs::attack(3),
        regs::attack(4),
        regs::attack(5),
        regs::attack(6),
        regs::attack(7),
    );
    let mut b = ProgramBuilder::new("spectre-pht");
    b.li(ra1, layout::ARRAY1);
    b.li(rpr, layout::PROBE);
    // Victim setup: bounds variable and the "secret" beyond them.
    b.li(tmp, 16);
    b.li(idx, layout::SIZE_ADDR);
    b.store(tmp, idx, 0);
    b.li(tmp, layout::DEFAULT_SECRET ^ (p.seed & 0x7));
    b.store(tmp, ra1, 64);
    // Warm the secret's line so the transient read is fast.
    b.load(tmp, ra1, 64);
    let rounds = regs::attack(8);
    crate::common::emit_loop(&mut b, rounds, p.iterations as u64, |b| {
        // ---- mistrain: in-bounds accesses teach fall-through ----
        crate::common::emit_loop(b, it, p.train_iters as u64, |b| {
            b.li(idx, 1);
            b.li(tmp, layout::SIZE_ADDR);
            b.load(rsz, tmp, 0);
            let skip = b.forward_label();
            b.branch(Cond::Ge, idx, rsz, skip);
            b.load(sec, ra1, 0);
            b.bind(skip);
        });
        // ---- attack round ----
        b.li(tmp, layout::SIZE_ADDR);
        b.flush(tmp, 0); // the bounds check must resolve late
        b.load(rsz, tmp, 0);
        b.li(idx, 64); // out of bounds
        let skip = b.forward_label();
        b.branch(Cond::Ge, idx, rsz, skip);
        b.alu(AluOp::Add, paddr, ra1, idx);
        b.load(sec, paddr, 0);
        b.alu_imm(AluOp::Mul, sec, sec, 0); // keep register clean across rounds
        b.load(sec, paddr, 0);
        b.alu_imm(AluOp::Shl, sec, sec, 6);
        b.alu(AluOp::Add, paddr, rpr, sec);
        b.load(tmp, paddr, 0); // transmit
        b.bind(skip);
        // ---- recover: reload probe lines (Flush+Reload receiver) ----
        b.rdcycle(regs::decoy(4));
        b.load(tmp, rpr, 0);
    });
    emit_decoys(&mut b, p.decoy_ops, rng);
    emit_delay(&mut b, p.delay_ops);
    b.halt();
    b.build()
}

/// Spectre-BTB (branch target injection): trains an indirect jump's BTB
/// entry toward a gadget, then transiently executes the gadget with a
/// secret-selecting index while architecturally jumping elsewhere.
pub fn spectre_btb(p: &KernelParams, rng: &mut impl Rng) -> Program {
    let (ra1, rpr, idx, sec, tgt, tmp, it) = (
        regs::attack(0),
        regs::attack(1),
        regs::attack(2),
        regs::attack(3),
        regs::attack(4),
        regs::attack(5),
        regs::attack(6),
    );
    let rounds = regs::attack(7);
    let gpc = regs::attack(8); // gadget address
    let bpc = regs::attack(9); // benign-target address
    let ret_reg = regs::attack(10); // indirect return address
    let one = regs::attack(11);
    let mut b = ProgramBuilder::new("spectre-btb");
    b.li(ra1, layout::ARRAY1);
    b.li(rpr, layout::PROBE);
    b.li(one, 1);
    b.li(tmp, layout::DEFAULT_SECRET ^ (p.seed & 0x7));
    b.store(tmp, ra1, 64);
    b.load(tmp, ra1, 64); // warm
    let after = b.forward_label();
    b.jmp(after);
    // ---- gadget: probe-touch selected by idx, return indirectly ----
    let gadget_idx = b.here();
    b.alu(AluOp::Add, tmp, ra1, idx);
    b.load(sec, tmp, 0);
    b.alu_imm(AluOp::Shl, sec, sec, 6);
    b.alu(AluOp::Add, tmp, rpr, sec);
    b.load(tmp, tmp, 0);
    b.jmp_ind(ret_reg);
    // ---- benign target ----
    let benign_idx = b.here();
    b.alu_imm(AluOp::Add, regs::decoy(5), regs::decoy(5), 1);
    b.jmp_ind(ret_reg);
    b.bind(after);
    b.li(gpc, gadget_idx as u64);
    b.li(bpc, benign_idx as u64);
    // The BTB is tagged by the jump's own pc, so training and attack MUST go
    // through the same static `jmp_ind` — exactly how real branch-target
    // injection works (the attacker executes the victim's jump from a
    // congruent context).
    crate::common::emit_loop(&mut b, rounds, p.iterations as u64, |b| {
        crate::common::emit_loop(b, it, p.train_iters.max(1) as u64 + 1, |b| {
            let attack = b.forward_label();
            let join = b.forward_label();
            let limit = regs::decoy(7);
            b.li(limit, p.train_iters.max(1) as u64);
            b.branch(Cond::Ge, it, limit, attack);
            // train iteration: jump to the gadget with a harmless index
            b.li(idx, 0);
            b.alu(AluOp::Add, tgt, gpc, evax_sim::isa::Reg::ZERO);
            b.jmp(join);
            b.bind(attack);
            // attack iteration: benign target computed slowly, secret index —
            // the BTB still predicts the gadget
            b.li(idx, 64);
            b.alu(AluOp::Add, tgt, bpc, evax_sim::isa::Reg::ZERO);
            for _ in 0..4 {
                b.alu(AluOp::Mul, tgt, tgt, one);
            }
            b.bind(join);
            let cont = b.here() + 2;
            b.li(ret_reg, cont as u64);
            b.jmp_ind(tgt);
        });
    });
    emit_decoys(&mut b, p.decoy_ops, rng);
    emit_delay(&mut b, p.delay_ops);
    b.halt();
    b.build()
}

/// Spectre-RSB: overflows the 16-entry RAS with a 17-deep call chain; the
/// outermost return's prediction is then stale/empty and transiently
/// executes the gadget placed on its fall-through path.
pub fn spectre_rsb(p: &KernelParams, rng: &mut impl Rng) -> Program {
    let (ra1, rpr, sec, tmp) = (
        regs::attack(0),
        regs::attack(1),
        regs::attack(2),
        regs::attack(3),
    );
    let depth = 18usize; // RAS holds 16
    let mut b = ProgramBuilder::new("spectre-rsb");
    b.li(ra1, layout::ARRAY1);
    b.li(rpr, layout::PROBE);
    b.li(tmp, layout::DEFAULT_SECRET ^ (p.seed & 0x7));
    b.store(tmp, ra1, 64);
    b.load(tmp, ra1, 64); // warm
    let fns: Vec<_> = (0..depth).map(|_| b.forward_label()).collect();
    let done = b.forward_label();
    let rounds = regs::attack(7);
    crate::common::emit_loop(&mut b, rounds, p.iterations as u64, |b| {
        b.call(fns[0]);
    });
    b.jmp(done);
    // Chain: f_i calls f_{i+1} then returns; the last one just returns.
    // A flushed (slow) load before each `ret` keeps the return from
    // committing immediately, holding the transient window open while the
    // wrong-path gadget executes.
    let slow = regs::attack(5);
    let slow_addr = regs::attack(6);
    for (i, f) in fns.iter().enumerate() {
        b.bind(*f);
        if i + 1 < depth {
            b.call(fns[i + 1]);
            b.li(slow_addr, layout::SCRATCH + 0x8_0000 + (i as u64) * 64);
            b.flush(slow_addr, 0);
            b.load(slow, slow_addr, 0);
            b.ret();
            // Fall-through gadget of this `ret`: when the RAS underflows the
            // prediction is pc+1, transiently executing this block.
            b.load(sec, ra1, 64);
            b.alu_imm(AluOp::Shl, sec, sec, 6);
            b.alu(AluOp::Add, tmp, rpr, sec);
            b.load(tmp, tmp, 0);
            b.nop();
        } else {
            b.ret();
        }
    }
    b.bind(done);
    emit_decoys(&mut b, p.decoy_ops, rng);
    emit_delay(&mut b, p.delay_ops);
    b.halt();
    b.build()
}

/// Spectre-STL (v4, speculative store bypass): a load issues before an
/// older store to the same address whose address resolves slowly, reading
/// the *stale* secret and transmitting it before the order violation
/// squashes.
pub fn spectre_stl(p: &KernelParams, rng: &mut impl Rng) -> Program {
    let (rx, rpr, slow, val, y, tmp, one) = (
        regs::attack(0),
        regs::attack(1),
        regs::attack(2),
        regs::attack(3),
        regs::attack(4),
        regs::attack(5),
        regs::attack(6),
    );
    let x = layout::VICTIM + 0x100;
    let mut b = ProgramBuilder::new("spectre-stl");
    b.li(rpr, layout::PROBE);
    b.li(rx, x);
    b.li(one, 1);
    // Plant the stale secret architecturally.
    b.li(val, layout::DEFAULT_SECRET ^ (p.seed & 0x7));
    b.store(val, rx, 0);
    b.fence();
    let rounds = regs::attack(7);
    crate::common::emit_loop(&mut b, rounds, p.iterations as u64, |b| {
        // Slow-compute the store address.
        b.li(slow, x);
        for _ in 0..4 {
            b.alu(AluOp::Mul, slow, slow, one);
        }
        b.li(val, 0);
        b.store(val, slow, 0); // scrubs the secret — architecturally
        b.load(y, rx, 0); // bypasses the store, reads stale secret
        b.alu_imm(AluOp::Shl, y, y, 6);
        b.alu(AluOp::Add, tmp, rpr, y);
        b.load(tmp, tmp, 0); // transmit before the violation squash
                             // Re-plant for the next round.
        b.li(val, layout::DEFAULT_SECRET ^ (p.seed & 0x7));
        b.store(val, rx, 0);
        b.fence();
    });
    emit_decoys(&mut b, p.decoy_ops, rng);
    emit_delay(&mut b, p.delay_ops);
    b.halt();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use evax_sim::{Cpu, CpuConfig};
    use rand::SeedableRng;

    fn run(p: &Program) -> Cpu {
        let mut cpu = Cpu::new(CpuConfig::default());
        let res = cpu.run(p, 500_000);
        assert!(res.halted, "kernel {} must halt", p.name());
        cpu
    }

    fn probe_line(seed: u64) -> u64 {
        layout::PROBE + (layout::DEFAULT_SECRET ^ (seed & 0x7)) * 64
    }

    #[test]
    fn pht_leaks_secret_line() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let p = spectre_pht(&KernelParams::default(), &mut rng);
        let cpu = run(&p);
        assert!(
            cpu.dcache().contains(probe_line(0)) || cpu.l2().contains(probe_line(0)),
            "missing transient footprint"
        );
        assert!(cpu.stats().lsq_squashed_loads > 0);
        assert!(cpu.stats().bp_cond_incorrect > 0);
    }

    #[test]
    fn btb_mistraining_mispredicts_indirect() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let p = spectre_btb(&KernelParams::default(), &mut rng);
        let cpu = run(&p);
        assert!(cpu.stats().bp_btb_lookups > 0);
        assert!(
            cpu.stats().bp_indirect_mispredicted > 0,
            "BTB injection requires indirect mispredicts"
        );
        let target = probe_line(0); // KernelParams::default().seed == 0
        assert!(
            cpu.dcache().contains(target) || cpu.l2().contains(target),
            "gadget footprint missing"
        );
    }

    #[test]
    fn rsb_overflow_mispredicts_returns() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let p = spectre_rsb(&KernelParams::default(), &mut rng);
        let cpu = run(&p);
        assert!(cpu.stats().bp_used_ras > 0);
        assert!(
            cpu.stats().bp_ras_incorrect > 0,
            "RAS must mispredict on overflow"
        );
        let target = probe_line(0);
        assert!(
            cpu.dcache().contains(target) || cpu.l2().contains(target),
            "RSB gadget footprint missing"
        );
    }

    #[test]
    fn stl_bypass_leaks_and_violates() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let p = spectre_stl(&KernelParams::default(), &mut rng);
        let cpu = run(&p);
        assert!(cpu.stats().iew_mem_order_violations > 0, "no store bypass");
        let target = probe_line(0);
        assert!(
            cpu.dcache().contains(target) || cpu.l2().contains(target),
            "STL stale-value footprint missing"
        );
    }

    #[test]
    fn kernels_respect_decoy_and_delay_params() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let p = KernelParams {
            decoy_ops: 16,
            delay_ops: 16,
            ..Default::default()
        };
        let prog = spectre_pht(&p, &mut rng);
        let plain = spectre_pht(&KernelParams::default(), &mut rng);
        assert!(prog.len() > plain.len());
    }
}
