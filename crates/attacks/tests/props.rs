//! Property tests over the attack-kernel space: every class must build a
//! halting program under *any* fuzzable parameterization — the guarantee the
//! fuzzing tools in `evax-core` rely on.

use evax_attacks::{build_attack, KernelParams, ATTACK_CLASSES};
use evax_sim::{Cpu, CpuConfig};
use proptest::prelude::*;
use rand::SeedableRng;

fn params_strategy() -> impl Strategy<Value = KernelParams> {
    (
        1u32..48,
        1u32..48,
        1u64..6,
        0u32..64,
        0u32..128,
        1u32..20,
        any::<u64>(),
    )
        .prop_map(
            |(iterations, train_iters, stride, decoy, delay, probes, seed)| KernelParams {
                iterations,
                train_iters,
                stride: stride * 64,
                decoy_ops: decoy,
                delay_ops: delay,
                probe_lines: probes,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_class_halts_under_arbitrary_params(
        p in params_strategy(), class_idx in 0usize..21, rng_seed in 0u64..1000
    ) {
        let class = ATTACK_CLASSES[class_idx];
        let mut rng = rand::rngs::StdRng::seed_from_u64(rng_seed);
        let program = build_attack(class, &p, &mut rng);
        prop_assert!(!program.is_empty());
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.memory_mut().write_u64(evax_attacks::mds::KERNEL_SECRET_ADDR, 5);
        let res = cpu.run(&program, 400_000);
        prop_assert!(
            res.halted || res.committed_instructions >= 400_000,
            "{class} wedged: {} instrs in {} cycles",
            res.committed_instructions,
            res.cycles
        );
    }

    #[test]
    fn kernels_are_deterministic_given_seeds(
        p in params_strategy(), class_idx in 0usize..21, rng_seed in 0u64..1000
    ) {
        let class = ATTACK_CLASSES[class_idx];
        let build = || {
            let mut rng = rand::rngs::StdRng::seed_from_u64(rng_seed);
            build_attack(class, &p, &mut rng)
        };
        let first = build();
        let second = build();
        prop_assert_eq!(first.instructions(), second.instructions());
    }

    #[test]
    fn mutation_stays_in_valid_space(seed in 0u64..5000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut p = KernelParams::default();
        for _ in 0..10 {
            p = p.mutate(&mut rng);
            prop_assert!(p.iterations > 0);
            prop_assert!(p.stride >= 64 && p.stride % 64 == 0);
            prop_assert!(p.probe_lines > 0);
        }
    }
}

#[test]
fn class_labels_cover_one_through_twenty_one() {
    let mut labels: Vec<usize> = ATTACK_CLASSES.iter().map(|c| c.label()).collect();
    labels.sort_unstable();
    assert_eq!(labels, (1..=21).collect::<Vec<_>>());
}
