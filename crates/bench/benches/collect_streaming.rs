//! Streaming vs. materializing collection throughput.
//!
//! The streaming path pays one extra simulation pass (fit, then re-simulate
//! to emit) to keep working memory at O(dim) per worker; the materializing
//! baseline simulates once but holds every raw `f64` window. This bench
//! puts a number on the time side of that trade at a small corpus — the
//! memory side is the `collect_rss` binary (`BENCH_stream.json`).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use evax_bench::stream_bench::{collect_materialized, collect_streaming, corpus};
use evax_core::par::Parallelism;

fn bench_streaming(c: &mut Criterion) {
    let programs = corpus(1); // 21 attacks + 10 benigns
    let mut group = c.benchmark_group("collect_streaming");
    group.throughput(Throughput::Elements(programs.len() as u64));
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(20));
    group.bench_function("streaming/serial", |b| {
        b.iter(|| {
            black_box(collect_streaming(
                black_box(&programs),
                Parallelism::serial(),
            ))
        })
    });
    group.bench_function("materialize/serial", |b| {
        b.iter(|| {
            black_box(collect_materialized(
                black_box(&programs),
                Parallelism::serial(),
            ))
        })
    });
    for threads in [2usize, 4] {
        group.bench_function(format!("streaming/threads/{threads}"), |b| {
            b.iter(|| {
                black_box(collect_streaming(
                    black_box(&programs),
                    Parallelism::Fixed(threads),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
