//! Dataset-collection throughput: serial vs parallel `collect_dataset`,
//! plus the threaded matmul kernels the training loop leans on.
//!
//! On a multi-core machine the `threads/N` rows should scale with N; on a
//! single-core box they mostly document the substrate's overhead. Either
//! way every configuration produces bit-identical datasets (asserted by
//! `evax-core`'s equivalence tests), so these numbers compare like with
//! like.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use evax_core::collect::{collect_dataset, CollectConfig};
use evax_core::par::Parallelism;
use evax_nn::Matrix;

fn bench_cfg(parallelism: Parallelism) -> CollectConfig {
    CollectConfig {
        interval: 200,
        runs_per_attack: 1,
        runs_per_benign: 1,
        max_instrs: 3_000,
        benign_scale: 3_000,
        parallelism,
        ..Default::default()
    }
}

fn bench_collect(c: &mut Criterion) {
    let mut group = c.benchmark_group("collect");
    // One full tiny collection sweep = 21 attack + 10 benign programs.
    group.throughput(Throughput::Elements(31));
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(20));
    group.bench_function("serial", |b| {
        let cfg = bench_cfg(Parallelism::serial());
        b.iter(|| black_box(collect_dataset(black_box(&cfg), 7)))
    });
    for threads in [2usize, 4] {
        group.bench_function(format!("threads/{threads}"), |b| {
            let cfg = bench_cfg(Parallelism::Fixed(threads));
            b.iter(|| black_box(collect_dataset(black_box(&cfg), 7)))
        });
    }
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let n = 192;
    let data: Vec<f32> = (0..n * n).map(|i| (i as f32 * 0.61).sin()).collect();
    let a = Matrix::from_vec(n, n, data.clone());
    let b_mat = Matrix::from_vec(n, n, data);

    let mut group = c.benchmark_group("matmul_192");
    group.throughput(Throughput::Elements((n * n * n) as u64));
    group.bench_function("serial", |bench| {
        bench.iter(|| black_box(a.matmul_threaded(black_box(&b_mat), 1)))
    });
    for threads in [2usize, 4] {
        group.bench_function(format!("threads/{threads}"), |bench| {
            bench.iter(|| black_box(a.matmul_threaded(black_box(&b_mat), threads)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_collect, bench_matmul);
criterion_main!(benches);
