//! Detector classification latency: the float (simulation) path and the
//! quantized serial-adder hardware model. The paper requires classification
//! inside the transient window ("a result in a few hundred cycles in the
//! worst case" on the serial adder).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use evax_nn::{HwPerceptron, QuantizedWeights};
use rand::{Rng, SeedableRng};

fn bench_detector(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let dim = 145;
    let weights: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let perceptron = HwPerceptron::from_parts(weights, 0.1);
    let features: Vec<f32> = (0..dim).map(|_| rng.gen_range(0.0f32..1.0)).collect();
    let q: QuantizedWeights = perceptron.quantize();
    let bits: Vec<bool> = features.iter().map(|&v| v > 0.25).collect();

    let mut group = c.benchmark_group("detector");
    group.bench_function("float_score_145", |b| {
        b.iter(|| black_box(perceptron.score(black_box(&features))))
    });
    group.bench_function("quantized_serial_adder_145", |b| {
        b.iter(|| black_box(q.classify_bits(black_box(&bits))))
    });
    group.finish();

    // Report the modeled hardware latency once, alongside the wall time.
    let d = q.classify_bits(&bits);
    eprintln!(
        "modeled HW latency: {} serial-adder cycles (<= 145)",
        d.cycles
    );
}

criterion_group!(benches, bench_detector);
criterion_main!(benches);
