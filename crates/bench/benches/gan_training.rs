//! AM-GAN training-step cost at the paper's dimensions (145 features,
//! 22 classes, deep generator vs. perceptron discriminator).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use evax_nn::{Activation, Adam, CondGan, GanConfig, Matrix, Network};
use rand::{Rng, SeedableRng};

fn bench_gan(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let cfg = GanConfig {
        noise_dim: 145,
        n_classes: 22,
        feature_dim: 133,
        mismatch_prob: 0.25,
    };
    let generator = Network::mlp(
        cfg.noise_dim + cfg.n_classes,
        128,
        3,
        cfg.feature_dim,
        Activation::LeakyRelu,
        Activation::Sigmoid,
        &mut rng,
    );
    let discriminator = Network::mlp(
        cfg.feature_dim + cfg.n_classes,
        0,
        0,
        1,
        Activation::Identity,
        Activation::Sigmoid,
        &mut rng,
    );
    let mut gan = CondGan::new(cfg, generator, discriminator);
    let batch = 64usize;
    let rows: Vec<Vec<f32>> = (0..batch)
        .map(|_| (0..133).map(|_| rng.gen_range(0.0f32..1.0)).collect())
        .collect();
    let x = Matrix::from_rows(&rows);
    let labels: Vec<usize> = (0..batch).map(|i| i % 22).collect();
    let mut g_opt = Adam::with_betas(2e-3, 0.5, 0.999);
    let mut d_opt = Adam::with_betas(2e-3, 0.5, 0.999);

    let mut group = c.benchmark_group("gan");
    group.sample_size(30);
    group.bench_function("am_gan_train_step_b64", |b| {
        b.iter(|| {
            black_box(gan.train_step(black_box(&x), &labels, &mut rng, &mut g_opt, &mut d_opt))
        })
    });
    group.bench_function("generate_64_samples", |b| {
        b.iter(|| black_box(gan.generate(black_box(&labels), &mut rng)))
    });
    group.finish();
}

criterion_group!(benches, bench_gan);
criterion_main!(benches);
