//! Microarchitectural component microbenchmarks: cache access, branch
//! prediction, DRAM access with the Rowhammer module.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use evax_dram::{AccessKind, Dram, DramConfig};
use evax_sim::branch::{Btb, Ras, TournamentPredictor};
use evax_sim::cache::Cache;
use evax_sim::config::CacheConfig;

fn bench_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("microarch");

    let mut cache = Cache::new(CacheConfig {
        size: 64 * 1024,
        line: 64,
        ways: 8,
        hit_latency: 2,
        mshrs: 20,
        write_buffers: 8,
    });
    for i in 0..512u64 {
        cache.fill(i * 64, false, false);
    }
    let mut addr = 0u64;
    group.bench_function("l1d_access", |b| {
        b.iter(|| {
            addr = (addr + 64) & 0xFFFF;
            black_box(cache.access(black_box(addr), false, 0))
        })
    });

    let mut bp = TournamentPredictor::new();
    let mut pc = 0usize;
    group.bench_function("tournament_predict_update", |b| {
        b.iter(|| {
            pc = (pc + 13) & 0xFFF;
            let p = bp.predict(pc);
            bp.update(pc, p, pc.is_multiple_of(3));
            black_box(p)
        })
    });

    let mut btb = Btb::new(4096);
    group.bench_function("btb_lookup_update", |b| {
        b.iter(|| {
            pc = (pc + 7) & 0xFFFF;
            btb.update(pc, pc + 1);
            black_box(btb.lookup(pc))
        })
    });

    let mut ras = Ras::new(16);
    group.bench_function("ras_push_pop", |b| {
        b.iter(|| {
            ras.push(black_box(42));
            black_box(ras.pop())
        })
    });

    let mut dram = Dram::new(DramConfig::default());
    let mut t = 0u64;
    group.bench_function("dram_access_with_rowhammer_tracking", |b| {
        b.iter(|| {
            t += 100;
            addr = (addr + 8192) & 0xF_FFFF;
            black_box(dram.access(black_box(addr), AccessKind::Read, t))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_components);
criterion_main!(benches);
