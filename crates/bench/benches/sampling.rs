//! HPC sample-extraction throughput: flattening all counters into the
//! feature vector (done every 100 instructions at the finest granularity).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use evax_core::dataset::Normalizer;
use evax_sim::{hpc_vector, Cpu, CpuConfig, HPC_BASE_DIM};

fn bench_sampling(c: &mut Criterion) {
    let cpu = Cpu::new(CpuConfig::default());
    let mut group = c.benchmark_group("sampling");
    group.bench_function("hpc_vector_133", |b| {
        b.iter(|| black_box(hpc_vector(black_box(&cpu))))
    });

    let mut norm = Normalizer::new(HPC_BASE_DIM);
    let raw = hpc_vector(&cpu);
    norm.observe(&raw);
    group.bench_function("normalize_133", |b| {
        b.iter(|| black_box(norm.normalize(black_box(&raw))))
    });
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
