//! Simulator throughput: committed instructions per second for a benign
//! workload and a transient attack kernel (attacks squash heavily, so they
//! are slower per committed instruction), plus the full registry mix under
//! both scheduling cores (`event_driven` vs the reference `scan`) — the pair
//! that quantifies the event-driven hot path's win.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use evax_attacks::benign::Scale;
use evax_attacks::{
    build_attack, build_benign, AttackClass, BenignKind, KernelParams, ATTACK_CLASSES, BENIGN_KINDS,
};
use evax_sim::isa::Program;
use evax_sim::{Cpu, CpuConfig, SchedulerKind};
use rand::SeedableRng;

fn bench_sim(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let benign = build_benign(BenignKind::Compression, Scale(20_000), &mut rng);
    let attack = build_attack(AttackClass::SpectrePht, &KernelParams::default(), &mut rng);

    let mut group = c.benchmark_group("sim");
    group.throughput(Throughput::Elements(20_000));
    group.sample_size(20);
    group.bench_function("benign_20k_instrs", |b| {
        b.iter(|| {
            let mut cpu = Cpu::new(CpuConfig::default());
            black_box(cpu.run(black_box(&benign), 20_000))
        })
    });
    group.bench_function("spectre_kernel", |b| {
        b.iter(|| {
            let mut cpu = Cpu::new(CpuConfig::default());
            black_box(cpu.run(black_box(&attack), 20_000))
        })
    });
    group.finish();
}

/// Runs one pass over the mix under the given scheduler; returns total
/// committed instructions so criterion can't dead-code it.
fn run_mix(mix: &[Program], scheduler: SchedulerKind, max_instrs: u64) -> u64 {
    let cfg = CpuConfig {
        scheduler,
        ..CpuConfig::default()
    };
    let mut committed = 0u64;
    for program in mix {
        let mut cpu = Cpu::new(cfg.clone());
        cpu.memory_mut()
            .write_u64(evax_attacks::mds::KERNEL_SECRET_ADDR, 5);
        committed += cpu.run(program, max_instrs).committed_instructions;
    }
    committed
}

/// Event-driven vs scan scheduling on the registry mix (every attack class +
/// every benign kind). Both are bit-identical (golden-equivalence tests);
/// the ratio of these two benchmarks is the scheduler speedup.
fn bench_schedulers(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let params = KernelParams {
        iterations: 24,
        ..Default::default()
    };
    let mut mix: Vec<Program> = ATTACK_CLASSES
        .iter()
        .map(|&cl| build_attack(cl, &params, &mut rng))
        .collect();
    mix.extend(
        BENIGN_KINDS
            .iter()
            .map(|&k| build_benign(k, Scale(3_000), &mut rng)),
    );
    let max_instrs = 30_000u64;
    let total = run_mix(&mix, SchedulerKind::EventDriven, max_instrs);
    assert_eq!(total, run_mix(&mix, SchedulerKind::Scan, max_instrs));

    let mut group = c.benchmark_group("registry_mix");
    group.throughput(Throughput::Elements(total));
    group.sample_size(10);
    group.bench_function("event_driven", |b| {
        b.iter(|| {
            black_box(run_mix(
                black_box(&mix),
                SchedulerKind::EventDriven,
                max_instrs,
            ))
        })
    });
    group.bench_function("scan", |b| {
        b.iter(|| black_box(run_mix(black_box(&mix), SchedulerKind::Scan, max_instrs)))
    });
    group.finish();
}

criterion_group!(benches, bench_sim, bench_schedulers);
criterion_main!(benches);
