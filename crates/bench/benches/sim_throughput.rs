//! Simulator throughput: committed instructions per second for a benign
//! workload and a transient attack kernel (attacks squash heavily, so they
//! are slower per committed instruction).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use evax_attacks::benign::Scale;
use evax_attacks::{build_attack, build_benign, AttackClass, BenignKind, KernelParams};
use evax_sim::{Cpu, CpuConfig};
use rand::SeedableRng;

fn bench_sim(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let benign = build_benign(BenignKind::Compression, Scale(20_000), &mut rng);
    let attack = build_attack(AttackClass::SpectrePht, &KernelParams::default(), &mut rng);

    let mut group = c.benchmark_group("sim");
    group.throughput(Throughput::Elements(20_000));
    group.sample_size(20);
    group.bench_function("benign_20k_instrs", |b| {
        b.iter(|| {
            let mut cpu = Cpu::new(CpuConfig::default());
            black_box(cpu.run(black_box(&benign), 20_000))
        })
    });
    group.bench_function("spectre_kernel", |b| {
        b.iter(|| {
            let mut cpu = Cpu::new(CpuConfig::default());
            black_box(cpu.run(black_box(&attack), 20_000))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
