//! Adversarial arms race benchmark (`BENCH_armsrace.json`): multi-round
//! attack ↔ vaccinate loop over the unified detector abstraction.
//!
//! Each round the adversary reads the deployed baseline's weight vector
//! and generates evasive variants ([`evax_attacks::evasion`]: benign
//! padding, rate modulation, weight-guided targeting) at escalating
//! intensity; the defender measures per-window detection for every
//! deployed variant (plain perceptron, 9-bit quantized, stochastic
//! jitter, majority-vote ensemble), then re-vaccinates on the accumulated
//! evasive windows and measures again. The artifact records
//! detection-rate-vs-round per variant, both *pre*-adaptation (the
//! adversary's win) and *post*-adaptation (the vaccine's recovery).
//!
//! Every rate is an exact `(hits, total)` integer pair produced by the
//! trait-level batched drain ([`evax_nn::Detector::classify_rows_into`]).
//! Each evaluation runs at 1, 4 and 16 kernel threads and asserts
//! identical counts; the report's `verdict_digest` folds every pair in
//! canonical order, so two runs with the same seed are byte-comparable.
//!
//! Round 0 additionally confronts the deployed stack with **interleaved
//! multi-tenant traces** ([`evax_attacks::carriers`]): benign
//! interrupt/timer/DMA-driven carriers and composed attacks riding them,
//! simulated under each carrier's device configuration. The detectors were
//! trained on quiet 133-column windows, so the device counter tail is
//! truncated — what the `carrier_interleaved` rates measure is the
//! *behavioral* noise (port steals, delivery flushes, handler code)
//! bleeding into the baseline counters, not the new columns.

use evax_attacks::benign::Scale;
use evax_attacks::{
    build_carrier, build_carrier_attack, generate_evasive_programs, KernelParams, CARRIER_ATTACKS,
    CARRIER_KINDS, EVASION_STRATEGIES,
};
use evax_core::collect::{collect_dataset, collect_program, CollectConfig};
use evax_core::featurize::{CollectingSink, ProgramSource, WindowSource};
use evax_core::gan::AmGanConfig;
use evax_core::par::{self, Parallelism};
use evax_core::pipeline::StageTimings;
use evax_core::prelude::Sample;
use evax_core::prelude::{
    vaccinate_ensemble, Dataset, DetectorScratch, Ensemble, ModelDetector, Normalizer,
    StochasticDetector, TrainConfig, Vaccination,
};
use evax_nn::QuantLinear;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Arms-race benchmark configuration (CLI-shaped).
#[derive(Debug, Clone)]
pub struct ArmsRaceConfig {
    /// Master seed: training corpus, vaccination, evasion generation.
    pub seed: u64,
    /// Attack ↔ vaccinate rounds.
    pub rounds: usize,
    /// Evasive programs generated per strategy per round.
    pub programs_per_strategy: usize,
    /// Majority-vote committee size.
    pub members: usize,
    /// Stochastic detector jitter magnitude.
    pub jitter: f32,
    /// CI-scale run: 2 rounds, small corpus, short GAN schedule.
    pub smoke: bool,
}

impl Default for ArmsRaceConfig {
    fn default() -> Self {
        ArmsRaceConfig {
            seed: 42,
            rounds: 4,
            programs_per_strategy: 4,
            members: 3,
            jitter: 0.03,
            smoke: false,
        }
    }
}

impl ArmsRaceConfig {
    /// The CI configuration: 2 rounds over a small corpus.
    pub fn smoke(seed: u64) -> ArmsRaceConfig {
        ArmsRaceConfig {
            seed,
            rounds: 2,
            programs_per_strategy: 2,
            smoke: true,
            ..ArmsRaceConfig::default()
        }
    }
}

/// An exact detection count: windows flagged over windows scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rate {
    /// Windows the variant flagged malicious.
    pub hits: u64,
    /// Windows scored.
    pub total: u64,
}

impl Rate {
    /// `hits / total` (0 on an empty corpus).
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }
}

/// One value per deployed detector variant.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PerVariant<T> {
    /// The plain vaccinated perceptron.
    pub baseline: T,
    /// The 9-bit integer deployment of the same weights.
    pub quant: T,
    /// Seeded inference-time weight/threshold jitter.
    pub stochastic: T,
    /// Majority-vote committee over independent vaccination draws.
    pub ensemble: T,
}

impl<T> PerVariant<T> {
    /// `(name, value)` pairs in canonical order.
    pub fn named(&self) -> [(&'static str, &T); 4] {
        [
            ("baseline", &self.baseline),
            ("quant", &self.quant),
            ("stochastic", &self.stochastic),
            ("ensemble", &self.ensemble),
        ]
    }
}

/// One arms-race round.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// 1-based round number (doubles as the evasion intensity).
    pub round: u32,
    /// Windows in this round's evasive corpus.
    pub windows: u64,
    /// Detection on the fresh evasive corpus, *before* re-vaccination —
    /// the adversary's move.
    pub pre: PerVariant<Rate>,
    /// Detection on the same corpus after re-vaccinating on all evasive
    /// windows observed so far — the defender's move.
    pub post: PerVariant<Rate>,
}

/// The full benchmark artifact.
#[derive(Debug, Clone)]
pub struct ArmsRaceReport {
    /// The configuration the run used.
    pub config: ArmsRaceConfig,
    /// Detection on the clean (non-evasive) attack corpus, round 0.
    pub clean: PerVariant<Rate>,
    /// False positives on the clean benign corpus, round 0.
    pub clean_fp: PerVariant<Rate>,
    /// Detection on composed attacks riding busy carriers (interleaved
    /// traces under device noise), round 0.
    pub carrier: PerVariant<Rate>,
    /// False positives on benign busy-carrier traces, round 0.
    pub carrier_fp: PerVariant<Rate>,
    /// Per-round detection trajectories.
    pub rounds: Vec<RoundReport>,
    /// FNV-1a over every `(hits, total)` pair in canonical order —
    /// identical at 1/4/16 kernel threads by construction (each
    /// evaluation asserts it) and across same-seed runs.
    pub verdict_digest: String,
}

/// The defender's deployed variants for one round, all views of (or
/// committees over) one vaccination's extended-feature space.
struct Deployment {
    vac: Vaccination,
    quant: QuantLinear,
    stochastic: StochasticDetector,
    ensemble: Ensemble,
}

impl Deployment {
    fn train(train: &Dataset, cfg: &ArmsRaceConfig, round: u64) -> Deployment {
        let gan_cfg = if cfg.smoke {
            AmGanConfig {
                epochs: 3,
                ..AmGanConfig::small()
            }
        } else {
            AmGanConfig::small()
        };
        let (augment_per_class, augment_benign) = if cfg.smoke { (20, 60) } else { (60, 200) };
        // Each round's vaccination stream derives from the master seed and
        // the round index alone, so the race replays identically no matter
        // how earlier rounds were evaluated.
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(round * 0x9E37_79B9));
        let mut timings = StageTimings::default();
        let (vac, ensemble) = vaccinate_ensemble(
            train,
            &gan_cfg,
            &TrainConfig::default(),
            augment_per_class,
            augment_benign,
            cfg.members,
            &mut rng,
            &mut timings,
        );
        let quant = vac.detector.quantize_linear();
        let stochastic = vac.harden_stochastic(cfg.seed ^ 0x570C_4A57, cfg.jitter);
        Deployment {
            vac,
            quant,
            stochastic,
            ensemble,
        }
    }

    /// Detection counts for every variant on `ds` (filtered to malicious
    /// or benign samples), via the trait-level batched drain, pinned
    /// identical at 1/4/16 kernel threads.
    fn measure(&self, ds: &Dataset, malicious: bool) -> PerVariant<Rate> {
        let det = &self.vac.detector;
        let dim = det.extended_dim();
        let mut matrix = Vec::new();
        let mut ext = Vec::with_capacity(dim);
        let mut n = 0usize;
        for s in ds.samples.iter().filter(|s| s.malicious == malicious) {
            det.transform_into(&s.features, &mut ext);
            matrix.extend_from_slice(&ext);
            n += 1;
        }
        let drain = |model: &dyn ModelDetector| -> Rate {
            let mut counts = [0u64; 3];
            for (i, threads) in [1usize, 4, 16].into_iter().enumerate() {
                let mut scratch = DetectorScratch::new();
                let mut scores = vec![0.0f32; n];
                let mut verdicts = vec![false; n];
                model.classify_rows_into(
                    &matrix,
                    threads,
                    &mut scratch,
                    &mut scores,
                    &mut verdicts,
                );
                counts[i] = verdicts.iter().filter(|&&v| v).count() as u64;
            }
            assert!(
                counts[0] == counts[1] && counts[1] == counts[2],
                "{}: verdict counts diverged across kernel threads: {counts:?}",
                model.kind()
            );
            Rate {
                hits: counts[0],
                total: n as u64,
            }
        };
        PerVariant {
            baseline: drain(det),
            quant: drain(&self.quant),
            stochastic: drain(&self.stochastic),
            ensemble: drain(&self.ensemble),
        }
    }
}

fn fnv1a(digest: &mut u64, rates: &PerVariant<Rate>) {
    for (_, r) in rates.named() {
        for b in r
            .hits
            .to_le_bytes()
            .into_iter()
            .chain(r.total.to_le_bytes())
        {
            *digest ^= b as u64;
            *digest = digest.wrapping_mul(0x100_0000_01b3);
        }
    }
}

fn small_collect(smoke: bool) -> CollectConfig {
    CollectConfig {
        interval: 200,
        runs_per_attack: 1,
        runs_per_benign: 1,
        max_instrs: if smoke { 3_000 } else { 4_000 },
        benign_scale: 3_000,
        ..Default::default()
    }
}

/// Collects the interleaved multi-tenant corpus: one benign trace per
/// carrier kind (class 0) and one composed trace per carrier attack (its
/// spliced attack's class), each simulated under the carrier's device
/// configuration. Windows carry the 10 `dma.*`/`irq.*` tail columns; they
/// are truncated to the deployed detectors' quiet-trace dimension before
/// normalization. Simulation fans out per program and merges in canonical
/// order.
fn carrier_corpus(collect: &CollectConfig, norm: &Normalizer, seed: u64) -> Dataset {
    let dim = norm.dim();
    enum Spec {
        Benign(usize),
        Composed(usize),
    }
    let specs: Vec<Spec> = (0..CARRIER_KINDS.len())
        .map(Spec::Benign)
        .chain((0..CARRIER_ATTACKS.len()).map(Spec::Composed))
        .collect();
    let per_program = par::map(Parallelism::Auto, &specs, |spec| {
        let (program, kind, class, budget) = match *spec {
            Spec::Benign(k) => {
                let kind = CARRIER_KINDS[k];
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(k as u64 * 0x9E37_79B9));
                let program = build_carrier(kind, Scale(collect.benign_scale), &mut rng);
                (program, kind, 0usize, collect.max_instrs)
            }
            Spec::Composed(w) => {
                let which = CARRIER_ATTACKS[w];
                let mut rng =
                    StdRng::seed_from_u64(seed.wrapping_add(0xC0_DE + w as u64 * 0x5DEE_CE66));
                let program = build_carrier_attack(
                    which,
                    Scale(collect.benign_scale),
                    &KernelParams::default(),
                    &mut rng,
                );
                (
                    program,
                    which.carrier(),
                    which.attack_class().label(),
                    collect.max_instrs.saturating_mul(3),
                )
            }
        };
        let cpu = evax_sim::CpuConfig {
            devices: kind.device_config(),
            ..collect.cpu.clone()
        };
        let mut sink = CollectingSink::new();
        ProgramSource::new(&program, &cpu, collect.interval, budget).stream(&mut sink);
        let mut samples = Vec::new();
        let mut row = vec![0.0f32; dim];
        for w in sink.into_windows() {
            norm.normalize_into(&w[..dim], &mut row);
            samples.push(Sample::new(row.clone(), class));
        }
        samples
    });
    let mut ds = Dataset::new();
    for s in per_program.into_iter().flatten() {
        ds.push(s);
    }
    ds
}

/// Simulates one round's evasive corpus against the deployed baseline's
/// (stolen) weight vector. Program generation is serial and canonical;
/// simulation fans out per program and merges back in order.
fn evasive_corpus(
    deploy: &Deployment,
    round: u32,
    cfg: &ArmsRaceConfig,
    collect: &CollectConfig,
    norm: &Normalizer,
) -> Dataset {
    let weights = deploy.vac.detector.perceptron().weights();
    let mut programs = Vec::new();
    for (si, &strategy) in EVASION_STRATEGIES.iter().enumerate() {
        programs.extend(generate_evasive_programs(
            strategy,
            cfg.programs_per_strategy,
            weights,
            round,
            cfg.seed
                .wrapping_add(round as u64 * 0x5DEE_CE66)
                .wrapping_add(si as u64 * 7919),
        ));
    }
    let per_program = par::map(Parallelism::Auto, &programs, |(program, class)| {
        collect_program(program, class.label(), collect, norm)
    });
    let mut ds = Dataset::new();
    for s in per_program.into_iter().flatten() {
        ds.push(s);
    }
    ds
}

/// Runs the full arms race.
pub fn run_arms_race(cfg: &ArmsRaceConfig) -> ArmsRaceReport {
    assert!(cfg.rounds > 0, "the race needs at least one round");
    let collect = small_collect(cfg.smoke);
    eprintln!("[armsrace] collecting training + clean evaluation corpora...");
    let (train, norm) = collect_dataset(&collect, cfg.seed);
    // The clean evaluation corpus is a disjoint draw: same workload
    // registry, different seed, never trained on.
    let (clean_eval, _) = collect_dataset(&collect, cfg.seed ^ 0xC1EA_11E5);

    eprintln!("[armsrace] round 0: vaccinating the initial deployment...");
    let mut deploy = Deployment::train(&train, cfg, 0);
    let clean = deploy.measure(&clean_eval, true);
    let clean_fp = deploy.measure(&clean_eval, false);

    eprintln!("[armsrace] round 0: interleaved busy-carrier evaluation...");
    let carrier_eval = carrier_corpus(&collect, &norm, cfg.seed ^ 0xCA44_1E45);
    let carrier = deploy.measure(&carrier_eval, true);
    let carrier_fp = deploy.measure(&carrier_eval, false);

    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    fnv1a(&mut digest, &clean);
    fnv1a(&mut digest, &clean_fp);
    fnv1a(&mut digest, &carrier);
    fnv1a(&mut digest, &carrier_fp);

    let mut accumulated = train.clone();
    let mut rounds = Vec::with_capacity(cfg.rounds);
    for round in 1..=cfg.rounds as u32 {
        eprintln!("[armsrace] round {round}: adversary generates evasive corpus...");
        let corpus = evasive_corpus(&deploy, round, cfg, &collect, &norm);
        let pre = deploy.measure(&corpus, true);
        fnv1a(&mut digest, &pre);

        eprintln!(
            "[armsrace] round {round}: baseline pre-adaptation detection {:.3} \
             ({}/{} windows); re-vaccinating...",
            pre.baseline.rate(),
            pre.baseline.hits,
            pre.baseline.total
        );
        for s in &corpus.samples {
            accumulated.push(s.clone());
        }
        deploy = Deployment::train(&accumulated, cfg, round as u64);
        let post = deploy.measure(&corpus, true);
        fnv1a(&mut digest, &post);

        rounds.push(RoundReport {
            round,
            windows: pre.baseline.total,
            pre,
            post,
        });
    }

    ArmsRaceReport {
        config: cfg.clone(),
        clean,
        clean_fp,
        carrier,
        carrier_fp,
        rounds,
        verdict_digest: format!("{digest:016x}"),
    }
}

impl ArmsRaceReport {
    /// Relative round-1 drop in baseline detection vs the clean corpus
    /// (the acceptance criterion's adversary side).
    pub fn round1_baseline_drop(&self) -> f64 {
        let clean = self.clean.baseline.rate();
        if clean <= 0.0 {
            return 0.0;
        }
        (clean - self.rounds[0].pre.baseline.rate()) / clean
    }

    /// Smallest final-round gap to clean-corpus detection over the
    /// hardened variants (stochastic, ensemble), post-adaptation. Negative
    /// means a hardened variant beats its clean-corpus rate.
    pub fn final_best_hardened_gap(&self) -> f64 {
        let last = self.rounds.last().expect("at least one round");
        let stoch = self.clean.stochastic.rate() - last.post.stochastic.rate();
        let ens = self.clean.ensemble.rate() - last.post.ensemble.rate();
        stoch.min(ens)
    }

    /// Renders `BENCH_armsrace.json`.
    pub fn to_json(&self) -> String {
        fn variant_json(v: &PerVariant<Rate>) -> String {
            let fields: Vec<String> = v
                .named()
                .iter()
                .map(|(name, r)| {
                    format!(
                        "\"{name}\": {{\"hits\": {}, \"total\": {}, \"rate\": {:.4}}}",
                        r.hits,
                        r.total,
                        r.rate()
                    )
                })
                .collect();
            format!("{{{}}}", fields.join(", "))
        }
        let rounds: Vec<String> = self
            .rounds
            .iter()
            .map(|r| {
                format!(
                    "    {{\"round\": {}, \"windows\": {},\n     \"pre\": {},\n     \"post\": {}}}",
                    r.round,
                    r.windows,
                    variant_json(&r.pre),
                    variant_json(&r.post)
                )
            })
            .collect();
        format!(
            "{{\n  \"seed\": {}, \"rounds\": {}, \"programs_per_strategy\": {}, \
             \"members\": {}, \"jitter\": {}, \"smoke\": {}, \
             \"cores\": {}, \"threads\": [1, 4, 16],\n  \
             \"strategies\": [\"benign_padding\", \"rate_modulation\", \"weight_guided\"],\n  \
             \"clean\": {},\n  \"clean_false_positives\": {},\n  \
             \"carrier_interleaved\": {},\n  \"carrier_false_positives\": {},\n  \
             \"race\": [\n{}\n  ],\n  \
             \"acceptance\": {{\"round1_baseline_drop\": {:.4}, \
             \"final_best_hardened_gap\": {:.4}}},\n  \
             \"verdict_digest\": \"{}\",\n  \
             \"note\": \"rates are exact (hits, total) window counts from the \
             trait-level batched drain, asserted identical at 1/4/16 kernel \
             threads; pre = detection on the fresh evasive corpus before \
             re-vaccination, post = after re-vaccinating on all evasive \
             windows observed so far\"\n}}\n",
            self.config.seed,
            self.config.rounds,
            self.config.programs_per_strategy,
            self.config.members,
            self.config.jitter,
            self.config.smoke,
            std::thread::available_parallelism().map_or(1, |n| n.get()),
            variant_json(&self.clean),
            variant_json(&self.clean_fp),
            variant_json(&self.carrier),
            variant_json(&self.carrier_fp),
            rounds.join(",\n"),
            self.round1_baseline_drop(),
            self.final_best_hardened_gap(),
            self.verdict_digest,
        )
    }
}
