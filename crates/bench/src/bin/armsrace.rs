//! Arms-race benchmark driver: runs the multi-round attack ↔ vaccinate
//! loop and writes `BENCH_armsrace.json`.
//!
//! ```text
//! armsrace [--seed N] [--rounds N] [--programs N] [--members N] [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` is the CI setting: 2 rounds over a small corpus, enough to
//! prove the loop runs end-to-end and the artifact is well-formed. Exits
//! non-zero if any variant's verdict counts diverge across kernel thread
//! counts (asserted inside every evaluation), if the acceptance bars fail
//! (round-1 baseline drop ≥ 20% relative, best hardened variant within 5%
//! of clean-corpus detection by the final round), or if the artifact
//! cannot be written.

use std::process::ExitCode;

use evax_bench::armsrace::{run_arms_race, ArmsRaceConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ArmsRaceConfig::default();
    let mut out = String::from("BENCH_armsrace.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                cfg.seed = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) => s,
                    None => {
                        eprintln!("--seed requires an integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--rounds" => {
                i += 1;
                cfg.rounds = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--rounds requires a positive integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--programs" => {
                i += 1;
                cfg.programs_per_strategy = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--programs requires a positive integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--members" => {
                i += 1;
                cfg.members = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--members requires a positive integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--smoke" => {
                let seed = cfg.seed;
                cfg = ArmsRaceConfig::smoke(seed);
            }
            "--out" => {
                i += 1;
                out = match args.get(i) {
                    Some(p) => p.clone(),
                    None => {
                        eprintln!("--out requires a path");
                        return ExitCode::FAILURE;
                    }
                };
            }
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!(
                    "usage: armsrace [--seed N] [--rounds N] [--programs N] \
                     [--members N] [--smoke] [--out PATH]"
                );
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let report = run_arms_race(&cfg);
    let json = report.to_json();
    print!("{json}");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "[armsrace] round-1 baseline drop {:.1}%; best hardened gap to clean {:.1}% \
         after {} rounds (digest {})",
        report.round1_baseline_drop() * 100.0,
        report.final_best_hardened_gap() * 100.0,
        report.rounds.len(),
        report.verdict_digest
    );
    let drop = report.round1_baseline_drop();
    let gap = report.final_best_hardened_gap();
    if drop < 0.20 {
        eprintln!(
            "error: round-1 evasion only dropped baseline detection {:.1}% (need >= 20%)",
            drop * 100.0
        );
        return ExitCode::FAILURE;
    }
    if gap > 0.05 {
        eprintln!(
            "error: best hardened variant ended {:.1}% below clean detection (need <= 5%)",
            gap * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
