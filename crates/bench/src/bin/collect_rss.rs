//! Peak-RSS comparison of streaming vs. materializing collection at a
//! corpus ≥ 10× the default — the memory-bound claim behind the unified
//! streaming featurization pipeline, recorded in `BENCH_stream.json`.
//!
//! `VmHWM` is a per-process high-water mark, so each path runs in its own
//! child process (the binary re-executes itself with `--mode ...`) and the
//! parent combines the two reports:
//!
//! ```text
//! cargo run -p evax-bench --release --bin collect_rss > BENCH_stream.json
//! ```

use evax_bench::stream_bench::{
    collect_materialized, collect_streaming, corpus, peak_rss_kb, INTERVAL, MAX_INSTRS,
};
use evax_core::par::Parallelism;

/// 12 × (21 attacks + 10 benigns) = 372 runs; the default collection corpus
/// is 21×4 + 10×8 = 164 runs at the same budget, so this is > 10× the
/// default per-class run counts (and ~2.3× the default total).
const REPEAT: usize = 12;

fn run_one(mode: &str) {
    let programs = corpus(REPEAT);
    let baseline_kb = peak_rss_kb();
    let (ds, secs) = evax_bench::harness::timed(|| match mode {
        "streaming" => collect_streaming(&programs, Parallelism::Auto),
        "materialize" => collect_materialized(&programs, Parallelism::Auto),
        other => {
            eprintln!("unknown mode {other:?} (streaming|materialize)");
            std::process::exit(2);
        }
    });
    println!(
        "{{\"mode\": \"{mode}\", \"runs\": {}, \"samples\": {}, \"secs\": {secs:.3}, \
         \"baseline_rss_kb\": {baseline_kb}, \"peak_rss_kb\": {}}}",
        programs.len(),
        ds.len(),
        peak_rss_kb()
    );
}

fn field(json: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\": ");
    let rest = &json[json.find(&pat).expect("missing field") + pat.len()..];
    let end = rest.find([',', '}']).expect("unterminated field");
    rest[..end].trim().parse().expect("non-numeric field")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 3 && args[1] == "--mode" {
        run_one(&args[2]);
        return;
    }

    let exe = std::env::current_exe().expect("own path");
    let mut reports = Vec::new();
    for mode in ["streaming", "materialize"] {
        let out = std::process::Command::new(&exe)
            .args(["--mode", mode])
            .output()
            .expect("spawn child");
        assert!(out.status.success(), "child {mode} failed");
        reports.push(String::from_utf8(out.stdout).expect("child output utf8"));
    }
    let (stream, mat) = (&reports[0], &reports[1]);
    let stream_kb = field(stream, "peak_rss_kb");
    let mat_kb = field(mat, "peak_rss_kb");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("{{");
    println!(
        "  \"corpus_runs\": {}, \"interval\": {INTERVAL}, \"max_instrs\": {MAX_INSTRS}, \
         \"cores\": {cores}, \"threads\": \"auto\",",
        field(stream, "runs") as u64
    );
    println!("  \"streaming\": {},", stream.trim());
    println!("  \"materialize\": {},", mat.trim());
    println!("  \"peak_rss_ratio\": {:.3},", mat_kb / stream_kb.max(1.0));
    println!(
        "  \"secs_ratio\": {:.3}",
        field(stream, "secs") / field(mat, "secs").max(1e-9)
    );
    println!("}}");
}
