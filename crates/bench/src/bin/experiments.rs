//! The experiment runner: regenerates every table and figure of the EVAX
//! paper's evaluation.
//!
//! ```text
//! experiments <id>... [--seed N] [--scale small|full]
//! experiments all [--seed N] [--scale small|full]
//! experiments list
//! ```

use std::process::ExitCode;

use evax_bench::{run_experiment, ExperimentScale, Harness, EXPERIMENT_IDS};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut seed = 42u64;
    let mut scale = ExperimentScale::Small;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) => s,
                    None => {
                        eprintln!("--seed requires an integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--scale" => {
                i += 1;
                scale = match args.get(i).and_then(|s| ExperimentScale::parse(s)) {
                    Some(s) => s,
                    None => {
                        eprintln!("--scale requires 'small' or 'full'");
                        return ExitCode::FAILURE;
                    }
                };
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() || ids.iter().any(|i| i == "help" || i == "--help") {
        eprintln!("usage: experiments <id>... [--seed N] [--scale small|full]");
        eprintln!("ids: {} | all | list", EXPERIMENT_IDS.join(" "));
        return ExitCode::FAILURE;
    }
    if ids.iter().any(|i| i == "list") {
        for id in EXPERIMENT_IDS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    if ids.iter().any(|i| i == "all") {
        ids = EXPERIMENT_IDS.iter().map(|s| s.to_string()).collect();
    }

    let harness = Harness::new(seed, scale);
    for id in &ids {
        let started = std::time::Instant::now();
        match run_experiment(id, &harness) {
            Ok(report) => {
                println!("{report}");
                eprintln!("[{id}] done in {:.1?}\n", started.elapsed());
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
