//! The experiment runner: regenerates every table and figure of the EVAX
//! paper's evaluation.
//!
//! ```text
//! experiments <id>... [--seed N] [--scale small|full] [--threads N] [--json]
//!             [--metrics-out PATH]
//! experiments all [--seed N] [--scale small|full]
//! experiments list
//! ```
//!
//! Experiments fan out across worker threads (`--threads`, default: all
//! cores / `EVAX_THREADS`); every experiment derives its randomness from the
//! shared seed alone, so reports are identical at any thread count and are
//! printed in id order regardless of completion order. `--json` replaces the
//! text reports with a machine-readable timing summary: wall-clock per
//! experiment plus the trained pipeline's per-stage breakdown, and a
//! `metrics` block from a metered defense pass (see
//! `evax_bench::obs_pass`) whose simulated quantities are byte-identical at
//! any thread count. `--metrics-out` additionally writes that registry —
//! wall-clock timers included — as JSONL.

use std::process::ExitCode;

use evax_bench::{run_experiment, ExperimentScale, Harness, EXPERIMENT_IDS};
use evax_core::par::{self, Parallelism};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut seed = 42u64;
    let mut scale = ExperimentScale::Small;
    let mut parallelism = Parallelism::Auto;
    let mut json = false;
    let mut metrics_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) => s,
                    None => {
                        eprintln!("--seed requires an integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--scale" => {
                i += 1;
                scale = match args.get(i).and_then(|s| ExperimentScale::parse(s)) {
                    Some(s) => s,
                    None => {
                        eprintln!("--scale requires 'small' or 'full'");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--threads" => {
                i += 1;
                parallelism = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => Parallelism::Fixed(n),
                    _ => {
                        eprintln!("--threads requires a positive integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--json" => json = true,
            "--metrics-out" => {
                i += 1;
                metrics_out = match args.get(i) {
                    Some(p) => Some(p.clone()),
                    None => {
                        eprintln!("--metrics-out requires a path");
                        return ExitCode::FAILURE;
                    }
                };
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() || ids.iter().any(|i| i == "help" || i == "--help") {
        eprintln!(
            "usage: experiments <id>... [--seed N] [--scale small|full] [--threads N] [--json] \
             [--metrics-out PATH]"
        );
        eprintln!("ids: {} | all | list", EXPERIMENT_IDS.join(" "));
        return ExitCode::FAILURE;
    }
    if ids.iter().any(|i| i == "list") {
        for id in EXPERIMENT_IDS {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    if ids.iter().any(|i| i == "all") {
        ids = EXPERIMENT_IDS.iter().map(|s| s.to_string()).collect();
    }

    let harness = Harness::new(seed, scale);
    // Fan the experiments out; each returns (report-or-error, seconds).
    // Results merge back in id order, so output is stable at any thread count.
    let (results, total_secs) = evax_bench::harness::timed(|| {
        par::map(parallelism, &ids, |id| {
            evax_bench::harness::timed(|| run_experiment(id, &harness))
        })
    });

    // The metered defense pass behind the `metrics` block / `--metrics-out`.
    // Records only simulated quantities in the deterministic export, so the
    // block is byte-identical at any thread count.
    let obs = (json || metrics_out.is_some()).then(|| {
        evax_bench::obs_pass::obs_pass(seed, parallelism, &evax_bench::obs_pass::default_programs())
    });
    if let (Some(path), Some(reg)) = (&metrics_out, &obs) {
        if let Err(e) = std::fs::write(path, reg.to_jsonl()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let mut failed = false;
    if json {
        println!(
            "{}",
            json_summary(
                &harness,
                &ids,
                &results,
                total_secs,
                obs.as_deref(),
                parallelism
            )
        );
        failed = results.iter().any(|(r, _)| r.is_err());
        for (id, (result, _)) in ids.iter().zip(&results) {
            if let Err(e) = result {
                eprintln!("error [{id}]: {e}");
            }
        }
    } else {
        for (id, (result, secs)) in ids.iter().zip(&results) {
            match result {
                Ok(report) => {
                    println!("{report}");
                    eprintln!("[{id}] done in {secs:.1}s\n");
                }
                Err(e) => {
                    eprintln!("error [{id}]: {e}");
                    failed = true;
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Renders the `--json` timing summary. Hand-rolled (the workspace has no
/// JSON serializer); every string placed here is a known-safe literal or an
/// escaped experiment id.
fn json_summary(
    harness: &Harness,
    ids: &[String],
    results: &[(Result<String, String>, f64)],
    total_secs: f64,
    obs: Option<&evax_obs::Registry>,
    parallelism: Parallelism,
) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"seed\": {},\n", harness.seed));
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = match parallelism {
        Parallelism::Fixed(n) => n.to_string(),
        _ => "\"auto\"".to_string(),
    };
    out.push_str(&format!(
        "  \"cores\": {cores},\n  \"threads\": {threads},\n"
    ));
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match harness.scale {
            ExperimentScale::Small => "small",
            ExperimentScale::Full => "full",
        }
    ));
    out.push_str("  \"experiments\": [\n");
    for (i, (id, (result, secs))) in ids.iter().zip(results).enumerate() {
        let comma = if i + 1 < ids.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"id\": \"{}\", \"ok\": {}, \"secs\": {:.3}}}{}\n",
            escape_json(id),
            result.is_ok(),
            secs,
            comma
        ));
    }
    out.push_str("  ],\n");
    // Simulator throughput baseline (event-driven vs scan scheduling on the
    // registry mix) — the perf trajectory future PRs compare against.
    let sim = evax_bench::exp_sim::measure(harness.seed, harness.scale);
    out.push_str(&format!(
        "  \"sim_instrs_per_sec\": {:.0},\n  \"sim_scan_instrs_per_sec\": {:.0},\n  \
         \"sim_speedup\": {:.3},\n  \"sim_committed_instrs\": {},\n",
        sim.event_ips(),
        sim.scan_ips(),
        sim.speedup(),
        sim.committed
    ));
    match harness.stage_timings() {
        Some(t) => out.push_str(&format!(
            "  \"pipeline_stages\": {{\"collect_secs\": {:.3}, \"gan_secs\": {:.3}, \
             \"engineer_secs\": {:.3}, \"vaccinate_secs\": {:.3}, \"baseline_secs\": {:.3}}},\n",
            t.collect_secs, t.gan_secs, t.engineer_secs, t.vaccinate_secs, t.baseline_secs
        )),
        None => out.push_str("  \"pipeline_stages\": null,\n"),
    }
    // Deterministic metrics from the metered defense pass: sorted keys,
    // integer values, wall-clock timers excluded — byte-identical at any
    // thread count (`registry.to_json()` is already a valid JSON object).
    match obs {
        Some(reg) => out.push_str(&format!("  \"metrics\": {},\n", reg.to_json())),
        None => out.push_str("  \"metrics\": null,\n"),
    }
    out.push_str(&format!("  \"total_secs\": {total_secs:.3}\n"));
    out.push('}');
    out
}

/// Minimal JSON string escaping for experiment ids.
fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}
