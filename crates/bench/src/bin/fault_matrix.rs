//! Chaos harness driver: runs the injector × subsystem fault matrix and
//! renders the survival table.
//!
//! ```text
//! fault_matrix [--seed N] [--iters N] [--threads N] [--smoke]
//! ```
//!
//! `--smoke` caps the per-cell iteration count at 2 (the CI setting).
//! Exits non-zero when any cell panicked or failed open — the harness's
//! whole point is that it never does.

use std::process::ExitCode;

use evax_bench::fault_matrix::run_fault_matrix;
use evax_core::prelude::Parallelism;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 42u64;
    let mut iters = 8u32;
    let mut parallelism = Parallelism::Auto;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) => s,
                    None => {
                        eprintln!("--seed requires an integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--iters" => {
                i += 1;
                iters = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--iters requires a positive integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--threads" => {
                i += 1;
                parallelism = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => Parallelism::Fixed(n),
                    _ => {
                        eprintln!("--threads requires a positive integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--smoke" => iters = iters.min(2),
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!("usage: fault_matrix [--seed N] [--iters N] [--threads N] [--smoke]");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let matrix = run_fault_matrix(seed, iters, parallelism);
    print!("{}", matrix.render());
    if matrix.violations().is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
