//! Fast-forward benchmark driver: measures the functional execution mode
//! and snapshot warm-start end to end and writes `BENCH_ff.json`.
//!
//! ```text
//! ff [--seed N] [--threads N] [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` is the CI setting: shorter programs and a small fleet, enough
//! to prove the artifact is produced and well-formed. Exits non-zero if the
//! artifact cannot be written.

use std::process::ExitCode;

use evax_bench::ff_bench::{run_ff_bench, FfBenchConfig};
use evax_core::prelude::Parallelism;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = FfBenchConfig::default();
    let mut out = String::from("BENCH_ff.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                cfg.seed = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) => s,
                    None => {
                        eprintln!("--seed requires an integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--threads" => {
                i += 1;
                cfg.parallelism = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => Parallelism::Fixed(n),
                    _ => {
                        eprintln!("--threads requires a positive integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--smoke" => cfg.smoke = true,
            "--out" => {
                i += 1;
                out = match args.get(i) {
                    Some(p) => p.clone(),
                    None => {
                        eprintln!("--out requires a path");
                        return ExitCode::FAILURE;
                    }
                };
            }
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!("usage: ff [--seed N] [--threads N] [--smoke] [--out PATH]");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let report = run_ff_bench(&cfg);
    let json = report.to_json();
    print!("{json}");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "[ff] functional {:.0} instrs/s vs detailed {:.0} instrs/s ({:.1}x); \
         corpus {:.2}x, fleet warm {:.2}x, drift flip rate {:.3}",
        report.functional.ips(),
        report.detailed.ips(),
        report.functional.ips() / report.detailed.ips().max(1e-9),
        report.corpus.detailed_secs / report.corpus.ff_secs.max(1e-9),
        report.fleet.cold_secs / report.fleet.warm_secs.max(1e-9),
        report.drift.flip_rate()
    );
    ExitCode::SUCCESS
}
