//! Fleet service benchmark driver: runs the sharded multi-stream detection
//! service and writes `BENCH_fleet.json`.
//!
//! ```text
//! fleet [--streams N] [--seed N] [--threads N] [--smoke] [--no-quant] [--out PATH]
//! ```
//!
//! `--smoke` is the CI setting: a small fleet with short streams, enough to
//! prove the artifact is produced and well-formed. Exits non-zero if the
//! batched drain fails to reproduce per-window verdicts (asserted inside
//! the drain microbenchmark) or the artifact cannot be written.

use std::process::ExitCode;

use evax_bench::fleet_bench::{run_fleet_bench, FleetBenchConfig};
use evax_core::prelude::Parallelism;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = FleetBenchConfig::default();
    let mut out = String::from("BENCH_fleet.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--streams" => {
                i += 1;
                cfg.n_streams = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--streams requires a positive integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--seed" => {
                i += 1;
                cfg.seed = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) => s,
                    None => {
                        eprintln!("--seed requires an integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--threads" => {
                i += 1;
                cfg.parallelism = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => Parallelism::Fixed(n),
                    _ => {
                        eprintln!("--threads requires a positive integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--smoke" => {
                cfg.smoke = true;
                cfg.n_streams = cfg.n_streams.min(64);
            }
            "--no-quant" => cfg.quantized = false,
            "--out" => {
                i += 1;
                out = match args.get(i) {
                    Some(p) => p.clone(),
                    None => {
                        eprintln!("--out requires a path");
                        return ExitCode::FAILURE;
                    }
                };
            }
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!(
                    "usage: fleet [--streams N] [--seed N] [--threads N] \
                     [--smoke] [--no-quant] [--out PATH]"
                );
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let report = run_fleet_bench(&cfg);
    let json = report.to_json();
    print!("{json}");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "[fleet] batched {:.0} windows/s (p50 {} ns, p99 {} ns); drain speedup {:.2}x",
        report.batched_f32.windows_per_sec,
        report.batched_f32.p50_ns,
        report.batched_f32.p99_ns,
        report.drain.speedup
    );
    ExitCode::SUCCESS
}
