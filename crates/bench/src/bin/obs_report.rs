//! Observability summarizer: runs the metered defense pass and renders the
//! Fig. 14/16-style tables plus the deterministic metrics JSON.
//!
//! ```text
//! obs_report [--seed N] [--threads N] [--smoke] [--jsonl PATH]
//! ```
//!
//! `--smoke` restricts the pass to the 2-program CI slice. `--jsonl` also
//! writes every metric (including wall-clock timers) as one JSON object per
//! line, ready for offline analysis.

use std::process::ExitCode;

use evax_bench::obs_pass::{default_programs, smoke_programs};
use evax_bench::obs_report::obs_report;
use evax_core::prelude::Parallelism;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 42u64;
    let mut parallelism = Parallelism::Auto;
    let mut smoke = false;
    let mut jsonl: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) => s,
                    None => {
                        eprintln!("--seed requires an integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--threads" => {
                i += 1;
                parallelism = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => Parallelism::Fixed(n),
                    _ => {
                        eprintln!("--threads requires a positive integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--smoke" => smoke = true,
            "--jsonl" => {
                i += 1;
                jsonl = match args.get(i) {
                    Some(p) => Some(p.clone()),
                    None => {
                        eprintln!("--jsonl requires a path");
                        return ExitCode::FAILURE;
                    }
                };
            }
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!("usage: obs_report [--seed N] [--threads N] [--smoke] [--jsonl PATH]");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let programs = if smoke {
        smoke_programs()
    } else {
        default_programs()
    };
    let (registry, report) = obs_report(seed, parallelism, &programs);
    print!("{report}");
    if let Some(path) = jsonl {
        if let Err(e) = std::fs::write(&path, registry.to_jsonl()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote metrics JSONL to {path}");
    }
    ExitCode::SUCCESS
}
