//! Zero-day benchmark driver: trains the unsupervised anomaly scorer on
//! benign windows only and evaluates it on held-out attack categories,
//! writing `BENCH_zeroday.json`.
//!
//! ```text
//! zeroday [--seed N] [--instrs N] [--runs N] [--fpr F] [--topk K] [--bar F]
//!         [--carrier-bar F] [--threads N] [--smoke] [--out PATH]
//! ```
//!
//! `--smoke` is the CI setting: one run per program over a short
//! instruction budget, enough to prove the pipeline runs end-to-end and
//! the artifact is well-formed. Exits non-zero if fewer than 3 of the 4
//! held-out categories are detected at the target false-positive rate, or
//! — on full-size runs — if adding the `energy.*` features does not
//! improve mean held-out detection over HPC-only features, if fewer than
//! 3 of the 4 busy-carrier composed attacks clear the carrier bar, or if
//! the benign-carrier false-positive rate exceeds the target (smoke
//! corpora are too small to resolve those margins).

use std::process::ExitCode;

use evax_bench::zeroday_bench::{run_zeroday, ZerodayConfig};
use evax_core::par::Parallelism;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ZerodayConfig::default();
    let mut out = String::from("BENCH_zeroday.json");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                cfg.seed = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(s) => s,
                    None => {
                        eprintln!("--seed requires an integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--instrs" => {
                i += 1;
                cfg.max_instrs = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1000 => n,
                    _ => {
                        eprintln!("--instrs requires an integer >= 1000");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--runs" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => {
                        cfg.benign_runs = n;
                        cfg.attack_runs = n;
                    }
                    _ => {
                        eprintln!("--runs requires a positive integer");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--fpr" => {
                i += 1;
                cfg.fpr = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(f) if (0.0..=0.5).contains(&f) => f,
                    _ => {
                        eprintln!("--fpr requires a fraction in [0, 0.5]");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--topk" => {
                i += 1;
                cfg.top_k = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(k) => k,
                    None => {
                        eprintln!("--topk requires an integer (0 = all dims)");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--bar" => {
                i += 1;
                cfg.detect_bar = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(b) if (0.0..=1.0).contains(&b) => b,
                    _ => {
                        eprintln!("--bar requires a fraction in [0, 1]");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--carrier-bar" => {
                i += 1;
                cfg.carrier_bar = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(b) if (0.0..=1.0).contains(&b) => b,
                    _ => {
                        eprintln!("--carrier-bar requires a fraction in [0, 1]");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--threads" => {
                i += 1;
                cfg.parallelism = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(n) if n >= 1 => Parallelism::Fixed(n),
                    _ => {
                        eprintln!("--threads requires a positive integer");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--smoke" => {
                let seed = cfg.seed;
                let (top_k, bar, carrier_bar) = (cfg.top_k, cfg.detect_bar, cfg.carrier_bar);
                let parallelism = cfg.parallelism;
                cfg = ZerodayConfig::smoke(seed);
                cfg.top_k = top_k;
                cfg.detect_bar = bar;
                cfg.carrier_bar = carrier_bar;
                cfg.parallelism = parallelism;
            }
            "--out" => {
                i += 1;
                out = match args.get(i) {
                    Some(p) => p.clone(),
                    None => {
                        eprintln!("--out requires a path");
                        return ExitCode::FAILURE;
                    }
                };
            }
            other => {
                eprintln!("unknown argument '{other}'");
                eprintln!(
                    "usage: zeroday [--seed N] [--instrs N] [--runs N] [--fpr F] \
                     [--topk K] [--bar F] [--carrier-bar F] [--threads N] \
                     [--smoke] [--out PATH]"
                );
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }

    let report = run_zeroday(&cfg);
    let json = report.to_json();
    print!("{json}");
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "[zeroday] {}/4 categories detected with energy (hpc-only {}/4); \
         mean TPR {:.3} vs {:.3}; held-out FPR {:.4} vs {:.4}",
        report.detected_energy(),
        report.detected_hpc(),
        report.mean_tpr_energy(),
        report.mean_tpr_hpc(),
        report.fpr_energy,
        report.fpr_hpc,
    );
    eprintln!(
        "[zeroday] carriers: {}/4 composed attacks detected with device columns \
         (device-blind {}/4); benign-carrier FPR {:.4} (delta vs clean {:+.4})",
        report.carrier.detected_full(cfg.carrier_bar),
        report.carrier.detected_hpc(cfg.carrier_bar),
        report.carrier.fpr_full,
        report.carrier.fpr_full - report.fpr_energy,
    );
    if report.detected_energy() < 3 {
        eprintln!(
            "error: only {}/4 held-out categories detected (need >= 3)",
            report.detected_energy()
        );
        return ExitCode::FAILURE;
    }
    if report.fpr_energy > cfg.fpr || report.fpr_hpc > cfg.fpr {
        eprintln!(
            "error: held-out benign FPR {:.4} (hpc {:.4}) exceeds target {:.4}",
            report.fpr_energy, report.fpr_hpc, cfg.fpr
        );
        return ExitCode::FAILURE;
    }
    if !cfg.smoke && report.mean_tpr_energy() <= report.mean_tpr_hpc() {
        eprintln!(
            "error: energy features did not improve mean held-out TPR \
             ({:.4} vs {:.4})",
            report.mean_tpr_energy(),
            report.mean_tpr_hpc()
        );
        return ExitCode::FAILURE;
    }
    if !cfg.smoke {
        if report.carrier.detected_full(cfg.carrier_bar) < 3 {
            eprintln!(
                "error: only {}/4 busy-carrier composed attacks detected (need >= 3)",
                report.carrier.detected_full(cfg.carrier_bar)
            );
            return ExitCode::FAILURE;
        }
        if report.carrier.fpr_full > cfg.fpr {
            eprintln!(
                "error: benign-carrier FPR {:.4} exceeds target {:.4}",
                report.carrier.fpr_full, cfg.fpr
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
