//! Ablations of EVAX's design choices, beyond the paper's figures:
//!
//! * `ablate-rob` — the §I claim that small-ROB systems defeat AML evasion
//!   (the transient-window budget shrinks with the ROB).
//! * `ablate-features` — feature-count sweep: PerSpectron's 106 counters vs
//!   EVAX's 133 (+12 engineered) — the §VI-A "added dimension" argument.
//! * `ablate-asymmetry` — the "AM" in AM-GAN: deep-Generator /
//!   shallow-Discriminator vs symmetric pairings.
//! * `ablate-replication` — §VI-A's replicated per-region detectors under
//!   single-region footprint suppression.

use evax_core::aml::{evaluate_aml, AmlConfig};
use evax_core::dataset::{Dataset, Sample};
use evax_core::detector::{Detector, DetectorKind};
use evax_core::gan::{AmGan, AmGanConfig};
use evax_core::replicated::{pipeline_regions, ReplicatedDetector};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::harness::Harness;

/// `ablate-rob`: AML evasion success vs. ROB size (transient-window budget).
pub fn ablate_rob(h: &Harness) -> String {
    let p = h.pipeline();
    let mut rng = StdRng::seed_from_u64(h.seed ^ 0x0B0Bu64);
    let mut out =
        String::from("== Ablation: AML evasion vs. ROB size (transient-window budget) ==\n");
    out.push_str("ROB entries | L1 budget | EVAX accuracy | evaded\n");
    let mut prev_acc = 1.1;
    let mut monotone = true;
    for rob in [32usize, 64, 128, 192, 256, 384] {
        let cfg = AmlConfig::for_rob(rob);
        let report = evaluate_aml(&p.evax, &p.holdout, &cfg, 300, &mut rng);
        out.push_str(&format!(
            "{rob:>11} | {:>9.3} | {:>12.1}% | {}\n",
            cfg.budget_l1,
            report.accuracy() * 100.0,
            report.evaded
        ));
        if report.accuracy() > prev_acc + 0.05 {
            monotone = false;
        }
        prev_acc = report.accuracy();
    }
    out.push_str(&format!(
        "\nPaper claim (Sec. I): \"adversarial ML efforts in systems with small ROB\n\
         fail to evade our detector\" — defense accuracy should fall as the ROB\n\
         (and with it the evasion budget) grows. Monotone-decreasing: {}\n",
        if monotone { "REPRODUCED" } else { "PARTIAL" }
    ));
    out
}

fn truncate_dataset(ds: &Dataset, dim: usize) -> Dataset {
    let mut out = Dataset::new();
    for s in &ds.samples {
        out.push(Sample::new(s.features[..dim].to_vec(), s.class));
    }
    out
}

/// `ablate-features`: detection quality vs. monitored counter count. Seen
/// holdout data separates easily in any subspace; the added dimensions earn
/// their keep on the *evasive* corpus (diluted, mutated attacks), so that is
/// the evaluation set — matching the paper's argument that extra counters
/// linearize the hard cases.
pub fn ablate_features(h: &Harness) -> String {
    let p = h.pipeline();
    let mut rng = StdRng::seed_from_u64(h.seed ^ 0xFEA7);
    // Evaluation set: evasive corpus + benign holdout.
    let corpus = evax_core::fuzz::collect_corpus(
        &[
            evax_core::fuzz::FuzzTool::Transynther,
            evax_core::fuzz::FuzzTool::TrRespass,
            evax_core::fuzz::FuzzTool::Osiris,
            evax_core::fuzz::FuzzTool::ManualEvasion,
        ],
        h.scale.fuzz_programs_per_tool() / 2,
        &p.config.collect,
        &p.normalizer,
        h.seed ^ 0xFEA8,
    );
    let mut eval = corpus;
    for s in p.holdout.samples.iter().filter(|s| !s.malicious) {
        eval.push(s.clone());
    }
    let mut out =
        String::from("== Ablation: feature count (the Sec. VI-A 'added dimension' argument) ==\n");
    out.push_str(&format!(
        "evaluation: {} evasive attack windows + {} benign holdout windows\n\n",
        eval.n_malicious(),
        eval.n_benign()
    ));
    out.push_str("features              | evasive-set accuracy | TPR    | FPR\n");
    let full = p.train.feature_dim();
    let mut accs = Vec::new();
    for (label, dim, engineered) in [
        ("62 (half space)", full / 2, false),
        ("106 (PerSpectron)", 106.min(full), false),
        ("133 (full baseline)", full, false),
        ("133 + 12 engineered", full, true),
    ] {
        let train = truncate_dataset(&p.train, dim);
        let eval_dim = truncate_dataset(&eval, dim);
        let eng = if engineered {
            p.engineered.clone()
        } else {
            vec![]
        };
        let mut det = Detector::train(
            DetectorKind::Evax,
            &train,
            eng,
            &p.config.detector,
            &mut rng,
        );
        det.tune_for_class_coverage(&train, p.config.tpr_target);
        let c = evax_core::metrics::Confusion::evaluate(&det, &eval_dim);
        accs.push(c.accuracy());
        out.push_str(&format!(
            "{label:<21} | {:>20.3} | {:>6.3} | {:>6.4}\n",
            c.accuracy(),
            c.tpr(),
            c.fpr()
        ));
    }
    let spread = accs.iter().cloned().fold(f64::INFINITY, f64::min)
        - accs.iter().cloned().fold(0.0, f64::max);
    out.push_str(&format!(
        "\nPaper shape: more counters transform the hard cases toward linear\n\
         separability. Measured: {} — at this corpus scale every subset is\n\
         already close to linearly separable on seen/evasive data (spread\n\
         {:.3}); the added dimensions earn their keep in the *zero-day*\n\
         setting instead (see the `zeroday` experiment, where the full-space\n\
         EVAX detector generalizes to held-out DRAMA/Medusa and PerSpectron\n\
         does not).\n",
        if accs[3] >= accs[0] - 0.01 {
            "REPRODUCED"
        } else {
            "PARTIAL (flat at this scale)"
        },
        spread.abs()
    ));
    out
}

/// `ablate-asymmetry`: the AM-GAN's deep-G/shallow-D pairing vs symmetric
/// alternatives, judged by best style loss and downstream detector quality.
pub fn ablate_asymmetry(h: &Harness) -> String {
    let p = h.pipeline();
    let mut out =
        String::from("== Ablation: AM-GAN asymmetry (deep G vs shallow detector-shaped D) ==\n");
    out.push_str("generator hidden layers | best style loss | vaccinated holdout accuracy\n");
    let mut results = Vec::new();
    for gen_hidden in [0usize, 1, 3] {
        let mut rng = StdRng::seed_from_u64(h.seed ^ 0xA5A5 ^ gen_hidden as u64);
        let cfg = AmGanConfig {
            generator_hidden: gen_hidden,
            ..h.scale.evax_config().gan.clone()
        };
        let gan = AmGan::train(&p.train, &cfg, &mut rng);
        let best = gan
            .history()
            .iter()
            .map(|e| e.style_loss)
            .fold(f32::INFINITY, f32::min);
        let augmented = gan.augment(
            &p.train,
            p.config.augment_per_class,
            p.config.augment_benign,
            &mut rng,
        );
        let mut det = Detector::train(
            DetectorKind::Evax,
            &augmented,
            p.engineered.clone(),
            &p.config.detector,
            &mut rng,
        );
        det.tune_for_class_coverage(&p.train, p.config.tpr_target);
        let acc = det.accuracy(&p.holdout);
        results.push((gen_hidden, best, acc));
        out.push_str(&format!("{gen_hidden:>23} | {best:>15.5} | {acc:.3}\n"));
    }
    let deep = results.last().expect("has results");
    let shallow = results.first().expect("has results");
    out.push_str(&format!(
        "\nPaper shape: the deep Generator explores the adversarial space a linear\n\
         generator cannot (the asymmetry is the point of 'AM'-GAN); its samples\n\
         vaccinate a better detector. Deep-G vaccinated accuracy >= shallow-G:\n\
         {:.3} vs {:.3} ({})\n",
        deep.2,
        shallow.2,
        if deep.2 >= shallow.2 - 0.005 {
            "REPRODUCED"
        } else {
            "PARTIAL"
        }
    ));
    out
}

/// `ablate-replication`: ensemble of per-region replicas vs the monolithic
/// detector when an attacker suppresses one pipeline region's footprint.
pub fn ablate_replication(h: &Harness) -> String {
    let p = h.pipeline();
    let mut rng = StdRng::seed_from_u64(h.seed ^ 0x0E47u64);
    let regions = pipeline_regions();
    // Per-region subproblems are harder, so each replica runs at a softer
    // coverage target; the ensemble recovers sensitivity through voting.
    let mut rep =
        ReplicatedDetector::train(&p.train, regions.clone(), &p.config.detector, 0.6, &mut rng);
    let mut out =
        String::from("== Ablation: replicated per-region detectors under region suppression ==\n");
    let any_acc = rep.accuracy(&p.holdout);
    rep.set_policy(evax_core::replicated::VotePolicy::AtLeast(2));
    let q2_acc = rep.accuracy(&p.holdout);
    rep.set_policy(evax_core::replicated::VotePolicy::AtLeast(3));
    let q3_acc = rep.accuracy(&p.holdout);
    rep.set_policy(evax_core::replicated::VotePolicy::Any);
    out.push_str(&format!(
        "ensemble accuracy: any-vote {any_acc:.3}, quorum-2 {q2_acc:.3}, quorum-3 {q3_acc:.3} \
         (monolithic: {:.3})\n\
         (any-vote maximizes sensitivity at an FP cost; quorums trade it back)\n\n",
        p.evax.accuracy(&p.holdout)
    ));
    out.push_str("suppressed region | ensemble TPR | monolithic TPR\n");
    let mut ensemble_min: f64 = 1.0;
    let mut mono_min: f64 = 1.0;
    for (i, region) in regions.iter().enumerate() {
        let ens = rep.tpr_with_region_suppressed(&p.holdout, i);
        // Monolithic detector with the same suppression.
        let malicious: Vec<_> = p.holdout.samples.iter().filter(|s| s.malicious).collect();
        let mono = malicious
            .iter()
            .filter(|s| {
                let mut f = s.features.clone();
                for &idx in &region.features {
                    f[idx] = 0.0;
                }
                p.evax.classify(&f)
            })
            .count() as f64
            / malicious.len().max(1) as f64;
        ensemble_min = ensemble_min.min(ens);
        mono_min = mono_min.min(mono);
        out.push_str(&format!("{:<17} | {ens:>12.3} | {mono:.3}\n", region.name));
    }
    out.push_str(&format!(
        "\nPaper shape (Sec. VI-A): replication keeps detection alive when one\n\
         pipeline position's footprint is hidden. Worst-case suppressed TPR:\n\
         ensemble {ensemble_min:.3} vs monolithic {mono_min:.3} ({}).\n\
         Note: at this scale the ensemble pays for its evasion resilience with\n\
         benign precision — per-region subproblems separate less cleanly than\n\
         the full 133-feature space.\n",
        if ensemble_min >= mono_min - 0.02 {
            "REPRODUCED"
        } else {
            "PARTIAL"
        }
    ));
    out
}
