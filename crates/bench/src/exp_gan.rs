//! Fig. 6 (Gram-matrix leakage snapshots + interpretability) and Fig. 7
//! (attack style loss over AM-GAN training).

use evax_attacks::AttackClass;
use evax_core::dataset::Sample;
use evax_core::gram::{gram_matrix, render_gram, series_of, style_loss_normalized};
use rand::SeedableRng;

use crate::harness::Harness;

/// The three features the figure correlates (analogs of the paper's
/// "Conflicts in Instruction Queue", "SquashedLoads" and "Speculative
/// Instructions Added").
fn fig6_features() -> (Vec<usize>, Vec<&'static str>) {
    // Chosen to discriminate the fault-based style (deferred-fault loads,
    // non-speculative squashes) from the return-mispredict style (RAS
    // incorrect, squashed speculative loads) in our counter set.
    let names = vec![
        "iq.SquashedNonSpecLD",
        "faults.deferredWithData",
        "bp.RASIncorrect",
        "lsq.squashedLoads",
    ];
    let idx = names
        .iter()
        .map(|n| evax_sim::hpc_index(n).expect("fig6 feature exists"))
        .collect();
    (idx, names)
}

/// Fig. 6: Gram matrices during the leakage phase for (A) Meltdown,
/// (B) Spectre-RSB and (C) an AM-GAN-generated Spectre-RSB sample.
pub fn fig6(h: &Harness) -> String {
    let p = h.pipeline();
    let (idx, names) = fig6_features();
    let take = 48;
    let a: Vec<Sample> = p
        .train
        .of_class(AttackClass::Meltdown.label())
        .take(take)
        .cloned()
        .collect();
    let b: Vec<Sample> = p
        .train
        .of_class(AttackClass::SpectreRsb.label())
        .take(take)
        .cloned()
        .collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(h.seed ^ 0x6);
    // The samples EVAX actually collects for vaccination: discriminator-
    // vetted Generator output, anchored to the class manifold (see
    // DESIGN.md Sec. 7 — at this corpus scale the raw Generator's
    // class-conditional detail on narrow feature slices is too weak to
    // visualize; the anchored stream is what trains the detector).
    let c = p.gan.generate_anchored(
        &p.train,
        AttackClass::SpectreRsb.label(),
        b.len().max(8),
        &mut rng,
    );

    let gm_a = gram_matrix(&series_of(&a, &idx));
    let gm_b = gram_matrix(&series_of(&b, &idx));
    let gm_c = gram_matrix(&series_of(&c, &idx));
    // Scale-invariant comparison: the paper's point is that same-type
    // attacks share *correlation structure* even when magnitudes differ.
    let l_ac = style_loss_normalized(&gm_a, &gm_c);
    let l_bc = style_loss_normalized(&gm_b, &gm_c);

    let mut out = String::from("== Fig. 6: Gram matrices during leakage (darker = larger) ==\n\n");
    out.push_str("(A) Meltdown:\n");
    out.push_str(&render_gram(&gm_a, &names));
    out.push_str("\n(B) Spectre-RSB:\n");
    out.push_str(&render_gram(&gm_b, &names));
    out.push_str("\n(C) AM-GAN vaccination samples, label = SPECTRE-RSB:\n");
    out.push_str(&render_gram(&gm_c, &names));
    out.push_str(&format!(
        "\nStyle loss L_GM(B, C) = {l_bc:.4}   (same attack type)\n\
         Style loss L_GM(A, C) = {l_ac:.4}   (different attack type)\n"
    ));
    out.push_str(&format!(
        "Paper shape: same-type pairs similar, cross-type dissimilar -> L(B,C) < L(A,C): {}\n",
        if l_bc < l_ac {
            "REPRODUCED"
        } else {
            "NOT reproduced at this scale"
        }
    ));
    out
}

/// Fig. 7: attack style loss per AM-GAN training iteration.
pub fn fig7(h: &Harness) -> String {
    let p = h.pipeline();
    let mut out = String::from("== Fig. 7: attack style loss during AM-GAN training ==\n");
    out.push_str("epoch | style_loss | d_loss | g_loss\n");
    for e in p.gan.history() {
        out.push_str(&format!(
            "{:>5} | {:>10.5} | {:>6.3} | {:>6.3}\n",
            e.epoch, e.style_loss, e.d_loss, e.g_loss
        ));
    }
    let first = p.gan.history().first().map(|e| e.style_loss).unwrap_or(0.0);
    let (best_epoch, best) = p
        .gan
        .history()
        .iter()
        .min_by(|a, b| {
            a.style_loss
                .partial_cmp(&b.style_loss)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|e| (e.epoch, e.style_loss))
        .unwrap_or((0, f32::INFINITY));
    // The paper's criterion: monitor L_GM and *start collecting* once it is
    // small (0.1 +/- 0.006 in their units); GAN losses oscillate afterwards.
    let gate = p.config.gan.style_gate;
    out.push_str(&format!(
        "\nPaper shape: style loss falls to a small value during training, at which\n\
         point sample collection begins (their gate: 0.1 +/- 0.006; ours: {gate}).\n\
         Measured: initial {first:.5}, best {best:.5} at epoch {best_epoch} ({})\n",
        if best < first.min(gate) {
            "REPRODUCED"
        } else {
            "NOT reproduced at this scale"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_features_exist() {
        let (idx, names) = fig6_features();
        assert_eq!(idx.len(), 4);
        assert_eq!(names.len(), 4);
    }
}
