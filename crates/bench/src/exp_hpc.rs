//! Figs. 9–11: complex/engineered HPC time series that separate attack
//! classes from benign execution.

use evax_attacks::benign::Scale;
use evax_attacks::{build_attack, build_benign, AttackClass, BenignKind, KernelParams};
use evax_core::collect::{raw_windows, CollectConfig};
use evax_sim::CpuConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::harness::Harness;

fn windows_for(program: &evax_sim::Program, interval: u64) -> Vec<Vec<f64>> {
    let cfg = CollectConfig {
        interval,
        max_instrs: 8_000,
        ..Default::default()
    };
    raw_windows(program, &cfg, &CpuConfig::default())
}

fn series(values: &[Vec<f64>], feature: &str) -> Vec<f64> {
    let idx = evax_sim::hpc_index(feature).expect("feature exists");
    values.iter().map(|w| w[idx]).collect()
}

fn sparkline(xs: &[f64]) -> String {
    let blocks = [' ', '.', ':', '-', '=', '+', '*', '#'];
    let max = xs.iter().cloned().fold(0.0f64, f64::max).max(1e-9);
    xs.iter()
        .map(|&v| blocks[((v / max) * (blocks.len() - 1) as f64).round() as usize])
        .collect()
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn render_rows(rows: &[(String, Vec<f64>)]) -> String {
    let mut out = String::new();
    for (label, xs) in rows {
        out.push_str(&format!(
            "{label:>28} | {} | mean={:.2}\n",
            sparkline(xs),
            mean(xs)
        ));
    }
    out
}

/// Fig. 9: `cleanEvicts`-style complex HPCs detect stealthy cache attacks.
pub fn fig9(h: &Harness) -> String {
    let mut rng = StdRng::seed_from_u64(h.seed ^ 0x9);
    let params = KernelParams::default();
    let feature = "dcache.cleanEvicts";
    let mut rows = Vec::new();
    for class in [
        AttackClass::PrimeProbe,
        AttackClass::FlushReload,
        AttackClass::FlushFlush,
    ] {
        let program = build_attack(class, &params, &mut rng);
        let w = windows_for(&program, 100);
        rows.push((class.name().to_string(), series(&w, feature)));
    }
    for kind in [BenignKind::Compression, BenignKind::MatrixAi] {
        let program = build_benign(kind, Scale(8_000), &mut rng);
        let w = windows_for(&program, 100);
        rows.push((format!("benign:{}", kind.name()), series(&w, feature)));
    }
    let attack_mean = mean(
        &rows[..3]
            .iter()
            .flat_map(|(_, xs)| xs.clone())
            .collect::<Vec<_>>(),
    );
    let benign_mean = mean(
        &rows[3..]
            .iter()
            .flat_map(|(_, xs)| xs.clone())
            .collect::<Vec<_>>(),
    );
    let mut out = format!("== Fig. 9: complex HPC '{feature}' on stealthy cache attacks ==\n");
    out.push_str(&render_rows(&rows));
    out.push_str(&format!(
        "\nPaper shape: the complex HPC fires on cache attacks, quiet on benign.\n\
         Measured means: attacks={attack_mean:.2} benign={benign_mean:.2} ({})\n",
        if attack_mean > benign_mean {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    ));
    out
}

/// Fig. 10: speculative/squash HPCs detect Spectre/Meltdown-type attacks.
pub fn fig10(h: &Harness) -> String {
    let mut rng = StdRng::seed_from_u64(h.seed ^ 0x10);
    let params = KernelParams::default();
    let feature = "iew.ExecSquashedInsts";
    let mut rows = Vec::new();
    for class in [
        AttackClass::SpectrePht,
        AttackClass::SpectreRsb,
        AttackClass::Meltdown,
    ] {
        let program = build_attack(class, &params, &mut rng);
        let w = windows_for(&program, 100);
        rows.push((class.name().to_string(), series(&w, feature)));
    }
    for kind in [BenignKind::Scheduler, BenignKind::Astar] {
        let program = build_benign(kind, Scale(8_000), &mut rng);
        let w = windows_for(&program, 100);
        rows.push((format!("benign:{}", kind.name()), series(&w, feature)));
    }
    let attack_mean = mean(
        &rows[..3]
            .iter()
            .flat_map(|(_, xs)| xs.clone())
            .collect::<Vec<_>>(),
    );
    let benign_mean = mean(
        &rows[3..]
            .iter()
            .flat_map(|(_, xs)| xs.clone())
            .collect::<Vec<_>>(),
    );
    let mut out =
        format!("== Fig. 10: complex HPC '{feature}' on speculative/Meltdown-type attacks ==\n");
    out.push_str(&render_rows(&rows));
    out.push_str(&format!(
        "\nPaper shape: squashed-execution HPCs fire on transient attacks.\n\
         Measured means: attacks={attack_mean:.2} benign={benign_mean:.2} ({})\n",
        if attack_mean > benign_mean * 1.5 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    ));
    out
}

/// Fig. 11: the engineered `SquashedBytesReadFromWRQu`-style HPC detects
/// unseen MDS-type and LVI attacks.
pub fn fig11(h: &Harness) -> String {
    let mut rng = StdRng::seed_from_u64(h.seed ^ 0x11);
    let params = KernelParams::default();
    // The engineered AND of squashed loads and store-buffer forwarding —
    // exactly the combination the paper's SquashedBytesReadFromWRQu fuses.
    let f1 = "lsq.falseForwards";
    let f2 = "lsq.forwLoads";
    let mut rows = Vec::new();
    for class in [
        AttackClass::Lvi,
        AttackClass::Fallout,
        AttackClass::MedusaCacheIndexing,
        AttackClass::MedusaShadowRepMov,
    ] {
        let program = build_attack(class, &params, &mut rng);
        let w = windows_for(&program, 100);
        let s1 = series(&w, f1);
        let s2 = series(&w, f2);
        let anded: Vec<f64> = s1.iter().zip(&s2).map(|(a, b)| a.min(*b)).collect();
        rows.push((class.name().to_string(), anded));
    }
    for kind in [BenignKind::DiscreteEvent, BenignKind::GeneDp] {
        let program = build_benign(kind, Scale(8_000), &mut rng);
        let w = windows_for(&program, 100);
        let s1 = series(&w, f1);
        let s2 = series(&w, f2);
        let anded: Vec<f64> = s1.iter().zip(&s2).map(|(a, b)| a.min(*b)).collect();
        rows.push((format!("benign:{}", kind.name()), anded));
    }
    let attack_mean = mean(
        &rows[..4]
            .iter()
            .flat_map(|(_, xs)| xs.clone())
            .collect::<Vec<_>>(),
    );
    let benign_mean = mean(
        &rows[4..]
            .iter()
            .flat_map(|(_, xs)| xs.clone())
            .collect::<Vec<_>>(),
    );
    let mut out = format!(
        "== Fig. 11: engineered HPC min({f1}, {f2}) (SquashedBytesReadFromWRQu analog) ==\n"
    );
    out.push_str(&render_rows(&rows));
    out.push_str(&format!(
        "\nPaper shape: the engineered HPC exposes MDS-type and LVI attacks.\n\
         Measured means: attacks={attack_mean:.3} benign={benign_mean:.3} ({})\n",
        if attack_mean > benign_mean {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales() {
        let s = sparkline(&[0.0, 1.0, 2.0, 4.0]);
        assert_eq!(s.len(), 4);
        assert!(s.ends_with('#'));
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }
}
