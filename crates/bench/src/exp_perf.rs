//! Figs. 14–16: the performance side — IPC timelines, FP/FN rates, and
//! end-to-end overhead of the adaptive architecture.

use evax_attacks::benign::Scale;
use evax_attacks::{build_benign, BenignKind};
use evax_core::metrics::Confusion;
use evax_core::prelude::{CollectConfig, EvaxConfig, EvaxPipeline};
use evax_defense::adaptive::{run_adaptive, run_fixed, AdaptiveConfig, Policy};
use evax_defense::overhead::{measure_workload_with, summarize, OverheadRow};
use evax_sim::{CpuConfig, MitigationMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::harness::Harness;

fn sparkline(xs: &[f64], max: f64) -> String {
    let blocks = [' ', '.', ':', '-', '=', '+', '*', '#'];
    xs.iter()
        .map(|&v| {
            blocks[((v / max.max(1e-9)).min(1.0) * (blocks.len() - 1) as f64).round() as usize]
        })
        .collect()
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Fig. 14: IPC timeline of the adaptive architecture vs. PerSpectron-gated
/// and always-on InvisiSpec, on a benign stream with an attack phase spliced
/// into the middle (the paper's mixed-timeline scenario).
pub fn fig14(h: &Harness) -> String {
    let p = h.pipeline();
    let cpu_cfg = CpuConfig::default();
    let max_instrs = h.scale.perf_instrs();
    let interval = p.sample_interval * 5;
    let mut rng = StdRng::seed_from_u64(h.seed ^ 0x14);
    let before = build_benign(BenignKind::Compression, Scale(max_instrs * 2 / 5), &mut rng);
    let attack = evax_attacks::build_attack(
        evax_attacks::AttackClass::SpectrePht,
        &evax_attacks::KernelParams {
            iterations: (max_instrs / 2_000) as u32,
            ..Default::default()
        },
        &mut rng,
    );
    let after = build_benign(BenignKind::Scheduler, Scale(max_instrs * 2 / 5), &mut rng);
    let workload =
        evax_attacks::compose::compose(&[before, attack, after]).expect("timeline composes");

    let baseline = run_fixed(
        &cpu_cfg,
        &workload,
        MitigationMode::None,
        interval,
        max_instrs,
    );
    let invisi = run_fixed(
        &cpu_cfg,
        &workload,
        MitigationMode::InvisiSpecFuturistic,
        interval,
        max_instrs,
    );
    let a_cfg = |policy| AdaptiveConfig {
        sample_interval: interval,
        secure_window: interval * 20,
        policy,
    };
    let evax_spectre = run_adaptive(
        &cpu_cfg,
        &workload,
        &p.evax,
        &p.normalizer,
        &a_cfg(Policy::FenceSpectre),
        max_instrs,
    );
    let evax_futuristic = run_adaptive(
        &cpu_cfg,
        &workload,
        &p.evax,
        &p.normalizer,
        &a_cfg(Policy::FenceFuturistic),
        max_instrs,
    );
    let perspectron = run_adaptive(
        &cpu_cfg,
        &workload,
        &p.perspectron,
        &p.normalizer,
        &a_cfg(Policy::FenceSpectre),
        max_instrs,
    );

    let series: Vec<(&str, Vec<f64>)> = vec![
        (
            "baseline (no mitigation)",
            baseline.ipc_series.iter().map(|&(_, i)| i).collect(),
        ),
        (
            "InvisiSpec always-on",
            invisi.ipc_series.iter().map(|&(_, i)| i).collect(),
        ),
        (
            "PerSpectron-adaptive",
            perspectron.ipc_series.iter().map(|&(_, i)| i).collect(),
        ),
        (
            "EVAX-SpectreSafe",
            evax_spectre.ipc_series.iter().map(|&(_, i)| i).collect(),
        ),
        (
            "EVAX-FuturisticSafeFence",
            evax_futuristic.ipc_series.iter().map(|&(_, i)| i).collect(),
        ),
    ];
    let max = series
        .iter()
        .flat_map(|(_, xs)| xs.iter().copied())
        .fold(0.0f64, f64::max);
    let mut out =
        String::from("== Fig. 14: IPC timeline under adaptive policies (benign region) ==\n");
    for (name, xs) in &series {
        out.push_str(&format!(
            "{name:>26} | {} | mean IPC {:.3}\n",
            sparkline(xs, max),
            mean(xs)
        ));
    }
    out.push_str(&format!(
        "\nTimeline: benign | spectre-pht attack | benign. Flags raised:\n\
         PerSpectron={} EVAX={} (secure-mode coverage EVAX: {}/{} instructions)\n",
        perspectron.flags,
        evax_spectre.flags,
        evax_spectre.secure_instructions,
        evax_spectre.result.committed_instructions
    ));
    let base_ipc = mean(&series[0].1);
    let evax_ipc = mean(&series[3].1);
    let invisi_ipc = mean(&series[1].1);
    out.push_str(&format!(
        "Paper shape: EVAX keeps IPC near baseline in benign regions (dipping only\n\
         while secure mode covers the attack); always-on InvisiSpec lowest\n\
         throughout. Measured mean IPC ratios: EVAX/baseline = {:.3},\n\
         InvisiSpec/baseline = {:.3}; attack flagged: {} ({})\n",
        evax_ipc / base_ipc.max(1e-9),
        invisi_ipc / base_ipc.max(1e-9),
        evax_spectre.flags > 0,
        if evax_ipc > invisi_ipc && evax_spectre.flags > 0 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    ));
    out
}

/// Fig. 15: FP/FN distribution per sampling granularity.
pub fn fig15(h: &Harness) -> String {
    let mut out = String::from("== Fig. 15: false positives / negatives per 10k instructions ==\n");
    out.push_str("interval | detector    | FP/10k    | FN/10k    | accuracy\n");
    let base_cfg = h.scale.evax_config();
    for &interval in &[100u64, 1_000, 10_000] {
        let cfg = EvaxConfig {
            collect: CollectConfig {
                interval,
                // Longer runs for coarse intervals so each run yields windows.
                max_instrs: base_cfg.collect.max_instrs.max(interval * 12),
                benign_scale: base_cfg.collect.benign_scale.max(interval * 12),
                ..base_cfg.collect.clone()
            },
            ..base_cfg.clone()
        };
        let p = EvaxPipeline::run(&cfg, h.seed ^ interval);
        for (name, det) in [("EVAX", &p.evax), ("PerSpectron", &p.perspectron)] {
            let c = Confusion::evaluate(det, &p.holdout);
            out.push_str(&format!(
                "{:>8} | {:<11} | {:>9.4} | {:>9.4} | {:.3}\n",
                interval,
                name,
                c.fp_per_instructions(interval, 10_000),
                c.fn_per_instructions(interval, 10_000),
                c.accuracy()
            ));
        }
    }
    out.push_str(
        "\nPaper shape: EVAX ~85% fewer FPs and ~72% fewer FNs than PerSpectron;\n\
         FP rate falls with finer sampling (0.0005 FP/10k at 100-instr sampling,\n\
         0.034 FP/10k at 10k-instr sampling).\n",
    );
    out
}

/// Fig. 16: end-to-end defense performance comparison.
pub fn fig16(h: &Harness) -> String {
    let p = h.pipeline();
    let max_instrs = h.scale.perf_instrs();
    let scale = max_instrs;
    let mut out =
        String::from("== Fig. 16: end-to-end defense overhead (geomean over workloads) ==\n");
    out.push_str(
        "policy                  | always-on | EVAX-adaptive | PerSpectron-adaptive | reduction\n",
    );
    let paper: &[(&str, f64, f64)] = &[
        ("Fence-Spectre", 0.74, 0.0346),
        ("InvisiSpec-Spectre", 0.27, 0.0126),
        ("Fence-Futuristic", 2.09, 0.10),
        ("InvisiSpec-Futuristic", 0.75, 0.04),
    ];
    let mut reproduced = 0;
    for &policy in &[
        Policy::FenceSpectre,
        Policy::InvisiSpecSpectre,
        Policy::FenceFuturistic,
        Policy::InvisiSpecFuturistic,
    ] {
        let kinds = [
            BenignKind::Compression,
            BenignKind::MatrixAi,
            BenignKind::Scheduler,
            BenignKind::GeneDp,
        ];
        let evax_rows: Vec<OverheadRow> = kinds
            .iter()
            .map(|&k| {
                measure_workload_with(
                    &p.evax,
                    &p.normalizer,
                    p.sample_interval,
                    k,
                    policy,
                    max_instrs,
                    scale,
                    h.seed ^ 0x16,
                )
            })
            .collect();
        let persp_rows: Vec<OverheadRow> = kinds
            .iter()
            .map(|&k| {
                measure_workload_with(
                    &p.perspectron,
                    &p.normalizer,
                    p.sample_interval,
                    k,
                    policy,
                    max_instrs,
                    scale,
                    h.seed ^ 0x16,
                )
            })
            .collect();
        let (always, evax_adaptive) = summarize(&evax_rows);
        let (_, persp_adaptive) = summarize(&persp_rows);
        let reduction = if always > 0.0 {
            1.0 - evax_adaptive / always
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<23} | {:>8.1}% | {:>12.2}% | {:>19.2}% | {:>6.1}%\n",
            policy.name(),
            always * 100.0,
            evax_adaptive * 100.0,
            persp_adaptive * 100.0,
            reduction * 100.0
        ));
        if reduction > 0.5 && evax_adaptive <= persp_adaptive + 1e-9 {
            reproduced += 1;
        }
    }
    out.push_str("\nPaper reference (always-on -> EVAX-adaptive):\n");
    for (name, a, e) in paper {
        out.push_str(&format!(
            "  {:<23} {:>5.0}% -> {:>5.2}%  ({:.0}% reduction)\n",
            name,
            a * 100.0,
            e * 100.0,
            (1.0 - e / a) * 100.0
        ));
    }
    out.push_str(&format!(
        "\nShape check (>=50% reduction and EVAX <= PerSpectron overhead on every policy): {}/4 {}\n",
        reproduced,
        if reproduced >= 3 { "REPRODUCED" } else { "PARTIAL" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_handles_flat_series() {
        let s = sparkline(&[1.0, 1.0], 1.0);
        assert_eq!(s.len(), 2);
    }
}
