//! Figs. 17–18: resiliency against fuzzing-generated evasive attacks and
//! adversarial-ML evasion.

use evax_core::aml::{evaluate_aml, AmlConfig};
use evax_core::detector::{Detector, DetectorKind};
use evax_core::fuzz::{collect_corpus, FuzzTool};
use evax_core::metrics::{auc, roc_curve, score_dataset};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::harness::Harness;

/// Fig. 17: ROC / AUC of PerSpectron vs EVAX on evasive corpora generated
/// by Transynther/TRRespass/Osiris analogs (paper: 1.2M samples, AUC
/// 0.797 -> 0.985; counts scaled here).
pub fn fig17(h: &Harness) -> String {
    let p = h.pipeline();
    let n = h.scale.fuzz_programs_per_tool();
    let corpus = collect_corpus(
        &[FuzzTool::Transynther, FuzzTool::TrRespass, FuzzTool::Osiris],
        n,
        &p.config.collect,
        &p.normalizer,
        h.seed ^ 0x17,
    );
    // Mix in benign holdout samples so the ROC has negatives.
    let mut eval = corpus.clone();
    for s in p.holdout.samples.iter().filter(|s| !s.malicious) {
        eval.push(s.clone());
    }
    let mut out = format!(
        "== Fig. 17: resiliency against {} evasive attack samples (scaled from the paper's 1.2M) ==\n",
        corpus.len()
    );
    let mut aucs = Vec::new();
    let mut deployed_tpr = Vec::new();
    for (name, det) in [("PerSpectron", &p.perspectron), ("EVAX", &p.evax)] {
        let scored = score_dataset(det, &eval);
        let roc = roc_curve(&scored);
        let area = auc(&roc);
        aucs.push(area);
        // Deployment operating point: the tuned threshold.
        let mal: Vec<bool> = corpus
            .samples
            .iter()
            .map(|s| det.classify_sample(s))
            .collect();
        let tpr_at_thr = mal.iter().filter(|&&f| f).count() as f64 / mal.len().max(1) as f64;
        deployed_tpr.push(tpr_at_thr);
        out.push_str(&format!(
            "\n{name}: AUC = {area:.3}, evasive-window TPR at deployed threshold = {tpr_at_thr:.3}\nROC (fpr, tpr): "
        ));
        for target in [0.01, 0.05, 0.1, 0.25, 0.5] {
            if let Some(pt) = roc.iter().find(|pt| pt.fpr >= target) {
                out.push_str(&format!("({:.2}, {:.2}) ", pt.fpr, pt.tpr));
            }
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "\nPaper shape: AUC 0.797 (PerSpectron) -> 0.985 (EVAX), a 23.5% improvement.\n\
         Measured: AUC {:.3} -> {:.3}; deployed-threshold window TPR {:.3} -> {:.3} ({})\n",
        aucs[0],
        aucs[1],
        deployed_tpr[0],
        deployed_tpr[1],
        if aucs[1] >= aucs[0] - 0.01 && deployed_tpr[1] >= deployed_tpr[0] {
            "REPRODUCED"
        } else {
            "PARTIAL"
        }
    ));
    out
}

/// Fig. 18: filling the adversarial space — accuracy against AML evasion,
/// with the perturbation budget bounded by the transient window (ROB).
pub fn fig18(h: &Harness) -> String {
    let p = h.pipeline();
    let mut rng = StdRng::seed_from_u64(h.seed ^ 0x18);
    // The fuzz-hardened baseline the paper says plateaus at 78%.
    let fuzz = collect_corpus(
        &[FuzzTool::Transynther, FuzzTool::TrRespass, FuzzTool::Osiris],
        h.scale.fuzz_programs_per_tool(),
        &p.config.collect,
        &p.normalizer,
        h.seed ^ 0x1818,
    );
    let mut fuzz_train = p.train.clone();
    for s in &fuzz.samples {
        fuzz_train.push(s.clone());
    }
    let mut pfuzzer = Detector::train(
        DetectorKind::PerSpectron,
        &fuzz_train,
        vec![],
        &p.config.detector,
        &mut rng,
    );
    pfuzzer.tune_above_benign(&p.train, 0.9995, 0.05);

    let cfg = AmlConfig::for_rob(evax_sim::CpuConfig::default().rob_entries);
    let limit = 300;
    let mut out = String::from(
        "== Fig. 18: accuracy against adversarial-ML evasion (ROB-bounded budget) ==\n",
    );
    out.push_str(&format!(
        "evasion budget: L1 = {:.2} normalized units (ROB = 192)\n\n",
        cfg.budget_l1
    ));
    let mut accs = Vec::new();
    for (name, det) in [("PerSpectron+Fuzzer", &pfuzzer), ("EVAX", &p.evax)] {
        let report = evaluate_aml(det, &p.holdout, &cfg, limit, &mut rng);
        accs.push(report.accuracy());
        out.push_str(&format!(
            "{name:<18}: accuracy {:.1}%  (evaded={} disabled={} detected={}) zero-leakage={}\n",
            report.accuracy() * 100.0,
            report.evaded,
            report.disabled,
            report.detected,
            report.zero_leakage()
        ));
    }
    // Small-ROB ablation: the paper's claim that AML fails on small-ROB
    // systems because the transient window is tighter.
    let small = AmlConfig::for_rob(32);
    let small_report = evaluate_aml(&p.evax, &p.holdout, &small, limit, &mut rng);
    out.push_str(&format!(
        "\nSmall-ROB ablation (ROB=32 budget): EVAX accuracy {:.1}% (evaded={})\n",
        small_report.accuracy() * 100.0,
        small_report.evaded
    ));
    out.push_str(&format!(
        "\nPaper shape: fuzz-hardened plateaus ~78%; EVAX ~93% with zero leakage\n\
         beyond the boundary. Measured: {:.1}% -> {:.1}% ({})\n",
        accs[0] * 100.0,
        accs[1] * 100.0,
        if accs[1] >= accs[0] {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    ));
    out
}
