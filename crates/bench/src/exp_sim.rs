//! Simulator scheduling throughput: the event-driven core vs the reference
//! scan core on the full registry mix (every attack class + every benign
//! kind), reporting committed instructions per second and the speedup.
//!
//! Both schedulers are bit-identical by contract (see the golden-equivalence
//! tests); this experiment quantifies how much the event-driven hot path
//! buys. It also backs the `sim_instrs_per_sec` field of the experiment
//! runner's `--json` summary and the checked-in `BENCH_sim.json` baseline.

use evax_attacks::benign::Scale;
use evax_attacks::{build_attack, build_benign, KernelParams, ATTACK_CLASSES, BENIGN_KINDS};
use evax_sim::isa::Program;
use evax_sim::{Cpu, CpuConfig, SchedulerKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::harness::{timed, ExperimentScale, Harness};

/// Measured throughput of both scheduling cores on the registry mix.
#[derive(Debug, Clone, Copy)]
pub struct SimThroughput {
    /// Committed instructions per run of the mix (identical for both cores).
    pub committed: u64,
    /// Wall-clock seconds for the event-driven core.
    pub event_secs: f64,
    /// Wall-clock seconds for the reference scan core.
    pub scan_secs: f64,
}

impl SimThroughput {
    /// Event-driven committed instructions per second.
    pub fn event_ips(&self) -> f64 {
        self.committed as f64 / self.event_secs.max(1e-9)
    }

    /// Scan-reference committed instructions per second.
    pub fn scan_ips(&self) -> f64 {
        self.committed as f64 / self.scan_secs.max(1e-9)
    }

    /// Event-driven speedup over the scan reference.
    pub fn speedup(&self) -> f64 {
        self.scan_secs / self.event_secs.max(1e-9)
    }
}

/// Builds the registry mix: one program per attack class and benign kind,
/// seeded deterministically.
fn registry_mix(seed: u64, scale: ExperimentScale) -> Vec<Program> {
    let (iterations, benign_scale) = match scale {
        ExperimentScale::Small => (24, 3_000),
        ExperimentScale::Full => (64, 20_000),
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let params = KernelParams {
        iterations,
        ..Default::default()
    };
    let mut mix: Vec<Program> = ATTACK_CLASSES
        .iter()
        .map(|&c| build_attack(c, &params, &mut rng))
        .collect();
    mix.extend(
        BENIGN_KINDS
            .iter()
            .map(|&k| build_benign(k, Scale(benign_scale), &mut rng)),
    );
    mix
}

/// Runs the whole mix on fresh cores under one scheduler; returns the total
/// committed instructions and wall-clock seconds.
fn run_mix(mix: &[Program], scheduler: SchedulerKind, max_instrs: u64) -> (u64, f64) {
    let cfg = CpuConfig {
        scheduler,
        ..Default::default()
    };
    timed(|| {
        let mut committed = 0u64;
        for program in mix {
            let mut cpu = Cpu::new(cfg.clone());
            cpu.memory_mut()
                .write_u64(evax_attacks::mds::KERNEL_SECRET_ADDR, 5);
            committed += cpu.run(program, max_instrs).committed_instructions;
        }
        committed
    })
}

/// Measures both schedulers on the registry mix. One warm-up pass per core
/// stabilizes caches/allocator before the timed pass.
pub fn measure(seed: u64, scale: ExperimentScale) -> SimThroughput {
    let mix = registry_mix(seed, scale);
    let max_instrs = scale.perf_instrs();
    run_mix(&mix, SchedulerKind::EventDriven, max_instrs);
    let (event_committed, event_secs) = run_mix(&mix, SchedulerKind::EventDriven, max_instrs);
    run_mix(&mix, SchedulerKind::Scan, max_instrs);
    let (scan_committed, scan_secs) = run_mix(&mix, SchedulerKind::Scan, max_instrs);
    assert_eq!(
        event_committed, scan_committed,
        "schedulers must commit identical instruction counts"
    );
    SimThroughput {
        committed: event_committed,
        event_secs,
        scan_secs,
    }
}

/// The `sim-throughput` experiment report.
pub fn sim_throughput(harness: &Harness) -> String {
    let t = measure(harness.seed, harness.scale);
    let mut out = String::new();
    out.push_str("sim-throughput: event-driven vs scan scheduling on the registry mix\n");
    out.push_str(&format!(
        "  mix: {} attack + {} benign programs, {} committed instrs/core\n",
        ATTACK_CLASSES.len(),
        BENIGN_KINDS.len(),
        t.committed
    ));
    out.push_str(&format!(
        "  event-driven : {:>12.0} instrs/sec ({:.3}s)\n",
        t.event_ips(),
        t.event_secs
    ));
    out.push_str(&format!(
        "  scan (ref)   : {:>12.0} instrs/sec ({:.3}s)\n",
        t.scan_ips(),
        t.scan_secs
    ));
    out.push_str(&format!(
        "  speedup      : {:.2}x (results bit-identical; see golden-equivalence tests)\n",
        t.speedup()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_covers_whole_registry() {
        let mix = registry_mix(7, ExperimentScale::Small);
        assert_eq!(mix.len(), ATTACK_CLASSES.len() + BENIGN_KINDS.len());
    }

    #[test]
    fn both_schedulers_commit_identically_on_a_slice() {
        let mix = registry_mix(11, ExperimentScale::Small);
        let (a, _) = run_mix(&mix[..3], SchedulerKind::EventDriven, 10_000);
        let (b, _) = run_mix(&mix[..3], SchedulerKind::Scan, 10_000);
        assert_eq!(a, b);
        assert!(a > 0);
    }
}
