//! Table I (engineered security HPCs) and Table II (simulated architecture).

use evax_core::feature_engineering::render_table;
use evax_sim::CpuConfig;

use crate::harness::Harness;

/// Table II: parameters of the simulated architecture.
pub fn table2() -> String {
    let mut out = String::from("== Table II: parameters of the simulated architecture ==\n");
    out.push_str(&CpuConfig::default().to_table());
    out.push_str("\nPaper reference: X86 O3CPU 1 core @2GHz, tournament BP, 16 RAS,\n");
    out.push_str("4096 BTB, LQ/SQ=32, ROB=192, 8-wide, 256 phys regs, 32KB/4w L1I,\n");
    out.push_str("64KB/8w L1D, 2MB/8w L2 (matched by construction).\n");
    out
}

/// Table I: the 12 security HPCs engineered by mining the AM-GAN Generator.
pub fn table1(h: &Harness) -> String {
    let p = h.pipeline();
    let mut out = String::from(
        "== Table I: security HPCs engineered by EVAX (mined from the AM-GAN Generator) ==\n",
    );
    out.push_str(&render_table(&p.engineered));
    out.push_str("\nPaper reference (subset): SquashedBytes AND BytesReadFromWRQueue;\n");
    out.push_str("CommittedMaps AND rename.Undone; iew.MemOrderViolation AND dtlb.rdMisses;\n");
    out.push_str(
        "lsq.squashedStores AND lsq.forwLoads; membus.ReadSharedReq AND lsq.ignoredResponses;\n",
    );
    out.push_str("iq.SquashedNonSpecLD AND dcache.ReadReq_mshr_miss_latency;\n");
    out.push_str("rename.serializingInsts AND iew.ExecSquashedInsts.\n");
    out.push_str(&format!(
        "\nMeasured: {} features mined, arity 2, from the Generator's output layer.\n",
        p.engineered.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_is_config_accurate() {
        let t = table2();
        assert!(t.contains("ROBEntries=192"));
        assert!(t.contains("4096 BTB"));
        assert!(t.contains("2MB"));
    }
}
