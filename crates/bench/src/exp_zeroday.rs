//! Fig. 19 (k-fold zero-day generalization), Fig. 20 (EVAX training for
//! deep networks), and the §VIII-C zero-day TPR headlines.

use evax_attacks::AttackClass;
use evax_core::deep_eval::{evaluate_depths, DeepEvalConfig};
use evax_core::kfold::{leave_one_out, mean_errors, KfoldConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::harness::Harness;

fn kfold_cfg(h: &Harness) -> KfoldConfig {
    let evax_cfg = h.scale.evax_config();
    KfoldConfig {
        gan: evax_cfg.gan.clone(),
        detector: evax_cfg.detector.clone(),
        augment_per_class: evax_cfg.augment_per_class,
        augment_benign: evax_cfg.augment_benign,
        fuzz_programs_per_tool: 2,
        collect: evax_cfg.collect.clone(),
        tpr_target: evax_cfg.tpr_target,
        ..Default::default()
    }
}

/// Fig. 19: leave-one-attack-out generalization error for PerSpectron,
/// fuzz-hardened PerSpectron and EVAX.
pub fn fig19(h: &Harness) -> String {
    let p = h.pipeline();
    // The classes where zero-shot generalization is genuinely contested
    // (shared-feature classes like Spectre variants are detected by every
    // detector and would wash the comparison out).
    let classes = [
        AttackClass::MedusaCacheIndexing,
        AttackClass::MedusaUnalignedStl,
        AttackClass::Lvi,
        AttackClass::Drama,
        AttackClass::SmotherSpectre,
        AttackClass::LeakyBuddies,
    ];
    let folds = leave_one_out(
        &p.train,
        &p.normalizer,
        &classes,
        &kfold_cfg(h),
        h.seed ^ 0x19,
    );
    let mut out =
        String::from("== Fig. 19: k-fold (leave-one-attack-out) generalization error ==\n");
    out.push_str("held-out class        | PerSpectron | P.Fuzzer | EVAX\n");
    for f in &folds {
        out.push_str(&format!(
            "{:<21} | {:>11.3} | {:>8.3} | {:>5.3}\n",
            f.class.name(),
            f.error.perspectron,
            f.error.pfuzzer,
            f.error.evax
        ));
    }
    let m = mean_errors(&folds);
    out.push_str(&format!(
        "mean                  | {:>11.3} | {:>8.3} | {:>5.3}\n",
        m.perspectron, m.pfuzzer, m.evax
    ));
    out.push_str(&format!(
        "\nPaper shape: EVAX drops the mean generalization error of PerSpectron\n\
         (even fuzz-hardened) by an order of magnitude. Measured ratio:\n\
         PerSpectron/EVAX = {:.1}x, P.Fuzzer/EVAX = {:.1}x ({})\n",
        m.perspectron / m.evax.max(1e-6),
        m.pfuzzer / m.evax.max(1e-6),
        if m.evax < m.perspectron && m.evax < m.pfuzzer {
            "REPRODUCED"
        } else {
            "PARTIAL"
        }
    ));
    out
}

/// §VIII-C headline TPRs in the zero-day (leave-one-out) setting.
pub fn zeroday(h: &Harness) -> String {
    let p = h.pipeline();
    // The classes the paper calls out by name, including the three that
    // evade ("MicroScope, Leaky Buddies and SMotherSpectre all evade
    // detection when not part of the train set").
    let classes = [
        AttackClass::RdRand,
        AttackClass::FlushConflict,
        AttackClass::MedusaCacheIndexing,
        AttackClass::Drama,
        AttackClass::MicroScope,
        AttackClass::LeakyBuddies,
        AttackClass::SmotherSpectre,
    ];
    let folds = leave_one_out(
        &p.train,
        &p.normalizer,
        &classes,
        &kfold_cfg(h),
        h.seed ^ 0x2D,
    );
    let paper: &[(&str, f64, f64)] = &[
        ("rdrand-covert", 0.95, f64::NAN),
        ("flush-conflict", 0.97, 0.63),
        ("medusa-cache-indexing", 0.98, 0.38),
        ("drama", 0.99, f64::NAN),
    ];
    let mut out = String::from("== Zero-day TPRs (leave-one-out, paper Sec. VIII-C) ==\n");
    out.push_str(
        "held-out class        | EVAX TPR | PerSpectron TPR | paper (EVAX / PerSpectron)\n",
    );
    for f in &folds {
        let paper_ref = paper
            .iter()
            .find(|(n, _, _)| *n == f.class.name())
            .map(|(_, e, pp)| {
                if pp.is_nan() {
                    format!("{:.0}% / -", e * 100.0)
                } else {
                    format!("{:.0}% / {:.0}%", e * 100.0, pp * 100.0)
                }
            })
            .unwrap_or_else(|| "evades until retrained".into());
        out.push_str(&format!(
            "{:<21} | {:>8.2} | {:>15.2} | {}\n",
            f.class.name(),
            f.tpr.evax,
            f.tpr.perspectron,
            paper_ref
        ));
    }
    let easy: Vec<_> = folds.iter().take(4).collect();
    let hard: Vec<_> = folds.iter().skip(4).collect();
    let easy_mean = easy.iter().map(|f| f.tpr.evax).sum::<f64>() / easy.len().max(1) as f64;
    let hard_mean = hard.iter().map(|f| f.tpr.evax).sum::<f64>() / hard.len().max(1) as f64;
    out.push_str(&format!(
        "\nPaper shape: EVAX generalizes to RDRAND/FlushConflict/Medusa/DRAMA\n\
         but MicroScope, Leaky Buddies and SMotherSpectre are hard (evade until\n\
         retrained). Measured mean TPR: feature-shared classes {:.2}, hard classes {:.2} ({})\n",
        easy_mean,
        hard_mean,
        if easy_mean > hard_mean {
            "REPRODUCED"
        } else {
            "PARTIAL"
        }
    ));
    out
}

/// Fig. 20: EVAX training improves deep networks.
pub fn fig20(h: &Harness) -> String {
    let p = h.pipeline();
    let mut rng = StdRng::seed_from_u64(h.seed ^ 0x20);
    let cfg = DeepEvalConfig::default();
    let results = evaluate_depths(&p.train, &p.gan, &cfg, &mut rng);
    let mut out = String::from("== Fig. 20: improving deeper ML detectors with EVAX training ==\n");
    out.push_str("depth | training    | min   | median | max\n");
    for r in &results {
        out.push_str(&format!(
            "{:>5} | {:<11} | {:.3} | {:>6.3} | {:.3}\n",
            r.depth,
            if r.evax_trained {
                "EVAX"
            } else {
                "traditional"
            },
            r.min(),
            r.median(),
            r.max()
        ));
    }
    let med = |depth: usize, evax: bool| {
        results
            .iter()
            .find(|r| r.depth == depth && r.evax_trained == evax)
            .map(|r| r.median())
            .unwrap_or(0.0)
    };
    out.push_str(&format!(
        "\nPaper shape: (a) traditional 32-layer <= 16-layer (extra depth does not\n\
         help and can hurt); (b) EVAX training never trails traditional at the\n\
         same depth. (The paper's third observation — 1-layer+EVAX beating\n\
         32-layer traditional — depends on full-system label noise our cleaner\n\
         substrate does not reproduce; see EXPERIMENTS.md.)\n\
         Measured: 16t={:.3} 32t={:.3} 16e={:.3} 32e={:.3} 1e={:.3} ({})\n",
        med(16, false),
        med(32, false),
        med(16, true),
        med(32, true),
        med(1, true),
        if med(32, false) <= med(16, false) + 1e-9 && med(16, true) + 1e-9 >= med(16, false) {
            "REPRODUCED"
        } else {
            "PARTIAL"
        }
    ));
    out
}
