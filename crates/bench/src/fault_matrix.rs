//! The `fault_matrix` chaos harness: injector × subsystem survival table.
//!
//! Every cell of the matrix drives one [`FaultKind`] into one pipeline
//! subsystem for a number of seeded iterations and classifies what came
//! back:
//!
//! * **clean-error** — the fault surfaced as a typed [`EvaxError`]; the
//!   caller can react. The required outcome for persistent storage
//!   corruption.
//! * **fail-secure** — the adaptive controller could not trust a verdict
//!   (non-finite counters or a non-finite detector score) and engaged
//!   secure mode instead of guessing. The required outcome for inference
//!   faults.
//! * **degraded-ok** — the pipeline absorbed the fault and kept going with
//!   sane state: transient I/O recovered within the retry budget, poisoned
//!   windows rejected by [`StreamStats`] sanitization, zero-length streams
//!   producing empty-but-valid statistics.
//! * **fail-open** — a fault slipped through *silently* (non-finite state
//!   deployed, poisoned verdict treated as benign). Always a violation.
//! * **panic** — the fault crashed the pipeline. Always a violation.
//!
//! [`run_fault_matrix`] fans the cells out over the deterministic parallel
//! substrate ([`evax_core::par`]); per-cell seeds derive from the matrix
//! seed alone, so the rendered table is byte-identical at any thread count.
//!
//! [`EvaxError`]: evax_core::error::EvaxError
//! [`StreamStats`]: evax_core::featurize::StreamStats

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

use evax_attacks::benign::Scale;
use evax_attacks::{build_attack, build_benign, AttackClass, BenignKind, KernelParams};
use evax_core::collect::collect_dataset;
use evax_core::detector::TrainConfig;
use evax_core::error::Result;
use evax_core::faults::is_transient;
use evax_core::featurize::CollectingSink;
use evax_core::prelude::{
    read_csv, read_featurizer, read_model, retry, write_csv, write_featurizer, write_model,
    CollectConfig, Detector, DetectorKind, FaultInjector, FaultKind, FaultingSink, Featurizer,
    Normalizer, Parallelism, ProgramSource, RetryPolicy, SliceSource, StreamStats, WindowSource,
};
use evax_defense::adaptive::{AdaptiveConfig, AdaptiveController, Policy};
use evax_sim::CpuConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// HPC sampling interval shared by the harness's runs.
const SAMPLE_INTERVAL: u64 = 200;
/// Instruction budget for window materialization.
const RUN_INSTRS: u64 = 6_000;

/// The pipeline subsystem a fault is injected into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subsystem {
    /// The serialized model bundle consumed by `read_model`.
    ModelStore,
    /// The serialized featurizer consumed by `read_featurizer`.
    FeaturizerStore,
    /// The CSV dataset consumed by `read_csv`.
    DatasetStore,
    /// The offline featurize chain (`SliceSource` → `StreamStats`).
    FeaturizeChain,
    /// The online adaptive controller (windows and detector scores).
    Controller,
}

impl Subsystem {
    /// Render label (kebab-case, fixed width friendly).
    pub fn label(self) -> &'static str {
        match self {
            Subsystem::ModelStore => "model-store",
            Subsystem::FeaturizerStore => "featurizer-store",
            Subsystem::DatasetStore => "dataset-store",
            Subsystem::FeaturizeChain => "featurize-chain",
            Subsystem::Controller => "controller",
        }
    }
}

/// Classified outcome of one injected-fault trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Typed error returned; nothing corrupt deployed.
    CleanError,
    /// Controller engaged secure mode on an untrustworthy verdict.
    FailSecure,
    /// Pipeline absorbed the fault with sane state.
    DegradedOk,
    /// Fault passed silently — a violation.
    FailOpen,
    /// The pipeline panicked — a violation.
    Panic,
}

/// One (subsystem × fault) cell with per-outcome tallies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellResult {
    /// Subsystem injected into.
    pub subsystem: Subsystem,
    /// Fault injected.
    pub kind: FaultKind,
    /// Trials run.
    pub iters: u32,
    /// `clean-error` tally.
    pub clean_error: u32,
    /// `fail-secure` tally.
    pub fail_secure: u32,
    /// `degraded-ok` tally.
    pub degraded_ok: u32,
    /// `fail-open` tally (violation).
    pub fail_open: u32,
    /// `panic` tally (violation).
    pub panics: u32,
}

impl CellResult {
    fn tally(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::CleanError => self.clean_error += 1,
            Outcome::FailSecure => self.fail_secure += 1,
            Outcome::DegradedOk => self.degraded_ok += 1,
            Outcome::FailOpen => self.fail_open += 1,
            Outcome::Panic => self.panics += 1,
        }
    }

    /// `true` when the cell recorded no fail-open or panic outcome.
    pub fn survived(&self) -> bool {
        self.fail_open == 0 && self.panics == 0
    }
}

/// The full survival table returned by [`run_fault_matrix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultMatrix {
    /// Seed the matrix derives every per-trial seed from.
    pub seed: u64,
    /// One row per (subsystem × fault) combination, in canonical order.
    pub cells: Vec<CellResult>,
}

impl FaultMatrix {
    /// Human-readable violations: every cell that panicked or failed open.
    pub fn violations(&self) -> Vec<String> {
        self.cells
            .iter()
            .filter(|c| !c.survived())
            .map(|c| {
                format!(
                    "{} x {}: fail-open={} panics={}",
                    c.subsystem.label(),
                    c.kind.label(),
                    c.fail_open,
                    c.panics
                )
            })
            .collect()
    }

    /// Renders the survival table (deterministic for a given seed/iters).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "fault matrix (seed {})", self.seed);
        let _ = writeln!(
            out,
            "{:<17} {:<17} {:>5} {:>11} {:>11} {:>11} {:>9} {:>6}  verdict",
            "subsystem",
            "fault",
            "iters",
            "clean-error",
            "fail-secure",
            "degraded-ok",
            "fail-open",
            "panic"
        );
        for c in &self.cells {
            let _ = writeln!(
                out,
                "{:<17} {:<17} {:>5} {:>11} {:>11} {:>11} {:>9} {:>6}  {}",
                c.subsystem.label(),
                c.kind.label(),
                c.iters,
                c.clean_error,
                c.fail_secure,
                c.degraded_ok,
                c.fail_open,
                c.panics,
                if c.survived() { "ok" } else { "VIOLATION" },
            );
        }
        let violations = self.violations();
        if violations.is_empty() {
            let _ = writeln!(
                out,
                "all {} cells survived: fail-secure holds",
                self.cells.len()
            );
        } else {
            let _ = writeln!(out, "{} VIOLATION(S):", violations.len());
            for v in &violations {
                let _ = writeln!(out, "  {v}");
            }
        }
        out
    }
}

/// Everything a trial needs, built once and shared read-only by every cell.
#[derive(Debug)]
struct MatrixContext {
    model_bytes: Vec<u8>,
    featurizer_bytes: Vec<u8>,
    csv_bytes: Vec<u8>,
    detector: Detector,
    normalizer: Normalizer,
    attack_windows: Vec<Vec<f64>>,
}

impl MatrixContext {
    fn build(seed: u64) -> Self {
        let collect_cfg = CollectConfig {
            interval: SAMPLE_INTERVAL,
            runs_per_attack: 1,
            runs_per_benign: 1,
            max_instrs: 3_000,
            benign_scale: 3_000,
            ..Default::default()
        };
        let (dataset, normalizer) = collect_dataset(&collect_cfg, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17_0001);
        let detector = Detector::train(
            DetectorKind::Evax,
            &dataset,
            Vec::new(),
            &TrainConfig::default(),
            &mut rng,
        );
        let featurizer = Featurizer::new(normalizer.clone(), Vec::new());

        let mut model_bytes = Vec::new();
        write_model(&detector, &featurizer, 1, &mut model_bytes)
            .unwrap_or_else(|e| unreachable!("in-memory model write: {e}"));
        let mut featurizer_bytes = Vec::new();
        write_featurizer(&featurizer, &mut featurizer_bytes)
            .unwrap_or_else(|e| unreachable!("in-memory featurizer write: {e}"));
        let mut csv_bytes = Vec::new();
        write_csv(&dataset, &[], &mut csv_bytes)
            .unwrap_or_else(|e| unreachable!("in-memory csv write: {e}"));

        // Materialize one attack's raw windows so data/inference trials can
        // replay them through `SliceSource` without re-simulating.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17_0002);
        let attack = build_attack(AttackClass::SpectrePht, &KernelParams::default(), &mut rng);
        let mut sink = CollectingSink::new();
        ProgramSource::new(&attack, &CpuConfig::default(), SAMPLE_INTERVAL, RUN_INSTRS)
            .stream(&mut sink);
        let mut attack_windows = sink.into_windows();
        if attack_windows.is_empty() {
            // Defensive: a benign fallback keeps the matrix meaningful even
            // if the attack halts before one full window.
            let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17_0003);
            let benign = build_benign(BenignKind::Compression, Scale(RUN_INSTRS), &mut rng);
            let mut sink = CollectingSink::new();
            ProgramSource::new(&benign, &CpuConfig::default(), SAMPLE_INTERVAL, RUN_INSTRS)
                .stream(&mut sink);
            attack_windows = sink.into_windows();
        }

        MatrixContext {
            model_bytes,
            featurizer_bytes,
            csv_bytes,
            detector,
            normalizer,
            attack_windows,
        }
    }
}

/// The canonical cell list: every meaningful injector × subsystem combo.
fn cells() -> Vec<(Subsystem, FaultKind)> {
    let storage = [
        FaultKind::BitFlip,
        FaultKind::Truncate,
        FaultKind::Garbage,
        FaultKind::TransientIo,
    ];
    let data = [
        FaultKind::NanWindow,
        FaultKind::InfWindow,
        FaultKind::SaturatedWindow,
        FaultKind::ZeroLen,
    ];
    let mut out = Vec::new();
    for sub in [
        Subsystem::ModelStore,
        Subsystem::FeaturizerStore,
        Subsystem::DatasetStore,
    ] {
        for kind in storage {
            out.push((sub, kind));
        }
    }
    for kind in data {
        out.push((Subsystem::FeaturizeChain, kind));
    }
    for kind in data {
        out.push((Subsystem::Controller, kind));
    }
    out.push((Subsystem::Controller, FaultKind::NanScore));
    out.push((Subsystem::Controller, FaultKind::InfScore));
    out
}

fn parse_store<R: std::io::Read>(sub: Subsystem, r: R) -> Result<()> {
    match sub {
        Subsystem::ModelStore => read_model(r).map(|_| ()),
        Subsystem::FeaturizerStore => read_featurizer(r).map(|_| ()),
        Subsystem::DatasetStore => read_csv(r).map(|_| ()),
        _ => unreachable!("parse_store only handles storage subsystems"),
    }
}

fn store_bytes(ctx: &MatrixContext, sub: Subsystem) -> &[u8] {
    match sub {
        Subsystem::ModelStore => &ctx.model_bytes,
        Subsystem::FeaturizerStore => &ctx.featurizer_bytes,
        Subsystem::DatasetStore => &ctx.csv_bytes,
        _ => unreachable!("store_bytes only handles storage subsystems"),
    }
}

/// One storage trial: corrupt the serialized artifact (or its reader) and
/// reload it. The contract: a typed error or a successful parse of finite
/// state — never a panic, never silently-deployed non-finite values.
fn storage_trial(ctx: &MatrixContext, sub: Subsystem, kind: FaultKind, seed: u64) -> Outcome {
    if kind == FaultKind::TransientIo {
        // Vary the failure burst so some trials recover within the retry
        // budget (degraded-ok) and some exhaust it (clean-error).
        let intensity = 2 + (seed % 3) as u32;
        let inj = FaultInjector::new(kind, seed).with_intensity(intensity);
        let out = retry(&RetryPolicy::default(), |_| {
            parse_store(sub, inj.wrap_reader(store_bytes(ctx, sub)))
        });
        return match out {
            Ok(()) => Outcome::DegradedOk,
            // Exhausting the budget must still surface a *transient* typed
            // error, so the caller knows a retry later may succeed.
            Err(ref e) if is_transient(e) => Outcome::CleanError,
            // Any other typed error is still clean, just deterministic.
            Err(_) => Outcome::CleanError,
        };
    }
    let mut corrupted = store_bytes(ctx, sub).to_vec();
    FaultInjector::new(kind, seed).corrupt_bytes(&mut corrupted);
    match parse_store(sub, corrupted.as_slice()) {
        // A corruption that still parses must have produced finite state —
        // the readers reject non-finite values — so it is degraded-ok by
        // construction (e.g. a bit flip inside a comment-free digit run).
        Ok(()) => Outcome::DegradedOk,
        Err(_) => Outcome::CleanError,
    }
}

/// One offline featurize-chain trial: poisoned windows through
/// `SliceSource` → `FaultingSink` → `StreamStats`. The contract: non-finite
/// windows are rejected (counted, not folded into the maxima), and the
/// fitted normalizer stays finite.
fn featurize_trial(ctx: &MatrixContext, kind: FaultKind, seed: u64) -> Outcome {
    let dim = ctx.normalizer.dim();
    if kind == FaultKind::ZeroLen {
        let empty: Vec<Vec<f64>> = Vec::new();
        let mut stats = StreamStats::new(dim);
        let result = SliceSource::new(&empty, SAMPLE_INTERVAL).stream(&mut stats);
        let sane = stats.count() == 0
            && result.committed_instructions == 0
            && stats.normalizer().maxima().iter().all(|m| m.is_finite());
        return if sane {
            Outcome::DegradedOk
        } else {
            Outcome::FailOpen
        };
    }
    let inj = FaultInjector::new(kind, seed).with_intensity(2);
    let mut stats = StreamStats::new(dim);
    {
        let mut sink = FaultingSink::new(&mut stats, inj.clone());
        SliceSource::new(&ctx.attack_windows, SAMPLE_INTERVAL).stream(&mut sink);
    }
    let maxima_finite = stats.normalizer().maxima().iter().all(|m| m.is_finite());
    if !maxima_finite {
        return Outcome::FailOpen;
    }
    match kind {
        // Non-finite poisons must have been rejected, not absorbed.
        FaultKind::NanWindow | FaultKind::InfWindow => {
            if inj.injections() > 0 && stats.rejected() == inj.injections() {
                Outcome::DegradedOk
            } else {
                Outcome::FailOpen
            }
        }
        // Saturated counters are hostile but finite: they flow through.
        _ => Outcome::DegradedOk,
    }
}

/// One online controller trial: poisoned windows or poisoned detector
/// scores against the adaptive controller. The contract: every
/// untrustworthy verdict engages secure mode (fail-secure), and the
/// exported IPC timeline stays finite.
fn controller_trial(ctx: &MatrixContext, kind: FaultKind, seed: u64) -> Outcome {
    let cfg = AdaptiveConfig {
        sample_interval: SAMPLE_INTERVAL,
        secure_window: 2_000,
        policy: Policy::FenceSpectre,
    };
    if kind == FaultKind::ZeroLen {
        let empty: Vec<Vec<f64>> = Vec::new();
        let mut ctl = AdaptiveController::new(&ctx.detector, &ctx.normalizer, &cfg);
        let result = SliceSource::new(&empty, SAMPLE_INTERVAL).stream(&mut ctl);
        let run = ctl.finish(result);
        let sane = run.flags == 0 && run.fail_secure_switches == 0 && run.ipc_series.is_empty();
        return if sane {
            Outcome::DegradedOk
        } else {
            Outcome::FailOpen
        };
    }
    let inj = FaultInjector::new(kind, seed).with_intensity(2);
    let run = if kind.is_inference() {
        let mut ctl =
            AdaptiveController::new(&ctx.detector, &ctx.normalizer, &cfg).with_faults(inj.clone());
        let result = SliceSource::new(&ctx.attack_windows, SAMPLE_INTERVAL).stream(&mut ctl);
        ctl.finish(result)
    } else {
        let mut ctl = AdaptiveController::new(&ctx.detector, &ctx.normalizer, &cfg);
        let result = {
            let mut sink = FaultingSink::new(&mut ctl, inj.clone());
            SliceSource::new(&ctx.attack_windows, SAMPLE_INTERVAL).stream(&mut sink)
        };
        ctl.finish(result)
    };
    if run.ipc_series.iter().any(|&(_, ipc)| !ipc.is_finite()) {
        return Outcome::FailOpen;
    }
    match kind {
        // Every injected non-finite verdict must have switched to secure.
        FaultKind::NanWindow | FaultKind::InfWindow | FaultKind::NanScore | FaultKind::InfScore => {
            if inj.injections() > 0 && run.fail_secure_switches == inj.injections() {
                Outcome::FailSecure
            } else {
                Outcome::FailOpen
            }
        }
        // Saturated counters produce ordinary (scoreable) verdicts.
        _ => {
            if run.fail_secure_switches == 0 {
                Outcome::DegradedOk
            } else {
                Outcome::FailOpen
            }
        }
    }
}

fn run_trial(ctx: &MatrixContext, sub: Subsystem, kind: FaultKind, seed: u64) -> Outcome {
    let trial = catch_unwind(AssertUnwindSafe(|| match sub {
        Subsystem::ModelStore | Subsystem::FeaturizerStore | Subsystem::DatasetStore => {
            storage_trial(ctx, sub, kind, seed)
        }
        Subsystem::FeaturizeChain => featurize_trial(ctx, kind, seed),
        Subsystem::Controller => controller_trial(ctx, kind, seed),
    }));
    trial.unwrap_or(Outcome::Panic)
}

/// Runs the full matrix: `iters` seeded trials per cell, fanned out over
/// the deterministic parallel substrate. Byte-identical output at any
/// `parallelism` for a fixed `(seed, iters)`.
pub fn run_fault_matrix(seed: u64, iters: u32, parallelism: Parallelism) -> FaultMatrix {
    let ctx = MatrixContext::build(seed);
    let grid = cells();
    let cells = evax_core::par::map_indexed(parallelism, &grid, |i, &(sub, kind)| {
        let mut cell = CellResult {
            subsystem: sub,
            kind,
            iters,
            clean_error: 0,
            fail_secure: 0,
            degraded_ok: 0,
            fail_open: 0,
            panics: 0,
        };
        for trial in 0..iters {
            let trial_seed = seed
                ^ ((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                ^ u64::from(trial).wrapping_mul(0xD1B5_4A32_D192_ED03);
            cell.tally(run_trial(&ctx, sub, kind, trial_seed));
        }
        cell
    });
    FaultMatrix { seed, cells }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_every_expected_cell() {
        let grid = cells();
        assert_eq!(grid.len(), 22);
        assert!(grid.iter().all(|(s, k)| match s {
            Subsystem::ModelStore | Subsystem::FeaturizerStore | Subsystem::DatasetStore =>
                k.is_storage(),
            Subsystem::FeaturizeChain => k.is_data(),
            Subsystem::Controller => k.is_data() || k.is_inference(),
        }));
    }

    #[test]
    fn smoke_matrix_survives() {
        let matrix = run_fault_matrix(7, 2, Parallelism::Fixed(1));
        assert!(
            matrix.violations().is_empty(),
            "violations:\n{}",
            matrix.render()
        );
        // Every storage cell produced typed errors or clean recoveries.
        for c in matrix.cells.iter().filter(|c| c.kind.is_storage()) {
            assert_eq!(
                c.clean_error + c.degraded_ok,
                c.iters,
                "{}",
                matrix.render()
            );
        }
        // Every inference cell fail-secured.
        for c in matrix
            .cells
            .iter()
            .filter(|c| c.subsystem == Subsystem::Controller && c.kind.is_inference())
        {
            assert_eq!(c.fail_secure, c.iters, "{}", matrix.render());
        }
    }
}
