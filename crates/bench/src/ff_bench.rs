//! Fast-forward benchmark (`BENCH_ff.json`): quantifies what the functional
//! execution mode and snapshot/restore buy end to end.
//!
//! Four measurements, all on the full registry mix (every attack class plus
//! every benign kind):
//!
//! * **functional vs detailed instrs/sec** — `Cpu::fast_forward` against the
//!   event-driven detailed core on identical programs (the ≥10× acceptance
//!   criterion);
//! * **corpus-collection speedup** — `collect_dataset_stats` under a
//!   fast-forward [`SampleSchedule`] against the all-detailed default;
//! * **fleet warm-start speedup** — `run_fleet` forking tenant cores from
//!   the per-program snapshot pool against cold cores;
//! * **verdict drift** — per-program detector verdicts (any window flagged)
//!   under the fast-forward schedule against all-detailed, with the
//!   program-level flip rate and window-level flag rates.
//!
//! Fast-forwarded windows are approximate by design (functional retirement
//! plus touch-only warm-up between detailed sampling windows), so the drift
//! block is the honesty check that rides along with every speedup claim.

use evax_attacks::benign::Scale;
use evax_attacks::{build_attack, build_benign, KernelParams, ATTACK_CLASSES, BENIGN_KINDS};
use evax_core::collect::{collect_dataset, collect_dataset_stats, CollectConfig};
use evax_core::prelude::{Detector, DetectorKind, Featurizer, Parallelism, TrainConfig};
use evax_defense::adaptive::AdaptiveConfig;
use evax_defense::fleet::{run_fleet, FleetConfig, InferenceMode};
use evax_sim::isa::Program;
use evax_sim::{Cpu, CpuConfig, SampleSchedule};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::harness::timed;

/// Fast-forward benchmark configuration (CLI-shaped).
#[derive(Debug, Clone)]
pub struct FfBenchConfig {
    /// Master seed (programs, collection, detector training).
    pub seed: u64,
    /// Worker threads for the collection and fleet fan-outs.
    pub parallelism: Parallelism,
    /// CI-scale run: shorter programs, smaller corpus and fleet.
    pub smoke: bool,
}

impl Default for FfBenchConfig {
    fn default() -> Self {
        FfBenchConfig {
            seed: 42,
            parallelism: Parallelism::Auto,
            smoke: false,
        }
    }
}

/// One execution-mode pass over the registry mix.
#[derive(Debug, Clone, Copy)]
pub struct ModePass {
    /// Programs in the mix.
    pub programs: usize,
    /// Instructions retired across the mix.
    pub instrs: u64,
    /// Wall-clock seconds.
    pub secs: f64,
}

impl ModePass {
    /// Retired instructions per second.
    pub fn ips(&self) -> f64 {
        self.instrs as f64 / self.secs.max(1e-9)
    }
}

/// Corpus-collection comparison: all-detailed vs fast-forward schedule.
#[derive(Debug, Clone, Copy)]
pub struct CorpusPass {
    /// Seconds for the all-detailed collection.
    pub detailed_secs: f64,
    /// Samples the all-detailed collection produced.
    pub detailed_samples: usize,
    /// Seconds for the fast-forward collection.
    pub ff_secs: f64,
    /// Samples the fast-forward collection produced (fewer by design:
    /// warm-up instructions produce no windows).
    pub ff_samples: usize,
    /// The schedule's functional warm-up run length.
    pub warmup_instrs: u64,
    /// The schedule's detailed run length per sampling window.
    pub detail_instrs: u64,
}

/// Fleet comparison: cold tenant cores vs snapshot-pool warm start.
#[derive(Debug, Clone, Copy)]
pub struct FleetPassPair {
    /// Seconds for the cold fleet.
    pub cold_secs: f64,
    /// Windows the cold fleet classified.
    pub cold_windows: u64,
    /// Seconds for the warm-start fleet (snapshot pool build included).
    pub warm_secs: f64,
    /// Windows the warm fleet classified.
    pub warm_windows: u64,
}

/// Program-level verdict drift between detailed and fast-forward sampling.
#[derive(Debug, Clone, Copy)]
pub struct DriftStats {
    /// Programs compared (the registry mix).
    pub programs: usize,
    /// Programs whose any-window-flagged verdict flipped.
    pub verdict_flips: usize,
    /// Windows produced / flagged under all-detailed sampling.
    pub detailed_windows: u64,
    /// Flags under all-detailed sampling.
    pub detailed_flags: u64,
    /// Windows produced / flagged under the fast-forward schedule.
    pub ff_windows: u64,
    /// Flags under the fast-forward schedule.
    pub ff_flags: u64,
}

impl DriftStats {
    /// Fraction of programs whose program-level verdict flipped.
    pub fn flip_rate(&self) -> f64 {
        self.verdict_flips as f64 / (self.programs as f64).max(1.0)
    }
}

/// The full benchmark artifact.
#[derive(Debug, Clone)]
pub struct FfBenchReport {
    /// The configuration the run used.
    pub config: FfBenchConfig,
    /// Cores the machine exposes.
    pub cores: usize,
    /// Functional (fast-forward) pass over the registry mix.
    pub functional: ModePass,
    /// Detailed (event-driven) pass over the same mix.
    pub detailed: ModePass,
    /// Corpus-collection comparison.
    pub corpus: CorpusPass,
    /// Fleet cold-vs-warm comparison.
    pub fleet: FleetPassPair,
    /// Verdict drift between the two sampling modes.
    pub drift: DriftStats,
}

/// Builds the registry mix: one program per attack class and benign kind.
fn registry_mix(seed: u64, iterations: u32, benign_scale: u64) -> Vec<Program> {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = KernelParams {
        iterations,
        ..Default::default()
    };
    let mut mix: Vec<Program> = ATTACK_CLASSES
        .iter()
        .map(|&c| build_attack(c, &params, &mut rng))
        .collect();
    mix.extend(
        BENIGN_KINDS
            .iter()
            .map(|&k| build_benign(k, Scale(benign_scale), &mut rng)),
    );
    mix
}

/// Runs the mix on fresh cores in one execution mode; `detailed` selects
/// the cycle-level core, otherwise the functional interpreter. The mix is
/// repeated `reps` times and the **minimum** rep time is reported — the
/// noise-robust estimator for shared machines, where the minimum is the
/// closest observation to the true cost.
fn run_mix(mix: &[Program], max_instrs: u64, detailed: bool, reps: u32) -> ModePass {
    let cfg = CpuConfig::default();
    let mut best_secs = f64::INFINITY;
    let mut instrs = 0u64;
    for _ in 0..reps.max(1) {
        let (rep_instrs, secs) = timed(|| {
            let mut rep_instrs = 0u64;
            for program in mix {
                let mut cpu = Cpu::new(cfg.clone());
                cpu.memory_mut()
                    .write_u64(evax_attacks::mds::KERNEL_SECRET_ADDR, 5);
                rep_instrs += if detailed {
                    cpu.run(program, max_instrs).committed_instructions
                } else {
                    cpu.fast_forward(program, max_instrs)
                };
            }
            rep_instrs
        });
        instrs = rep_instrs;
        best_secs = best_secs.min(secs);
    }
    ModePass {
        programs: mix.len(),
        instrs,
        secs: best_secs,
    }
}

/// Per-program detector verdict under one sampling schedule: windows
/// produced, windows flagged.
fn classify_program(
    program: &Program,
    detector: &Detector,
    featurizer: &Featurizer,
    interval: u64,
    max_instrs: u64,
    schedule: SampleSchedule,
) -> (u64, u64) {
    let mut cpu = Cpu::new(CpuConfig::default());
    cpu.memory_mut()
        .write_u64(evax_attacks::mds::KERNEL_SECRET_ADDR, 5);
    let mut base = vec![0.0f32; featurizer.base_dim()];
    let mut windows = 0u64;
    let mut flags = 0u64;
    cpu.run_sampled_with_schedule(program, max_instrs, interval, schedule, |s| {
        windows += 1;
        featurizer.normalizer().normalize_into(&s.values, &mut base);
        if detector.classify(&base) {
            flags += 1;
        }
        None
    });
    (windows, flags)
}

/// Trains a small detector (collection corpus + perceptron, tuned to 99%
/// TPR) and runs the full fast-forward benchmark.
pub fn run_ff_bench(cfg: &FfBenchConfig) -> FfBenchReport {
    // Mix iterations are sized so programs fill the instruction budget
    // rather than halting early: instrs/sec then measures execution, not
    // per-program setup.
    let (iterations, benign_scale, mix_instrs, collect_instrs, n_streams) = if cfg.smoke {
        (128u32, 20_000u64, 20_000u64, 6_000u64, 96)
    } else {
        (1024, 120_000, 100_000, 12_000, 512)
    };
    let interval = 200u64;
    // 3 warm-up intervals per detailed interval: 4× fewer detailed
    // instructions per window, the SMARTS-style sampling trade.
    let schedule = SampleSchedule {
        warmup_instrs: 3 * interval,
        detail_instrs: interval,
    };

    eprintln!("[ff] functional vs detailed on the registry mix...");
    let mix = registry_mix(cfg.seed, iterations, benign_scale);
    let (ff_reps, det_reps) = if cfg.smoke { (3, 2) } else { (10, 3) };
    // Warm-up passes stabilize caches/allocator before the timed passes.
    run_mix(&mix, mix_instrs, false, 1);
    let functional = run_mix(&mix, mix_instrs, false, ff_reps);
    let detailed = run_mix(&mix, mix_instrs, true, det_reps);

    eprintln!("[ff] corpus collection: all-detailed vs fast-forward schedule...");
    let collect = CollectConfig {
        interval,
        runs_per_attack: 1,
        runs_per_benign: 1,
        max_instrs: collect_instrs,
        benign_scale: collect_instrs,
        parallelism: cfg.parallelism,
        ..Default::default()
    };
    let (detailed_ds, detailed_secs) = timed(|| collect_dataset_stats(&collect, cfg.seed));
    let ff_collect = CollectConfig {
        schedule,
        ..collect.clone()
    };
    let (ff_ds, ff_secs) = timed(|| collect_dataset_stats(&ff_collect, cfg.seed));
    let corpus = CorpusPass {
        detailed_secs,
        detailed_samples: detailed_ds.0.len(),
        ff_secs,
        ff_samples: ff_ds.0.len(),
        warmup_instrs: schedule.warmup_instrs,
        detail_instrs: schedule.detail_instrs,
    };

    eprintln!("[ff] training drift detector...");
    let (ds, norm) = collect_dataset(
        &CollectConfig {
            interval,
            runs_per_attack: 1,
            runs_per_benign: 1,
            max_instrs: 3_000,
            benign_scale: 3_000,
            parallelism: cfg.parallelism,
            ..Default::default()
        },
        cfg.seed,
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut detector = Detector::train(
        DetectorKind::Evax,
        &ds,
        vec![],
        &TrainConfig::default(),
        &mut rng,
    );
    detector.tune_for_tpr(&ds, 0.99);
    let featurizer = Featurizer::new(norm, detector.engineered().to_vec());

    eprintln!("[ff] verdict drift across the registry mix...");
    let drift_instrs = collect_instrs;
    let mut drift = DriftStats {
        programs: mix.len(),
        verdict_flips: 0,
        detailed_windows: 0,
        detailed_flags: 0,
        ff_windows: 0,
        ff_flags: 0,
    };
    for program in &mix {
        let (dw, df) = classify_program(
            program,
            &detector,
            &featurizer,
            interval,
            drift_instrs,
            SampleSchedule::default(),
        );
        let (fw, ff) = classify_program(
            program,
            &detector,
            &featurizer,
            interval,
            drift_instrs,
            schedule,
        );
        drift.detailed_windows += dw;
        drift.detailed_flags += df;
        drift.ff_windows += fw;
        drift.ff_flags += ff;
        if (df > 0) != (ff > 0) {
            drift.verdict_flips += 1;
        }
    }

    eprintln!("[ff] fleet: cold vs snapshot warm start ({n_streams} streams)...");
    let fleet_cfg = FleetConfig {
        n_streams,
        attack_every: 4,
        max_instrs: 2_000,
        adaptive: AdaptiveConfig {
            sample_interval: interval,
            secure_window: 1_000,
            ..AdaptiveConfig::default()
        },
        batch_windows: 16,
        n_shards: 32,
        kernel_threads: 1,
        inference: InferenceMode::BatchedF32,
        seed: cfg.seed,
        warm_start: false,
    };
    let cpu_cfg = CpuConfig::default();
    let (cold, cold_secs) = timed(|| {
        run_fleet(
            &fleet_cfg,
            &cpu_cfg,
            &detector,
            &featurizer,
            cfg.parallelism,
        )
    });
    let warm_cfg = FleetConfig {
        warm_start: true,
        ..fleet_cfg.clone()
    };
    let (warm, warm_secs) =
        timed(|| run_fleet(&warm_cfg, &cpu_cfg, &detector, &featurizer, cfg.parallelism));
    let fleet = FleetPassPair {
        cold_secs,
        cold_windows: cold.windows(),
        warm_secs,
        warm_windows: warm.windows(),
    };

    FfBenchReport {
        config: cfg.clone(),
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        functional,
        detailed,
        corpus,
        fleet,
        drift,
    }
}

impl FfBenchReport {
    /// Renders `BENCH_ff.json`.
    pub fn to_json(&self) -> String {
        let threads = match self.config.parallelism {
            Parallelism::Fixed(n) => n.to_string(),
            _ => "\"auto\"".to_string(),
        };
        let c = &self.corpus;
        let f = &self.fleet;
        let d = &self.drift;
        format!(
            "{{\n  \"seed\": {}, \"smoke\": {}, \"cores\": {}, \"threads\": {},\n  \
             \"functional\": {{\"programs\": {}, \"instrs\": {}, \"secs\": {:.3}, \
             \"instrs_per_sec\": {:.0}}},\n  \
             \"detailed\": {{\"programs\": {}, \"instrs\": {}, \"secs\": {:.3}, \
             \"instrs_per_sec\": {:.0}}},\n  \
             \"functional_vs_detailed_speedup\": {:.2},\n  \
             \"corpus\": {{\"warmup_instrs\": {}, \"detail_instrs\": {}, \
             \"detailed_secs\": {:.3}, \"detailed_samples\": {}, \"ff_secs\": {:.3}, \
             \"ff_samples\": {}, \"speedup\": {:.2}}},\n  \
             \"fleet\": {{\"cold_secs\": {:.3}, \"cold_windows\": {}, \
             \"warm_secs\": {:.3}, \"warm_windows\": {}, \"speedup\": {:.2}}},\n  \
             \"drift\": {{\"programs\": {}, \"verdict_flips\": {}, \"flip_rate\": {:.3}, \
             \"detailed_windows\": {}, \"detailed_flags\": {}, \"ff_windows\": {}, \
             \"ff_flags\": {}}},\n  \
             \"note\": \"functional mode retires instructions architecturally with \
             touch-only cache/TLB/predictor warm-up, so fast-forwarded windows are \
             approximate; the drift block quantifies the cost. ff corpus samples are \
             fewer by design (warm-up produces no windows). fleet warm_secs includes \
             building the per-program snapshot pool.\"\n}}\n",
            self.config.seed,
            self.config.smoke,
            self.cores,
            threads,
            self.functional.programs,
            self.functional.instrs,
            self.functional.secs,
            self.functional.ips(),
            self.detailed.programs,
            self.detailed.instrs,
            self.detailed.secs,
            self.detailed.ips(),
            self.functional.ips() / self.detailed.ips().max(1e-9),
            c.warmup_instrs,
            c.detail_instrs,
            c.detailed_secs,
            c.detailed_samples,
            c.ff_secs,
            c.ff_samples,
            c.detailed_secs / c.ff_secs.max(1e-9),
            f.cold_secs,
            f.cold_windows,
            f.warm_secs,
            f.warm_windows,
            f.cold_secs / f.warm_secs.max(1e-9),
            d.programs,
            d.verdict_flips,
            d.flip_rate(),
            d.detailed_windows,
            d.detailed_flags,
            d.ff_windows,
            d.ff_flags,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_mode_is_much_faster_than_detailed_on_a_slice() {
        let mix = registry_mix(7, 24, 3_000);
        let slice = &mix[..4];
        run_mix(slice, 20_000, false, 1);
        let functional = run_mix(slice, 20_000, false, 2);
        let detailed = run_mix(slice, 20_000, true, 1);
        assert!(functional.instrs > 0 && detailed.instrs > 0);
        assert!(
            functional.ips() > 3.0 * detailed.ips(),
            "functional {:.0} ips vs detailed {:.0} ips",
            functional.ips(),
            detailed.ips()
        );
    }

    #[test]
    fn report_renders_valid_shape() {
        let report = FfBenchReport {
            config: FfBenchConfig::default(),
            cores: 4,
            functional: ModePass {
                programs: 31,
                instrs: 1_000_000,
                secs: 0.1,
            },
            detailed: ModePass {
                programs: 31,
                instrs: 1_000_000,
                secs: 2.0,
            },
            corpus: CorpusPass {
                detailed_secs: 2.0,
                detailed_samples: 1000,
                ff_secs: 0.5,
                ff_samples: 260,
                warmup_instrs: 600,
                detail_instrs: 200,
            },
            fleet: FleetPassPair {
                cold_secs: 3.0,
                cold_windows: 5000,
                warm_secs: 2.5,
                warm_windows: 5000,
            },
            drift: DriftStats {
                programs: 31,
                verdict_flips: 2,
                detailed_windows: 1800,
                detailed_flags: 700,
                ff_windows: 460,
                ff_flags: 180,
            },
        };
        let json = report.to_json();
        for key in [
            "functional_vs_detailed_speedup",
            "\"corpus\"",
            "\"fleet\"",
            "\"drift\"",
            "flip_rate",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!((report.drift.flip_rate() - 2.0 / 31.0).abs() < 1e-12);
    }
}
