//! Fleet service benchmark (`BENCH_fleet.json`): drives
//! [`evax_defense::fleet`] over ≥1k concurrent tenant streams and reports
//!
//! * sustained end-to-end windows/sec for the per-window baseline, the
//!   batched-f32 and the batched-quantized inference modes,
//! * p50/p99 window→verdict latency (an [`evax_obs`] pow-2 histogram over
//!   the fleet's wall-clock latency samples),
//! * the deterministic fleet block (per-stream verdict digest) the
//!   `tests/fleet.rs` determinism test compares across thread counts,
//! * an inference-only drain microbenchmark isolating the acceptance
//!   criterion: cross-stream batched scoring vs the allocating per-window
//!   `Detector::classify` call, on the same extended feature rows.
//!
//! End-to-end fleet throughput is simulation-dominated (the detector is a
//! perceptron; the cores are cycle-accurate), so the end-to-end ratio
//! mostly measures the scheduler. The drain microbenchmark is where the
//! batched kernel's win is visible in isolation.

use evax_core::collect::{collect_dataset, CollectConfig};
use evax_core::prelude::{
    Detector, DetectorKind, Featurizer, MetricsSink, Parallelism, Registry, TrainConfig,
};
use evax_defense::adaptive::AdaptiveConfig;
use evax_defense::fleet::{run_fleet, FleetConfig, FleetReport, InferenceMode};
use evax_sim::CpuConfig;
use rand::SeedableRng;

use crate::harness::timed;

/// Fleet benchmark configuration (CLI-shaped).
#[derive(Debug, Clone)]
pub struct FleetBenchConfig {
    /// Concurrent tenant streams.
    pub n_streams: usize,
    /// Master seed (detector training and stream programs).
    pub seed: u64,
    /// Shard fan-out parallelism.
    pub parallelism: Parallelism,
    /// Also run the quantized inference pass.
    pub quantized: bool,
    /// CI-scale run: fewer/shorter streams, smaller drain microbench.
    pub smoke: bool,
}

impl Default for FleetBenchConfig {
    fn default() -> Self {
        FleetBenchConfig {
            n_streams: 1024,
            seed: 42,
            parallelism: Parallelism::Auto,
            quantized: true,
            smoke: false,
        }
    }
}

/// One fleet pass distilled for the report.
#[derive(Debug, Clone)]
pub struct FleetPass {
    /// Inference mode name.
    pub mode: &'static str,
    /// Total windows classified.
    pub windows: u64,
    /// Wall-clock seconds for the pass.
    pub secs: f64,
    /// Sustained end-to-end windows/sec (simulation + featurization +
    /// inference + verdict application).
    pub windows_per_sec: f64,
    /// CPU seconds spent in featurization + inference drains, summed
    /// across shard workers (`FleetReport::inference_ns`) — the inference
    /// side of the end-to-end split.
    pub inference_secs: f64,
    /// CPU seconds spent stepping simulated cores, measured the same way
    /// (`FleetReport::sim_ns`) — the simulation side of the split. The two
    /// are mutually comparable; on a multi-core run their sum can exceed
    /// the pass's wall-clock `secs`.
    pub sim_secs: f64,
    /// Median window→verdict latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile window→verdict latency, nanoseconds.
    pub p99_ns: u64,
    /// The deterministic block (`FleetReport::deterministic_json`).
    pub deterministic: String,
}

/// Inference-drain microbenchmark result: the acceptance-criterion numbers.
#[derive(Debug, Clone)]
pub struct DrainBench {
    /// Rows per timed drain.
    pub rows: usize,
    /// Extended feature dimension.
    pub dim: usize,
    /// Timed repetitions.
    pub reps: usize,
    /// Kernel threads for the batched drain.
    pub kernel_threads: usize,
    /// Seconds for `reps` passes of per-window `Detector::classify`.
    pub per_window_secs: f64,
    /// Seconds for `reps` passes of the batched f32 kernel.
    pub batched_secs: f64,
    /// Seconds for `reps` passes of the batched 9-bit integer kernel.
    pub quant_secs: f64,
    /// Batched-f32 windows/sec ÷ per-window windows/sec.
    pub speedup: f64,
}

/// The full benchmark artifact.
#[derive(Debug, Clone)]
pub struct FleetBenchReport {
    /// The configuration the run used.
    pub config: FleetBenchConfig,
    /// Cores the machine exposes — threaded drain numbers only mean
    /// something when this is ≥ the kernel thread count.
    pub cores: usize,
    /// Per-window baseline pass.
    pub per_window: FleetPass,
    /// Batched f32 pass.
    pub batched_f32: FleetPass,
    /// Batched quantized pass (if requested).
    pub batched_quant: Option<FleetPass>,
    /// Inference-drain microbenchmark.
    pub drain: DrainBench,
}

fn quantiles(latencies: &[u64]) -> (u64, u64) {
    let registry = Registry::shared();
    let sink = MetricsSink::recording(&registry);
    let h = sink.histogram("fleet_window_to_verdict_ns");
    for &ns in latencies {
        h.observe(ns);
    }
    (h.quantile(0.50), h.quantile(0.99))
}

fn fleet_pass(
    cfg: &FleetConfig,
    cpu_cfg: &CpuConfig,
    detector: &Detector,
    featurizer: &Featurizer,
    parallelism: Parallelism,
) -> FleetPass {
    let (report, secs): (FleetReport, f64) =
        timed(|| run_fleet(cfg, cpu_cfg, detector, featurizer, parallelism));
    let windows = report.windows();
    let (p50_ns, p99_ns) = quantiles(&report.latencies_ns);
    FleetPass {
        mode: cfg.inference.name(),
        windows,
        secs,
        windows_per_sec: if secs > 0.0 {
            windows as f64 / secs
        } else {
            0.0
        },
        inference_secs: report.inference_ns as f64 / 1e9,
        sim_secs: report.sim_ns as f64 / 1e9,
        p50_ns,
        p99_ns,
        deterministic: report.deterministic_json(),
    }
}

/// Times the inference drain in isolation: the same `rows × dim` extended
/// feature matrix scored (a) one window at a time through the allocating
/// `Detector::classify` baseline (featurize-per-call, as the pre-fleet
/// controller does), (b) through the threaded batched f32 kernel, and (c)
/// through the batched 9-bit integer kernel.
fn drain_bench(
    detector: &Detector,
    bases: &[Vec<f32>],
    rows: usize,
    reps: usize,
    kernel_threads: usize,
) -> DrainBench {
    let dim = detector.extended_dim();
    // Pre-featurized batch matrix — what the fleet's WindowBatch holds at
    // drain time (featurization happened at window production).
    let mut matrix = vec![0.0f32; rows * dim];
    let mut ext = Vec::with_capacity(dim);
    for i in 0..rows {
        detector.transform_into(&bases[i % bases.len()], &mut ext);
        matrix[i * dim..(i + 1) * dim].copy_from_slice(&ext);
    }
    let mut scores = vec![0.0f32; rows];
    let mut verdicts = vec![false; rows];

    // (a) the baseline: one allocating classify call per window.
    let (flags_a, per_window_secs) = timed(|| {
        let mut flags = 0u64;
        for _ in 0..reps {
            for i in 0..rows {
                if detector.classify(&bases[i % bases.len()]) {
                    flags += 1;
                }
            }
        }
        flags
    });

    // (b) the fleet's batched f32 drain.
    let (flags_b, batched_secs) = timed(|| {
        let mut flags = 0u64;
        for _ in 0..reps {
            detector.classify_rows_into(&matrix, kernel_threads, &mut scores, &mut verdicts);
            flags += verdicts.iter().filter(|&&v| v).count() as u64;
        }
        flags
    });
    assert_eq!(
        flags_a, flags_b,
        "batched f32 drain must reproduce per-window verdicts exactly"
    );

    // (c) the quantized drain (integer accumulate over u8 inputs). Input
    // quantization happens once, outside the timed loop — the fleet
    // quantizes each window's row exactly once per drain, so re-quantizing
    // the whole matrix every rep would bill the integer kernel for work the
    // service never repeats.
    let quant = detector.quantize_linear();
    let mut xq = vec![0u8; rows * dim];
    evax_nn::QuantLinear::quantize_input_into(&matrix, &mut xq);
    let mut q_scores = vec![0i64; rows];
    let (_, quant_secs) = timed(|| {
        let mut flags = 0u64;
        for _ in 0..reps {
            quant.score_rows_q_into(&xq, kernel_threads, &mut q_scores);
            flags += q_scores
                .iter()
                .filter(|&&s| s >= quant.threshold_q())
                .count() as u64;
        }
        flags
    });

    let per_window_wps = (rows * reps) as f64 / per_window_secs.max(1e-12);
    let batched_wps = (rows * reps) as f64 / batched_secs.max(1e-12);
    DrainBench {
        rows,
        dim,
        reps,
        kernel_threads,
        per_window_secs,
        batched_secs,
        quant_secs,
        speedup: batched_wps / per_window_wps.max(1e-12),
    }
}

/// Trains a small detector (collection corpus + perceptron, tuned to 99%
/// TPR) and runs the full fleet benchmark.
pub fn run_fleet_bench(cfg: &FleetBenchConfig) -> FleetBenchReport {
    let collect = CollectConfig {
        interval: 200,
        runs_per_attack: 1,
        runs_per_benign: 1,
        max_instrs: 3_000,
        benign_scale: 3_000,
        ..Default::default()
    };
    eprintln!("[fleet] training detector (collect + perceptron)...");
    let (ds, norm) = collect_dataset(&collect, cfg.seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let mut detector = Detector::train(
        DetectorKind::Evax,
        &ds,
        vec![],
        &TrainConfig::default(),
        &mut rng,
    );
    detector.tune_for_tpr(&ds, 0.99);
    let featurizer = Featurizer::new(norm, detector.engineered().to_vec());

    // Batch size matches the full-strength shard population (streams ÷
    // shards): the batch fills once per pass (threaded drain) while every
    // stream is live, then tails off through the in-place drain as streams
    // retire — both kernel paths show up in the artifact.
    let (max_instrs, batch_windows, n_shards) = if cfg.smoke {
        (1_200, 8, 8)
    } else {
        (2_000, 16, 64)
    };
    let fleet = FleetConfig {
        n_streams: cfg.n_streams,
        attack_every: 4,
        max_instrs,
        adaptive: AdaptiveConfig {
            sample_interval: 200,
            secure_window: 1_000,
            ..AdaptiveConfig::default()
        },
        batch_windows,
        n_shards,
        kernel_threads: 1,
        inference: InferenceMode::PerWindow,
        seed: cfg.seed,
        warm_start: false,
    };
    let cpu_cfg = CpuConfig::default();

    eprintln!(
        "[fleet] {} streams x {} instrs, {} shards, batch {}",
        fleet.n_streams, fleet.max_instrs, fleet.n_shards, fleet.batch_windows
    );
    let per_window = fleet_pass(&fleet, &cpu_cfg, &detector, &featurizer, cfg.parallelism);
    let batched_f32 = fleet_pass(
        &FleetConfig {
            inference: InferenceMode::BatchedF32,
            ..fleet.clone()
        },
        &cpu_cfg,
        &detector,
        &featurizer,
        cfg.parallelism,
    );
    let batched_quant = cfg.quantized.then(|| {
        fleet_pass(
            &FleetConfig {
                inference: InferenceMode::BatchedQuant,
                ..fleet.clone()
            },
            &cpu_cfg,
            &detector,
            &featurizer,
            cfg.parallelism,
        )
    });

    let bases: Vec<Vec<f32>> = ds.samples.iter().map(|s| s.features.clone()).collect();
    let (rows, reps) = if cfg.smoke { (512, 8) } else { (4_096, 50) };
    let drain = drain_bench(&detector, &bases, rows, reps, 4);

    FleetBenchReport {
        config: cfg.clone(),
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        per_window,
        batched_f32,
        batched_quant,
        drain,
    }
}

fn pass_json(p: &FleetPass) -> String {
    format!(
        concat!(
            "{{\"mode\": \"{}\", \"windows\": {}, \"secs\": {:.3}, ",
            "\"windows_per_sec\": {:.0}, \"sim_secs\": {:.3}, ",
            "\"inference_secs\": {:.3}, \"p50_ns\": {}, \"p99_ns\": {}, ",
            "\"deterministic\": {}}}"
        ),
        p.mode,
        p.windows,
        p.secs,
        p.windows_per_sec,
        p.sim_secs,
        p.inference_secs,
        p.p50_ns,
        p.p99_ns,
        p.deterministic
    )
}

impl FleetBenchReport {
    /// Renders `BENCH_fleet.json`.
    pub fn to_json(&self) -> String {
        let threads = match self.config.parallelism {
            Parallelism::Fixed(n) => n.to_string(),
            _ => "\"auto\"".to_string(),
        };
        let quant = self
            .batched_quant
            .as_ref()
            .map_or("null".to_string(), pass_json);
        let d = &self.drain;
        format!(
            "{{\n  \"streams\": {}, \"seed\": {}, \"threads\": {}, \"smoke\": {}, \"cores\": {},\n  \
             \"per_window\": {},\n  \
             \"batched_f32\": {},\n  \
             \"batched_quant\": {},\n  \
             \"end_to_end_speedup\": {:.3},\n  \
             \"inference_drain\": {{\"rows\": {}, \"dim\": {}, \"reps\": {}, \
             \"kernel_threads\": {}, \"per_window_classify_secs\": {:.6}, \
             \"batched_f32_secs\": {:.6}, \"batched_quant_secs\": {:.6}, \
             \"batched_vs_per_window_speedup\": {:.3}}},\n  \
             \"note\": \"end-to-end passes are simulation-dominated; the \
             inference_drain block isolates the batched kernel vs the \
             allocating per-window classify baseline on identical rows; on \
             machines with fewer cores than kernel_threads the threaded \
             speedup only measures substrate overhead\"\n}}\n",
            self.config.n_streams,
            self.config.seed,
            threads,
            self.config.smoke,
            self.cores,
            pass_json(&self.per_window),
            pass_json(&self.batched_f32),
            quant,
            self.batched_f32.windows_per_sec / self.per_window.windows_per_sec.max(1e-12),
            d.rows,
            d.dim,
            d.reps,
            d.kernel_threads,
            d.per_window_secs,
            d.batched_secs,
            d.quant_secs,
            d.speedup,
        )
    }
}
