//! Shared experiment context: scale presets and a lazily-trained pipeline
//! reused across experiments within one invocation.

use std::sync::OnceLock;

use evax_core::gan::AmGanConfig;
use evax_core::prelude::{CollectConfig, EvaxConfig, EvaxPipeline};

/// How much compute an experiment run spends. The paper's corpus sizes
/// (1.2M evasive samples, 30 simpoints/benchmark) are scaled down so the
/// whole suite runs in minutes; `Full` gets closer at the cost of hours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Minutes-scale run (default).
    Small,
    /// Larger corpora and longer training.
    Full,
}

impl ExperimentScale {
    /// Parses `small`/`full`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "small" => Some(ExperimentScale::Small),
            "full" => Some(ExperimentScale::Full),
            _ => None,
        }
    }

    /// The pipeline configuration for this scale.
    pub fn evax_config(self) -> EvaxConfig {
        match self {
            ExperimentScale::Small => EvaxConfig {
                collect: CollectConfig {
                    interval: 100,
                    runs_per_attack: 2,
                    runs_per_benign: 4,
                    max_instrs: 8_000,
                    benign_scale: 8_000,
                    ..Default::default()
                },
                gan: AmGanConfig {
                    epochs: 60,
                    hidden_width: 96,
                    generator_hidden: 3,
                    ..AmGanConfig::small()
                },
                augment_per_class: 80,
                augment_benign: 300,
                ..Default::default()
            },
            ExperimentScale::Full => EvaxConfig {
                collect: CollectConfig {
                    interval: 100,
                    runs_per_attack: 6,
                    runs_per_benign: 12,
                    max_instrs: 20_000,
                    benign_scale: 20_000,
                    ..Default::default()
                },
                gan: AmGanConfig {
                    epochs: 120,
                    ..Default::default()
                },
                augment_per_class: 250,
                augment_benign: 1_000,
                ..Default::default()
            },
        }
    }

    /// Fuzz programs per tool for the evasive corpora (paper: 1.2M samples;
    /// scaled).
    pub fn fuzz_programs_per_tool(self) -> usize {
        match self {
            ExperimentScale::Small => 8,
            ExperimentScale::Full => 40,
        }
    }

    /// Instruction budget for performance (overhead/IPC) runs.
    pub fn perf_instrs(self) -> u64 {
        match self {
            ExperimentScale::Small => 60_000,
            ExperimentScale::Full => 400_000,
        }
    }
}

/// Runs `f` and returns its result together with elapsed wall-clock
/// seconds. The one timing primitive the bench crate uses — experiment
/// fan-out, simulator throughput, RSS probes and the fleet service all call
/// this instead of hand-rolling `Instant` pairs that can drift apart in
/// what they measure.
pub fn timed<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let started = std::time::Instant::now();
    let result = f();
    (result, started.elapsed().as_secs_f64())
}

/// The experiment context: seed, scale, and the shared trained pipeline.
pub struct Harness {
    /// RNG seed for every experiment.
    pub seed: u64,
    /// Compute scale.
    pub scale: ExperimentScale,
    pipeline: OnceLock<EvaxPipeline>,
}

impl Harness {
    /// Creates a harness.
    pub fn new(seed: u64, scale: ExperimentScale) -> Self {
        Harness {
            seed,
            scale,
            pipeline: OnceLock::new(),
        }
    }

    /// The shared pipeline, trained on first use. Thread-safe: concurrent
    /// experiments block on the one training run instead of repeating it.
    pub fn pipeline(&self) -> &EvaxPipeline {
        self.pipeline.get_or_init(|| {
            eprintln!("[harness] training EVAX pipeline (collect + AM-GAN + vaccinate)...");
            let p = EvaxPipeline::run(&self.scale.evax_config(), self.seed);
            eprintln!(
                "[harness] pipeline ready: {} train samples, {} holdout",
                p.train.len(),
                p.holdout.len()
            );
            p
        })
    }

    /// Stage timings of the shared pipeline, if any experiment has trained
    /// it (the `--json` summary reports them without forcing training).
    pub fn stage_timings(&self) -> Option<evax_core::pipeline::StageTimings> {
        self.pipeline.get().map(|p| p.timings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parse() {
        assert_eq!(
            ExperimentScale::parse("small"),
            Some(ExperimentScale::Small)
        );
        assert_eq!(ExperimentScale::parse("full"), Some(ExperimentScale::Full));
        assert_eq!(ExperimentScale::parse("huge"), None);
    }

    #[test]
    fn full_is_larger_than_small() {
        let s = ExperimentScale::Small.evax_config();
        let f = ExperimentScale::Full.evax_config();
        assert!(f.collect.runs_per_attack > s.collect.runs_per_attack);
        assert!(f.gan.epochs > s.gan.epochs);
        assert!(ExperimentScale::Full.perf_instrs() > ExperimentScale::Small.perf_instrs());
    }
}
