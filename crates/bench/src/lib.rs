//! # evax-bench — the experiment harness
//!
//! One function per table/figure of the EVAX paper's evaluation. Each
//! regenerates its artifact from scratch (workload generation, simulation,
//! training, measurement) and returns a plain-text report that states the
//! paper's reference numbers next to the measured ones.
//!
//! Run via the `experiments` binary:
//!
//! ```text
//! cargo run -p evax-bench --release --bin experiments -- fig16 --seed 7
//! cargo run -p evax-bench --release --bin experiments -- all
//! ```
//!
//! Absolute values differ from the paper (our substrate is a from-scratch
//! simulator, not the authors' gem5 testbed); the *shape* — who wins, by
//! roughly what factor, where crossovers fall — is the reproduction target
//! (see `EXPERIMENTS.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod armsrace;
pub mod exp_ablations;
pub mod exp_gan;
pub mod exp_hpc;
pub mod exp_perf;
pub mod exp_robust;
pub mod exp_sim;
pub mod exp_tables;
pub mod exp_zeroday;
pub mod fault_matrix;
pub mod ff_bench;
pub mod fleet_bench;
pub mod harness;
pub mod obs_pass;
pub mod obs_report;
pub mod stream_bench;
pub mod zeroday_bench;

pub use harness::{ExperimentScale, Harness};

/// All experiment ids, in the order `all` runs them.
pub const EXPERIMENT_IDS: &[&str] = &[
    "table2",
    "table1",
    "fig6",
    "fig7",
    "fig9",
    "fig10",
    "fig11",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "zeroday",
    "ablate-rob",
    "ablate-features",
    "ablate-asymmetry",
    "ablate-replication",
    "sim-throughput",
];

/// Dispatches one experiment by id.
///
/// # Errors
/// Returns an error string for unknown ids.
pub fn run_experiment(id: &str, harness: &Harness) -> Result<String, String> {
    match id {
        "table1" => Ok(exp_tables::table1(harness)),
        "table2" => Ok(exp_tables::table2()),
        "fig6" => Ok(exp_gan::fig6(harness)),
        "fig7" => Ok(exp_gan::fig7(harness)),
        "fig9" => Ok(exp_hpc::fig9(harness)),
        "fig10" => Ok(exp_hpc::fig10(harness)),
        "fig11" => Ok(exp_hpc::fig11(harness)),
        "fig14" => Ok(exp_perf::fig14(harness)),
        "fig15" => Ok(exp_perf::fig15(harness)),
        "fig16" => Ok(exp_perf::fig16(harness)),
        "fig17" => Ok(exp_robust::fig17(harness)),
        "fig18" => Ok(exp_robust::fig18(harness)),
        "fig19" => Ok(exp_zeroday::fig19(harness)),
        "fig20" => Ok(exp_zeroday::fig20(harness)),
        "zeroday" => Ok(exp_zeroday::zeroday(harness)),
        "ablate-rob" => Ok(exp_ablations::ablate_rob(harness)),
        "ablate-features" => Ok(exp_ablations::ablate_features(harness)),
        "ablate-asymmetry" => Ok(exp_ablations::ablate_asymmetry(harness)),
        "ablate-replication" => Ok(exp_ablations::ablate_replication(harness)),
        "sim-throughput" => Ok(exp_sim::sim_throughput(harness)),
        other => Err(format!(
            "unknown experiment '{other}'; known: {}",
            EXPERIMENT_IDS.join(", ")
        )),
    }
}
