//! The metered defense pass behind `obs_report`: train a quick detector,
//! then run each program of a slice under baseline / always-on / adaptive
//! mitigation with a recording [`MetricsSink`], producing the registry the
//! Fig. 14/16-style observability tables are rendered from.
//!
//! Everything recorded here is a simulated quantity (cycles, instructions,
//! windows, flags), so the registry's deterministic JSON is byte-identical
//! at any thread count and any host speed — only the `TimerNs` wall-clock
//! spans differ between machines, and those are excluded from the
//! deterministic export.

use std::sync::Arc;

use evax_attacks::benign::Scale;
use evax_attacks::{build_attack, build_benign, AttackClass, BenignKind, KernelParams};
use evax_core::collect::collect_dataset_stats_with;
use evax_core::detector::TrainConfig;
use evax_core::prelude::{
    CollectConfig, Detector, DetectorKind, MetricsSink, Parallelism, Registry,
};
use evax_defense::adaptive::{
    run_adaptive_with_metrics, run_fixed_with_metrics, AdaptiveConfig, Policy,
};
use evax_sim::{CpuConfig, MitigationMode, Program};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Instruction budget per metered run.
const RUN_INSTRS: u64 = 6_000;
/// HPC sampling interval for the metered runs.
const SAMPLE_INTERVAL: u64 = 200;

/// One program slot in the metered pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsProgram {
    /// An attack kernel (detection latency and duty cycle are reported).
    Attack(AttackClass),
    /// A benign workload (false flags and overhead are reported).
    Benign(BenignKind),
}

impl ObsProgram {
    /// Metric-name label: lowercase, `-` → `_`, unique per slice entry.
    pub fn label(&self) -> String {
        let raw = match self {
            ObsProgram::Attack(c) => c.name(),
            ObsProgram::Benign(k) => k.name(),
        };
        raw.to_ascii_lowercase().replace(['-', ' ', '.'], "_")
    }

    /// Whether this slot is an attack kernel.
    pub fn is_attack(&self) -> bool {
        matches!(self, ObsProgram::Attack(_))
    }

    fn build(&self, seed: u64) -> Program {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            ObsProgram::Attack(c) => build_attack(*c, &KernelParams::default(), &mut rng),
            ObsProgram::Benign(k) => build_benign(*k, Scale(RUN_INSTRS), &mut rng),
        }
    }
}

/// The 2-program slice CI smokes: one attack, one benign workload.
pub fn smoke_programs() -> Vec<ObsProgram> {
    vec![
        ObsProgram::Attack(AttackClass::SpectrePht),
        ObsProgram::Benign(BenignKind::Compression),
    ]
}

/// The default slice: three attack classes, two benign workloads.
pub fn default_programs() -> Vec<ObsProgram> {
    vec![
        ObsProgram::Attack(AttackClass::SpectrePht),
        ObsProgram::Attack(AttackClass::Meltdown),
        ObsProgram::Attack(AttackClass::FlushReload),
        ObsProgram::Benign(BenignKind::Compression),
        ObsProgram::Benign(BenignKind::MatrixAi),
    ]
}

/// Runs the metered pass: collects a tiny corpus (itself metered), trains a
/// quick detector on it, then drives every program in `programs` through
/// baseline (`fixed.<label>.baseline.*`), always-on
/// (`fixed.<label>.always_on.*`) and detector-gated adaptive
/// (`adaptive.<label>.*`) execution, all recording into one registry.
///
/// The returned registry's deterministic export is byte-identical at any
/// `parallelism` (the collect fan-out is the only parallel stage; its
/// per-item registries merge in canonical order).
pub fn obs_pass(seed: u64, parallelism: Parallelism, programs: &[ObsProgram]) -> Arc<Registry> {
    let registry = Registry::shared();
    let metrics = MetricsSink::recording(&registry);

    // A deliberately tiny corpus: the pass is about metering the defense
    // loop, not detector quality. No GAN, no engineered features.
    let collect_cfg = CollectConfig {
        interval: SAMPLE_INTERVAL,
        runs_per_attack: 1,
        runs_per_benign: 1,
        max_instrs: 3_000,
        benign_scale: 3_000,
        parallelism,
        ..Default::default()
    };
    let (dataset, stats) = collect_dataset_stats_with(&collect_cfg, seed, &metrics);
    let normalizer = stats.normalizer();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0b5_9a55);
    let detector = Detector::train(
        DetectorKind::Evax,
        &dataset,
        Vec::new(),
        &TrainConfig::default(),
        &mut rng,
    );

    let cpu_cfg = CpuConfig::default();
    let adaptive_cfg = AdaptiveConfig::builder()
        .sample_interval(SAMPLE_INTERVAL)
        .secure_window(2_000)
        .policy(Policy::FenceSpectre)
        .build()
        .unwrap_or_else(|e| unreachable!("static config validates: {e}"));

    for (i, prog) in programs.iter().enumerate() {
        let label = prog.label();
        let program = prog.build(seed ^ ((i as u64 + 1) << 32));
        run_fixed_with_metrics(
            &cpu_cfg,
            &program,
            MitigationMode::None,
            SAMPLE_INTERVAL,
            RUN_INSTRS,
            &metrics,
            &format!("{label}.baseline"),
        );
        run_fixed_with_metrics(
            &cpu_cfg,
            &program,
            adaptive_cfg.policy.mode(),
            SAMPLE_INTERVAL,
            RUN_INSTRS,
            &metrics,
            &format!("{label}.always_on"),
        );
        run_adaptive_with_metrics(
            &cpu_cfg,
            &program,
            &detector,
            &normalizer,
            &adaptive_cfg,
            RUN_INSTRS,
            &metrics,
            &label,
            prog.is_attack(),
        );
    }
    metrics.add("obs.programs", programs.len() as u64);
    registry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_pass_records_defense_metrics() {
        let reg = obs_pass(7, Parallelism::Fixed(1), &smoke_programs());
        assert_eq!(reg.get("obs.programs"), Some(2));
        assert!(reg.get("collect.runs").unwrap_or(0) > 0);
        let attack = ObsProgram::Attack(AttackClass::SpectrePht).label();
        for metric in ["runs", "cycles", "committed_instructions"] {
            assert!(
                reg.get(&format!("fixed.{attack}.baseline.{metric}"))
                    .is_some(),
                "missing fixed.{attack}.baseline.{metric}"
            );
        }
        assert_eq!(reg.get(&format!("adaptive.{attack}.runs")), Some(1));
    }

    #[test]
    fn pass_is_thread_count_invariant() {
        let a = obs_pass(11, Parallelism::Fixed(1), &smoke_programs());
        let b = obs_pass(11, Parallelism::Fixed(4), &smoke_programs());
        assert_eq!(a.to_json(), b.to_json());
    }
}
