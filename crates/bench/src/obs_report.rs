//! Renders the observability tables from a metered-pass registry: the
//! Fig. 16-shaped mitigation-overhead comparison and the Fig. 14-shaped
//! detection/duty-cycle summary, straight from [`crate::obs_pass`]'s
//! metric names.
//!
//! The renderer is read-only over [`Registry`]: anything that parses its
//! own JSONL can produce the same tables offline.

use std::sync::Arc;

use evax_core::prelude::{Parallelism, Registry};

use crate::obs_pass::{obs_pass, ObsProgram};

/// One program's rendered row, extracted from the registry.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsRow {
    /// Metric-name label of the program.
    pub label: String,
    /// Whether the program is an attack kernel.
    pub is_attack: bool,
    /// Unmitigated cycles.
    pub baseline_cycles: u64,
    /// Always-on mitigation cycles.
    pub always_on_cycles: u64,
    /// Detector-gated adaptive cycles.
    pub adaptive_cycles: u64,
    /// Windows the detector scored.
    pub windows: u64,
    /// Detector flags raised.
    pub flags: u64,
    /// Cycle of the first flag (attacks; `None` = missed or benign).
    pub detection_latency: Option<u64>,
    /// Secure-mode duty cycle in parts-per-million of committed
    /// instructions.
    pub secure_duty_ppm: u64,
}

impl ObsRow {
    fn overhead(cycles: u64, base: u64) -> f64 {
        cycles as f64 / base.max(1) as f64 - 1.0
    }

    /// Always-on overhead fraction over baseline.
    pub fn always_on_overhead(&self) -> f64 {
        Self::overhead(self.always_on_cycles, self.baseline_cycles)
    }

    /// Adaptive overhead fraction over baseline.
    pub fn adaptive_overhead(&self) -> f64 {
        Self::overhead(self.adaptive_cycles, self.baseline_cycles)
    }
}

/// Extracts the per-program rows for `programs` from a registry produced by
/// [`obs_pass`] (absent metrics read as zero, so a partial registry renders
/// rather than panicking).
pub fn extract_rows(reg: &Registry, programs: &[ObsProgram]) -> Vec<ObsRow> {
    programs
        .iter()
        .map(|p| {
            let label = p.label();
            let get = |name: String| reg.get(&name).unwrap_or(0);
            let fixed = |mode: &str, m: &str| get(format!("fixed.{label}.{mode}.{m}"));
            let adaptive = |m: &str| get(format!("adaptive.{label}.{m}"));
            let detection_latency =
                (p.is_attack() && adaptive("missed_detections") == 0 && adaptive("flags") > 0)
                    .then(|| adaptive("detection_latency_cycles"));
            let (baseline_cycles, always_on_cycles) =
                (fixed("baseline", "cycles"), fixed("always_on", "cycles"));
            let (adaptive_cycles, windows, flags, secure_duty_ppm) = (
                adaptive("cycles"),
                adaptive("windows"),
                adaptive("flags"),
                adaptive("secure_duty_ppm"),
            );
            ObsRow {
                label,
                is_attack: p.is_attack(),
                baseline_cycles,
                always_on_cycles,
                adaptive_cycles,
                windows,
                flags,
                detection_latency,
                secure_duty_ppm,
            }
        })
        .collect()
}

/// Renders the two tables from extracted rows.
pub fn render_rows(rows: &[ObsRow]) -> String {
    let mut out = String::new();
    out.push_str("== Mitigation overhead (Fig. 16 shape) ==\n");
    out.push_str(&format!(
        "{:<22} {:>6} {:>10} {:>10} {:>10} {:>10} {:>9}\n",
        "program", "kind", "base cyc", "always cyc", "adapt cyc", "always %", "adapt %"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<22} {:>6} {:>10} {:>10} {:>10} {:>9.1}% {:>8.1}%\n",
            r.label,
            if r.is_attack { "attack" } else { "benign" },
            r.baseline_cycles,
            r.always_on_cycles,
            r.adaptive_cycles,
            r.always_on_overhead() * 100.0,
            r.adaptive_overhead() * 100.0,
        ));
    }
    out.push_str("\n== Detection & duty cycle (Fig. 14 shape) ==\n");
    out.push_str(&format!(
        "{:<22} {:>8} {:>6} {:>14} {:>12}\n",
        "program", "windows", "flags", "latency (cyc)", "secure duty"
    ));
    for r in rows {
        let latency = match (r.is_attack, r.detection_latency) {
            (false, _) => "-".to_string(),
            (true, Some(c)) => c.to_string(),
            (true, None) => "missed".to_string(),
        };
        out.push_str(&format!(
            "{:<22} {:>8} {:>6} {:>14} {:>11.2}%\n",
            r.label,
            r.windows,
            r.flags,
            latency,
            r.secure_duty_ppm as f64 / 10_000.0,
        ));
    }
    out
}

/// Runs the metered pass and renders the full report: both tables plus the
/// registry's deterministic JSON (the byte-identical-at-any-thread-count
/// block `experiments --json` embeds).
pub fn obs_report(
    seed: u64,
    parallelism: Parallelism,
    programs: &[ObsProgram],
) -> (Arc<Registry>, String) {
    let reg = obs_pass(seed, parallelism, programs);
    let rows = extract_rows(&reg, programs);
    let mut out = render_rows(&rows);
    out.push_str("\n== Deterministic metrics ==\n");
    out.push_str(&reg.to_json());
    out.push('\n');
    (reg, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs_pass::smoke_programs;

    #[test]
    fn report_renders_rows_for_every_program() {
        let programs = smoke_programs();
        let (reg, report) = obs_report(5, Parallelism::Fixed(1), &programs);
        for p in &programs {
            assert!(
                report.contains(&p.label()),
                "missing {} in:\n{report}",
                p.label()
            );
        }
        let rows = extract_rows(&reg, &programs);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.baseline_cycles > 0));
        assert!(rows.iter().all(|r| r.windows > 0));
        // Always-on fencing must cost cycles over baseline.
        assert!(rows.iter().all(|r| r.always_on_cycles > r.baseline_cycles));
    }
}
