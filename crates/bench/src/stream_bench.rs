//! Shared corpus + collection drivers for the streaming-featurization
//! benchmarks: the `collect_streaming` criterion bench and the
//! `collect_rss` peak-memory harness (`BENCH_stream.json`).
//!
//! Two implementations of the same fit-then-normalize collection:
//!
//! - [`collect_streaming`] — the production path: per-run [`StreamStats`]
//!   fit pass + re-simulating emit pass, O(dim) working memory per worker.
//! - [`collect_materialized`] — the pre-refactor algorithm: buffer every
//!   raw `f64` window, fit the normalizer over the matrix, normalize in a
//!   second in-memory pass. Kept here purely as the comparison baseline.
//!
//! Both produce bit-identical datasets (`tests/golden_featurization.rs`
//! proves it); what differs is peak memory and where the time goes.

use evax_attacks::benign::Scale;
use evax_attacks::{build_attack, build_benign, KernelParams};
use evax_core::featurize::DatasetSink;
use evax_core::par;
use evax_core::prelude::{
    Dataset, Normalizer, Parallelism, ProgramSource, Sample, StreamStats, WindowSource,
    BENIGN_CLASS,
};
use evax_sim::{CpuConfig, Program};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Sampling interval (the default collection interval).
pub const INTERVAL: u64 = 100;
/// Instruction budget per run (the default collection budget).
pub const MAX_INSTRS: u64 = 12_000;

/// Builds a labeled corpus of `repeat × (21 attacks + 10 benigns)` runs
/// with per-run jitter. `repeat = 12` is ≥ 10× the default collection
/// corpus's per-class run counts.
pub fn corpus(repeat: usize) -> Vec<(usize, Program)> {
    let mut out = Vec::new();
    for run in 0..repeat {
        for (i, &class) in evax_attacks::ATTACK_CLASSES.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(0xC0_11EC + (run * 31 + i) as u64);
            let params = KernelParams {
                iterations: 150 + (run as u32 % 4) * 75,
                ..Default::default()
            };
            out.push((class.label(), build_attack(class, &params, &mut rng)));
        }
        for (i, &kind) in evax_attacks::BENIGN_KINDS.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(0xBE_916E + (run * 37 + i) as u64);
            out.push((
                BENIGN_CLASS,
                build_benign(kind, Scale(MAX_INSTRS), &mut rng),
            ));
        }
    }
    out
}

/// The production streaming path: fit pass (per-run stats merged in
/// canonical order) + re-simulating emit pass. Never materializes a raw
/// window matrix.
pub fn collect_streaming(corpus: &[(usize, Program)], parallelism: Parallelism) -> Dataset {
    let cpu_cfg = CpuConfig::default();
    let dim = evax_sim::HPC_BASE_DIM;
    let per_run = par::map(parallelism, corpus, |(_, program)| {
        let mut stats = StreamStats::new(dim);
        ProgramSource::new(program, &cpu_cfg, INTERVAL, MAX_INSTRS).stream(&mut stats);
        stats
    });
    let mut stats = StreamStats::new(dim);
    for s in &per_run {
        stats.merge(s);
    }
    let norm = stats.normalizer();
    let per_ds = par::map(parallelism, corpus, |(class, program)| {
        let mut sink = DatasetSink::new(&norm, *class);
        ProgramSource::new(program, &cpu_cfg, INTERVAL, MAX_INSTRS).stream(&mut sink);
        sink.into_dataset()
    });
    let mut ds = Dataset::new();
    for d in per_ds {
        ds.extend(d);
    }
    ds
}

/// The pre-refactor materializing baseline: one simulation pass buffering
/// every raw `f64` window, then fit + normalize in memory. Peak memory is
/// the full raw window matrix.
pub fn collect_materialized(corpus: &[(usize, Program)], parallelism: Parallelism) -> Dataset {
    let cpu_cfg = CpuConfig::default();
    let per_run: Vec<(usize, Vec<Vec<f64>>)> = par::map(parallelism, corpus, |(class, program)| {
        let mut sink = evax_core::featurize::CollectingSink::new();
        ProgramSource::new(program, &cpu_cfg, INTERVAL, MAX_INSTRS).stream(&mut sink);
        (*class, sink.into_windows())
    });
    let mut norm = Normalizer::new(evax_sim::HPC_BASE_DIM);
    for (_, windows) in &per_run {
        for w in windows {
            norm.observe(w);
        }
    }
    let mut ds = Dataset::new();
    for (class, windows) in &per_run {
        for w in windows {
            ds.push(Sample::new(norm.normalize(w), *class));
        }
    }
    ds
}

/// Peak resident set size (`VmHWM`) of this process, in kilobytes.
/// Returns 0 when `/proc` is unavailable (non-Linux).
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}
