//! Zero-day benchmark: unsupervised anomaly detection on held-out attack
//! categories.
//!
//! The supervised experiments ([`crate::exp_zeroday`]) measure leave-one-out
//! generalization of a *labeled* classifier. This benchmark asks the harder
//! question from the paper's threat model: can a detector that has **never
//! seen any attack** — trained on benign windows only — still flag whole
//! attack categories it was never shown? Every category in
//! [`CATEGORIES`] is held out by construction: the [`AnomalyScorer`] fits
//! benign statistics, calibrates its threshold on a disjoint benign
//! validation pool, and is then confronted with all 21 registry attack
//! classes grouped into four microarchitectural families.
//!
//! The benchmark trains the scorer **twice on the same raw windows**: once
//! on the baseline 133 HPC columns and once on the full sensor vector with
//! the `energy.*` tail enabled, so the marginal value of the energy
//! modality is an apples-to-apples column ablation rather than a separate
//! simulation run.
//!
//! A second, harder experiment repeats the whole protocol on **busy
//! carriers** ([`evax_attacks::carriers`]): the scorer is trained on benign
//! interrupt/timer/DMA-driven traces (run under each carrier's device
//! configuration) and then confronted with composed attacks spliced
//! mid-stream into those carriers. The report records the carrier-noise
//! TPR/FPR deltas against the quiet-trace baseline — the cost of
//! multi-tenant noise — and ablates the `irq.*`/`dma.*` device columns the
//! same way the clean section ablates the energy tail.

use evax_attacks::benign::Scale;
use evax_attacks::{
    build_attack, build_benign, build_carrier, build_carrier_attack, AttackClass, CarrierAttack,
    KernelParams, BENIGN_KINDS, CARRIER_ATTACKS, CARRIER_KINDS,
};
use evax_core::featurize::{CollectingSink, ProgramSource, WindowSource};
use evax_core::par::{self, Parallelism};
use evax_core::Normalizer;
use evax_nn::{AnomalyScorer, Detector, DetectorScratch};
use evax_sim::{CpuConfig, SensorConfig, HPC_BASE_DIM};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The four held-out attack families partitioning the full
/// [`evax_attacks::ATTACK_CLASSES`] registry.
pub const CATEGORIES: [(&str, &[AttackClass]); 4] = [
    (
        "transient",
        &[
            AttackClass::SpectrePht,
            AttackClass::SpectreBtb,
            AttackClass::SpectreRsb,
            AttackClass::SpectreStl,
            AttackClass::Meltdown,
            AttackClass::MedusaCacheIndexing,
            AttackClass::MedusaUnalignedStl,
            AttackClass::MedusaShadowRepMov,
            AttackClass::Lvi,
            AttackClass::Fallout,
        ],
    ),
    (
        "cache",
        &[
            AttackClass::FlushReload,
            AttackClass::FlushFlush,
            AttackClass::PrimeProbe,
            AttackClass::FlushConflict,
            AttackClass::LeakyBuddies,
        ],
    ),
    ("dram", &[AttackClass::Rowhammer, AttackClass::Drama]),
    (
        "contention",
        &[
            AttackClass::SmotherSpectre,
            AttackClass::BranchScope,
            AttackClass::MicroScope,
            AttackClass::RdRand,
        ],
    ),
];

/// Configuration for [`run_zeroday`].
#[derive(Debug, Clone)]
pub struct ZerodayConfig {
    /// Master seed; every program run derives a disjoint stream from it.
    pub seed: u64,
    /// Sampling interval in committed instructions.
    pub interval: u64,
    /// Instruction budget per program run.
    pub max_instrs: u64,
    /// Benign runs per [`BENIGN_KINDS`] kind in each of the three pools
    /// (fit / calibrate / held-out test).
    pub benign_runs: usize,
    /// Runs per attack class.
    pub attack_runs: usize,
    /// Target false-positive rate for threshold calibration.
    pub fpr: f64,
    /// Pooled window TPR at or above which a category counts as detected.
    pub detect_bar: f64,
    /// Top-k dimensions scored by the [`AnomalyScorer`] (0 = all).
    pub top_k: usize,
    /// Pooled alarm rate at or above which a composed carrier trace counts
    /// as detected. Lower than [`detect_bar`](Self::detect_bar) because the
    /// attack phase occupies a minority of the interleaved trace: the
    /// benign prefix and tail windows dilute the pooled rate.
    pub carrier_bar: f64,
    /// Worker threads for the simulation fan-out (results are
    /// bit-deterministic at any setting).
    pub parallelism: Parallelism,
    /// Smoke preset marker (recorded in the artifact).
    pub smoke: bool,
}

impl Default for ZerodayConfig {
    fn default() -> Self {
        ZerodayConfig {
            seed: 42,
            interval: 200,
            max_instrs: 20_000,
            benign_runs: 2,
            attack_runs: 2,
            fpr: 0.05,
            detect_bar: 0.5,
            top_k: 0,
            carrier_bar: 0.15,
            parallelism: Parallelism::Auto,
            smoke: false,
        }
    }
}

impl ZerodayConfig {
    /// A CI-sized preset: one run per program, short instruction budget.
    pub fn smoke(seed: u64) -> ZerodayConfig {
        ZerodayConfig {
            seed,
            max_instrs: 6_000,
            benign_runs: 1,
            attack_runs: 1,
            smoke: true,
            ..ZerodayConfig::default()
        }
    }
}

/// Per-class detection result for one feature variant.
#[derive(Debug, Clone)]
pub struct ClassResult {
    /// Registry name of the attack class.
    pub name: &'static str,
    /// Windows the class produced.
    pub windows: u64,
    /// Windows flagged with HPC-only features.
    pub hits_hpc: u64,
    /// Windows flagged with HPC + energy features.
    pub hits_energy: u64,
}

/// Aggregated result for one held-out category.
#[derive(Debug, Clone)]
pub struct CategoryResult {
    /// Category name (`transient` / `cache` / `dram` / `contention`).
    pub name: &'static str,
    /// Per-class breakdown.
    pub classes: Vec<ClassResult>,
    /// Pooled window TPR with HPC-only features.
    pub tpr_hpc: f64,
    /// Pooled window TPR with HPC + energy features.
    pub tpr_energy: f64,
}

/// Result for one composed attack riding a busy carrier.
#[derive(Debug, Clone)]
pub struct CarrierTraceResult {
    /// Composition name (`<attack>@<carrier>`).
    pub name: &'static str,
    /// The clean [`CATEGORIES`] entry the spliced attack belongs to, for
    /// the noise-delta comparison.
    pub clean_category: &'static str,
    /// Windows the interleaved trace produced (benign phases included).
    pub windows: u64,
    /// Windows flagged by the device-blind (133-column) variant.
    pub hits_hpc: u64,
    /// Windows flagged by the full energy + device vector variant.
    pub hits_full: u64,
}

/// The busy-carrier half of the evaluation: scorers trained on benign
/// interrupt/timer/DMA-driven traces, evaluated on composed attacks.
#[derive(Debug, Clone)]
pub struct CarrierSection {
    /// Benign carrier windows in each pool (fit / calibrate / test).
    pub benign_windows: [u64; 3],
    /// Held-out benign-carrier false-positive rate, HPC-only columns.
    pub fpr_hpc: f64,
    /// Held-out benign-carrier false-positive rate, full vector (HPC +
    /// energy + device columns).
    pub fpr_full: f64,
    /// Per-composition results.
    pub traces: Vec<CarrierTraceResult>,
}

impl CarrierSection {
    /// Compositions whose pooled alarm rate clears `bar`, full vector.
    pub fn detected_full(&self, bar: f64) -> usize {
        self.traces
            .iter()
            .filter(|t| rate(t.hits_full, t.windows) >= bar)
            .count()
    }

    /// Compositions whose pooled alarm rate clears `bar`, device-blind.
    pub fn detected_hpc(&self, bar: f64) -> usize {
        self.traces
            .iter()
            .filter(|t| rate(t.hits_hpc, t.windows) >= bar)
            .count()
    }
}

/// The full zero-day evaluation artifact.
#[derive(Debug, Clone)]
pub struct ZerodayReport {
    /// The configuration that produced this report.
    pub config: ZerodayConfig,
    /// Benign windows in each pool (fit / calibrate / test).
    pub benign_windows: [u64; 3],
    /// Held-out benign false-positive rate, HPC-only.
    pub fpr_hpc: f64,
    /// Held-out benign false-positive rate, HPC + energy.
    pub fpr_energy: f64,
    /// Per-category results.
    pub categories: Vec<CategoryResult>,
    /// Busy-carrier evaluation.
    pub carrier: CarrierSection,
}

impl ZerodayReport {
    /// Categories whose pooled TPR clears the detection bar, HPC-only.
    pub fn detected_hpc(&self) -> usize {
        self.categories
            .iter()
            .filter(|c| c.tpr_hpc >= self.config.detect_bar)
            .count()
    }

    /// Categories whose pooled TPR clears the detection bar, HPC + energy.
    pub fn detected_energy(&self) -> usize {
        self.categories
            .iter()
            .filter(|c| c.tpr_energy >= self.config.detect_bar)
            .count()
    }

    /// Mean per-category TPR, HPC-only.
    pub fn mean_tpr_hpc(&self) -> f64 {
        mean(self.categories.iter().map(|c| c.tpr_hpc))
    }

    /// Mean per-category TPR, HPC + energy.
    pub fn mean_tpr_energy(&self) -> f64 {
        mean(self.categories.iter().map(|c| c.tpr_energy))
    }

    /// Clean-trace energy-variant TPR of the category a carrier trace's
    /// spliced attack belongs to (the noise-delta reference point).
    pub fn clean_tpr_for(&self, trace: &CarrierTraceResult) -> f64 {
        self.categories
            .iter()
            .find(|c| c.name == trace.clean_category)
            .map_or(0.0, |c| c.tpr_energy)
    }

    /// Acceptance: >= 3 of 4 categories detected by the energy variant at
    /// the target FPR, and — on full-size runs — the energy modality
    /// strictly improves the mean held-out TPR over HPC-only features,
    /// plus the busy-carrier gates: >= 3 of 4 composed attacks detected at
    /// the carrier bar with the benign-carrier FPR still at or under
    /// target. Smoke runs skip the improvement and carrier gates: a
    /// one-run corpus is too small to resolve those margins.
    pub fn passes(&self) -> bool {
        let gates = self.detected_energy() >= 3
            && self.fpr_energy <= self.config.fpr
            && self.fpr_hpc <= self.config.fpr;
        if self.config.smoke {
            gates
        } else {
            gates
                && self.mean_tpr_energy() > self.mean_tpr_hpc()
                && self.carrier.detected_full(self.config.carrier_bar) >= 3
                && self.carrier.fpr_full <= self.config.fpr
        }
    }

    /// Serializes the report as a JSON object (hand-rolled; the vendored
    /// serde is a no-op stand-in).
    pub fn to_json(&self) -> String {
        let mut cats = String::new();
        for (i, c) in self.categories.iter().enumerate() {
            if i > 0 {
                cats.push_str(", ");
            }
            let mut classes = String::new();
            for (j, k) in c.classes.iter().enumerate() {
                if j > 0 {
                    classes.push_str(", ");
                }
                classes.push_str(&format!(
                    "{{\"name\": \"{}\", \"windows\": {}, \"tpr_hpc\": {:.6}, \
                     \"tpr_energy\": {:.6}}}",
                    k.name,
                    k.windows,
                    rate(k.hits_hpc, k.windows),
                    rate(k.hits_energy, k.windows),
                ));
            }
            cats.push_str(&format!(
                "{{\"name\": \"{}\", \"tpr_hpc\": {:.6}, \"tpr_energy\": {:.6}, \
                 \"detected_hpc\": {}, \"detected_energy\": {}, \"classes\": [{}]}}",
                c.name,
                c.tpr_hpc,
                c.tpr_energy,
                c.tpr_hpc >= self.config.detect_bar,
                c.tpr_energy >= self.config.detect_bar,
                classes,
            ));
        }
        let threads = match self.config.parallelism {
            Parallelism::Fixed(n) => n.to_string(),
            _ => "\"auto\"".to_string(),
        };
        let mut traces = String::new();
        for (i, t) in self.carrier.traces.iter().enumerate() {
            if i > 0 {
                traces.push_str(", ");
            }
            let tpr_full = rate(t.hits_full, t.windows);
            traces.push_str(&format!(
                "{{\"name\": \"{}\", \"clean_category\": \"{}\", \"windows\": {}, \
                 \"tpr_hpc\": {:.6}, \"tpr_full\": {:.6}, \
                 \"tpr_delta_vs_clean\": {:.6}, \"detected\": {}}}",
                t.name,
                t.clean_category,
                t.windows,
                rate(t.hits_hpc, t.windows),
                tpr_full,
                tpr_full - self.clean_tpr_for(t),
                tpr_full >= self.config.carrier_bar,
            ));
        }
        let carrier = format!(
            "{{\n    \"carriers\": {}, \"composed_attacks\": {}, \"carrier_bar\": {:.6}, \
             \"dim_full\": {},\n    \"benign_windows\": [{}, {}, {}],\n    \
             \"carrier_fpr_hpc\": {:.6}, \"carrier_fpr_full\": {:.6}, \
             \"carrier_fpr_delta_vs_clean\": {:.6},\n    \
             \"carrier_detected_hpc\": {}, \"carrier_detected_full\": {},\n    \
             \"traces\": [{}]\n  }}",
            CARRIER_KINDS.len(),
            CARRIER_ATTACKS.len(),
            self.config.carrier_bar,
            HPC_BASE_DIM + evax_sim::ENERGY_DIM + evax_sim::DEVICE_DIM,
            self.carrier.benign_windows[0],
            self.carrier.benign_windows[1],
            self.carrier.benign_windows[2],
            self.carrier.fpr_hpc,
            self.carrier.fpr_full,
            self.carrier.fpr_full - self.fpr_energy,
            self.carrier.detected_hpc(self.config.carrier_bar),
            self.carrier.detected_full(self.config.carrier_bar),
            traces,
        );
        format!(
            "{{\n  \"bench\": \"zeroday\",\n  \"seed\": {},\n  \"smoke\": {},\n  \
             \"cores\": {},\n  \"threads\": {},\n  \"interval\": {},\n  \
             \"max_instrs\": {},\n  \"fpr_target\": {:.6},\n  \"detect_bar\": {:.6},\n  \
             \"top_k\": {},\n  \"dim_hpc\": {},\n  \"dim_energy\": {},\n  \
             \"benign_windows\": [{}, {}, {}],\n  \"fpr_hpc\": {:.6},\n  \
             \"fpr_energy\": {:.6},\n  \"mean_tpr_hpc\": {:.6},\n  \
             \"mean_tpr_energy\": {:.6},\n  \"detected_hpc\": {},\n  \
             \"detected_energy\": {},\n  \"energy_improves\": {},\n  \"pass\": {},\n  \
             \"categories\": [{}],\n  \"carrier\": {}\n}}\n",
            self.config.seed,
            self.config.smoke,
            std::thread::available_parallelism().map_or(1, |n| n.get()),
            threads,
            self.config.interval,
            self.config.max_instrs,
            self.config.fpr,
            self.config.detect_bar,
            self.config.top_k,
            HPC_BASE_DIM,
            HPC_BASE_DIM + evax_sim::ENERGY_DIM,
            self.benign_windows[0],
            self.benign_windows[1],
            self.benign_windows[2],
            self.fpr_hpc,
            self.fpr_energy,
            self.mean_tpr_hpc(),
            self.mean_tpr_energy(),
            self.detected_hpc(),
            self.detected_energy(),
            self.mean_tpr_energy() > self.mean_tpr_hpc(),
            self.passes(),
            cats,
            carrier,
        )
    }
}

fn mean(it: impl Iterator<Item = f64>) -> f64 {
    let (mut sum, mut n) = (0.0, 0u64);
    for v in it {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

fn rate(hits: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// One feature variant: a benign-fitted normalizer plus anomaly scorer
/// over a column prefix of the raw sensor window.
struct Variant {
    dim: usize,
    normalizer: Normalizer,
    scorer: AnomalyScorer,
}

impl Variant {
    /// Fits normalizer + scorer on the first `dim` columns of the benign
    /// fit pool and calibrates the threshold on the calibration pool.
    fn fit(
        dim: usize,
        top_k: usize,
        fpr: f64,
        fit_pool: &[Vec<f64>],
        calib_pool: &[Vec<f64>],
    ) -> Variant {
        let mut observed = Normalizer::new(dim);
        for w in fit_pool {
            observed.observe(&w[..dim]);
        }
        // Counters that are identically zero across every benign window
        // (clflush counts, DRAM row conflicts, ...) are precisely the
        // strongest zero-day evidence, but a fitted maximum of 0 would
        // normalize any attack value to 0 too. Floor those maxima at 1 so
        // a single event saturates the feature while benign stays at 0.
        let maxima: Vec<f64> = observed
            .maxima()
            .iter()
            .map(|&m| if m <= 0.0 { 1.0 } else { m })
            .collect();
        let normalizer = Normalizer::from_maxima(maxima);
        let rows = flatten(&normalizer, fit_pool, dim);
        let scorer = AnomalyScorer::fit(&rows, dim)
            .expect("benign fit pool is non-empty and finite")
            .with_top_k(top_k);
        let mut v = Variant {
            dim,
            normalizer,
            scorer,
        };
        let calib = flatten(&v.normalizer, calib_pool, dim);
        // Calibrate below the target so the *held-out* benign FPR — which
        // fluctuates around the calibration quantile — stays under it.
        v.scorer.calibrate_threshold(&calib, fpr * 0.6);
        v
    }

    /// Fraction of `windows` the calibrated scorer flags.
    fn alarm_rate(&self, windows: &[Vec<f64>]) -> (u64, u64) {
        let mut scratch = DetectorScratch::new();
        let mut row = vec![0.0f32; self.dim];
        let mut hits = 0u64;
        for w in windows {
            self.normalizer.normalize_into(&w[..self.dim], &mut row);
            if self.scorer.classify(&row, &mut scratch) {
                hits += 1;
            }
        }
        (hits, windows.len() as u64)
    }
}

/// Normalizes the first `dim` columns of every window into one flat
/// row-major f32 buffer.
fn flatten(normalizer: &Normalizer, windows: &[Vec<f64>], dim: usize) -> Vec<f32> {
    let mut rows = vec![0.0f32; windows.len() * dim];
    for (w, out) in windows.iter().zip(rows.chunks_exact_mut(dim)) {
        normalizer.normalize_into(&w[..dim], out);
    }
    rows
}

/// Derives a disjoint per-program rng stream from the master seed.
fn stream_rng(seed: u64, domain: u64, a: u64, b: u64) -> StdRng {
    let mut x = seed
        .wrapping_add(domain.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(a.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(b.wrapping_mul(0x94d0_49bb_1331_11eb));
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    StdRng::seed_from_u64(x)
}

fn collect_budget(
    program: &evax_sim::Program,
    cpu_cfg: &CpuConfig,
    cfg: &ZerodayConfig,
    budget: u64,
) -> Vec<Vec<f64>> {
    let mut sink = CollectingSink::new();
    ProgramSource::new(program, cpu_cfg, cfg.interval, budget).stream(&mut sink);
    sink.into_windows()
}

fn collect(program: &evax_sim::Program, cpu_cfg: &CpuConfig, cfg: &ZerodayConfig) -> Vec<Vec<f64>> {
    collect_budget(program, cpu_cfg, cfg, cfg.max_instrs)
}

/// Collects one benign pool (`pool` = 0 fit, 1 calibrate, 2 test). The
/// simulation fans out over `cfg.parallelism`; merge order is canonical,
/// so the pool is bit-identical at any thread count.
fn benign_pool(cfg: &ZerodayConfig, cpu_cfg: &CpuConfig, pool: u64) -> Vec<Vec<f64>> {
    let specs: Vec<(u64, u64)> = (0..BENIGN_KINDS.len() as u64)
        .flat_map(|k| (0..cfg.benign_runs as u64).map(move |run| (k, run)))
        .collect();
    let per_run = par::map(cfg.parallelism, &specs, |&(k, run)| {
        let mut rng = stream_rng(cfg.seed, pool, k, run);
        let program = build_benign(BENIGN_KINDS[k as usize], Scale(cfg.max_instrs), &mut rng);
        collect(&program, cpu_cfg, cfg)
    });
    per_run.into_iter().flatten().collect()
}

/// Simulated core for a carrier: energy sensor on, the carrier's device
/// configuration active. Every carrier produces the same width (the
/// device tail length is independent of which sources are armed).
fn carrier_cpu_cfg(kind: evax_attacks::CarrierKind) -> CpuConfig {
    CpuConfig {
        sensor: SensorConfig::builder()
            .energy(true)
            .build()
            .expect("default sensor weights validate"),
        devices: kind.device_config(),
        ..CpuConfig::default()
    }
}

/// Collects one benign pool for a single carrier kind (`pool` = 0 fit,
/// 1 calibrate, 2 test), simulated under that carrier's device
/// configuration. The pools are **per-kind** on purpose: a timer carrier's
/// benign envelope (zero `dma.*` columns) and a DMA carrier's (huge ones)
/// are different tenants — pooling them inflates the fitted variance until
/// attacks hide inside it. Training one profile per carrier mirrors a
/// per-tenant deployment.
fn carrier_pool(cfg: &ZerodayConfig, k: usize, pool: u64) -> Vec<Vec<f64>> {
    let runs: Vec<u64> = (0..cfg.benign_runs as u64).collect();
    let kind = CARRIER_KINDS[k];
    let per_run = par::map(cfg.parallelism, &runs, |&run| {
        let mut rng = stream_rng(cfg.seed, 300 + pool, k as u64, run);
        let program = build_carrier(kind, Scale(cfg.max_instrs), &mut rng);
        collect(&program, &carrier_cpu_cfg(kind), cfg)
    });
    per_run.into_iter().flatten().collect()
}

/// The clean [`CATEGORIES`] entry a composed carrier attack belongs to.
fn clean_category(which: CarrierAttack) -> &'static str {
    let class = which.attack_class();
    CATEGORIES
        .iter()
        .find(|(_, classes)| classes.contains(&class))
        .map(|(name, _)| *name)
        .expect("every attack class is categorized")
}

/// Runs the full benign-only training + held-out category evaluation.
pub fn run_zeroday(cfg: &ZerodayConfig) -> ZerodayReport {
    let cpu_cfg = CpuConfig {
        sensor: SensorConfig::builder()
            .energy(true)
            .build()
            .expect("default sensor weights validate"),
        ..CpuConfig::default()
    };
    let full_dim = evax_sim::dim_for(&cpu_cfg);

    let fit_pool = benign_pool(cfg, &cpu_cfg, 0);
    let calib_pool = benign_pool(cfg, &cpu_cfg, 1);
    let test_pool = benign_pool(cfg, &cpu_cfg, 2);
    assert!(
        !fit_pool.is_empty() && !calib_pool.is_empty() && !test_pool.is_empty(),
        "benign pools must be non-empty (raise max_instrs or lower interval)"
    );

    let hpc = Variant::fit(HPC_BASE_DIM, cfg.top_k, cfg.fpr, &fit_pool, &calib_pool);
    let energy = Variant::fit(full_dim, cfg.top_k, cfg.fpr, &fit_pool, &calib_pool);

    let (fp_h, n_test) = hpc.alarm_rate(&test_pool);
    let (fp_e, _) = energy.alarm_rate(&test_pool);

    let mut categories = Vec::new();
    for (name, classes) in CATEGORIES {
        let mut results = Vec::new();
        let (mut pooled_h, mut pooled_e, mut pooled_n) = (0u64, 0u64, 0u64);
        for (c, &class) in classes.iter().enumerate() {
            let runs: Vec<u64> = (0..cfg.attack_runs as u64).collect();
            let per_run = par::map(cfg.parallelism, &runs, |&run| {
                let mut rng = stream_rng(cfg.seed, 100 + c as u64, class as u64, run);
                let program = build_attack(class, &KernelParams::default(), &mut rng);
                let mut windows = collect(&program, &cpu_cfg, cfg);
                // Evasive variant: decoys and rate modulation dilute the
                // per-window discrete footprint (the hard zero-day case —
                // aggregate activity, which the energy tail integrates,
                // stays elevated while individual counters sink back into
                // the benign envelope).
                let mut rng = stream_rng(cfg.seed, 200 + c as u64, class as u64, run);
                let evasive = KernelParams {
                    decoy_ops: rng.gen_range(48..128),
                    delay_ops: rng.gen_range(128..384),
                    iterations: rng.gen_range(8..24),
                    seed: rng.gen(),
                    ..KernelParams::default()
                };
                let program = build_attack(class, &evasive, &mut rng);
                windows.extend(collect(&program, &cpu_cfg, cfg));
                windows
            });
            let windows: Vec<Vec<f64>> = per_run.into_iter().flatten().collect();
            let (h, n) = hpc.alarm_rate(&windows);
            let (e, _) = energy.alarm_rate(&windows);
            pooled_h += h;
            pooled_e += e;
            pooled_n += n;
            results.push(ClassResult {
                name: class.name(),
                windows: n,
                hits_hpc: h,
                hits_energy: e,
            });
        }
        categories.push(CategoryResult {
            name,
            classes: results,
            tpr_hpc: rate(pooled_h, pooled_n),
            tpr_energy: rate(pooled_e, pooled_n),
        });
    }

    // Busy-carrier section: retrain from scratch on benign carrier traces,
    // one scorer pair **per carrier kind** (the per-tenant profile — see
    // [`carrier_pool`]), then confront each carrier's scorers with composed
    // attacks spliced into that carrier. `full` sees the energy + device
    // tails; `hpc` is the device-blind ablation.
    let carrier_dim = evax_sim::dim_for(&carrier_cpu_cfg(CARRIER_KINDS[0]));
    let mut per_kind = Vec::with_capacity(CARRIER_KINDS.len());
    let (mut c_fit_n, mut c_calib_n) = (0u64, 0u64);
    let (mut cfp_h, mut cfp_f, mut c_n_test) = (0u64, 0u64, 0u64);
    for k in 0..CARRIER_KINDS.len() {
        let fit = carrier_pool(cfg, k, 0);
        let calib = carrier_pool(cfg, k, 1);
        let test = carrier_pool(cfg, k, 2);
        assert!(
            !fit.is_empty() && !calib.is_empty() && !test.is_empty(),
            "carrier pools must be non-empty (raise max_instrs or lower interval)"
        );
        let c_hpc = Variant::fit(HPC_BASE_DIM, cfg.top_k, cfg.fpr, &fit, &calib);
        let c_full = Variant::fit(carrier_dim, cfg.top_k, cfg.fpr, &fit, &calib);
        let (h, n) = c_hpc.alarm_rate(&test);
        let (f, _) = c_full.alarm_rate(&test);
        cfp_h += h;
        cfp_f += f;
        c_n_test += n;
        c_fit_n += fit.len() as u64;
        c_calib_n += calib.len() as u64;
        per_kind.push((c_hpc, c_full));
    }

    let mut traces = Vec::new();
    for (w, &which) in CARRIER_ATTACKS.iter().enumerate() {
        let runs: Vec<u64> = (0..cfg.attack_runs as u64).collect();
        let per_run = par::map(cfg.parallelism, &runs, |&run| {
            let mut rng = stream_rng(cfg.seed, 400 + w as u64, 0, run);
            let program = build_carrier_attack(
                which,
                Scale(cfg.max_instrs),
                &KernelParams::default(),
                &mut rng,
            );
            // The composed trace is carrier prefix + attack + tail; give it
            // headroom beyond the per-segment scale so the attack phase is
            // actually reached and sampled.
            collect_budget(
                &program,
                &carrier_cpu_cfg(which.carrier()),
                cfg,
                cfg.max_instrs.saturating_mul(3),
            )
        });
        let windows: Vec<Vec<f64>> = per_run.into_iter().flatten().collect();
        let kind_idx = CARRIER_KINDS
            .iter()
            .position(|&k| k == which.carrier())
            .expect("composed attack rides a registered carrier");
        let (c_hpc, c_full) = &per_kind[kind_idx];
        let (h, n) = c_hpc.alarm_rate(&windows);
        let (f, _) = c_full.alarm_rate(&windows);
        traces.push(CarrierTraceResult {
            name: which.name(),
            clean_category: clean_category(which),
            windows: n,
            hits_hpc: h,
            hits_full: f,
        });
    }

    ZerodayReport {
        config: cfg.clone(),
        benign_windows: [fit_pool.len() as u64, calib_pool.len() as u64, n_test],
        fpr_hpc: rate(fp_h, n_test),
        fpr_energy: rate(fp_e, n_test),
        categories,
        carrier: CarrierSection {
            benign_windows: [c_fit_n, c_calib_n, c_n_test],
            fpr_hpc: rate(cfp_h, c_n_test),
            fpr_full: rate(cfp_f, c_n_test),
            traces,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evax_attacks::ATTACK_CLASSES;

    #[test]
    fn categories_partition_the_registry() {
        let mut seen: Vec<AttackClass> = Vec::new();
        for (_, classes) in CATEGORIES {
            for &c in classes {
                assert!(!seen.contains(&c), "{c:?} appears twice");
                seen.push(c);
            }
        }
        assert_eq!(seen.len(), ATTACK_CLASSES.len());
        for c in ATTACK_CLASSES {
            assert!(seen.contains(&c), "{c:?} missing from categories");
        }
    }

    #[test]
    fn smoke_report_is_deterministic_and_well_formed() {
        let cfg = ZerodayConfig::smoke(7);
        let a = run_zeroday(&cfg);
        let b = run_zeroday(&cfg);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.categories.len(), 4);
        assert_eq!(
            a.categories.iter().map(|c| c.classes.len()).sum::<usize>(),
            21
        );
        // Calibration bounds the *calibration-pool* FPR by construction;
        // the held-out estimate is reported but only asserted finite here.
        assert!(a.fpr_hpc.is_finite() && a.fpr_energy.is_finite());
        assert_eq!(a.carrier.traces.len(), 4, "one trace per composition");
        assert!(a.carrier.traces.iter().all(|t| t.windows > 0));
        for key in [
            "\"bench\": \"zeroday\"",
            "\"cores\"",
            "\"threads\"",
            "\"fpr_hpc\"",
            "\"fpr_energy\"",
            "\"mean_tpr_hpc\"",
            "\"mean_tpr_energy\"",
            "\"detected_energy\"",
            "\"energy_improves\"",
            "\"pass\"",
            "\"categories\"",
            "\"carrier\"",
            "\"carrier_fpr_full\"",
            "\"carrier_fpr_delta_vs_clean\"",
            "\"carrier_detected_full\"",
            "\"tpr_delta_vs_clean\"",
        ] {
            assert!(a.to_json().contains(key), "missing {key}");
        }
    }

    #[test]
    fn report_is_identical_across_thread_counts() {
        let mut one = ZerodayConfig::smoke(11);
        one.parallelism = Parallelism::Fixed(1);
        let mut four = ZerodayConfig::smoke(11);
        four.parallelism = Parallelism::Fixed(4);
        let a = run_zeroday(&one);
        let b = run_zeroday(&four);
        // The merge order is canonical, so everything but the recorded
        // thread count is byte-identical.
        assert_eq!(
            a.to_json().replace("\"threads\": 1,", "\"threads\": 4,"),
            b.to_json()
        );
    }

    #[test]
    fn clean_category_mapping_is_total() {
        for which in CARRIER_ATTACKS {
            let name = clean_category(which);
            assert!(CATEGORIES.iter().any(|(n, _)| *n == name));
        }
    }

    #[test]
    fn full_evaluation_meets_acceptance() {
        if std::env::var("EVAX_SLOW_TESTS").is_err() {
            return;
        }
        let report = run_zeroday(&ZerodayConfig::default());
        assert!(
            report.passes(),
            "zeroday acceptance failed: detected_energy={} fpr_energy={:.4} \
             mean_tpr_hpc={:.4} mean_tpr_energy={:.4}",
            report.detected_energy(),
            report.fpr_energy,
            report.mean_tpr_hpc(),
            report.mean_tpr_energy(),
        );
    }
}
