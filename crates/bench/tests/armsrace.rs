//! The arms-race contract: the smoke benchmark produces a well-formed,
//! reproducible artifact whose acceptance numbers clear the bar — the
//! round-1 evasive corpus drops baseline detection by ≥ 20% (relative) and
//! at least one hardened variant ends the race within 5% of its
//! clean-corpus detection rate. The full-size race is gated behind
//! `EVAX_SLOW_TESTS=1` like the other heavyweight suites.

use evax_bench::armsrace::{run_arms_race, ArmsRaceConfig};

#[test]
fn armsrace_smoke_artifact_is_well_formed_and_reproducible() {
    let report = run_arms_race(&ArmsRaceConfig::smoke(42));
    let json = report.to_json();
    for key in [
        "\"strategies\"",
        "\"cores\"",
        "\"threads\"",
        "\"clean\"",
        "\"clean_false_positives\"",
        "\"carrier_interleaved\"",
        "\"carrier_false_positives\"",
        "\"race\"",
        "\"baseline\"",
        "\"quant\"",
        "\"stochastic\"",
        "\"ensemble\"",
        "\"pre\"",
        "\"post\"",
        "\"round1_baseline_drop\"",
        "\"final_best_hardened_gap\"",
        "\"verdict_digest\"",
    ] {
        assert!(json.contains(key), "{key} missing from artifact:\n{json}");
    }
    assert_eq!(report.rounds.len(), 2, "smoke preset runs 2 rounds");
    // The interleaved busy-carrier evaluation scored both benign carriers
    // and composed attacks riding them.
    for (name, rate) in report.carrier.named() {
        assert!(rate.total > 0, "carrier[{name}] scored no windows");
    }
    for (name, rate) in report.carrier_fp.named() {
        assert!(rate.total > 0, "carrier_fp[{name}] scored no windows");
    }
    for round in &report.rounds {
        assert!(round.windows > 0, "round {} saw no windows", round.round);
        for (name, rate) in round.pre.named() {
            assert_eq!(
                rate.total, round.windows,
                "round {} pre[{name}] total disagrees with window count",
                round.round
            );
        }
    }

    // Same seed + same config ⇒ byte-identical artifact, digest included
    // (the digest already folds verdict counts measured at 1/4/16 kernel
    // threads inside one run; this re-run pins cross-run reproducibility).
    let again = run_arms_race(&ArmsRaceConfig::smoke(42));
    assert_eq!(json, again.to_json(), "same-seed arms race diverged");
}

#[test]
fn armsrace_smoke_clears_the_acceptance_bars() {
    let report = run_arms_race(&ArmsRaceConfig::smoke(42));
    let drop = report.round1_baseline_drop();
    assert!(
        drop >= 0.20,
        "round-1 evasive corpus only dropped baseline detection by {:.1}% (need ≥ 20%)",
        drop * 100.0
    );
    let gap = report.final_best_hardened_gap();
    assert!(
        gap <= 0.05,
        "best hardened variant ended {:.1}% below clean-corpus detection (need ≤ 5%)",
        gap * 100.0
    );
    // Hardening must not melt the clean-corpus false-positive budget.
    for (name, fp) in report.clean_fp.named() {
        assert!(
            fp.rate() <= 0.10,
            "{name} clean false-positive rate {:.1}% exceeds 10%",
            fp.rate() * 100.0
        );
    }
}

#[test]
fn armsrace_full_race_slow() {
    if std::env::var("EVAX_SLOW_TESTS").is_err() {
        eprintln!("skipping armsrace_full_race_slow; set EVAX_SLOW_TESTS=1");
        return;
    }
    // The committed BENCH_armsrace.json shape: default config, seed 42.
    let report = run_arms_race(&ArmsRaceConfig::default());
    assert_eq!(report.rounds.len(), 4, "default race runs 4 rounds");
    assert!(
        report.round1_baseline_drop() >= 0.20,
        "full race round-1 drop {:.3} under the 20% bar",
        report.round1_baseline_drop()
    );
    assert!(
        report.final_best_hardened_gap() <= 0.05,
        "full race hardened gap {:.3} over the 5% bar",
        report.final_best_hardened_gap()
    );
}
