//! The chaos-harness contract: the fault matrix is bit-reproducible at any
//! thread count, records zero panics and zero fail-open cells, and its
//! injection hooks are bitwise invisible when disabled.

use evax_bench::fault_matrix::{run_fault_matrix, Subsystem};
use evax_core::featurize::CollectingSink;
use evax_core::prelude::{
    FaultInjector, FaultKind, FaultingSink, Parallelism, ProgramSource, SliceSource, WindowSource,
};
use evax_sim::CpuConfig;

#[test]
fn matrix_is_byte_identical_across_thread_counts() {
    let render_at = |n: usize| run_fault_matrix(7, 2, Parallelism::Fixed(n)).render();
    let one = render_at(1);
    assert_eq!(one, render_at(4), "1-thread vs 4-thread matrix diverged");
    assert_eq!(one, render_at(16), "1-thread vs 16-thread matrix diverged");
}

#[test]
fn matrix_records_no_violations() {
    let matrix = run_fault_matrix(11, 3, Parallelism::Auto);
    assert!(
        matrix.violations().is_empty(),
        "chaos run violated fail-secure:\n{}",
        matrix.render()
    );
    for cell in &matrix.cells {
        assert_eq!(cell.panics, 0, "panic in {}", matrix.render());
        // Storage faults surface as typed errors or bounded-retry
        // recoveries; none may reach the fail-secure or fail-open buckets.
        if cell.kind.is_storage() {
            assert_eq!(
                cell.clean_error + cell.degraded_ok,
                cell.iters,
                "storage outcome leak:\n{}",
                matrix.render()
            );
        }
        // Non-finite inference verdicts always hold mitigations ON.
        if cell.subsystem == Subsystem::Controller && cell.kind.is_inference() {
            assert_eq!(
                cell.fail_secure,
                cell.iters,
                "inference fault failed open:\n{}",
                matrix.render()
            );
        }
    }
}

#[test]
fn disabled_injection_is_bitwise_invisible() {
    // The same golden-equivalence argument as the no-op MetricsSink: a
    // disabled FaultingSink between source and sink must not change one bit
    // of what the sink observes — including across a real simulated run.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
    let program = evax_attacks::build_attack(
        evax_attacks::AttackClass::SpectrePht,
        &evax_attacks::KernelParams::default(),
        &mut rng,
    );
    let cpu = CpuConfig::default();

    let mut plain = CollectingSink::new();
    let plain_result = ProgramSource::new(&program, &cpu, 200, 6_000).stream(&mut plain);

    let mut hooked = CollectingSink::new();
    let hooked_result = {
        let mut sink = FaultingSink::new(&mut hooked, FaultInjector::disabled());
        ProgramSource::new(&program, &cpu, 200, 6_000).stream(&mut sink)
    };

    assert_eq!(plain_result, hooked_result, "run results diverged");
    assert_eq!(
        plain.into_windows(),
        hooked.into_windows(),
        "window stream diverged under a disabled injector"
    );
}

#[test]
fn zero_length_program_streams_cleanly() {
    // A real zero-instruction program through the real source: no windows,
    // no panic, an honest (empty) run result.
    let program = evax_sim::Program::from_instructions("empty", Vec::new());
    let mut sink = CollectingSink::new();
    let result = ProgramSource::new(&program, &CpuConfig::default(), 200, 6_000).stream(&mut sink);
    assert_eq!(result.committed_instructions, 0);
    assert!(sink.into_windows().is_empty());

    // And the same shape through the replay source used by the matrix.
    let empty: Vec<Vec<f64>> = Vec::new();
    let mut sink = CollectingSink::new();
    let result = SliceSource::new(&empty, 200).stream(&mut sink);
    assert_eq!(result.committed_instructions, 0);
    assert!(sink.into_windows().is_empty());
}

#[test]
fn full_matrix_slow() {
    if std::env::var("EVAX_SLOW_TESTS").is_err() {
        eprintln!("skipping full_matrix_slow; set EVAX_SLOW_TESTS=1 to run");
        return;
    }
    let matrix = run_fault_matrix(42, 16, Parallelism::Auto);
    assert!(
        matrix.violations().is_empty(),
        "full chaos run violated fail-secure:\n{}",
        matrix.render()
    );
    let rendered = matrix.render();
    assert!(rendered.contains("all 22 cells survived"), "{rendered}");
    // Exercise every FaultKind at least once across the grid.
    for kind in FaultKind::ALL {
        assert!(
            matrix.cells.iter().any(|c| c.kind == *kind),
            "fault kind {kind:?} missing from the grid"
        );
    }
}
