//! The fleet service contract: the deterministic block of
//! `BENCH_fleet.json` is byte-identical at any thread count, the quantized
//! kernel agrees with the f32 oracle on real simulated windows within its
//! provable bound, and (on machines with the cores to show it) the batched
//! drain clears the 5× throughput bar over per-window classification.

use evax_bench::fleet_bench::{run_fleet_bench, FleetBenchConfig};
use evax_core::collect::{collect_dataset, CollectConfig};
use evax_core::prelude::{Detector, DetectorKind, Featurizer, Parallelism, TrainConfig};
use evax_defense::adaptive::AdaptiveConfig;
use evax_defense::fleet::{run_fleet, FleetConfig, InferenceMode};
use evax_sim::CpuConfig;
use rand::SeedableRng;

fn small_collect() -> CollectConfig {
    CollectConfig {
        interval: 200,
        runs_per_attack: 1,
        runs_per_benign: 1,
        max_instrs: 3_000,
        benign_scale: 3_000,
        ..Default::default()
    }
}

fn trained(seed: u64) -> (Detector, Featurizer, evax_core::prelude::Dataset) {
    let (ds, norm) = collect_dataset(&small_collect(), seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut det = Detector::train(
        DetectorKind::Evax,
        &ds,
        vec![],
        &TrainConfig::default(),
        &mut rng,
    );
    det.tune_for_tpr(&ds, 0.99);
    let feat = Featurizer::new(norm, det.engineered().to_vec());
    (det, feat, ds)
}

fn fleet_cfg(n_streams: usize, inference: InferenceMode) -> FleetConfig {
    FleetConfig {
        n_streams,
        attack_every: 4,
        max_instrs: 1_500,
        adaptive: AdaptiveConfig {
            sample_interval: 200,
            secure_window: 1_000,
            ..AdaptiveConfig::default()
        },
        // 6 streams per shard vs a 4-window batch: both the full (threaded)
        // flush and the end-of-pass tail flush run every pass.
        batch_windows: 4,
        n_shards: 8,
        kernel_threads: 1,
        inference,
        seed: 7,
        warm_start: false,
    }
}

#[test]
fn fleet_deterministic_block_is_byte_identical_across_thread_counts() {
    let (det, feat, _) = trained(7);
    let cpu_cfg = CpuConfig::default();
    for mode in [InferenceMode::BatchedF32, InferenceMode::PerWindow] {
        let cfg = fleet_cfg(48, mode);
        let json_at = |n: usize| {
            run_fleet(&cfg, &cpu_cfg, &det, &feat, Parallelism::Fixed(n)).deterministic_json()
        };
        let one = json_at(1);
        assert_eq!(one, json_at(4), "1 vs 4 threads diverged ({mode:?})");
        assert_eq!(one, json_at(16), "1 vs 16 threads diverged ({mode:?})");
    }
}

#[test]
fn quantized_verdicts_agree_with_f32_oracle_on_real_windows() {
    // Real simulated windows — the collection corpus the detector trained
    // on — pushed through both kernels row by row.
    let (det, _, ds) = trained(11);
    let quant = det.quantize_linear();
    let mut ext = Vec::new();
    let mut xq = Vec::new();
    let mut flips = 0u64;
    let mut total = 0u64;
    for s in &ds.samples {
        det.transform_into(&s.features, &mut ext);
        xq.clear();
        xq.resize(ext.len(), 0);
        evax_nn::QuantLinear::quantize_input_into(&ext, &mut xq);
        let q_verdict = quant.score_q(&xq) >= quant.threshold_q();
        let f32_score = det.score(&s.features);
        let f32_verdict = f32_score >= det.threshold();
        assert!(
            quant.agrees_with_f32(f32_score, det.threshold(), q_verdict),
            "quant verdict flipped outside the ambiguity band: \
             f32 score {f32_score}, threshold {}, bound {}",
            det.threshold(),
            quant.score_error_bound()
        );
        total += 1;
        if q_verdict != f32_verdict {
            flips += 1;
        }
    }
    assert!(total > 100, "corpus too small to mean anything");
    // Aggregate flip rate stays small on real windows: ≤ 2%.
    assert!(
        flips * 50 <= total,
        "quantization flipped {flips}/{total} verdicts (> 2%)"
    );
}

#[test]
fn fleet_bench_smoke_produces_well_formed_artifact() {
    let report = run_fleet_bench(&FleetBenchConfig {
        n_streams: 32,
        seed: 5,
        parallelism: Parallelism::Fixed(2),
        quantized: true,
        smoke: true,
    });
    let json = report.to_json();
    for key in [
        "\"per_window\"",
        "\"batched_f32\"",
        "\"batched_quant\"",
        "\"windows_per_sec\"",
        "\"p50_ns\"",
        "\"p99_ns\"",
        "\"verdict_digest\"",
        "\"inference_drain\"",
        "\"batched_vs_per_window_speedup\"",
    ] {
        assert!(json.contains(key), "{key} missing from artifact:\n{json}");
    }
    // Same seed + same config ⇒ the deterministic blocks reproduce.
    assert_eq!(
        report.per_window.windows, report.batched_f32.windows,
        "inference mode must not change the sampling schedule"
    );
}

#[test]
fn full_fleet_determinism_and_throughput_slow() {
    // Full-size fleet (the ≥1k-stream acceptance shape): opt in via
    // EVAX_SLOW_TESTS=1, like the full fault matrix.
    if std::env::var("EVAX_SLOW_TESTS").is_err() {
        eprintln!("skipping full_fleet_determinism_and_throughput_slow; set EVAX_SLOW_TESTS=1");
        return;
    }
    let (det, feat, _) = trained(42);
    let cpu_cfg = CpuConfig::default();
    let cfg = FleetConfig {
        n_streams: 1024,
        batch_windows: 16,
        n_shards: 64,
        ..fleet_cfg(1024, InferenceMode::BatchedF32)
    };
    let json_at = |n: usize| {
        run_fleet(&cfg, &cpu_cfg, &det, &feat, Parallelism::Fixed(n)).deterministic_json()
    };
    let one = json_at(1);
    assert_eq!(one, json_at(4), "full fleet: 1 vs 4 threads diverged");
    assert_eq!(one, json_at(16), "full fleet: 1 vs 16 threads diverged");

    // The 5× batched-inference bar needs real cores to be meaningful; a
    // 1-core CI container can only measure substrate overhead (see
    // BENCH_stream.json's note for the same caveat).
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let report = run_fleet_bench(&FleetBenchConfig {
        n_streams: 1024,
        seed: 42,
        parallelism: Parallelism::Auto,
        quantized: true,
        smoke: false,
    });
    eprintln!(
        "fleet drain: {:.2}x batched vs per-window on {cores} cores (optimized: {})",
        report.drain.speedup,
        !cfg!(debug_assertions)
    );
    // The 5× bar is a release-build criterion: a debug build dilutes the
    // batched kernel's allocation win behind uniform per-element overhead,
    // and a <4-core box cannot realize the 4-thread speedup at all. Only a
    // release test run on adequate hardware asserts it; elsewhere the log
    // line above is the record.
    if cores >= 4 && !cfg!(debug_assertions) {
        assert!(
            report.drain.speedup >= 5.0,
            "batched drain only {:.2}x per-window throughput at {} threads on {cores} cores",
            report.drain.speedup,
            report.drain.kernel_threads
        );
    } else {
        eprintln!(
            "skipping 5x batched-drain assertion: needs >= 4 cores (have {cores}) \
             and a release build (optimized: {})",
            !cfg!(debug_assertions)
        );
    }
}
