//! The `metrics` block contract behind `experiments --json`: the metered
//! defense pass records only simulated quantities in its deterministic
//! export, so the JSON is byte-identical at 1, 4 and 16 worker threads —
//! and it carries the paper-facing detection-latency and secure-duty-cycle
//! metrics for the attack programs.

use evax_bench::obs_pass::{default_programs, obs_pass, smoke_programs};
use evax_bench::obs_report::{extract_rows, render_rows};
use evax_core::prelude::Parallelism;

#[test]
fn metrics_block_is_byte_identical_across_thread_counts() {
    let programs = default_programs();
    let json_at = |n: usize| obs_pass(42, Parallelism::Fixed(n), &programs).to_json();
    let one = json_at(1);
    assert_eq!(one, json_at(4), "1-thread vs 4-thread metrics diverged");
    assert_eq!(one, json_at(16), "1-thread vs 16-thread metrics diverged");

    // The paper-facing adaptive metrics are present for an attack program.
    assert!(
        one.contains("\"adaptive.spectre_pht.detection_latency_cycles\"")
            || one.contains("\"adaptive.spectre_pht.missed_detections\""),
        "no detection outcome for the attack program in {one}"
    );
    assert!(
        one.contains("\"adaptive.spectre_pht.secure_duty_ppm\""),
        "no duty-cycle metric for the attack program in {one}"
    );
}

#[test]
fn jsonl_and_tables_agree_with_the_registry() {
    let programs = smoke_programs();
    let reg = obs_pass(9, Parallelism::Fixed(2), &programs);
    // Every deterministic metric appears as a JSONL line.
    let jsonl = reg.to_jsonl();
    for (name, _) in reg.snapshot() {
        assert!(
            jsonl.contains(&format!("\"name\": \"{name}\"")),
            "metric {name} missing from JSONL"
        );
    }
    // Table rows reflect the registry's raw values.
    let rows = extract_rows(&reg, &programs);
    for row in &rows {
        assert_eq!(
            reg.get(&format!("adaptive.{}.cycles", row.label)),
            Some(row.adaptive_cycles)
        );
    }
    let rendered = render_rows(&rows);
    assert!(
        rendered.contains("Fig. 16"),
        "missing overhead table header"
    );
    assert!(
        rendered.contains("Fig. 14"),
        "missing detection table header"
    );
}
