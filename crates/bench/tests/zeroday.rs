//! The zero-day contract: a detector trained on benign windows only
//! produces a well-formed, reproducible `BENCH_zeroday.json`, and on
//! full-size runs detects at least 3 of the 4 held-out attack categories
//! at a held-out benign FPR within the 5% target, with the `energy.*`
//! tail strictly improving mean detection over HPC-only features. The
//! full-size evaluation is gated behind `EVAX_SLOW_TESTS=1` like the
//! other heavyweight suites.

use evax_bench::zeroday_bench::{run_zeroday, ZerodayConfig, CATEGORIES};

#[test]
fn zeroday_smoke_artifact_is_well_formed_and_reproducible() {
    let report = run_zeroday(&ZerodayConfig::smoke(42));
    let json = report.to_json();
    for key in [
        "\"bench\": \"zeroday\"",
        "\"cores\"",
        "\"threads\"",
        "\"dim_hpc\": 133",
        "\"dim_energy\": 142",
        "\"benign_windows\"",
        "\"fpr_hpc\"",
        "\"fpr_energy\"",
        "\"mean_tpr_hpc\"",
        "\"mean_tpr_energy\"",
        "\"detected_hpc\"",
        "\"detected_energy\"",
        "\"energy_improves\"",
        "\"pass\"",
        "\"categories\"",
        "\"carrier\"",
        "\"carrier_fpr_hpc\"",
        "\"carrier_fpr_full\"",
        "\"carrier_fpr_delta_vs_clean\"",
        "\"carrier_detected_full\"",
        "\"dim_full\": 152",
    ] {
        assert!(json.contains(key), "{key} missing from artifact:\n{json}");
    }
    for (name, _) in CATEGORIES {
        assert!(
            json.contains(&format!("\"name\": \"{name}\"")),
            "{name} missing"
        );
    }
    assert_eq!(report.categories.len(), 4);
    assert_eq!(
        report
            .categories
            .iter()
            .map(|c| c.classes.len())
            .sum::<usize>(),
        21,
        "categories must cover the full attack registry"
    );
    for pool in report.benign_windows {
        assert!(pool > 0, "a benign pool collected no windows");
    }
    for pool in report.carrier.benign_windows {
        assert!(pool > 0, "a benign carrier pool collected no windows");
    }
    assert_eq!(report.carrier.traces.len(), 4, "one trace per composition");
    for t in &report.carrier.traces {
        assert!(t.windows > 0, "{} collected no windows", t.name);
    }

    // Same seed + same config ⇒ byte-identical artifact.
    let again = run_zeroday(&ZerodayConfig::smoke(42));
    assert_eq!(json, again.to_json(), "same-seed zeroday run diverged");
}

#[test]
fn zeroday_smoke_holds_the_false_positive_budget() {
    let report = run_zeroday(&ZerodayConfig::smoke(42));
    assert!(
        report.fpr_hpc <= report.config.fpr,
        "held-out HPC-only FPR {:.4} exceeds target {:.4}",
        report.fpr_hpc,
        report.config.fpr
    );
    assert!(
        report.fpr_energy <= report.config.fpr,
        "held-out energy FPR {:.4} exceeds target {:.4}",
        report.fpr_energy,
        report.config.fpr
    );
    assert!(report.passes(), "smoke acceptance gates failed");
}

#[test]
fn zeroday_full_evaluation_slow() {
    if std::env::var("EVAX_SLOW_TESTS").is_err() {
        eprintln!("skipping zeroday_full_evaluation_slow; set EVAX_SLOW_TESTS=1");
        return;
    }
    // The committed BENCH_zeroday.json shape: default config, seed 42.
    let report = run_zeroday(&ZerodayConfig::default());
    assert!(
        report.detected_energy() >= 3,
        "only {}/4 held-out categories detected",
        report.detected_energy()
    );
    assert!(
        report.fpr_energy <= report.config.fpr && report.fpr_hpc <= report.config.fpr,
        "held-out FPR over target: hpc {:.4}, energy {:.4}",
        report.fpr_hpc,
        report.fpr_energy
    );
    assert!(
        report.mean_tpr_energy() > report.mean_tpr_hpc(),
        "energy features did not improve mean held-out TPR ({:.4} vs {:.4})",
        report.mean_tpr_energy(),
        report.mean_tpr_hpc()
    );
    assert!(
        report.carrier.detected_full(report.config.carrier_bar) >= 3,
        "only {}/4 busy-carrier composed attacks detected",
        report.carrier.detected_full(report.config.carrier_bar)
    );
    assert!(
        report.carrier.fpr_full <= report.config.fpr,
        "benign-carrier FPR {:.4} over target {:.4}",
        report.carrier.fpr_full,
        report.config.fpr
    );
}
