//! Adversarial-ML evasion bounded by the transient window (paper §I,
//! Figs. 2 and 18).
//!
//! "Our solution is to push the classification boundaries in the worst
//! adversarial directions until further attempts to evade disables the
//! attack" — an attacker perturbing its microarchitectural footprint spends
//! transient-window budget (decoys, delays, restructuring); the window is
//! bounded by the ROB. If the perturbation needed to cross the decision
//! boundary exceeds that budget, the evasion attempt *disables the attack*.

use rand::Rng;

use crate::dataset::{Dataset, Sample};
use crate::detector::Detector;

/// Outcome of one evasion attempt against a detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvasionOutcome {
    /// The perturbed sample crossed the boundary within budget — the attack
    /// still leaks *and* evades (a detector loss).
    Evaded,
    /// Crossing the boundary would cost more perturbation than the
    /// transient window allows: the "evasive" variant no longer leaks.
    Disabled,
    /// The sample could not evade at all and is still flagged.
    Detected,
}

/// AML attack configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AmlConfig {
    /// Total L1 perturbation budget in normalized feature units. The paper
    /// ties this to the transient window: it scales with the ROB
    /// ([`AmlConfig::for_rob`]).
    pub budget_l1: f32,
    /// Per-step L∞ cap on each feature change.
    pub step: f32,
    /// Maximum gradient steps.
    pub max_steps: usize,
}

impl Default for AmlConfig {
    fn default() -> Self {
        AmlConfig::for_rob(192)
    }
}

impl AmlConfig {
    /// Budget scaled to the ROB size (Table II default = 192): a smaller
    /// ROB means a shorter transient window and a smaller evasion budget —
    /// "our experiments show adversarial ML efforts in systems with small
    /// ROB fail to evade our detector" (§I).
    pub fn for_rob(rob_entries: usize) -> Self {
        AmlConfig {
            budget_l1: 0.7 * rob_entries as f32 / 192.0,
            step: 0.05,
            max_steps: 400,
        }
    }
}

/// Result of one evasion attempt with its cost.
#[derive(Debug, Clone, PartialEq)]
pub struct EvasionAttempt {
    /// The outcome.
    pub outcome: EvasionOutcome,
    /// L1 perturbation applied (or required, for `Disabled`).
    pub cost_l1: f32,
    /// The final (possibly perturbed) feature vector.
    pub features: Vec<f32>,
}

/// Gradient-descent evasion of one malicious sample against a (surrogate)
/// detector: move each feature against its weight's sign, spending L1
/// budget, until the score drops below the threshold.
///
/// The attacker has white-box access to a similar detector (threat model
/// §IV, assumption 2).
pub fn evade(det: &Detector, sample: &Sample, cfg: &AmlConfig) -> EvasionAttempt {
    assert!(
        sample.malicious,
        "evasion only makes sense for attack samples"
    );
    let mut x = sample.features.clone();
    if !det.classify(&x) {
        // Already below threshold: evaded for free.
        return EvasionAttempt {
            outcome: EvasionOutcome::Evaded,
            cost_l1: 0.0,
            features: x,
        };
    }
    let weights = det.perceptron().weights().to_vec();
    let base_dim = x.len();
    let mut spent = 0.0f32;
    let mut spent_beyond_budget = 0.0f32;
    let mut evaded_at: Option<f32> = None;
    for _ in 0..cfg.max_steps {
        // Rank baseline features by current score sensitivity. Engineered
        // features move with their components, so the surrogate gradient is
        // the weight on the feature itself plus any engineered feature it
        // currently gates (min component).
        let transformed = det.transform(&x);
        let engineered = det.engineered();
        let mut grad = weights[..base_dim].to_vec();
        for (k, f) in engineered.iter().enumerate() {
            // The min component carries the gradient of the fuzzy AND.
            if let Some(&min_idx) = f
                .components
                .iter()
                .min_by(|&&a, &&b| x[a].partial_cmp(&x[b]).unwrap_or(std::cmp::Ordering::Equal))
            {
                grad[min_idx] += weights[base_dim + k];
            }
        }
        let _ = transformed;
        // Take the strongest useful move: decrease features with positive
        // weight, increase features with negative weight, within [0, 1].
        let mut best: Option<(usize, f32)> = None;
        for i in 0..base_dim {
            let headroom = if grad[i] > 0.0 { x[i] } else { 1.0 - x[i] };
            let gain = grad[i].abs() * headroom.min(cfg.step);
            if gain > 1e-9 && best.is_none_or(|(_, g)| gain > g) {
                best = Some((i, gain));
            }
        }
        let Some((i, _)) = best else { break };
        let delta = if grad[i] > 0.0 {
            -x[i].min(cfg.step)
        } else {
            (1.0 - x[i]).min(cfg.step)
        };
        x[i] += delta;
        let cost = delta.abs();
        if spent + cost <= cfg.budget_l1 {
            spent += cost;
        } else {
            spent_beyond_budget += cost;
        }
        if !det.classify(&x) {
            evaded_at = Some(spent + spent_beyond_budget);
            break;
        }
    }
    match evaded_at {
        Some(total) if total <= cfg.budget_l1 => EvasionAttempt {
            outcome: EvasionOutcome::Evaded,
            cost_l1: total,
            features: x,
        },
        Some(total) => EvasionAttempt {
            // Crossing the boundary required perturbing past the transient
            // window — the attack no longer completes before squash.
            outcome: EvasionOutcome::Disabled,
            cost_l1: total,
            features: x,
        },
        None => EvasionAttempt {
            outcome: EvasionOutcome::Detected,
            cost_l1: spent + spent_beyond_budget,
            features: x,
        },
    }
}

/// Aggregate AML evaluation (one Fig. 18 bar).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AmlReport {
    /// Attempts that evaded within budget (leakage happened undetected).
    pub evaded: usize,
    /// Attempts whose evasion cost exceeded the window (attack disabled).
    pub disabled: usize,
    /// Attempts still detected.
    pub detected: usize,
}

impl AmlReport {
    /// Total attempts.
    pub fn total(&self) -> usize {
        self.evaded + self.disabled + self.detected
    }

    /// Defense success rate: the paper's "accuracy on AML attacks" — an
    /// attack counts against the defense only if it both leaks and evades.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.disabled + self.detected) as f64 / self.total() as f64
        }
    }

    /// `true` when no attempt achieved leakage ("At 93%, leakage is Zero"
    /// means all *remaining* evasions were disabled; exact zero leakage is
    /// `evaded == 0`).
    pub fn zero_leakage(&self) -> bool {
        self.evaded == 0
    }
}

/// Runs the AML attack against the malicious samples of a dataset that the
/// detector currently flags (subsampled to `limit` attempts). Windows the
/// detector already misses need no evasion — the adaptive architecture is
/// triggered by the attack's *flagged* windows, so those are what the
/// attacker must suppress.
pub fn evaluate_aml<R: Rng>(
    det: &Detector,
    ds: &Dataset,
    cfg: &AmlConfig,
    limit: usize,
    rng: &mut R,
) -> AmlReport {
    let malicious: Vec<&Sample> = ds
        .samples
        .iter()
        .filter(|s| s.malicious && det.classify(&s.features))
        .collect();
    let mut report = AmlReport::default();
    if malicious.is_empty() {
        return report;
    }
    let n = malicious.len().min(limit);
    for _ in 0..n {
        let s = malicious[rng.gen_range(0..malicious.len())];
        match evade(det, s, cfg).outcome {
            EvasionOutcome::Evaded => report.evaded += 1,
            EvasionOutcome::Disabled => report.disabled += 1,
            EvasionOutcome::Detected => report.detected += 1,
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{DetectorKind, TrainConfig};
    use rand::SeedableRng;

    fn dataset(rng: &mut impl Rng, margin: f32) -> Dataset {
        let mut ds = Dataset::new();
        for _ in 0..300 {
            let m: f32 = rng.gen_range((0.5 + margin)..1.0);
            let b: f32 = rng.gen_range(0.0..(0.5 - margin));
            ds.push(Sample::new(vec![m, b], 1));
            ds.push(Sample::new(vec![b, m], 0));
        }
        ds
    }

    #[test]
    fn tight_margin_is_evadable_with_big_budget() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let ds = dataset(&mut rng, 0.02);
        let det = Detector::train(
            DetectorKind::PerSpectron,
            &ds,
            vec![],
            &TrainConfig::default(),
            &mut rng,
        );
        let cfg = AmlConfig {
            budget_l1: 10.0,
            step: 0.05,
            max_steps: 500,
        };
        let report = evaluate_aml(&det, &ds, &cfg, 50, &mut rng);
        assert!(report.evaded > 0, "huge budget should evade: {report:?}");
    }

    #[test]
    fn small_rob_budget_disables_evasions() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let ds = dataset(&mut rng, 0.05);
        let mut det = Detector::train(
            DetectorKind::Evax,
            &ds,
            vec![],
            &TrainConfig::default(),
            &mut rng,
        );
        det.tune_for_tpr(&ds, 1.0);
        // A tiny ROB -> tiny window -> evasion attempts disable the attack.
        let cfg = AmlConfig::for_rob(16);
        let report = evaluate_aml(&det, &ds, &cfg, 50, &mut rng);
        assert!(
            report.evaded < 10,
            "small-ROB budget should rarely evade: {report:?}"
        );
        assert!(report.accuracy() > 0.8);
    }

    #[test]
    fn budget_scales_with_rob() {
        assert!(AmlConfig::for_rob(192).budget_l1 > AmlConfig::for_rob(32).budget_l1);
    }

    #[test]
    fn report_accuracy_counts_disabled_as_defense_win() {
        let r = AmlReport {
            evaded: 1,
            disabled: 6,
            detected: 3,
        };
        assert!((r.accuracy() - 0.9).abs() < 1e-12);
        assert!(!r.zero_leakage());
        let r2 = AmlReport {
            evaded: 0,
            disabled: 5,
            detected: 5,
        };
        assert!(r2.zero_leakage());
    }

    #[test]
    #[should_panic(expected = "evasion only makes sense for attack samples")]
    fn benign_sample_rejected() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let ds = dataset(&mut rng, 0.1);
        let det = Detector::train(
            DetectorKind::Evax,
            &ds,
            vec![],
            &TrainConfig::default(),
            &mut rng,
        );
        let benign = Sample::new(vec![0.1, 0.9], 0);
        let _ = evade(&det, &benign, &AmlConfig::default());
    }
}
