//! Sample collection: run attack/benign programs on the simulator, sample
//! all counters every N committed instructions, normalize by running max.
//!
//! Paper §VII: "We have extended our framework to collect statistics once
//! every 100,000, 10,000, 1000 and 100 instructions ... Contrary to typical
//! architectural studies, we generate many more, smaller simpoints of benign
//! codes, since we need to train to detect short patterns quickly."

use evax_attacks::benign::Scale;
use evax_attacks::{build_attack, build_benign, AttackClass, BenignKind, KernelParams};
use evax_sim::{Cpu, CpuConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::{Dataset, Normalizer, Sample, BENIGN_CLASS};
use crate::par::{self, Parallelism};

/// Collection configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectConfig {
    /// Sampling interval in committed instructions (paper: 100–100k).
    pub interval: u64,
    /// Program runs per attack class.
    pub runs_per_attack: usize,
    /// Program runs per benign kind (paper: "many more, smaller simpoints").
    pub runs_per_benign: usize,
    /// Instruction budget per run.
    pub max_instrs: u64,
    /// Benign workload scale (dynamic instructions per program).
    pub benign_scale: u64,
    /// Worker threads for the simulation fan-out. Collection is
    /// bit-deterministic at any setting (see [`crate::par`]).
    pub parallelism: Parallelism,
}

impl Default for CollectConfig {
    fn default() -> Self {
        CollectConfig {
            interval: 100,
            runs_per_attack: 4,
            runs_per_benign: 8,
            max_instrs: 12_000,
            benign_scale: 12_000,
            parallelism: Parallelism::Auto,
        }
    }
}

/// Collects the raw (unnormalized) HPC windows for one program.
pub fn raw_windows(
    program: &evax_sim::Program,
    cfg: &CollectConfig,
    cpu_cfg: &CpuConfig,
) -> Vec<Vec<f64>> {
    let mut cpu = Cpu::new(cpu_cfg.clone());
    // Attacks that read kernel memory need a secret planted by "the OS".
    cpu.memory_mut()
        .write_u64(evax_attacks::mds::KERNEL_SECRET_ADDR, 5);
    let mut windows = Vec::new();
    cpu.run_sampled(program, cfg.max_instrs, cfg.interval, |s| {
        windows.push(s.values);
        None
    });
    windows
}

/// One unit of collection work: a single program run with its own
/// pre-assigned random stream.
enum RunSpec {
    /// One attack-kernel run (`run` indexes the per-class jitter schedule).
    Attack { class: AttackClass, run: usize },
    /// One benign-workload run.
    Benign { kind: BenignKind },
}

/// A full labeled collection run: every attack class plus every benign kind,
/// with per-run parameter jitter so samples are not identical.
///
/// Runs fan out across `cfg.parallelism` worker threads; every run's random
/// stream is a child seed drawn from the master RNG in canonical run order
/// before the fan-out, and windows are merged back in that same order, so
/// the result is **bit-identical at any thread count** (see [`crate::par`]).
///
/// Returns the dataset (normalized) and the fitted normalizer (needed to
/// normalize future/evasive samples consistently).
pub fn collect_dataset(cfg: &CollectConfig, seed: u64) -> (Dataset, Normalizer) {
    let cpu_cfg = CpuConfig::default();
    let mut rng = StdRng::seed_from_u64(seed);

    // Fix the work list and per-run child seeds up front, in canonical order.
    let mut runs: Vec<(RunSpec, u64)> = Vec::new();
    for class in evax_attacks::ATTACK_CLASSES {
        for run in 0..cfg.runs_per_attack {
            runs.push((RunSpec::Attack { class, run }, rng.gen()));
        }
    }
    for kind in evax_attacks::BENIGN_KINDS {
        for _ in 0..cfg.runs_per_benign {
            runs.push((RunSpec::Benign { kind }, rng.gen()));
        }
    }

    let per_run: Vec<Vec<(Vec<f64>, usize)>> =
        par::map(cfg.parallelism, &runs, |(spec, child_seed)| {
            let mut rng = StdRng::seed_from_u64(*child_seed);
            let (program, label) = match spec {
                RunSpec::Attack { class, run } => {
                    // Enough attack rounds to fill the instruction budget, so
                    // every class yields a comparable number of windows
                    // (short kernels like LVI would otherwise contribute
                    // almost no samples).
                    let params = KernelParams {
                        seed: rng.gen(),
                        iterations: 150 + (*run as u32 % 4) * 75,
                        ..Default::default()
                    };
                    (build_attack(*class, &params, &mut rng), class.label())
                }
                RunSpec::Benign { kind } => (
                    build_benign(*kind, Scale(cfg.benign_scale), &mut rng),
                    BENIGN_CLASS,
                ),
            };
            raw_windows(&program, cfg, &cpu_cfg)
                .into_iter()
                .map(|w| (w, label))
                .collect()
        });
    let labeled_raw: Vec<(Vec<f64>, usize)> = per_run.into_iter().flatten().collect();

    let dim = labeled_raw.first().map_or(0, |(w, _)| w.len());
    let mut norm = Normalizer::new(dim);
    for (w, _) in &labeled_raw {
        norm.observe(w);
    }
    let mut ds = Dataset::new();
    for (w, class) in &labeled_raw {
        ds.push(Sample::new(norm.normalize(w), *class));
    }
    (ds, norm)
}

/// Collects samples for a single prebuilt program under an existing
/// normalizer (used for evasive corpora and detector deployment).
pub fn collect_program(
    program: &evax_sim::Program,
    class: usize,
    cfg: &CollectConfig,
    norm: &Normalizer,
) -> Vec<Sample> {
    let cpu_cfg = CpuConfig::default();
    raw_windows(program, cfg, &cpu_cfg)
        .into_iter()
        .map(|w| Sample::new(norm.normalize(&w), class))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CollectConfig {
        CollectConfig {
            interval: 200,
            runs_per_attack: 1,
            runs_per_benign: 1,
            max_instrs: 3_000,
            benign_scale: 3_000,
            parallelism: Parallelism::serial(),
        }
    }

    #[test]
    fn collection_produces_labeled_normalized_samples() {
        let (ds, norm) = collect_dataset(&tiny(), 7);
        assert!(ds.len() > 100, "got {} samples", ds.len());
        assert_eq!(ds.feature_dim(), evax_sim::HPC_BASE_DIM);
        assert_eq!(norm.dim(), evax_sim::HPC_BASE_DIM);
        assert!(ds.n_malicious() > 0 && ds.n_benign() > 0);
        for s in &ds.samples {
            assert!(s.features.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn attack_and_benign_windows_differ() {
        let (ds, _) = collect_dataset(&tiny(), 8);
        // Mean squashed-work feature should be higher for attacks.
        let idx = evax_sim::hpc_index("iew.ExecSquashedInsts").unwrap();
        let mean = |malicious: bool| -> f32 {
            let xs: Vec<f32> = ds
                .samples
                .iter()
                .filter(|s| s.malicious == malicious)
                .map(|s| s.features[idx])
                .collect();
            xs.iter().sum::<f32>() / xs.len().max(1) as f32
        };
        assert!(
            mean(true) > mean(false),
            "attacks should squash more: {} vs {}",
            mean(true),
            mean(false)
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, _) = collect_dataset(&tiny(), 9);
        let (b, _) = collect_dataset(&tiny(), 9);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.samples[0], b.samples[0]);
    }

    /// The tentpole contract: the whole dataset (every sample, in order) and
    /// the fitted normalizer are byte-identical whether collection ran on
    /// one thread or many — including more threads than this machine has
    /// cores.
    #[test]
    fn parallel_collection_matches_serial_bitwise() {
        let serial = tiny();
        let (a, norm_a) = collect_dataset(&serial, 11);
        for threads in [2, 4, 7] {
            let parallel = CollectConfig {
                parallelism: Parallelism::Fixed(threads),
                ..serial.clone()
            };
            let (b, norm_b) = collect_dataset(&parallel, 11);
            assert_eq!(a.samples, b.samples, "threads={threads}");
            assert_eq!(norm_a, norm_b, "threads={threads}");
        }
    }
}
