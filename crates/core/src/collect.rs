//! Sample collection: run attack/benign programs on the simulator, sample
//! all counters every N committed instructions, normalize by running max.
//!
//! Paper §VII: "We have extended our framework to collect statistics once
//! every 100,000, 10,000, 1000 and 100 instructions ... Contrary to typical
//! architectural studies, we generate many more, smaller simpoints of benign
//! codes, since we need to train to detect short patterns quickly."
//!
//! Collection rides the unified streaming featurization pipeline
//! ([`crate::featurize`]): a **fit** pass streams every run's windows into
//! per-stream [`StreamStats`] (one window vector + running stats per stream
//! in memory), and an **emit** pass re-simulates each run — the simulator is
//! bit-deterministic, so re-running is exact — converting every window
//! straight into its normalized `f32` sample. No raw window matrix is ever
//! materialized, so peak memory is bounded by the *output* dataset
//! regardless of corpus size (the streaming trade: one extra simulation
//! pass buys O(dim) working memory per stream).

use evax_attacks::benign::Scale;
use evax_attacks::{build_attack, build_benign, AttackClass, BenignKind, KernelParams};
use evax_obs::MetricsSink;
use evax_sim::{CpuConfig, Program, SampleSchedule};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::{Dataset, Normalizer, Sample, BENIGN_CLASS};
use crate::featurize::{CollectingSink, DatasetSink, ProgramSource, StreamStats, WindowSource};
use crate::par::{self, Parallelism};

/// Collection configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectConfig {
    /// Sampling interval in committed instructions (paper: 100–100k).
    pub interval: u64,
    /// Program runs per attack class.
    pub runs_per_attack: usize,
    /// Program runs per benign kind (paper: "many more, smaller simpoints").
    pub runs_per_benign: usize,
    /// Instruction budget per run.
    pub max_instrs: u64,
    /// Benign workload scale (dynamic instructions per program).
    pub benign_scale: u64,
    /// Worker threads for the simulation fan-out. Collection is
    /// bit-deterministic at any setting (see [`crate::par`]).
    pub parallelism: Parallelism,
    /// Fast-forward interval schedule. The default (all-detailed) keeps
    /// collection bitwise-identical to the historical behavior; a nonzero
    /// `warmup_instrs` fast-forwards between sampling windows for large
    /// corpus-throughput gains at the cost of approximate windows.
    pub schedule: SampleSchedule,
    /// Simulated core configuration for every run. The default is
    /// bit-compatible with the historical hard-coded
    /// `CpuConfig::default()`; enabling the energy sensor here widens the
    /// collected windows (the dataset dimension follows
    /// `FeatureSchema::for_config(&cpu)`).
    pub cpu: CpuConfig,
}

impl Default for CollectConfig {
    fn default() -> Self {
        CollectConfig {
            interval: 100,
            runs_per_attack: 4,
            runs_per_benign: 8,
            max_instrs: 12_000,
            benign_scale: 12_000,
            parallelism: Parallelism::Auto,
            schedule: SampleSchedule::default(),
            cpu: CpuConfig::default(),
        }
    }
}

/// Collects the raw (unnormalized) HPC windows for one program.
///
/// Diagnostic/figure helper over the shared streaming source — the
/// production collection path never materializes windows like this.
pub fn raw_windows(program: &Program, cfg: &CollectConfig, cpu_cfg: &CpuConfig) -> Vec<Vec<f64>> {
    let mut sink = CollectingSink::new();
    ProgramSource::new(program, cpu_cfg, cfg.interval, cfg.max_instrs)
        .with_schedule(cfg.schedule)
        .stream(&mut sink);
    sink.into_windows()
}

/// One unit of collection work: a single program run with its own
/// pre-assigned random stream.
enum RunSpec {
    /// One attack-kernel run (`run` indexes the per-class jitter schedule).
    Attack { class: AttackClass, run: usize },
    /// One benign-workload run.
    Benign { kind: BenignKind },
}

/// Builds the program and label for one run. Construction is a pure
/// function of `(spec, child_seed)`, so the fit and emit passes rebuild
/// byte-identical programs.
fn build_run(spec: &RunSpec, child_seed: u64, cfg: &CollectConfig) -> (Program, usize) {
    let mut rng = StdRng::seed_from_u64(child_seed);
    match spec {
        RunSpec::Attack { class, run } => {
            // Enough attack rounds to fill the instruction budget, so
            // every class yields a comparable number of windows
            // (short kernels like LVI would otherwise contribute
            // almost no samples).
            let params = KernelParams {
                seed: rng.gen(),
                iterations: 150 + (*run as u32 % 4) * 75,
                ..Default::default()
            };
            (build_attack(*class, &params, &mut rng), class.label())
        }
        RunSpec::Benign { kind } => (
            build_benign(*kind, Scale(cfg.benign_scale), &mut rng),
            BENIGN_CLASS,
        ),
    }
}

/// The canonical work list: every attack class plus every benign kind, with
/// per-run child seeds drawn from the master RNG in canonical run order.
fn run_specs(cfg: &CollectConfig, seed: u64) -> Vec<(RunSpec, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut runs: Vec<(RunSpec, u64)> = Vec::new();
    for class in evax_attacks::ATTACK_CLASSES {
        for run in 0..cfg.runs_per_attack {
            runs.push((RunSpec::Attack { class, run }, rng.gen()));
        }
    }
    for kind in evax_attacks::BENIGN_KINDS {
        for _ in 0..cfg.runs_per_benign {
            runs.push((RunSpec::Benign { kind }, rng.gen()));
        }
    }
    runs
}

/// A full labeled collection run: every attack class plus every benign kind,
/// with per-run parameter jitter so samples are not identical.
///
/// Runs fan out across `cfg.parallelism` worker threads; every run's random
/// stream is a child seed drawn from the master RNG in canonical run order
/// before the fan-out, per-stream statistics and samples are merged back in
/// that same order, so the result is **bit-identical at any thread count**
/// (see [`crate::par`]).
///
/// Returns the dataset (normalized) and the full streaming statistics
/// (maxima for the [`Normalizer`], Welford mean/variance) fitted over every
/// raw window.
pub fn collect_dataset_stats(cfg: &CollectConfig, seed: u64) -> (Dataset, StreamStats) {
    collect_dataset_stats_with(cfg, seed, &MetricsSink::default())
}

/// [`collect_dataset_stats`] with observability: each worker records into a
/// private [`MetricsSink::fork`] (the thread-local-recorder discipline),
/// and forks are absorbed back in canonical run order alongside the
/// `StreamStats` merge — so `metrics`' deterministic export is
/// byte-identical at any thread count. With the default no-op sink this is
/// exactly [`collect_dataset_stats`].
pub fn collect_dataset_stats_with(
    cfg: &CollectConfig,
    seed: u64,
    metrics: &MetricsSink,
) -> (Dataset, StreamStats) {
    let cpu_cfg = cfg.cpu.clone();
    let runs = run_specs(cfg, seed);
    let dim = evax_sim::dim_for(&cpu_cfg);

    // Fit pass: stream every run's windows into per-stream statistics.
    // Memory per worker: one in-flight window vector plus O(dim) stats.
    let per_run_stats: Vec<(StreamStats, MetricsSink)> =
        par::map(cfg.parallelism, &runs, |(spec, child_seed)| {
            let (program, _) = build_run(spec, *child_seed, cfg);
            let mut stats = StreamStats::new(dim);
            let local = metrics.fork();
            ProgramSource::new(&program, &cpu_cfg, cfg.interval, cfg.max_instrs)
                .with_schedule(cfg.schedule)
                .with_metrics(local.clone())
                .stream(&mut stats);
            (stats, local)
        });
    let mut stats = StreamStats::new(dim);
    for (s, local) in &per_run_stats {
        stats.merge(s);
        metrics.absorb(local);
    }
    let norm = stats.normalizer();

    // Emit pass: re-simulate (bit-deterministic) and normalize each window
    // straight into its f32 sample — raw windows are never retained.
    let per_run: Vec<(Dataset, MetricsSink)> =
        par::map(cfg.parallelism, &runs, |(spec, child_seed)| {
            let (program, label) = build_run(spec, *child_seed, cfg);
            let mut sink = DatasetSink::new(&norm, label);
            let local = metrics.fork();
            ProgramSource::new(&program, &cpu_cfg, cfg.interval, cfg.max_instrs)
                .with_schedule(cfg.schedule)
                .with_metrics(local.clone())
                .stream(&mut sink);
            (sink.into_dataset(), local)
        });
    let mut ds = Dataset::new();
    for (run_ds, local) in per_run {
        ds.extend(run_ds);
        metrics.absorb(&local);
    }
    metrics.add("collect.runs", runs.len() as u64);
    metrics.add("collect.samples", ds.len() as u64);
    (ds, stats)
}

/// [`collect_dataset_stats`], returning just the fitted normalizer (the
/// historical interface; byte-identical output).
pub fn collect_dataset(cfg: &CollectConfig, seed: u64) -> (Dataset, Normalizer) {
    let (ds, stats) = collect_dataset_stats(cfg, seed);
    let norm = stats.normalizer();
    (ds, norm)
}

/// Collects samples for a single prebuilt program under an existing
/// normalizer (used for evasive corpora and detector deployment). Streams
/// each window straight into its normalized sample.
pub fn collect_program(
    program: &Program,
    class: usize,
    cfg: &CollectConfig,
    norm: &Normalizer,
) -> Vec<Sample> {
    let cpu_cfg = cfg.cpu.clone();
    let mut sink = DatasetSink::new(norm, class);
    ProgramSource::new(program, &cpu_cfg, cfg.interval, cfg.max_instrs)
        .with_schedule(cfg.schedule)
        .stream(&mut sink);
    sink.into_dataset().samples
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CollectConfig {
        CollectConfig {
            interval: 200,
            runs_per_attack: 1,
            runs_per_benign: 1,
            max_instrs: 3_000,
            benign_scale: 3_000,
            parallelism: Parallelism::serial(),
            ..Default::default()
        }
    }

    #[test]
    fn collection_produces_labeled_normalized_samples() {
        let (ds, norm) = collect_dataset(&tiny(), 7);
        assert!(ds.len() > 100, "got {} samples", ds.len());
        assert_eq!(ds.feature_dim(), evax_sim::HPC_BASE_DIM);
        assert_eq!(norm.dim(), evax_sim::HPC_BASE_DIM);
        assert!(ds.n_malicious() > 0 && ds.n_benign() > 0);
        for s in &ds.samples {
            assert!(s.features.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn stats_cover_every_window() {
        let (ds, stats) = collect_dataset_stats(&tiny(), 7);
        assert_eq!(stats.count(), ds.len() as u64);
        assert_eq!(stats.dim(), evax_sim::HPC_BASE_DIM);
        // Welford means of |x| are bounded by the fitted maxima.
        for i in 0..stats.dim() {
            assert!(stats.means()[i].abs() <= stats.normalizer().maxima()[i] + 1e-12);
        }
    }

    #[test]
    fn attack_and_benign_windows_differ() {
        let (ds, _) = collect_dataset(&tiny(), 8);
        // Mean squashed-work feature should be higher for attacks.
        let idx = evax_sim::hpc_index("iew.ExecSquashedInsts").unwrap();
        let mean = |malicious: bool| -> f32 {
            let xs: Vec<f32> = ds
                .samples
                .iter()
                .filter(|s| s.malicious == malicious)
                .map(|s| s.features[idx])
                .collect();
            xs.iter().sum::<f32>() / xs.len().max(1) as f32
        };
        assert!(
            mean(true) > mean(false),
            "attacks should squash more: {} vs {}",
            mean(true),
            mean(false)
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, _) = collect_dataset(&tiny(), 9);
        let (b, _) = collect_dataset(&tiny(), 9);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.samples[0], b.samples[0]);
    }

    /// The tentpole contract: the whole dataset (every sample, in order) and
    /// the fitted normalizer are byte-identical whether collection ran on
    /// one thread or many — including more threads than this machine has
    /// cores.
    #[test]
    fn parallel_collection_matches_serial_bitwise() {
        let serial = tiny();
        let (a, stats_a) = collect_dataset_stats(&serial, 11);
        for threads in [2, 4, 7] {
            let parallel = CollectConfig {
                parallelism: Parallelism::Fixed(threads),
                ..serial.clone()
            };
            let (b, stats_b) = collect_dataset_stats(&parallel, 11);
            assert_eq!(a.samples, b.samples, "threads={threads}");
            // The full streaming statistics — maxima *and* Welford
            // mean/variance — are bit-identical, because per-stream stats
            // merge in canonical stream order regardless of thread count.
            assert_eq!(stats_a, stats_b, "threads={threads}");
        }
    }
}
