//! Labeled HPC sample datasets with running-max normalization.
//!
//! Paper §VII: "For counters, we maintain a maximum seen value for each
//! sampling simulation point. Statistics are normalized over the maximum
//! value of the counter."

use rand::seq::SliceRandom;
use rand::Rng;

/// Class label of benign samples (attack classes are `1..=21`, matching
/// [`evax_attacks::AttackClass::label`]).
pub const BENIGN_CLASS: usize = 0;

/// Total number of condition classes (benign + 21 attack categories).
pub const N_CLASSES: usize = 1 + evax_attacks::ATTACK_CLASSES.len();

/// One HPC sampling window with its labels.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Sample {
    /// Normalized feature vector (baseline HPC deltas in `[0, 1]`).
    pub features: Vec<f32>,
    /// Condition class (0 = benign, `1..=21` = attack category).
    pub class: usize,
    /// `true` for attack samples (`class != 0`).
    pub malicious: bool,
}

impl Sample {
    /// Creates a sample; `malicious` is derived from `class`.
    pub fn new(features: Vec<f32>, class: usize) -> Self {
        assert!(class < N_CLASSES, "class out of range");
        Sample {
            features,
            malicious: class != BENIGN_CLASS,
            class,
        }
    }
}

/// Per-feature running-max normalizer.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Normalizer {
    max: Vec<f64>,
}

impl Normalizer {
    /// Creates a normalizer for `dim` features.
    pub fn new(dim: usize) -> Self {
        Normalizer {
            max: vec![0.0; dim],
        }
    }

    /// Reconstructs a normalizer from previously fitted maxima (streaming
    /// fits and exact persistence — see [`crate::featurize::StreamStats`]
    /// and [`crate::io`]).
    pub fn from_maxima(max: Vec<f64>) -> Self {
        Normalizer { max }
    }

    /// The fitted per-feature maxima.
    pub fn maxima(&self) -> &[f64] {
        &self.max
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.max.len()
    }

    /// Folds a raw (unnormalized) vector into the running maxima.
    /// Non-finite components are ignored — a single Inf would otherwise
    /// poison the fitted maximum and zero out every later feature (use
    /// [`try_observe`](Self::try_observe) to surface corruption as a typed
    /// error instead).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn observe(&mut self, raw: &[f64]) {
        assert_eq!(raw.len(), self.max.len(), "feature dim mismatch");
        for (m, &v) in self.max.iter_mut().zip(raw.iter()) {
            if v.is_finite() && v.abs() > *m {
                *m = v.abs();
            }
        }
    }

    /// [`observe`](Self::observe) that rejects corruption: any non-finite
    /// component leaves the maxima untouched.
    ///
    /// # Errors
    /// [`EvaxError::Corrupt`](crate::error::EvaxError) naming the first
    /// non-finite component.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn try_observe(&mut self, raw: &[f64]) -> crate::error::Result<()> {
        assert_eq!(raw.len(), self.max.len(), "feature dim mismatch");
        if let Some((i, &v)) = raw.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            return Err(crate::error::EvaxError::corrupt(
                format!("normalizer input component {i}"),
                "a finite value",
                format!("{v}"),
            ));
        }
        self.observe(raw);
        Ok(())
    }

    /// Normalizes a raw vector by the running maxima into `[0, 1]`, writing
    /// into a caller-provided buffer — the allocation-free fast path for
    /// per-window deployment loops.
    ///
    /// Non-finite raw components **saturate to 1.0** (fail-secure: a
    /// corrupted counter reads as maximally anomalous, never as a silent
    /// NaN that would poison the detector's dot product downstream).
    ///
    /// # Panics
    /// Panics on dimension mismatch (either slice).
    pub fn normalize_into(&self, raw: &[f64], out: &mut [f32]) {
        assert_eq!(raw.len(), self.max.len(), "feature dim mismatch");
        assert_eq!(out.len(), self.max.len(), "output dim mismatch");
        for ((o, &v), &m) in out.iter_mut().zip(raw.iter()).zip(self.max.iter()) {
            *o = if !v.is_finite() {
                1.0
            } else if m <= 0.0 {
                0.0
            } else {
                (v.abs() / m).min(1.0) as f32
            };
        }
    }

    /// Normalizes a raw vector by the running maxima into `[0, 1]`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn normalize(&self, raw: &[f64]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.max.len()];
        self.normalize_into(raw, &mut out);
        out
    }
}

/// A labeled dataset of HPC samples.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct Dataset {
    /// The samples.
    pub samples: Vec<Sample>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Dataset {
            samples: Vec::new(),
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Feature dimension (0 when empty).
    pub fn feature_dim(&self) -> usize {
        self.samples.first().map_or(0, |s| s.features.len())
    }

    /// Adds a sample.
    ///
    /// # Panics
    /// Panics if its feature dimension differs from existing samples.
    pub fn push(&mut self, sample: Sample) {
        if let Some(first) = self.samples.first() {
            assert_eq!(
                first.features.len(),
                sample.features.len(),
                "feature dim mismatch"
            );
        }
        self.samples.push(sample);
    }

    /// Merges another dataset into this one.
    ///
    /// # Panics
    /// Panics if the feature dimensions differ.
    pub fn extend(&mut self, other: Dataset) {
        let mut incoming = other.samples;
        // One dimension check per sample, then a single append — the
        // per-sample `push` path would re-read the first sample every time.
        let dim = self
            .samples
            .first()
            .or_else(|| incoming.first())
            .map(|s| s.features.len());
        if let Some(dim) = dim {
            for s in &incoming {
                assert_eq!(s.features.len(), dim, "feature dim mismatch");
            }
        }
        self.samples.append(&mut incoming);
    }

    /// Count of malicious samples.
    pub fn n_malicious(&self) -> usize {
        self.samples.iter().filter(|s| s.malicious).count()
    }

    /// Count of benign samples.
    pub fn n_benign(&self) -> usize {
        self.len() - self.n_malicious()
    }

    /// Samples of one class.
    pub fn of_class(&self, class: usize) -> impl Iterator<Item = &Sample> {
        self.samples.iter().filter(move |s| s.class == class)
    }

    /// Splits into (train, test) with `test_fraction` of each class held
    /// out, preserving class balance. Deterministic given the RNG.
    pub fn split<R: Rng>(&self, test_fraction: f64, rng: &mut R) -> (Dataset, Dataset) {
        assert!(
            (0.0..1.0).contains(&test_fraction),
            "fraction must be in [0,1)"
        );
        let mut train = Dataset::new();
        let mut test = Dataset::new();
        for class in 0..N_CLASSES {
            let mut idx: Vec<usize> = self
                .samples
                .iter()
                .enumerate()
                .filter(|(_, s)| s.class == class)
                .map(|(i, _)| i)
                .collect();
            idx.shuffle(rng);
            let n_test = (idx.len() as f64 * test_fraction).round() as usize;
            for (k, &i) in idx.iter().enumerate() {
                if k < n_test {
                    test.push(self.samples[i].clone());
                } else {
                    train.push(self.samples[i].clone());
                }
            }
        }
        (train, test)
    }

    /// Removes every sample of `class`, returning them (the leave-one-out
    /// fold operation).
    pub fn remove_class(&mut self, class: usize) -> Dataset {
        let mut removed = Dataset::new();
        let mut kept = Vec::with_capacity(self.samples.len());
        for s in self.samples.drain(..) {
            if s.class == class {
                removed.samples.push(s);
            } else {
                kept.push(s);
            }
        }
        self.samples = kept;
        removed
    }

    /// Draws a random batch of indices.
    pub fn batch_indices<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<usize> {
        (0..n)
            .map(|_| rng.gen_range(0..self.samples.len()))
            .collect()
    }

    /// Binary targets (`1.0` malicious) for the whole dataset, in order.
    pub fn binary_targets(&self) -> Vec<f32> {
        self.samples
            .iter()
            .map(|s| if s.malicious { 1.0 } else { 0.0 })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn sample(class: usize, v: f32) -> Sample {
        Sample::new(vec![v, v * 2.0], class)
    }

    #[test]
    fn normalizer_tracks_max_and_clamps() {
        let mut n = Normalizer::new(2);
        n.observe(&[10.0, 4.0]);
        n.observe(&[5.0, 8.0]);
        let v = n.normalize(&[5.0, 8.0]);
        assert!((v[0] - 0.5).abs() < 1e-6);
        assert!((v[1] - 1.0).abs() < 1e-6);
        // Values beyond the seen max clamp to 1.
        assert_eq!(n.normalize(&[100.0, 0.0])[0], 1.0);
    }

    #[test]
    fn normalizer_ignores_non_finite_observations() {
        let mut n = Normalizer::new(2);
        n.observe(&[10.0, 4.0]);
        n.observe(&[f64::INFINITY, f64::NAN]);
        assert_eq!(n.maxima(), &[10.0, 4.0], "Inf/NaN must not poison maxima");
        let err = n.try_observe(&[1.0, f64::NAN]).unwrap_err();
        assert!(
            matches!(err, crate::error::EvaxError::Corrupt { .. }),
            "{err}"
        );
        assert_eq!(n.maxima(), &[10.0, 4.0]);
        n.try_observe(&[20.0, 1.0]).unwrap();
        assert_eq!(n.maxima(), &[20.0, 4.0]);
    }

    #[test]
    fn normalize_saturates_non_finite_input() {
        let mut n = Normalizer::new(3);
        n.observe(&[10.0, 4.0, 0.0]);
        let v = n.normalize(&[f64::NAN, f64::NEG_INFINITY, f64::INFINITY]);
        // Fail-secure: corrupted counters read as maximally anomalous,
        // even where the fitted max is degenerate (index 2).
        assert_eq!(v, vec![1.0, 1.0, 1.0]);
        assert!(n.normalize(&[5.0, 2.0, 1.0]).iter().all(|f| f.is_finite()));
    }

    #[test]
    fn normalizer_zero_max_gives_zero() {
        let n = Normalizer::new(1);
        assert_eq!(n.normalize(&[3.0])[0], 0.0);
    }

    #[test]
    fn normalize_into_matches_normalize() {
        let mut n = Normalizer::new(3);
        n.observe(&[10.0, 4.0, 0.0]);
        let raw = [5.0, 8.0, 2.0];
        let mut out = [0.0f32; 3];
        n.normalize_into(&raw, &mut out);
        assert_eq!(out.to_vec(), n.normalize(&raw));
    }

    #[test]
    #[should_panic(expected = "output dim mismatch")]
    fn normalize_into_rejects_wrong_output_length() {
        let n = Normalizer::new(2);
        n.normalize_into(&[1.0, 2.0], &mut [0.0f32; 3]);
    }

    #[test]
    fn malicious_derived_from_class() {
        assert!(!sample(BENIGN_CLASS, 0.1).malicious);
        assert!(sample(3, 0.1).malicious);
    }

    #[test]
    fn split_preserves_class_balance() {
        let mut d = Dataset::new();
        for i in 0..100 {
            d.push(sample(0, i as f32));
            d.push(sample(1, i as f32));
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let (train, test) = d.split(0.3, &mut rng);
        assert_eq!(train.len() + test.len(), 200);
        assert_eq!(test.of_class(0).count(), 30);
        assert_eq!(test.of_class(1).count(), 30);
    }

    #[test]
    fn remove_class_is_exhaustive() {
        let mut d = Dataset::new();
        d.push(sample(0, 1.0));
        d.push(sample(2, 2.0));
        d.push(sample(2, 3.0));
        let removed = d.remove_class(2);
        assert_eq!(removed.len(), 2);
        assert_eq!(d.len(), 1);
        assert_eq!(d.of_class(2).count(), 0);
    }

    #[test]
    #[should_panic(expected = "feature dim mismatch")]
    fn dimension_mismatch_rejected() {
        let mut d = Dataset::new();
        d.push(Sample::new(vec![1.0], 0));
        d.push(Sample::new(vec![1.0, 2.0], 0));
    }

    #[test]
    fn counts() {
        let mut d = Dataset::new();
        d.push(sample(0, 1.0));
        d.push(sample(1, 1.0));
        d.push(sample(1, 2.0));
        assert_eq!(d.n_benign(), 1);
        assert_eq!(d.n_malicious(), 2);
    }
}
