//! EVAX training applied to deeper networks (paper §VIII-D, Fig. 20):
//! "our AM-GAN training enables a 16-layer neural network to outperform a
//! 32-layer ... increasing the complexity of neural networks without having
//! a good set of training data can lead to statistically significant
//! reduction in accuracy."

use evax_nn::{Activation, Adam, Loss, Matrix, Network};
use rand::Rng;

use crate::dataset::Dataset;
use crate::gan::AmGan;

/// One (depth, training-regime) evaluation across trials.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthResult {
    /// Number of layers (1 = perceptron-shaped).
    pub depth: usize,
    /// `true` if trained on the AM-GAN-augmented dataset.
    pub evax_trained: bool,
    /// Test accuracy per trial.
    pub accuracies: Vec<f64>,
}

impl DepthResult {
    /// Minimum accuracy across trials.
    pub fn min(&self) -> f64 {
        self.accuracies
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximum accuracy across trials.
    pub fn max(&self) -> f64 {
        self.accuracies.iter().copied().fold(0.0, f64::max)
    }

    /// Median accuracy across trials.
    pub fn median(&self) -> f64 {
        let mut v = self.accuracies.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        if v.is_empty() {
            0.0
        } else {
            v[v.len() / 2]
        }
    }
}

/// Deep-network evaluation configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DeepEvalConfig {
    /// Network depths to compare (paper: 1, 16, 32).
    pub depths: Vec<usize>,
    /// Hidden width.
    pub width: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Learning rate.
    pub lr: f32,
    /// Independent trials (train/test resplits) per configuration.
    pub trials: usize,
    /// Augmentation sizes when EVAX-trained.
    pub augment_per_class: usize,
    /// Extra generated benign samples when EVAX-trained.
    pub augment_benign: usize,
}

impl Default for DeepEvalConfig {
    fn default() -> Self {
        DeepEvalConfig {
            depths: vec![1, 16, 32],
            width: 64,
            epochs: 40,
            batch: 32,
            lr: 1e-3,
            trials: 3,
            augment_per_class: 40,
            augment_benign: 150,
        }
    }
}

fn train_mlp<R: Rng>(
    train: &Dataset,
    test: &Dataset,
    depth: usize,
    cfg: &DeepEvalConfig,
    rng: &mut R,
) -> f64 {
    let dim = train.feature_dim();
    let hidden = depth.saturating_sub(1);
    // LeakyReLU + Adam: plain ReLU/SGD stacks die (zero-gradient units) at
    // 16-32 layers and collapse to the majority class.
    let mut net = Network::mlp(
        dim,
        cfg.width,
        hidden,
        1,
        Activation::LeakyRelu,
        Activation::Sigmoid,
        rng,
    );
    let mut opt = Adam::new(cfg.lr);
    let steps = (train.len() / cfg.batch).max(1);
    for _ in 0..cfg.epochs {
        for _ in 0..steps {
            let idx = train.batch_indices(cfg.batch, rng);
            let rows: Vec<Vec<f32>> = idx
                .iter()
                .map(|&i| train.samples[i].features.clone())
                .collect();
            let targets: Vec<Vec<f32>> = idx
                .iter()
                .map(|&i| vec![if train.samples[i].malicious { 1.0 } else { 0.0 }])
                .collect();
            let x = Matrix::from_rows(&rows);
            let y = Matrix::from_rows(&targets);
            net.train_batch(&x, &y, Loss::Bce, &mut opt);
        }
    }
    let rows: Vec<Vec<f32>> = test.samples.iter().map(|s| s.features.clone()).collect();
    let x = Matrix::from_rows(&rows);
    net.binary_accuracy(&x, &test.binary_targets()) as f64
}

/// Compares traditional vs. EVAX-augmented training across depths.
pub fn evaluate_depths<R: Rng>(
    dataset: &Dataset,
    gan: &AmGan,
    cfg: &DeepEvalConfig,
    rng: &mut R,
) -> Vec<DepthResult> {
    let mut out = Vec::new();
    for &evax_trained in &[false, true] {
        for &depth in &cfg.depths {
            let mut accuracies = Vec::with_capacity(cfg.trials);
            for _ in 0..cfg.trials {
                let (train, test) = dataset.split(0.3, rng);
                let train = if evax_trained {
                    gan.augment(&train, cfg.augment_per_class, cfg.augment_benign, rng)
                } else {
                    train
                };
                accuracies.push(train_mlp(&train, &test, depth, cfg, rng));
            }
            out.push(DepthResult {
                depth,
                evax_trained,
                accuracies,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Sample;
    use rand::SeedableRng;

    fn noisy_dataset(rng: &mut impl Rng, n: usize, noise: f32) -> Dataset {
        let mut ds = Dataset::new();
        for _ in 0..n {
            let flip = rng.gen_bool(noise as f64);
            let m: f32 = rng.gen_range(0.55..1.0);
            let b: f32 = rng.gen_range(0.0..0.45);
            ds.push(Sample::new(vec![m, b, rng.gen()], if flip { 0 } else { 1 }));
            ds.push(Sample::new(vec![b, m, rng.gen()], if flip { 1 } else { 0 }));
        }
        ds
    }

    #[test]
    fn depth_result_stats() {
        let r = DepthResult {
            depth: 16,
            evax_trained: false,
            accuracies: vec![0.8, 0.6, 0.9],
        };
        assert_eq!(r.min(), 0.6);
        assert_eq!(r.max(), 0.9);
        assert_eq!(r.median(), 0.8);
    }

    #[test]
    fn shallow_mlp_learns_separable_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let ds = noisy_dataset(&mut rng, 200, 0.0);
        let (train, test) = ds.split(0.3, &mut rng);
        let cfg = DeepEvalConfig {
            epochs: 25,
            ..Default::default()
        };
        let acc = train_mlp(&train, &test, 2, &cfg, &mut rng);
        assert!(acc > 0.9, "acc={acc}");
    }

    #[test]
    fn very_deep_narrow_net_struggles_without_good_data() {
        // The paper's Fig. 20 observation: depth alone does not help.
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let ds = noisy_dataset(&mut rng, 150, 0.15);
        let (train, test) = ds.split(0.3, &mut rng);
        let cfg = DeepEvalConfig {
            epochs: 10,
            width: 16,
            lr: 0.01,
            ..Default::default()
        };
        let shallow = train_mlp(&train, &test, 2, &cfg, &mut rng);
        let deep = train_mlp(&train, &test, 32, &cfg, &mut rng);
        assert!(
            deep <= shallow + 0.05,
            "32-layer should not beat shallow on noisy data: deep={deep} shallow={shallow}"
        );
    }
}
