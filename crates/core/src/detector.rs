//! The deployed hardware detector and the PerSpectron baseline.
//!
//! Both are single-layer perceptrons (paper §VI-B); they differ in feature
//! space and training data:
//!
//! * **PerSpectron**: baseline HPC features, trained on seen attacks only.
//! * **EVAX**: baseline + 12 engineered security HPCs, *vaccinated* by
//!   retraining on the AM-GAN-augmented dataset (§V-C).
//!
//! The detector also exposes the quantized hardware datapath
//! ([`Detector::quantize`]) so benchmarks can report classification latency
//! in serial-adder cycles.

use evax_nn::detector::{Detector as ModelDetector, DetectorScratch};
use evax_nn::{HwPerceptron, PerceptronTrainer, QuantizedWeights};
use rand::Rng;

use crate::dataset::{Dataset, Sample};
use crate::feature_engineering::{extend_features, EngineeredFeature};

/// Which detector variant this is (affects reporting only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorKind {
    /// The prior-work baseline (no engineered features, no vaccination).
    PerSpectron,
    /// The hardened EVAX detector.
    Evax,
}

impl std::fmt::Display for DetectorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectorKind::PerSpectron => f.write_str("PerSpectron"),
            DetectorKind::Evax => f.write_str("EVAX"),
        }
    }
}

/// Detector training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// SGD epochs over the training set.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 40,
            lr: 0.05,
        }
    }
}

/// A deployed perceptron detector over (possibly extended) HPC features.
#[derive(Debug, Clone)]
pub struct Detector {
    kind: DetectorKind,
    perceptron: HwPerceptron,
    engineered: Vec<EngineeredFeature>,
    threshold: f32,
    presence_cut: f32,
}

impl Detector {
    /// Trains a detector on `dataset`. `engineered` is empty for the
    /// PerSpectron baseline; EVAX passes the 12 mined security HPCs.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn train<R: Rng>(
        kind: DetectorKind,
        dataset: &Dataset,
        engineered: Vec<EngineeredFeature>,
        cfg: &TrainConfig,
        rng: &mut R,
    ) -> Detector {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        let dim = dataset.feature_dim() + engineered.len();
        let rows: Vec<Vec<f32>> = dataset
            .samples
            .iter()
            .map(|s| extend_features(&s.features, &engineered))
            .collect();
        let x = evax_nn::Matrix::from_rows(&rows);
        let y = dataset.binary_targets();
        let mut trainer = PerceptronTrainer::new(dim, rng);
        for _ in 0..cfg.epochs {
            trainer.epoch_shuffled(&x, &y, cfg.lr, rng);
        }
        Detector {
            kind,
            perceptron: trainer.into_perceptron(),
            engineered,
            threshold: 0.0,
            presence_cut: 0.25,
        }
    }

    /// Reassembles a deployed detector from vendor-patch fields (see
    /// [`crate::patch::DetectorPatch`]). The weights span the extended
    /// (base + engineered) feature space.
    pub fn from_patch_parts(
        weights: Vec<f32>,
        bias: f32,
        threshold: f32,
        presence_cut: f32,
        engineered: Vec<EngineeredFeature>,
    ) -> Detector {
        Detector {
            kind: DetectorKind::Evax,
            perceptron: HwPerceptron::from_parts(weights, bias),
            engineered,
            threshold,
            presence_cut,
        }
    }

    /// The detector variant.
    pub fn kind(&self) -> DetectorKind {
        self.kind
    }

    /// The engineered features this detector monitors.
    pub fn engineered(&self) -> &[EngineeredFeature] {
        &self.engineered
    }

    /// The underlying perceptron (e.g. for surrogate-gradient AML).
    pub fn perceptron(&self) -> &HwPerceptron {
        &self.perceptron
    }

    /// Current decision threshold on the raw score.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Sets the decision threshold (EVAX "is tuned to have very high
    /// sensitivity", §VIII-A; Fig. 17 tunes it along the ROC).
    pub fn set_threshold(&mut self, threshold: f32) {
        self.threshold = threshold;
    }

    /// Maps a baseline feature vector into this detector's feature space.
    pub fn transform(&self, base: &[f32]) -> Vec<f32> {
        extend_features(base, &self.engineered)
    }

    /// [`Detector::transform`] into a caller-owned scratch buffer — no
    /// per-call allocation once the buffer has capacity.
    pub fn transform_into(&self, base: &[f32], out: &mut Vec<f32>) {
        crate::feature_engineering::extend_features_into(base, &self.engineered, out);
    }

    /// Dimensionality of the extended (base + engineered) feature space.
    pub fn extended_dim(&self) -> usize {
        self.perceptron.n_features()
    }

    /// Raw decision score of a baseline feature vector.
    pub fn score(&self, base: &[f32]) -> f32 {
        self.perceptron.score(&self.transform(base))
    }

    /// [`Detector::score`] through a caller-owned scratch buffer: the
    /// allocation-free per-window path. Bit-identical to `score`.
    pub fn score_with_scratch(&self, base: &[f32], scratch: &mut Vec<f32>) -> f32 {
        self.transform_into(base, scratch);
        self.perceptron.score(scratch)
    }

    /// Classifies a baseline feature vector (`true` = malicious).
    pub fn classify(&self, base: &[f32]) -> bool {
        self.score(base) >= self.threshold
    }

    /// [`Detector::classify`] through a caller-owned scratch buffer.
    pub fn classify_with_scratch(&self, base: &[f32], scratch: &mut Vec<f32>) -> bool {
        self.score_with_scratch(base, scratch) >= self.threshold
    }

    /// Batched scoring over a flat row-major batch of **extended** feature
    /// rows (built via [`Detector::transform_into`]): `out[i]` is
    /// bit-identical to scoring row `i` alone, at any thread count
    /// (`threads == 0` resolves automatically).
    ///
    /// # Panics
    /// Panics if `rows.len() != out.len() * extended_dim()`.
    pub fn score_rows_into(&self, rows: &[f32], threads: usize, out: &mut [f32]) {
        self.perceptron.score_rows_into(rows, threads, out);
    }

    /// Batched classification over extended feature rows; per-row verdicts
    /// are bit-identical to [`Detector::classify`].
    ///
    /// # Panics
    /// Panics on batch/score/verdict length mismatches.
    pub fn classify_rows_into(
        &self,
        rows: &[f32],
        threads: usize,
        scores: &mut [f32],
        verdicts: &mut [bool],
    ) {
        self.perceptron
            .classify_batch_into(rows, self.threshold, threads, scores, verdicts);
    }

    /// Quantizes this detector to the 9-bit integer deployment kernel
    /// ([`evax_nn::QuantLinear`]), folding in the decision threshold. The
    /// kernel operates on the same extended feature rows as the batched f32
    /// path, quantized to `u8`.
    pub fn quantize_linear(&self) -> evax_nn::QuantLinear {
        evax_nn::QuantLinear::from_f32(
            self.perceptron.weights(),
            self.perceptron.bias(),
            self.threshold,
        )
    }

    /// Classifies a sample.
    pub fn classify_sample(&self, s: &Sample) -> bool {
        self.classify(&s.features)
    }

    /// Tunes the threshold for a target true-positive rate on `dataset`
    /// (sensitivity-first operation): the largest threshold that still
    /// detects at least `target_tpr` of the malicious samples.
    pub fn tune_for_tpr(&mut self, dataset: &Dataset, target_tpr: f64) {
        let mut scores: Vec<f32> = dataset
            .samples
            .iter()
            .filter(|s| s.malicious)
            .map(|s| self.score(&s.features))
            .collect();
        if scores.is_empty() {
            return;
        }
        scores.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let miss_budget = ((1.0 - target_tpr) * scores.len() as f64).floor() as usize;
        let idx = miss_budget.min(scores.len() - 1);
        self.threshold = scores[idx];
    }

    /// Tunes the threshold for *per-class coverage*: the largest threshold
    /// at which at least `min_class_tpr` of every attack class's windows are
    /// flagged. This is the deployment-relevant operating point — the
    /// adaptive architecture enters secure mode on the *first* flag, so an
    /// attack is caught as long as a healthy fraction of its windows score
    /// above threshold, while benign false positives stay rare (paper
    /// §VIII-A's "very high sensitivity" with 4 FPs per 1M instructions).
    pub fn tune_for_class_coverage(&mut self, dataset: &Dataset, min_class_tpr: f64) {
        let mut thr = f32::INFINITY;
        for class in 1..crate::dataset::N_CLASSES {
            let mut scores: Vec<f32> = dataset
                .of_class(class)
                .map(|s| self.score(&s.features))
                .collect();
            if scores.is_empty() {
                continue;
            }
            scores.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            // The (1 - min_class_tpr) quantile: flagging at this threshold
            // catches at least min_class_tpr of this class's windows.
            let idx = (((1.0 - min_class_tpr) * scores.len() as f64).floor() as usize)
                .min(scores.len() - 1);
            thr = thr.min(scores[idx]);
        }
        if thr.is_finite() {
            self.threshold = thr;
        }
    }

    /// Tunes the threshold to sit just above the benign score mass: the
    /// `benign_quantile` of benign training scores plus a small margin.
    /// This is the paper's deployment spec stated directly — a false-positive
    /// *budget* ("4 FPs in every 1M instructions") with everything above it
    /// flagged, which maximizes zero-day sensitivity: an unseen attack only
    /// needs to score above benign, not above the seen attacks' scores.
    pub fn tune_above_benign(&mut self, dataset: &Dataset, benign_quantile: f64, margin: f32) {
        let mut scores: Vec<f32> = dataset
            .samples
            .iter()
            .filter(|s| !s.malicious)
            .map(|s| self.score(&s.features))
            .collect();
        if scores.is_empty() {
            return;
        }
        scores.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let idx = ((benign_quantile * scores.len() as f64).ceil() as usize).min(scores.len() - 1);
        self.threshold = scores[idx] + margin;
    }

    /// The presence-bit cut: normalized features above it count as 1 in the
    /// quantized datapath.
    pub fn presence_cut(&self) -> f32 {
        self.presence_cut
    }

    /// Sets the presence-bit cut.
    pub fn set_presence_cut(&mut self, cut: f32) {
        self.presence_cut = cut;
    }

    /// Quantizes to the hardware datapath, along with the per-feature
    /// presence-bit cut (features above the cut count as 1).
    pub fn quantize(&self) -> (QuantizedWeights, f32) {
        (self.perceptron.quantize(), self.presence_cut)
    }

    /// Hardware-path classification of a baseline vector: binarize, then run
    /// the serial adder. Returns the decision and adder cycles consumed.
    pub fn classify_hw(&self, base: &[f32]) -> evax_nn::perceptron::HwDecision {
        let (q, cut) = self.quantize();
        let bits: Vec<bool> = self.transform(base).iter().map(|&v| v > cut).collect();
        q.classify_bits(&bits)
    }

    /// Binary accuracy over a dataset.
    pub fn accuracy(&self, dataset: &Dataset) -> f64 {
        if dataset.is_empty() {
            return 0.0;
        }
        let correct = dataset
            .samples
            .iter()
            .filter(|s| self.classify_sample(s) == s.malicious)
            .count();
        correct as f64 / dataset.len() as f64
    }

    /// True-positive rate over the malicious samples of a dataset.
    pub fn tpr(&self, dataset: &Dataset) -> f64 {
        let malicious: Vec<_> = dataset.samples.iter().filter(|s| s.malicious).collect();
        if malicious.is_empty() {
            return 0.0;
        }
        let hit = malicious.iter().filter(|s| self.classify_sample(s)).count();
        hit as f64 / malicious.len() as f64
    }

    /// The deployed linear model behind this detector as a standalone
    /// trait-level object: perceptron weights plus the tuned threshold,
    /// over the extended feature space. The engineered-feature transform
    /// stays with the featurizer/this detector ([`Detector::transform_into`]).
    pub fn to_model(&self) -> evax_nn::ThresholdedPerceptron {
        evax_nn::ThresholdedPerceptron::new(self.perceptron.clone(), self.threshold)
    }

    /// Wraps the deployed model with seeded inference-time weight/threshold
    /// jitter (the Stochastic-HMDs hardening; see
    /// [`evax_nn::StochasticDetector`]). Scores stay a pure function of
    /// `(seed, row)`, so the repo's bit-determinism contract holds.
    pub fn harden_stochastic(&self, seed: u64, jitter: f32) -> evax_nn::StochasticDetector {
        evax_nn::StochasticDetector::new(self.perceptron.clone(), self.threshold, seed, jitter)
    }
}

/// The trait-level view of the deployed detector: a thresholded perceptron
/// over **extended** (base + engineered) feature rows. Bitwise-pinned to the
/// inherent paths — `score_into` equals [`HwPerceptron::score`] on the
/// transformed row, batched paths equal [`Detector::score_rows_into`] /
/// [`Detector::classify_rows_into`].
impl ModelDetector for Detector {
    fn n_features(&self) -> usize {
        self.perceptron.n_features()
    }

    fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Serializes as its deployed linear shape, so
    /// [`evax_nn::load_detector`] round-trips it into a
    /// [`evax_nn::ThresholdedPerceptron`].
    fn kind(&self) -> &'static str {
        "thresholded-perceptron"
    }

    fn score_into(&self, x: &[f32], _scratch: &mut DetectorScratch) -> f32 {
        self.perceptron.score(x)
    }

    fn score_rows_into(
        &self,
        rows: &[f32],
        threads: usize,
        _scratch: &mut DetectorScratch,
        out: &mut [f32],
    ) {
        self.perceptron.score_rows_into(rows, threads, out);
    }

    fn classify_rows_into(
        &self,
        rows: &[f32],
        threads: usize,
        _scratch: &mut DetectorScratch,
        scores: &mut [f32],
        verdicts: &mut [bool],
    ) {
        self.perceptron
            .classify_batch_into(rows, self.threshold, threads, scores, verdicts);
    }

    fn save_bytes(&self) -> Vec<u8> {
        self.to_model().save_bytes()
    }

    fn clone_box(&self) -> Box<dyn ModelDetector> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Sample;
    use rand::SeedableRng;

    fn separable_dataset(rng: &mut impl Rng, n: usize) -> Dataset {
        let mut ds = Dataset::new();
        for _ in 0..n {
            let m: f32 = rng.gen_range(0.6..1.0);
            let b: f32 = rng.gen_range(0.0..0.4);
            ds.push(Sample::new(vec![m, b, rng.gen_range(0.0..1.0)], 1));
            ds.push(Sample::new(vec![b, m, rng.gen_range(0.0..1.0)], 0));
        }
        ds
    }

    #[test]
    fn trains_to_high_accuracy_on_separable_data() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let ds = separable_dataset(&mut rng, 200);
        let det = Detector::train(
            DetectorKind::PerSpectron,
            &ds,
            vec![],
            &Default::default(),
            &mut rng,
        );
        assert!(det.accuracy(&ds) > 0.97, "accuracy {}", det.accuracy(&ds));
    }

    #[test]
    fn engineered_features_extend_the_space() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let ds = separable_dataset(&mut rng, 50);
        let eng = vec![EngineeredFeature {
            name: "f0_AND_f1".into(),
            components: vec![0, 1],
        }];
        let det = Detector::train(DetectorKind::Evax, &ds, eng, &Default::default(), &mut rng);
        assert_eq!(det.transform(&[0.5, 0.2, 0.0]).len(), 4);
    }

    #[test]
    fn class_coverage_tuning_flags_every_class() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut ds = Dataset::new();
        // Two attack classes with different score profiles + benign.
        for _ in 0..100 {
            ds.push(Sample::new(vec![rng.gen_range(0.7..1.0), 0.1], 1));
            ds.push(Sample::new(vec![rng.gen_range(0.5..0.8), 0.2], 2));
            ds.push(Sample::new(vec![rng.gen_range(0.0..0.3), 0.9], 0));
        }
        let mut det = Detector::train(
            DetectorKind::Evax,
            &ds,
            vec![],
            &Default::default(),
            &mut rng,
        );
        det.tune_for_class_coverage(&ds, 0.5);
        for class in [1usize, 2] {
            let flagged = ds
                .of_class(class)
                .filter(|s| det.classify_sample(s))
                .count();
            let total = ds.of_class(class).count();
            assert!(
                flagged * 2 >= total,
                "class {class}: {flagged}/{total} flagged"
            );
        }
    }

    #[test]
    fn above_benign_tuning_keeps_fpr_near_zero_and_tpr_high() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let ds = separable_dataset(&mut rng, 300);
        let mut det = Detector::train(
            DetectorKind::Evax,
            &ds,
            vec![],
            &Default::default(),
            &mut rng,
        );
        det.tune_above_benign(&ds, 0.999, 0.05);
        let c = crate::metrics::Confusion::evaluate(&det, &ds);
        assert!(c.fpr() < 0.01, "fpr {}", c.fpr());
        assert!(c.tpr() > 0.98, "tpr {}", c.tpr());
    }

    #[test]
    fn threshold_tuning_reaches_target_tpr() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let ds = separable_dataset(&mut rng, 200);
        let mut det = Detector::train(
            DetectorKind::Evax,
            &ds,
            vec![],
            &Default::default(),
            &mut rng,
        );
        det.tune_for_tpr(&ds, 0.995);
        assert!(det.tpr(&ds) >= 0.99, "tpr {}", det.tpr(&ds));
    }

    /// Data where feature presence (above the cut) carries the class — the
    /// regime the paper's binary-input hardware operates in.
    fn presence_dataset(rng: &mut impl Rng, n: usize) -> Dataset {
        let mut ds = Dataset::new();
        for _ in 0..n {
            let m: f32 = rng.gen_range(0.6..1.0);
            let b: f32 = rng.gen_range(0.0..0.15);
            ds.push(Sample::new(vec![m, b, rng.gen_range(0.0..1.0)], 1));
            ds.push(Sample::new(vec![b, m, rng.gen_range(0.0..1.0)], 0));
        }
        ds
    }

    #[test]
    fn hardware_path_agrees_with_float_path_mostly() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let ds = presence_dataset(&mut rng, 300);
        let det = Detector::train(
            DetectorKind::Evax,
            &ds,
            vec![],
            &Default::default(),
            &mut rng,
        );
        let agree = ds
            .samples
            .iter()
            .filter(|s| det.classify_hw(&s.features).malicious == s.malicious)
            .count();
        assert!(
            agree as f64 / ds.len() as f64 > 0.9,
            "quantized agreement too low: {agree}/{}",
            ds.len()
        );
    }

    #[test]
    fn hw_latency_within_transient_window() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let ds = separable_dataset(&mut rng, 50);
        let det = Detector::train(
            DetectorKind::Evax,
            &ds,
            vec![],
            &Default::default(),
            &mut rng,
        );
        let d = det.classify_hw(&[1.0, 1.0, 1.0]);
        assert!(d.cycles <= 300, "paper: a few hundred cycles worst case");
    }
}
