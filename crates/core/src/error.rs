//! The workspace error model: one typed error for everything the stable
//! API surface can fail at, with enough context (path, line, expected/got)
//! to act on without a debugger.
//!
//! Fallible APIs return [`Result`], the crate-wide alias. Simulation and
//! training entry points stay infallible by design — their inputs are
//! validated configurations (see the builders, e.g.
//! [`crate::pipeline::EvaxConfig::builder`]), so the fallible edge is
//! configuration building plus persistence ([`crate::io`]).

use std::path::PathBuf;

/// Crate-wide result alias over [`EvaxError`].
pub type Result<T> = std::result::Result<T, EvaxError>;

/// The error type of `evax-core`'s fallible public API.
///
/// Variant fields are public and `#[non_exhaustive]` is deliberately *not*
/// used: matching on shape (`EvaxError::Parse { line, .. }`) is part of the
/// stable surface.
#[derive(Debug)]
pub enum EvaxError {
    /// An underlying I/O failure, with the file involved when known.
    Io {
        /// File being read or written, when the operation had one.
        path: Option<PathBuf>,
        /// The OS-level error.
        source: std::io::Error,
    },
    /// Content that failed to parse.
    Parse {
        /// File being parsed, when the operation had one.
        path: Option<PathBuf>,
        /// 1-based line number (0 when the failure is not line-addressable,
        /// e.g. unexpected end of input).
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// Structurally valid content whose pieces disagree — bad magic header,
    /// checksum mismatch, dimension disagreement between bundled artifacts.
    Corrupt {
        /// Which artifact or field is inconsistent.
        what: String,
        /// What was required.
        expected: String,
        /// What was found.
        got: String,
    },
    /// An invalid configuration rejected by a builder's validation.
    Config {
        /// Which field or combination is invalid.
        what: String,
        /// Why it was rejected.
        reason: String,
    },
}

impl EvaxError {
    /// A [`Parse`](Self::Parse) error with no path context (attach one
    /// later with [`with_path`](Self::with_path)).
    pub fn parse(line: usize, reason: impl Into<String>) -> Self {
        EvaxError::Parse {
            path: None,
            line,
            reason: reason.into(),
        }
    }

    /// A [`Corrupt`](Self::Corrupt) error.
    pub fn corrupt(
        what: impl Into<String>,
        expected: impl Into<String>,
        got: impl Into<String>,
    ) -> Self {
        EvaxError::Corrupt {
            what: what.into(),
            expected: expected.into(),
            got: got.into(),
        }
    }

    /// A [`Config`](Self::Config) error.
    pub fn config(what: impl Into<String>, reason: impl Into<String>) -> Self {
        EvaxError::Config {
            what: what.into(),
            reason: reason.into(),
        }
    }

    /// Attaches file-path context to [`Io`](Self::Io) and
    /// [`Parse`](Self::Parse) errors (other variants pass through
    /// unchanged). Path-taking wrappers like
    /// [`crate::io::read_model_file`] use this so "which file?" is always
    /// answerable.
    pub fn with_path(self, path: impl Into<PathBuf>) -> Self {
        match self {
            EvaxError::Io { source, .. } => EvaxError::Io {
                path: Some(path.into()),
                source,
            },
            EvaxError::Parse { line, reason, .. } => EvaxError::Parse {
                path: Some(path.into()),
                line,
                reason,
            },
            other => other,
        }
    }
}

impl std::fmt::Display for EvaxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let at = |path: &Option<PathBuf>| match path {
            Some(p) => format!(" in {}", p.display()),
            None => String::new(),
        };
        match self {
            EvaxError::Io { path, source } => write!(f, "i/o error{}: {source}", at(path)),
            EvaxError::Parse { path, line, reason } => {
                write!(f, "parse error{} at line {line}: {reason}", at(path))
            }
            EvaxError::Corrupt {
                what,
                expected,
                got,
            } => write!(f, "corrupt {what}: expected {expected}, got {got}"),
            EvaxError::Config { what, reason } => {
                write!(f, "invalid config ({what}): {reason}")
            }
        }
    }
}

impl std::error::Error for EvaxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvaxError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for EvaxError {
    fn from(source: std::io::Error) -> Self {
        EvaxError::Io { path: None, source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = EvaxError::parse(7, "bad max '?'").with_path("/tmp/model.txt");
        let msg = e.to_string();
        assert!(msg.contains("line 7"), "{msg}");
        assert!(msg.contains("/tmp/model.txt"), "{msg}");
        let e = EvaxError::corrupt("model header", "'evax-model v1'", "'garbage'");
        assert!(e.to_string().contains("expected 'evax-model v1'"));
        let e = EvaxError::config("secure_window", "must be positive");
        assert!(e.to_string().contains("secure_window"));
    }

    #[test]
    fn io_variant_carries_source_and_path() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = EvaxError::from(io).with_path("missing.csv");
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("missing.csv"));
        match e {
            EvaxError::Io { path, .. } => assert!(path.is_some()),
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn with_path_passes_other_variants_through() {
        let e = EvaxError::config("holdout", "out of range").with_path("x");
        assert!(matches!(e, EvaxError::Config { .. }));
    }
}
