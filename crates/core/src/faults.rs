//! Deterministic fault injection — the robustness layer that proves the
//! pipeline **fails secure**.
//!
//! EVAX's trust argument runs through the detector: the adaptive controller
//! only relaxes mitigations when the detector says the window is clean, so a
//! detector path that panics, silently emits NaN, or loads a corrupted
//! model is a *security hole*, not merely a crash (the Fig. 14/16 overhead
//! savings assume the controller never fails open). This module supplies
//! the seeded, bit-reproducible injectors that the `evax-bench`
//! `fault_matrix` chaos harness drives through every subsystem:
//!
//! * **Storage faults** — bit-flips, truncation and garbage bytes applied
//!   to serialized model/featurizer/dataset artifacts before
//!   [`crate::io::read_model`] / [`crate::io::read_featurizer`] /
//!   [`crate::io::read_csv`]; every outcome must be a typed
//!   [`EvaxError`], never a panic. Transient I/O faults (a reader that
//!   fails then recovers) compose with the bounded [`retry`] helper.
//! * **Data faults** — NaN / Inf / saturated-counter HPC windows pushed
//!   through the featurize chain via [`FaultingSink`];
//!   [`crate::featurize::StreamStats`] and [`crate::dataset::Normalizer`]
//!   must reject or sanitize non-finite values instead of poisoning the
//!   fitted maxima.
//! * **Inference faults** — detector scores replaced with NaN/Inf mid-run
//!   via [`FaultInjector::corrupt_score`]; the adaptive controller must
//!   treat any non-finite verdict as "attack" and hold mitigations ON
//!   (the fail-secure policy, see `evax_defense::adaptive`).
//!
//! # Invisible when disabled
//!
//! Every hook takes a [`FaultInjector`] handle whose default
//! ([`FaultInjector::disabled`]) is a no-op, following the same pattern as
//! the no-op `MetricsSink`: a disabled injector is one `Option` branch, it
//! never touches the data, and the golden equivalence / golden
//! featurization suites prove the instrumented build is bit-identical to
//! an uninstrumented one.
//!
//! # Determinism
//!
//! An enabled injector owns a seeded [`StdRng`]; given the same seed and
//! the same call sequence it corrupts the same bits, windows and scores,
//! so every fault-matrix cell is bit-reproducible at any thread count
//! (cells derive independent seeds and never share an injector across
//! threads).

use std::io::Read;
use std::path::Path;
use std::sync::{Arc, Mutex};

use evax_sim::{MitigationMode, RunResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::{EvaxError, Result};
use crate::featurize::{RawWindow, WindowSink, WindowSource};
use crate::io::ModelBundle;

/// The injector taxonomy: which hostile condition a [`FaultInjector`]
/// manufactures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Storage: flip random bits of the serialized artifact.
    BitFlip,
    /// Storage: truncate the artifact at a random byte offset.
    Truncate,
    /// Storage: overwrite random bytes with garbage.
    Garbage,
    /// Storage: the reader fails with a transient `TimedOut` I/O error
    /// a bounded number of times before recovering (exercises [`retry`]).
    /// (`TimedOut` rather than `Interrupted`, which `std`'s own read loops
    /// silently retry — that would make the fault invisible.)
    TransientIo,
    /// Data: replace one counter of periodic windows with NaN.
    NanWindow,
    /// Data: replace one counter of periodic windows with +Inf.
    InfWindow,
    /// Data: replace one counter of periodic windows with a saturated
    /// counter value (`u64::MAX` as `f64` — hostile but finite).
    SaturatedWindow,
    /// Data: the window stream is empty (zero-length program).
    ZeroLen,
    /// Inference: periodic detector scores become NaN.
    NanScore,
    /// Inference: periodic detector scores become +Inf.
    InfScore,
}

impl FaultKind {
    /// Every injector kind, in taxonomy order (storage, data, inference).
    pub const ALL: &'static [FaultKind] = &[
        FaultKind::BitFlip,
        FaultKind::Truncate,
        FaultKind::Garbage,
        FaultKind::TransientIo,
        FaultKind::NanWindow,
        FaultKind::InfWindow,
        FaultKind::SaturatedWindow,
        FaultKind::ZeroLen,
        FaultKind::NanScore,
        FaultKind::InfScore,
    ];

    /// Stable lowercase label for reports and metric names.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::BitFlip => "bit-flip",
            FaultKind::Truncate => "truncate",
            FaultKind::Garbage => "garbage",
            FaultKind::TransientIo => "transient-io",
            FaultKind::NanWindow => "nan-window",
            FaultKind::InfWindow => "inf-window",
            FaultKind::SaturatedWindow => "saturated-window",
            FaultKind::ZeroLen => "zero-len",
            FaultKind::NanScore => "nan-score",
            FaultKind::InfScore => "inf-score",
        }
    }

    /// `true` for kinds that mutate serialized artifact bytes.
    pub fn is_storage(self) -> bool {
        matches!(
            self,
            FaultKind::BitFlip | FaultKind::Truncate | FaultKind::Garbage | FaultKind::TransientIo
        )
    }

    /// `true` for kinds that corrupt streamed HPC windows.
    pub fn is_data(self) -> bool {
        matches!(
            self,
            FaultKind::NanWindow
                | FaultKind::InfWindow
                | FaultKind::SaturatedWindow
                | FaultKind::ZeroLen
        )
    }

    /// `true` for kinds that corrupt detector scores.
    pub fn is_inference(self) -> bool {
        matches!(self, FaultKind::NanScore | FaultKind::InfScore)
    }
}

/// Mutable state behind an enabled injector: the fault plan plus the
/// seeded RNG that decides where each corruption lands.
#[derive(Debug)]
struct FaultCore {
    kind: FaultKind,
    /// Per-kind strength: bit flips / garbage bytes per artifact, transient
    /// failures before recovery, or the period (every Nth window/score)
    /// for data and inference faults.
    intensity: u32,
    rng: StdRng,
    /// Calls to the periodic hooks so far (window/score corruption).
    calls: u64,
    /// Corruptions actually applied.
    injected: u64,
    /// Remaining transient I/O failures before the reader recovers.
    io_failures_left: u32,
}

/// A deterministic fault injector handle. Cloning shares the underlying
/// state (so a reader wrapper and the harness observe one injection
/// count). The default handle is **disabled**: every hook is a no-op
/// `Option` branch and the data passes through untouched.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector(Option<Arc<Mutex<FaultCore>>>);

impl FaultInjector {
    /// The no-op injector (same as `FaultInjector::default()`).
    pub fn disabled() -> Self {
        FaultInjector(None)
    }

    /// An enabled injector of `kind`, seeded for bit-reproducible
    /// corruption, at the kind's default intensity (see
    /// [`with_intensity`](Self::with_intensity)).
    pub fn new(kind: FaultKind, seed: u64) -> Self {
        let intensity = match kind {
            FaultKind::BitFlip => 1,
            FaultKind::Truncate => 1,
            FaultKind::Garbage => 8,
            FaultKind::TransientIo => 2,
            // Corrupt every 3rd window / score by default.
            FaultKind::NanWindow | FaultKind::InfWindow | FaultKind::SaturatedWindow => 3,
            FaultKind::NanScore | FaultKind::InfScore => 3,
            FaultKind::ZeroLen => 1,
        };
        FaultInjector(Some(Arc::new(Mutex::new(FaultCore {
            kind,
            intensity,
            rng: StdRng::seed_from_u64(seed ^ 0xFA17_FA17_FA17_FA17),
            calls: 0,
            injected: 0,
            io_failures_left: intensity,
        }))))
    }

    /// Overrides the fault strength: number of bit flips / garbage bytes,
    /// transient failures before recovery, or the period (every Nth
    /// window/score is corrupted). `intensity` of 0 is clamped to 1.
    pub fn with_intensity(self, intensity: u32) -> Self {
        if let Some(core) = &self.0 {
            let mut core = lock(core);
            core.intensity = intensity.max(1);
            if core.kind == FaultKind::TransientIo {
                core.io_failures_left = core.intensity;
            }
        }
        self
    }

    /// `true` when this handle actually injects faults.
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The configured fault kind (`None` when disabled).
    pub fn kind(&self) -> Option<FaultKind> {
        self.0.as_ref().map(|c| lock(c).kind)
    }

    /// Number of corruptions applied so far — the harness's evidence that
    /// a cell actually exercised the fault path.
    pub fn injections(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| lock(c).injected)
    }

    /// Applies a storage fault to a serialized artifact in place. No-op
    /// for a disabled injector or a non-storage kind; truncation of an
    /// empty buffer is a no-op.
    pub fn corrupt_bytes(&self, bytes: &mut Vec<u8>) {
        let Some(core) = &self.0 else { return };
        let mut core = lock(core);
        if bytes.is_empty() {
            return;
        }
        match core.kind {
            FaultKind::BitFlip => {
                for _ in 0..core.intensity {
                    let bit = core.rng.gen_range(0..bytes.len() * 8);
                    bytes[bit / 8] ^= 1 << (bit % 8);
                    core.injected += 1;
                }
            }
            FaultKind::Truncate => {
                let at = core.rng.gen_range(0..bytes.len());
                bytes.truncate(at);
                core.injected += 1;
            }
            FaultKind::Garbage => {
                for _ in 0..core.intensity {
                    let at = core.rng.gen_range(0..bytes.len());
                    bytes[at] = core.rng.gen();
                    core.injected += 1;
                }
            }
            _ => {}
        }
    }

    /// Applies a data fault to one raw HPC window in place (every
    /// `intensity`-th call corrupts one randomly chosen counter). No-op
    /// for a disabled injector, a non-data kind, or an empty window.
    pub fn corrupt_window(&self, values: &mut [f64]) {
        let Some(core) = &self.0 else { return };
        let mut core = lock(core);
        let poison = match core.kind {
            FaultKind::NanWindow => f64::NAN,
            FaultKind::InfWindow => f64::INFINITY,
            FaultKind::SaturatedWindow => u64::MAX as f64,
            _ => return,
        };
        let due = core.calls.is_multiple_of(core.intensity as u64);
        core.calls += 1;
        if due && !values.is_empty() {
            let at = core.rng.gen_range(0..values.len());
            values[at] = poison;
            core.injected += 1;
        }
    }

    /// Applies an inference fault to a detector score (every
    /// `intensity`-th call returns a non-finite score). Pass-through for a
    /// disabled injector or a non-inference kind.
    pub fn corrupt_score(&self, score: f32) -> f32 {
        let Some(core) = &self.0 else { return score };
        let mut core = lock(core);
        let poison = match core.kind {
            FaultKind::NanScore => f32::NAN,
            FaultKind::InfScore => f32::INFINITY,
            _ => return score,
        };
        let due = core.calls.is_multiple_of(core.intensity as u64);
        core.calls += 1;
        if due {
            core.injected += 1;
            poison
        } else {
            score
        }
    }

    /// Wraps a reader so it fails with transient `TimedOut` I/O errors
    /// until the configured failure budget is spent (then reads pass
    /// through). With a disabled injector — or any non-[`TransientIo`]
    /// kind — the wrapper is fully transparent.
    ///
    /// [`TransientIo`]: FaultKind::TransientIo
    pub fn wrap_reader<R: Read>(&self, inner: R) -> FlakyReader<R> {
        FlakyReader {
            inner,
            injector: self.clone(),
        }
    }
}

/// Locks injector state (the injector is never shared across fault-matrix
/// cells, so contention — and therefore poisoning — cannot occur; a
/// poisoned lock would mean a panic mid-corruption, which the harness
/// already treats as a failed cell).
fn lock(core: &Arc<Mutex<FaultCore>>) -> std::sync::MutexGuard<'_, FaultCore> {
    match core.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A reader that injects transient I/O failures (see
/// [`FaultInjector::wrap_reader`]).
#[derive(Debug)]
pub struct FlakyReader<R> {
    inner: R,
    injector: FaultInjector,
}

impl<R: Read> Read for FlakyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if let Some(core) = &self.injector.0 {
            let mut core = lock(core);
            if core.kind == FaultKind::TransientIo && core.io_failures_left > 0 {
                core.io_failures_left -= 1;
                core.injected += 1;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "injected transient i/o fault",
                ));
            }
        }
        self.inner.read(buf)
    }
}

/// A [`WindowSink`] adapter that corrupts windows before forwarding them —
/// the data-fault hook of the featurize chain. With a disabled injector
/// the original borrowed window is forwarded untouched (no copy), so the
/// wrapper is bitwise invisible.
pub struct FaultingSink<'a> {
    inner: &'a mut dyn WindowSink,
    injector: FaultInjector,
    scratch: Vec<f64>,
}

impl<'a> FaultingSink<'a> {
    /// Wraps `inner` so every window passes through `injector` first.
    pub fn new(inner: &'a mut dyn WindowSink, injector: FaultInjector) -> Self {
        FaultingSink {
            inner,
            injector,
            scratch: Vec::new(),
        }
    }
}

impl WindowSink for FaultingSink<'_> {
    fn window(&mut self, w: &RawWindow<'_>) -> Option<MitigationMode> {
        if !self.injector.enabled() {
            return self.inner.window(w);
        }
        self.scratch.clear();
        self.scratch.extend_from_slice(w.values);
        self.injector.corrupt_window(&mut self.scratch);
        self.inner.window(&RawWindow {
            values: &self.scratch,
            instructions: w.instructions,
            cycle: w.cycle,
        })
    }
}

/// A [`WindowSource`] replaying pre-materialized windows — the harness's
/// simulator-free driver for data- and inference-fault cells (mitigation
/// switches have no simulator to steer, so they are recorded by the sink
/// but otherwise ignored). Also models the zero-length-program condition:
/// an empty window list streams nothing and returns an all-zero
/// [`RunResult`].
#[derive(Debug)]
pub struct SliceSource<'a> {
    windows: &'a [Vec<f64>],
    interval: u64,
}

impl<'a> SliceSource<'a> {
    /// Creates a source replaying `windows` at `interval` committed
    /// instructions per window.
    pub fn new(windows: &'a [Vec<f64>], interval: u64) -> Self {
        SliceSource { windows, interval }
    }
}

impl WindowSource for SliceSource<'_> {
    fn stream(&mut self, sink: &mut dyn WindowSink) -> RunResult {
        let mut instructions = 0u64;
        for w in self.windows {
            instructions += self.interval;
            sink.window(&RawWindow {
                values: w,
                instructions,
                // The replay has no timing model; approximate 2 cycles/instr
                // so IPC series and latency cycles stay plausible.
                cycle: instructions * 2,
            });
        }
        RunResult {
            committed_instructions: instructions,
            cycles: instructions * 2,
            ipc: if instructions > 0 { 0.5 } else { 0.0 },
            halted: true,
            regs: [0; 32],
        }
    }
}

/// Bounded-retry policy for transient I/O faults: up to `attempts` tries
/// total, retrying only errors [`is_transient`] classifies as recoverable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts, including the first (clamped to at least 1).
    pub attempts: u32,
}

impl Default for RetryPolicy {
    /// Three attempts: the first plus two retries.
    fn default() -> Self {
        RetryPolicy { attempts: 3 }
    }
}

/// `true` for errors worth retrying: OS-level I/O failures whose kind is
/// transient (`Interrupted`, `WouldBlock`, `TimedOut`). Parse, corruption
/// and config errors are deterministic — retrying them cannot help, so
/// they surface immediately.
pub fn is_transient(err: &EvaxError) -> bool {
    match err {
        EvaxError::Io { source, .. } => matches!(
            source.kind(),
            std::io::ErrorKind::Interrupted
                | std::io::ErrorKind::WouldBlock
                | std::io::ErrorKind::TimedOut
        ),
        _ => false,
    }
}

/// Runs `f` under `policy`: transient I/O errors are retried up to the
/// attempt budget, every other error (and the final transient one)
/// surfaces as-is. `f` receives the 0-based attempt number.
///
/// # Errors
/// The last error `f` returned once the budget is exhausted, or the first
/// non-transient error.
pub fn retry<T>(policy: &RetryPolicy, mut f: impl FnMut(u32) -> Result<T>) -> Result<T> {
    let attempts = policy.attempts.max(1);
    let mut last = None;
    for attempt in 0..attempts {
        match f(attempt) {
            Ok(v) => return Ok(v),
            Err(e) if is_transient(&e) && attempt + 1 < attempts => last = Some(e),
            Err(e) => return Err(e),
        }
    }
    // Unreachable: the loop always returns on its final iteration; kept as
    // a typed error so this function can never panic.
    Err(last.unwrap_or_else(|| {
        EvaxError::corrupt("retry loop", "at least one attempt", "zero attempts")
    }))
}

/// [`crate::io::read_model_file`] under a bounded [`RetryPolicy`] —
/// the fail-secure loader for deployment loops that must survive
/// transient storage faults without ever panicking.
///
/// # Errors
/// As [`crate::io::read_model_file`]; transient I/O errors are retried up
/// to the policy's budget first.
pub fn read_model_file_with_retry<P: AsRef<Path>>(
    path: P,
    policy: &RetryPolicy,
) -> Result<ModelBundle> {
    retry(policy, |_| crate::io::read_model_file(path.as_ref()))
}

/// [`crate::io::read_featurizer_file`] under a bounded [`RetryPolicy`].
///
/// # Errors
/// As [`crate::io::read_featurizer_file`]; transient I/O errors are
/// retried up to the policy's budget first.
pub fn read_featurizer_file_with_retry<P: AsRef<Path>>(
    path: P,
    policy: &RetryPolicy,
) -> Result<crate::featurize::Featurizer> {
    retry(policy, |_| crate::io::read_featurizer_file(path.as_ref()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::{CollectingSink, StreamStats};

    #[test]
    fn disabled_injector_is_a_no_op() {
        let inj = FaultInjector::disabled();
        assert!(!inj.enabled());
        assert_eq!(inj.kind(), None);
        let mut bytes = b"evax-model v1\n".to_vec();
        let before = bytes.clone();
        inj.corrupt_bytes(&mut bytes);
        assert_eq!(bytes, before);
        let mut window = vec![1.0, 2.0, 3.0];
        inj.corrupt_window(&mut window);
        assert_eq!(window, vec![1.0, 2.0, 3.0]);
        assert_eq!(inj.corrupt_score(0.25).to_bits(), 0.25f32.to_bits());
        assert_eq!(inj.injections(), 0);
    }

    #[test]
    fn storage_faults_are_seed_reproducible() {
        for kind in [FaultKind::BitFlip, FaultKind::Truncate, FaultKind::Garbage] {
            let base: Vec<u8> = (0u8..=255).collect();
            let mut a = base.clone();
            let mut b = base.clone();
            FaultInjector::new(kind, 42).corrupt_bytes(&mut a);
            FaultInjector::new(kind, 42).corrupt_bytes(&mut b);
            assert_eq!(a, b, "{kind:?} must be reproducible");
            assert_ne!(a, base, "{kind:?} must corrupt");
        }
    }

    #[test]
    fn window_faults_are_periodic_and_counted() {
        let inj = FaultInjector::new(FaultKind::NanWindow, 7).with_intensity(2);
        let mut poisoned = 0;
        for _ in 0..6 {
            let mut w = vec![1.0f64; 4];
            inj.corrupt_window(&mut w);
            if w.iter().any(|v| v.is_nan()) {
                poisoned += 1;
            }
        }
        assert_eq!(poisoned, 3, "every 2nd window must be poisoned");
        assert_eq!(inj.injections(), 3);
    }

    #[test]
    fn score_faults_poison_periodically() {
        let inj = FaultInjector::new(FaultKind::InfScore, 9).with_intensity(3);
        let scores: Vec<f32> = (0..6).map(|_| inj.corrupt_score(0.5)).collect();
        assert!(scores[0].is_infinite());
        assert_eq!(scores[1], 0.5);
        assert_eq!(scores[2], 0.5);
        assert!(scores[3].is_infinite());
        assert_eq!(inj.injections(), 2);
    }

    #[test]
    fn flaky_reader_recovers_within_retry_budget() {
        let inj = FaultInjector::new(FaultKind::TransientIo, 1).with_intensity(2);
        let policy = RetryPolicy { attempts: 3 };
        let out = retry(&policy, |_| {
            let mut text = String::new();
            inj.wrap_reader("payload".as_bytes())
                .read_to_string(&mut text)
                .map_err(EvaxError::from)?;
            Ok(text)
        });
        assert_eq!(out.unwrap(), "payload");
        assert_eq!(inj.injections(), 2);
    }

    #[test]
    fn retry_budget_is_bounded() {
        let inj = FaultInjector::new(FaultKind::TransientIo, 1).with_intensity(10);
        let policy = RetryPolicy { attempts: 3 };
        let out: Result<String> = retry(&policy, |_| {
            let mut text = String::new();
            inj.wrap_reader("payload".as_bytes())
                .read_to_string(&mut text)
                .map_err(EvaxError::from)?;
            Ok(text)
        });
        let err = out.unwrap_err();
        assert!(is_transient(&err), "{err}");
        assert_eq!(inj.injections(), 3, "one injected failure per attempt");
    }

    #[test]
    fn retry_does_not_mask_deterministic_errors() {
        let mut calls = 0;
        let out: Result<()> = retry(&RetryPolicy::default(), |_| {
            calls += 1;
            Err(EvaxError::corrupt("model header", "magic", "garbage"))
        });
        assert!(matches!(out, Err(EvaxError::Corrupt { .. })));
        assert_eq!(calls, 1, "non-transient errors must not retry");
    }

    #[test]
    fn faulting_sink_is_transparent_when_disabled() {
        let windows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let mut plain = CollectingSink::new();
        SliceSource::new(&windows, 100).stream(&mut plain);
        let mut wrapped = CollectingSink::new();
        {
            let mut sink = FaultingSink::new(&mut wrapped, FaultInjector::disabled());
            SliceSource::new(&windows, 100).stream(&mut sink);
        }
        assert_eq!(plain.into_windows(), wrapped.into_windows());
    }

    #[test]
    fn faulting_sink_poisons_the_stream() {
        let windows = vec![vec![1.0, 2.0]; 6];
        let mut stats = StreamStats::new(2);
        {
            let inj = FaultInjector::new(FaultKind::InfWindow, 3).with_intensity(2);
            let mut sink = FaultingSink::new(&mut stats, inj.clone());
            SliceSource::new(&windows, 100).stream(&mut sink);
            assert_eq!(inj.injections(), 3);
        }
        // StreamStats sanitizes: poisoned windows are rejected, the fitted
        // maxima stay finite.
        assert_eq!(stats.rejected(), 3);
        assert_eq!(stats.count(), 3);
        assert!(stats.normalizer().maxima().iter().all(|m| m.is_finite()));
    }

    #[test]
    fn slice_source_models_zero_length_programs() {
        let mut stats = StreamStats::new(4);
        let result = SliceSource::new(&[], 100).stream(&mut stats);
        assert_eq!(result.committed_instructions, 0);
        assert_eq!(stats.count(), 0);
    }
}
