//! Automatic security-HPC engineering (paper §VI-A, Table I, Fig. 12).
//!
//! "We use the hidden nodes from our trained AM-GAN Generator to
//! *automatically* engineer new counters for security. ... We sort the
//! weights of the hidden layer of the network and select the top 12 nodes
//! ... We then define the Boolean AND Logic of connected HPCs to that node
//! as a new HPC specifically engineered for Security."
//!
//! Mining happens on the Generator's *output-facing* layer: each hidden node
//! drives the output HPC units through a weight row; nodes whose outgoing
//! weight mass concentrates on a small set of HPCs represent invariant
//! combinations of counters (e.g. `SquashedBytesReadFromWRQu` = squashed
//! loads AND bytes-read-from-write-queue). The AND of normalized counter
//! values is realized as their minimum (the fuzzy-AND; exact Boolean AND on
//! the presence bits in the quantized datapath).

use evax_nn::Network;

/// One engineered security counter: the AND of a small set of baseline HPCs.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EngineeredFeature {
    /// Human-readable name, e.g. `lsq.squashedLoads_AND_dram.bytesReadWrQ`.
    pub name: String,
    /// Indices of the combined baseline HPCs.
    pub components: Vec<usize>,
}

impl EngineeredFeature {
    /// Evaluates the feature on a normalized baseline vector (fuzzy AND =
    /// minimum of the components).
    ///
    /// # Panics
    /// Panics if a component index is out of range.
    pub fn eval(&self, base: &[f32]) -> f32 {
        self.components
            .iter()
            .map(|&i| base[i])
            .fold(f32::INFINITY, f32::min)
            .min(1.0)
    }
}

/// Number of engineered counters the paper adds (145 − 133).
pub const N_ENGINEERED: usize = 12;

/// Mines the trained Generator for the top `n` concentrated HPC
/// combinations of `arity` components each.
///
/// # Panics
/// Panics if the generator has fewer than two layers.
pub fn engineer_features(
    generator: &Network,
    n: usize,
    arity: usize,
    hpc_names: &[&str],
) -> Vec<EngineeredFeature> {
    assert!(generator.depth() >= 2, "generator must have hidden layers");
    let out_layer = &generator.layers()[generator.depth() - 1];
    let w = out_layer.weights(); // hidden_width x feature_dim
    let hidden = w.rows();
    let feature_dim = w.cols();
    let arity = arity.clamp(2, 4).min(feature_dim);

    // Score each hidden node by how concentrated its outgoing weight mass is
    // on its top-`arity` HPCs.
    let mut scored: Vec<(f32, Vec<usize>)> = Vec::with_capacity(hidden);
    for h in 0..hidden {
        let row = w.row(h);
        let mut idx: Vec<usize> = (0..feature_dim).collect();
        idx.sort_by(|&a, &b| {
            row[b]
                .abs()
                .partial_cmp(&row[a].abs())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let top: Vec<usize> = idx[..arity].to_vec();
        let top_mass: f32 = top.iter().map(|&i| row[i].abs()).sum();
        let total: f32 = row.iter().map(|v| v.abs()).sum::<f32>().max(1e-9);
        let concentration = top_mass / total;
        // Weight by magnitude so dead nodes do not win.
        scored.push((concentration * top_mass, top));
    }
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));

    // Deduplicate component sets, preserving score order.
    let mut seen: Vec<Vec<usize>> = Vec::new();
    let mut out = Vec::with_capacity(n);
    for (_, mut comps) in scored {
        comps.sort_unstable();
        if seen.contains(&comps) {
            continue;
        }
        seen.push(comps.clone());
        let name = comps
            .iter()
            .map(|&i| hpc_names.get(i).copied().unwrap_or("?"))
            .collect::<Vec<_>>()
            .join("_AND_");
        out.push(EngineeredFeature {
            name,
            components: comps,
        });
        if out.len() == n {
            break;
        }
    }
    out
}

/// Extends a normalized baseline vector with the engineered features
/// (133 → 145 in the paper's configuration).
pub fn extend_features(base: &[f32], engineered: &[EngineeredFeature]) -> Vec<f32> {
    let mut out = Vec::with_capacity(base.len() + engineered.len());
    extend_features_into(base, engineered, &mut out);
    out
}

/// [`extend_features`] into a caller-owned buffer (cleared, then refilled) —
/// the allocation-free form used by per-window scoring hot loops and the
/// fleet scheduler's batch fan-in.
pub fn extend_features_into(base: &[f32], engineered: &[EngineeredFeature], out: &mut Vec<f32>) {
    out.clear();
    out.reserve(base.len() + engineered.len());
    out.extend_from_slice(base);
    for f in engineered {
        out.push(f.eval(base));
    }
}

/// Renders the engineered features as the paper's Table I.
pub fn render_table(engineered: &[EngineeredFeature]) -> String {
    let mut s = String::from("# | Security HPCs engineered by EVAX\n");
    for (i, f) in engineered.iter().enumerate() {
        s.push_str(&format!(
            "{} | {}\n",
            i + 1,
            f.name.replace("_AND_", " AND ")
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use evax_nn::{Activation, Dense, Matrix};

    /// A generator whose output layer has two obviously concentrated nodes.
    fn rigged_generator() -> Network {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0);
        let hidden = Dense::new(4, 3, Activation::LeakyRelu, &mut rng);
        // 3 hidden nodes x 6 outputs.
        let w = Matrix::from_rows(&[
            vec![5.0, 4.5, 0.0, 0.0, 0.0, 0.1], // node 0: outputs {0,1}
            vec![0.1, 0.1, 0.1, 0.1, 0.1, 0.1], // node 1: diffuse
            vec![0.0, 0.0, 3.0, 0.0, 2.5, 0.0], // node 2: outputs {2,4}
        ]);
        let out = Dense::from_parts(w, vec![0.0; 6], Activation::Sigmoid);
        Network::new(vec![hidden, out])
    }

    #[test]
    fn mining_finds_concentrated_nodes_first() {
        let names = ["a", "b", "c", "d", "e", "f"];
        let feats = engineer_features(&rigged_generator(), 2, 2, &names);
        assert_eq!(feats.len(), 2);
        assert_eq!(feats[0].components, vec![0, 1]);
        assert_eq!(feats[0].name, "a_AND_b");
        assert_eq!(feats[1].components, vec![2, 4]);
    }

    #[test]
    fn eval_is_fuzzy_and() {
        let f = EngineeredFeature {
            name: "x".into(),
            components: vec![0, 2],
        };
        assert_eq!(f.eval(&[0.8, 0.1, 0.3]), 0.3);
        assert_eq!(f.eval(&[0.0, 0.9, 0.9]), 0.0);
    }

    #[test]
    fn extend_appends_engineered_values() {
        let feats = vec![EngineeredFeature {
            name: "x".into(),
            components: vec![0, 1],
        }];
        let v = extend_features(&[0.5, 0.2], &feats);
        assert_eq!(v, vec![0.5, 0.2, 0.2]);
    }

    #[test]
    fn dedup_prevents_repeated_combos() {
        // All nodes concentrate on the same pair: only one feature results.
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
        let hidden = Dense::new(4, 3, Activation::LeakyRelu, &mut rng);
        let w = Matrix::from_rows(&[
            vec![5.0, 4.0, 0.0],
            vec![4.0, 5.0, 0.0],
            vec![6.0, 5.0, 0.0],
        ]);
        let out = Dense::from_parts(w, vec![0.0; 3], Activation::Sigmoid);
        let g = Network::new(vec![hidden, out]);
        let feats = engineer_features(&g, 12, 2, &["a", "b", "c"]);
        assert_eq!(feats.len(), 1);
    }

    #[test]
    fn table_rendering() {
        let feats = vec![EngineeredFeature {
            name: "lsq.squashedStores_AND_lsq.forwLoads".into(),
            components: vec![0, 1],
        }];
        let t = render_table(&feats);
        assert!(t.contains("lsq.squashedStores AND lsq.forwLoads"));
    }
}
