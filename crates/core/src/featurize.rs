//! The unified streaming featurization pipeline — the *one* window→feature
//! path shared by offline collection, k-fold/fuzz corpora, detector
//! training and the online adaptive defense loop.
//!
//! EVAX's premise (paper §VII–§VIII, Fig. 12–14) is that the *same* HPC
//! featurization runs offline (dataset collection, AM-GAN vaccination,
//! detector training) and online (the adaptive controller that flags
//! attacks mid-run). Implementing that path more than once is exactly the
//! train/serve skew that breaks deployed HMDs: detector accuracy collapses
//! when deployment-time feature extraction drifts from training-time
//! (Stochastic-HMDs, MAD-EN). This module is the single implementation:
//!
//! ```text
//!   WindowSource ──▶ window delta ──▶ normalization ──▶ engineered HPCs
//!   (simulator,      (inside           (Normalizer /      (fuzzy-AND
//!    run_sampled)     run_sampled)      StreamStats)       projection)
//!        │
//!        └──▶ WindowSink: StreamStats (fit) · DatasetSink (offline)
//!             · VerdictSink (deployment) · the adaptive controller
//!             (evax-defense) · CollectingSink (figures/tests)
//! ```
//!
//! * [`WindowSource`] produces raw per-window HPC **delta** vectors. The
//!   canonical source is [`ProgramSource`]: one program on a fresh core,
//!   driven by `Cpu::run_sampled`'s zero-alloc `hpc_vector_into` visitor
//!   with in-place window deltas.
//! * [`WindowSink`] consumes windows and may steer the source (the adaptive
//!   controller returns mitigation-mode switches; offline sinks return
//!   `None`).
//! * [`StreamStats`] is the streaming fit: exact running maxima (bit-exact
//!   with a two-pass fit, since `max` is order-independent) plus Welford
//!   online mean/variance. Parallel collection merges per-stream stats in
//!   canonical stream order, so results are bit-identical at any thread
//!   count (see [`crate::par`]).
//! * [`Featurizer`] is the serializable window→feature transform that
//!   travels with a trained detector (see [`crate::io`]), so train-time and
//!   deploy-time transforms can never diverge.
//!
//! # Memory bounds
//!
//! Streaming collection never materializes raw window matrices: a fit pass
//! holds one window vector plus running stats per stream, and the emit pass
//! converts each window straight into its normalized `f32` sample. Peak
//! memory is the *output* dataset plus O(dim) per worker, independent of
//! how many raw windows the corpus contains.

use evax_obs::MetricsSink;
use evax_sim::{
    Cpu, CpuConfig, FeatureSchema, MitigationMode, Modality, Program, RunResult, SampleSchedule,
};

use crate::dataset::{Dataset, Normalizer, Sample};
use crate::detector::Detector;
use crate::feature_engineering::EngineeredFeature;

/// One raw HPC sampling window, borrowed from the driving source.
///
/// `values` are the per-window counter **deltas** (the window-delta stage
/// runs inside `Cpu::run_sampled`, converting absolute counters in place).
#[derive(Debug, Clone, Copy)]
pub struct RawWindow<'a> {
    /// Raw (unnormalized) HPC deltas for this window.
    pub values: &'a [f64],
    /// Committed instructions at the window boundary.
    pub instructions: u64,
    /// Cycle count at the window boundary.
    pub cycle: u64,
}

impl RawWindow<'_> {
    /// Instructions-per-cycle of this window (Fig. 14 timelines).
    pub fn ipc(&self) -> f64 {
        let cyc_idx = evax_sim::hpc_index("cycles").expect("cycles HPC");
        let inst_idx = evax_sim::hpc_index("commit.CommittedInsts").expect("insts HPC");
        let cycles = self.values[cyc_idx].max(1.0);
        self.values[inst_idx] / cycles
    }
}

/// A consumer of raw windows.
///
/// Returning `Some(mode)` steers the driving source (the adaptive
/// controller's lever); offline sinks return `None`.
pub trait WindowSink {
    /// Consumes one window; optionally switches the source's mitigation.
    fn window(&mut self, w: &RawWindow<'_>) -> Option<MitigationMode>;
}

/// A producer of raw HPC windows that drives a [`WindowSink`].
pub trait WindowSource {
    /// Streams every window into `sink`, honoring its mitigation switches.
    fn stream(&mut self, sink: &mut dyn WindowSink) -> RunResult;
}

/// The canonical window source: one program run on a fresh simulated core.
///
/// This is the single simulator-driving loop behind collection, evasive
/// corpora, deployment scoring and the adaptive controller. It plants the
/// kernel secret (attacks that read kernel memory need one) and samples
/// every `interval` committed instructions.
#[derive(Debug)]
pub struct ProgramSource<'a> {
    program: &'a Program,
    cpu_cfg: &'a CpuConfig,
    interval: u64,
    max_instrs: u64,
    schedule: SampleSchedule,
    metrics: MetricsSink,
}

impl<'a> ProgramSource<'a> {
    /// Creates a source sampling `program` every `interval` committed
    /// instructions for at most `max_instrs` instructions.
    pub fn new(
        program: &'a Program,
        cpu_cfg: &'a CpuConfig,
        interval: u64,
        max_instrs: u64,
    ) -> Self {
        ProgramSource {
            program,
            cpu_cfg,
            interval,
            max_instrs,
            schedule: SampleSchedule::default(),
            metrics: MetricsSink::default(),
        }
    }

    /// Sets a fast-forward interval schedule (builder style). With the
    /// default all-detailed schedule the stream is bitwise-identical to the
    /// historical behavior; a nonzero `warmup_instrs` fast-forwards between
    /// sampling windows (functional execution with approximate warm-up), so
    /// windows are approximate but far cheaper to produce.
    pub fn with_schedule(mut self, schedule: SampleSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Attaches a metrics sink (builder style). With the default no-op sink
    /// the stream is instrumentation-free; with a recording sink each
    /// [`stream`](WindowSource::stream) call emits `featurize.*` window
    /// tallies and `sim.*` core/DRAM counters. Recording never feeds back
    /// into simulation, so streamed windows are bitwise-identical either
    /// way.
    pub fn with_metrics(mut self, metrics: MetricsSink) -> Self {
        self.metrics = metrics;
        self
    }
}

impl WindowSource for ProgramSource<'_> {
    fn stream(&mut self, sink: &mut dyn WindowSink) -> RunResult {
        let mut cpu = Cpu::new(self.cpu_cfg.clone());
        cpu.memory_mut()
            .write_u64(evax_attacks::mds::KERNEL_SECRET_ADDR, 5);
        let result = if self.metrics.enabled() {
            let windows = self.metrics.counter("featurize.windows");
            let switches = self.metrics.counter("featurize.mode_switches");
            let switch_cycle = self.metrics.histogram("featurize.switch_cycle");
            let span = self.metrics.span("sim.run_wall_ns");
            let result = cpu.run_sampled_with_schedule(
                self.program,
                self.max_instrs,
                self.interval,
                self.schedule,
                |s| {
                    windows.inc();
                    let verdict = sink.window(&RawWindow {
                        values: &s.values,
                        instructions: s.instructions,
                        cycle: s.cycle,
                    });
                    if verdict.is_some() {
                        switches.inc();
                        switch_cycle.observe(s.cycle);
                    }
                    verdict
                },
            );
            drop(span);
            result
        } else {
            cpu.run_sampled_with_schedule(
                self.program,
                self.max_instrs,
                self.interval,
                self.schedule,
                |s| {
                    sink.window(&RawWindow {
                        values: &s.values,
                        instructions: s.instructions,
                        cycle: s.cycle,
                    })
                },
            )
        };
        if self.metrics.enabled() {
            self.metrics.add("featurize.runs", 1);
            self.metrics
                .add("sim.committed_instrs", result.committed_instructions);
            self.metrics.add("sim.cycles", result.cycles);
            let sc = cpu.sched_counters();
            self.metrics
                .add("sim.sched.events_scheduled", sc.events_scheduled);
            self.metrics.add("sim.sched.ready_pushes", sc.ready_pushes);
            self.metrics
                .record_max("sim.sched.event_heap_peak", sc.event_heap_peak);
            self.metrics
                .record_max("sim.sched.ready_heap_peak", sc.ready_heap_peak);
            let d = cpu.dram().stats();
            self.metrics.add("sim.dram.activations", d.activations);
            self.metrics.add("sim.dram.bit_flips", d.bit_flips);
        }
        result
    }
}

/// Per-feature streaming statistics: exact running maxima plus Welford
/// online mean/variance.
///
/// The maxima are bit-exact with a two-pass (materialize-then-fold) fit —
/// `max` over `|x|` is order-independent — so the [`Normalizer`] produced
/// by a streaming fit is byte-identical to the historical one. Mean and
/// variance use Welford's recurrence, with a pairwise merge (Chan et al.)
/// for parallel streams.
///
/// # Determinism
///
/// [`merge`](StreamStats::merge) is *not* commutative in floating point;
/// callers must merge per-stream stats in canonical stream order (as
/// [`crate::collect::collect_dataset`] does), which makes the result
/// bit-identical at any thread count.
///
/// # Non-finite inputs
///
/// NaN/Inf counters are corruption, not data: folding them in would poison
/// the running maxima (and through the fitted [`Normalizer`], every
/// downstream feature vector). [`try_observe`](StreamStats::try_observe)
/// and [`try_merge`](StreamStats::try_merge) reject them with a typed
/// [`EvaxError::Corrupt`](crate::error::EvaxError); the infallible
/// [`observe`](StreamStats::observe) / [`merge`](StreamStats::merge) used
/// on streaming sinks *drop* the offending window (or incoming stats)
/// whole and count it in [`rejected`](StreamStats::rejected), leaving the
/// fitted state untouched. Finite inputs behave bit-identically to the
/// pre-guard implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStats {
    count: u64,
    /// Windows dropped because they contained non-finite counters.
    rejected: u64,
    max: Vec<f64>,
    mean: Vec<f64>,
    m2: Vec<f64>,
}

impl StreamStats {
    /// Creates empty statistics for `dim` features.
    pub fn new(dim: usize) -> Self {
        StreamStats {
            count: 0,
            rejected: 0,
            max: vec![0.0; dim],
            mean: vec![0.0; dim],
            m2: vec![0.0; dim],
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.max.len()
    }

    /// Number of windows observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Windows dropped by the infallible [`observe`](Self::observe) /
    /// [`merge`](Self::merge) because they carried non-finite counters.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Folds one raw window into the statistics, rejecting corruption: a
    /// window with any non-finite counter leaves the state untouched.
    ///
    /// # Errors
    /// [`EvaxError::Corrupt`](crate::error::EvaxError) naming the first
    /// non-finite component.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn try_observe(&mut self, raw: &[f64]) -> crate::error::Result<()> {
        assert_eq!(raw.len(), self.max.len(), "feature dim mismatch");
        if let Some((i, &v)) = raw.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            return Err(crate::error::EvaxError::corrupt(
                format!("hpc window counter {i}"),
                "a finite value",
                format!("{v}"),
            ));
        }
        self.count += 1;
        let n = self.count as f64;
        for (i, &v) in raw.iter().enumerate() {
            if v.abs() > self.max[i] {
                self.max[i] = v.abs();
            }
            let delta = v - self.mean[i];
            self.mean[i] += delta / n;
            self.m2[i] += delta * (v - self.mean[i]);
        }
        Ok(())
    }

    /// Folds one raw window into the statistics. Windows carrying
    /// non-finite counters are dropped whole and tallied in
    /// [`rejected`](Self::rejected) (use [`try_observe`](Self::try_observe)
    /// to surface them as typed errors instead).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn observe(&mut self, raw: &[f64]) {
        if self.try_observe(raw).is_err() {
            self.rejected += 1;
        }
    }

    /// Merges another stream's statistics into this one (Chan et al.'s
    /// pairwise update), rejecting corruption: stats carrying non-finite
    /// maxima/means/variances leave this state untouched. Merge order must
    /// be canonical — see the type docs.
    ///
    /// # Errors
    /// [`EvaxError::Corrupt`](crate::error::EvaxError) when `other`
    /// contains a non-finite accumulator.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn try_merge(&mut self, other: &StreamStats) -> crate::error::Result<()> {
        assert_eq!(other.dim(), self.dim(), "feature dim mismatch");
        let poisoned = other
            .max
            .iter()
            .chain(other.mean.iter())
            .chain(other.m2.iter())
            .find(|v| !v.is_finite());
        if let Some(&v) = poisoned {
            return Err(crate::error::EvaxError::corrupt(
                "stream statistics",
                "finite accumulators",
                format!("{v}"),
            ));
        }
        if other.count == 0 {
            self.rejected += other.rejected;
            return Ok(());
        }
        if self.count == 0 {
            let rejected = self.rejected + other.rejected;
            *self = other.clone();
            self.rejected = rejected;
            return Ok(());
        }
        let na = self.count as f64;
        let nb = other.count as f64;
        let n = na + nb;
        for i in 0..self.max.len() {
            if other.max[i] > self.max[i] {
                self.max[i] = other.max[i];
            }
            let delta = other.mean[i] - self.mean[i];
            self.mean[i] += delta * nb / n;
            self.m2[i] += other.m2[i] + delta * delta * na * nb / n;
        }
        self.count += other.count;
        self.rejected += other.rejected;
        Ok(())
    }

    /// Merges another stream's statistics into this one. Corrupt incoming
    /// stats (non-finite accumulators) are dropped whole and tallied in
    /// [`rejected`](Self::rejected) (use [`try_merge`](Self::try_merge) to
    /// surface them as typed errors instead).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn merge(&mut self, other: &StreamStats) {
        if self.try_merge(other).is_err() {
            self.rejected += 1;
        }
    }

    /// Running mean per feature.
    pub fn means(&self) -> &[f64] {
        &self.mean
    }

    /// Population variance of feature `i` (0 when fewer than two windows).
    pub fn variance(&self, i: usize) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2[i] / self.count as f64
        }
    }

    /// The fitted running-max [`Normalizer`] (bit-exact with a two-pass fit).
    pub fn normalizer(&self) -> Normalizer {
        Normalizer::from_maxima(self.max.clone())
    }
}

impl WindowSink for StreamStats {
    fn window(&mut self, w: &RawWindow<'_>) -> Option<MitigationMode> {
        self.observe(w.values);
        None
    }
}

/// The serializable window→feature transform deployed alongside a trained
/// detector: normalization plus the engineered security-HPC projection.
///
/// Persisting this with the model (see [`crate::io::write_featurizer`])
/// guarantees deployment-time featurization is the one the detector was
/// trained with — there is no ad-hoc reconstruction to drift.
///
/// The featurizer owns the [`FeatureSchema`] describing its columns: the
/// sensor columns it consumes (raw window order) followed by the
/// engineered columns it appends. Serving paths negotiate window width
/// through the schema ([`Featurizer::check_config`]) instead of assuming
/// the fixed baseline width, so a featurizer fitted against one sensor
/// configuration refuses — with a typed [`EvaxError::Config`](crate::error::EvaxError) — to consume
/// windows from another.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Featurizer {
    schema: FeatureSchema,
    normalizer: Normalizer,
    engineered: Vec<EngineeredFeature>,
}

impl Featurizer {
    /// Creates a featurizer from a fitted normalizer and the mined
    /// engineered features (empty for baseline detectors).
    ///
    /// The schema is inferred: a normalizer of the baseline width gets the
    /// named baseline-133 schema (bit- and fingerprint-compatible with
    /// pre-schema artifacts), any other width gets anonymous `f{i}`
    /// columns. Prefer [`Featurizer::with_schema`] when the true schema is
    /// known (e.g. an energy-enabled sensor configuration).
    pub fn new(normalizer: Normalizer, engineered: Vec<EngineeredFeature>) -> Self {
        let base = if normalizer.dim() == evax_sim::HPC_BASE_DIM {
            FeatureSchema::baseline()
        } else {
            FeatureSchema::anonymous(normalizer.dim())
        };
        let schema = base.with_engineered(engineered.iter().map(|f| f.name.clone()));
        Featurizer {
            schema,
            normalizer,
            engineered,
        }
    }

    /// Creates a featurizer against an explicit sensor schema (the columns
    /// of the raw windows the normalizer was fitted on).
    ///
    /// # Errors
    /// [`EvaxError::Config`](crate::error::EvaxError) when the schema width does not match the
    /// normalizer's, or when the schema already contains engineered
    /// columns (those are appended here, from `engineered`).
    pub fn with_schema(
        base_schema: FeatureSchema,
        normalizer: Normalizer,
        engineered: Vec<EngineeredFeature>,
    ) -> crate::error::Result<Self> {
        use crate::error::EvaxError;
        if base_schema.dim() != normalizer.dim() {
            return Err(EvaxError::config(
                "featurizer",
                format!(
                    "schema width {} does not match normalizer width {}",
                    base_schema.dim(),
                    normalizer.dim()
                ),
            ));
        }
        if base_schema.count(Modality::Engineered) != 0 {
            return Err(EvaxError::config(
                "featurizer",
                "base schema must not contain engineered columns",
            ));
        }
        let schema = base_schema.with_engineered(engineered.iter().map(|f| f.name.clone()));
        Ok(Featurizer {
            schema,
            normalizer,
            engineered,
        })
    }

    /// A featurizer with no engineered stage (baseline HPCs only).
    pub fn baseline(normalizer: Normalizer) -> Self {
        Featurizer::new(normalizer, Vec::new())
    }

    /// The full feature schema: sensor columns (what
    /// [`featurize_into`](Self::featurize_into) consumes, in raw-window
    /// order) followed by the engineered columns it appends. Its
    /// fingerprint identifies this featurizer's feature space in
    /// versioned artifacts.
    pub fn schema(&self) -> &FeatureSchema {
        &self.schema
    }

    /// The sensor (pre-engineering) portion of the schema — the columns of
    /// the raw windows this featurizer consumes.
    pub fn base_schema(&self) -> FeatureSchema {
        FeatureSchema::from_columns(
            self.schema
                .columns()
                .take(self.base_dim())
                .map(|(n, m)| (n.to_string(), m))
                .collect(),
        )
    }

    /// Checks that raw windows produced by a CPU built from `cfg` are what
    /// this featurizer consumes: same width, same column names and
    /// modalities (by schema fingerprint). Anonymous-schema featurizers
    /// (legacy artifacts) are checked by width only.
    ///
    /// # Errors
    /// [`EvaxError::Config`](crate::error::EvaxError) describing the mismatch.
    pub fn check_config(&self, cfg: &evax_sim::CpuConfig) -> crate::error::Result<()> {
        use crate::error::EvaxError;
        let produced = FeatureSchema::for_config(cfg);
        if produced.dim() != self.base_dim() {
            return Err(EvaxError::config(
                "featurizer",
                format!(
                    "configuration produces {}-wide windows but the featurizer \
                     was fitted on {}-wide windows",
                    produced.dim(),
                    self.base_dim()
                ),
            ));
        }
        let base = self.base_schema();
        let anonymous = FeatureSchema::anonymous(self.base_dim());
        if base != anonymous && base.fingerprint() != produced.fingerprint() {
            return Err(EvaxError::config(
                "featurizer",
                format!(
                    "schema fingerprint mismatch: configuration produces \
                     {:016x} but the featurizer was fitted on {:016x}",
                    produced.fingerprint(),
                    base.fingerprint()
                ),
            ));
        }
        Ok(())
    }

    /// The normalization stage.
    pub fn normalizer(&self) -> &Normalizer {
        &self.normalizer
    }

    /// The engineered security-HPC projection stage.
    pub fn engineered(&self) -> &[EngineeredFeature] {
        &self.engineered
    }

    /// Baseline (normalized) feature dimension.
    pub fn base_dim(&self) -> usize {
        self.normalizer.dim()
    }

    /// Output feature dimension (base + engineered).
    pub fn feature_dim(&self) -> usize {
        self.normalizer.dim() + self.engineered.len()
    }

    /// Normalizes a raw window into the baseline feature space (what
    /// [`Detector::classify`] consumes; the detector applies its own
    /// engineered extension internally).
    ///
    /// # Panics
    /// Panics on dimension mismatch (either slice).
    pub fn normalize_into(&self, raw: &[f64], out: &mut [f32]) {
        self.normalizer.normalize_into(raw, out);
    }

    /// Full window→feature transform: normalized baseline prefix plus the
    /// engineered fuzzy-AND projections (133 → 145 in the paper's
    /// configuration). `out` must have [`feature_dim`](Self::feature_dim)
    /// elements.
    ///
    /// # Panics
    /// Panics on dimension mismatch (either slice).
    pub fn featurize_into(&self, raw: &[f64], out: &mut [f32]) {
        assert_eq!(out.len(), self.feature_dim(), "output dim mismatch");
        let (base, ext) = out.split_at_mut(self.base_dim());
        self.normalizer.normalize_into(raw, base);
        for (o, f) in ext.iter_mut().zip(self.engineered.iter()) {
            *o = f.eval(base);
        }
    }

    /// Allocating convenience over [`featurize_into`](Self::featurize_into).
    pub fn featurize(&self, raw: &[f64]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.feature_dim()];
        self.featurize_into(raw, &mut out);
        out
    }
}

/// Fan-in buffer for cross-stream batched inference: extended feature rows
/// (built by [`Featurizer::featurize_into`] or
/// `Detector::transform_into`) from many interleaved streams accumulate
/// into one flat row-major matrix, each row tagged with its origin, until
/// the whole batch is flushed through a batched scoring kernel.
///
/// The buffer is meant to live as long as its scheduler shard: `clear`
/// retains capacity, so steady-state operation performs no allocation.
#[derive(Debug, Clone)]
pub struct WindowBatch<T> {
    dim: usize,
    capacity: usize,
    rows: Vec<f32>,
    tags: Vec<T>,
}

impl<T> WindowBatch<T> {
    /// Creates an empty batch of `capacity` rows of `dim` features each.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `capacity == 0`.
    pub fn new(dim: usize, capacity: usize) -> Self {
        assert!(dim > 0, "row dimension must be positive");
        assert!(capacity > 0, "batch capacity must be positive");
        WindowBatch {
            dim,
            capacity,
            rows: Vec::with_capacity(dim * capacity),
            tags: Vec::with_capacity(capacity),
        }
    }

    /// Features per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Rows the batch holds before it must be flushed.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Rows currently pending.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// `true` if no rows are pending.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// `true` once the batch has reached capacity and must be flushed.
    pub fn is_full(&self) -> bool {
        self.tags.len() >= self.capacity
    }

    /// Appends one row, written in place by `fill` (the row starts zeroed),
    /// and returns `true` if the batch is now full.
    ///
    /// # Panics
    /// Panics if the batch is already full.
    pub fn push_with(&mut self, tag: T, fill: impl FnOnce(&mut [f32])) -> bool {
        assert!(!self.is_full(), "push into a full WindowBatch");
        let start = self.rows.len();
        self.rows.resize(start + self.dim, 0.0);
        fill(&mut self.rows[start..]);
        self.tags.push(tag);
        self.is_full()
    }

    /// The pending rows as one flat row-major slice (`len() * dim()` long).
    pub fn rows(&self) -> &[f32] {
        &self.rows
    }

    /// Tags of the pending rows, in push order.
    pub fn tags(&self) -> &[T] {
        &self.tags
    }

    /// Drops all pending rows, keeping the allocation.
    pub fn clear(&mut self) {
        self.rows.clear();
        self.tags.clear();
    }
}

/// Offline sink: normalizes every window and appends it to a labeled
/// [`Dataset`] — the streaming replacement for materialize-then-normalize.
#[derive(Debug)]
pub struct DatasetSink<'a> {
    normalizer: &'a Normalizer,
    class: usize,
    dataset: Dataset,
}

impl<'a> DatasetSink<'a> {
    /// Creates a sink labeling every window with `class`.
    pub fn new(normalizer: &'a Normalizer, class: usize) -> Self {
        DatasetSink {
            normalizer,
            class,
            dataset: Dataset::new(),
        }
    }

    /// Relabels subsequent windows (sources that stream several programs).
    pub fn set_class(&mut self, class: usize) {
        self.class = class;
    }

    /// The accumulated dataset.
    pub fn into_dataset(self) -> Dataset {
        self.dataset
    }
}

impl WindowSink for DatasetSink<'_> {
    fn window(&mut self, w: &RawWindow<'_>) -> Option<MitigationMode> {
        self.dataset
            .push(Sample::new(self.normalizer.normalize(w.values), self.class));
        None
    }
}

/// Deployment sink: featurizes every window and records the detector's
/// verdicts (no mitigation feedback — the adaptive controller in
/// `evax-defense` adds the secure-mode state machine on top of the same
/// stage chain).
#[derive(Debug)]
pub struct VerdictSink<'a> {
    featurizer: &'a Featurizer,
    detector: &'a Detector,
    features: Vec<f32>,
    verdicts: Vec<bool>,
}

impl<'a> VerdictSink<'a> {
    /// Creates a sink classifying windows with `detector` under
    /// `featurizer`'s transform.
    pub fn new(featurizer: &'a Featurizer, detector: &'a Detector) -> Self {
        VerdictSink {
            features: vec![0.0f32; featurizer.base_dim()],
            featurizer,
            detector,
            verdicts: Vec::new(),
        }
    }

    /// Per-window verdicts (`true` = flagged malicious), in window order.
    pub fn verdicts(&self) -> &[bool] {
        &self.verdicts
    }

    /// Number of flagged windows.
    pub fn flags(&self) -> u64 {
        self.verdicts.iter().filter(|&&v| v).count() as u64
    }
}

impl WindowSink for VerdictSink<'_> {
    fn window(&mut self, w: &RawWindow<'_>) -> Option<MitigationMode> {
        self.featurizer.normalize_into(w.values, &mut self.features);
        self.verdicts.push(self.detector.classify(&self.features));
        None
    }
}

/// Diagnostic sink that materializes raw windows (figures, golden-test
/// oracles). **Not** part of the production path — it defeats the streaming
/// memory bound by design.
#[derive(Debug, Default)]
pub struct CollectingSink {
    windows: Vec<Vec<f64>>,
}

impl CollectingSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The materialized raw windows, in window order.
    pub fn into_windows(self) -> Vec<Vec<f64>> {
        self.windows
    }
}

impl WindowSink for CollectingSink {
    fn window(&mut self, w: &RawWindow<'_>) -> Option<MitigationMode> {
        self.windows.push(w.values.to_vec());
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evax_attacks::{build_attack, AttackClass, KernelParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spectre_program(seed: u64) -> Program {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = KernelParams {
            iterations: 24,
            ..Default::default()
        };
        build_attack(AttackClass::SpectrePht, &params, &mut rng)
    }

    #[test]
    fn program_source_streams_windows() {
        let program = spectre_program(1);
        let cfg = CpuConfig::default();
        let mut sink = CollectingSink::new();
        let result = ProgramSource::new(&program, &cfg, 200, 3_000).stream(&mut sink);
        assert!(result.committed_instructions > 0);
        let windows = sink.into_windows();
        assert!(windows.len() >= 5, "got {} windows", windows.len());
        assert!(windows.iter().all(|w| w.len() == evax_sim::HPC_BASE_DIM));
    }

    #[test]
    fn stream_stats_max_matches_two_pass_bitwise() {
        let program = spectre_program(2);
        let cfg = CpuConfig::default();
        let mut stats = StreamStats::new(evax_sim::HPC_BASE_DIM);
        ProgramSource::new(&program, &cfg, 200, 3_000).stream(&mut stats);
        let mut collect = CollectingSink::new();
        ProgramSource::new(&program, &cfg, 200, 3_000).stream(&mut collect);
        let mut two_pass = Normalizer::new(evax_sim::HPC_BASE_DIM);
        for w in collect.into_windows() {
            two_pass.observe(&w);
        }
        assert_eq!(stats.normalizer(), two_pass);
    }

    #[test]
    fn stream_stats_merge_is_exact_for_maxima_and_counts() {
        let mut a = StreamStats::new(2);
        a.observe(&[1.0, -4.0]);
        a.observe(&[2.0, 0.5]);
        let mut b = StreamStats::new(2);
        b.observe(&[-3.0, 1.0]);
        let mut merged = StreamStats::new(2);
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.count(), 3);
        let norm = merged.normalizer();
        assert_eq!(norm.maxima(), &[3.0, 4.0]);
        // Mean is within fp tolerance of the sequential fold.
        let mut seq = StreamStats::new(2);
        for w in [[1.0, -4.0], [2.0, 0.5], [-3.0, 1.0]] {
            seq.observe(&w);
        }
        for i in 0..2 {
            assert!((merged.means()[i] - seq.means()[i]).abs() < 1e-12);
            assert!((merged.variance(i) - seq.variance(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn stream_stats_reject_non_finite_windows() {
        let mut stats = StreamStats::new(2);
        stats.observe(&[1.0, 2.0]);
        let before = stats.clone();
        // try_observe: typed error, state untouched.
        let err = stats.try_observe(&[f64::NAN, 1.0]).unwrap_err();
        assert!(
            matches!(err, crate::error::EvaxError::Corrupt { .. }),
            "{err}"
        );
        assert_eq!(stats, before);
        // observe: the poisoned window is dropped whole and counted.
        stats.observe(&[1.0, f64::INFINITY]);
        stats.observe(&[f64::NEG_INFINITY, 0.0]);
        assert_eq!(stats.rejected(), 2);
        assert_eq!(stats.count(), 1);
        assert!(stats.normalizer().maxima().iter().all(|m| m.is_finite()));
        assert!(stats.means().iter().all(|m| m.is_finite()));
        // A clean window still folds normally afterwards.
        stats.observe(&[3.0, 4.0]);
        assert_eq!(stats.count(), 2);
        assert_eq!(stats.normalizer().maxima(), &[3.0, 4.0]);
    }

    #[test]
    fn stream_stats_reject_poisoned_merges() {
        let mut clean = StreamStats::new(1);
        clean.observe(&[2.0]);
        let mut poisoned = StreamStats::new(1);
        poisoned.observe(&[1.0]);
        // Forge corruption the way a hostile deserializer would: merge is
        // the trust boundary for stats arriving from outside this process.
        poisoned.max[0] = f64::NAN;
        let before = clean.clone();
        let err = clean.try_merge(&poisoned).unwrap_err();
        assert!(
            matches!(err, crate::error::EvaxError::Corrupt { .. }),
            "{err}"
        );
        assert_eq!(clean, before);
        clean.merge(&poisoned);
        assert_eq!(clean.rejected(), 1);
        assert_eq!(clean.count(), 1);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = StreamStats::new(2);
        a.observe(&[1.0, 2.0]);
        let before = a.clone();
        a.merge(&StreamStats::new(2));
        assert_eq!(a, before);
        let mut empty = StreamStats::new(2);
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn featurizer_extends_with_engineered_projection() {
        let mut norm = Normalizer::new(3);
        norm.observe(&[10.0, 4.0, 2.0]);
        let f = Featurizer::new(
            norm,
            vec![EngineeredFeature {
                name: "a_AND_b".into(),
                components: vec![0, 1],
            }],
        );
        assert_eq!(f.base_dim(), 3);
        assert_eq!(f.feature_dim(), 4);
        let out = f.featurize(&[5.0, 4.0, 1.0]);
        assert_eq!(out.len(), 4);
        assert!((out[0] - 0.5).abs() < 1e-6);
        // Fuzzy AND = min of the normalized components.
        assert!((out[3] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn featurize_matches_extend_features() {
        let mut norm = Normalizer::new(3);
        norm.observe(&[8.0, 2.0, 4.0]);
        let eng = vec![EngineeredFeature {
            name: "x".into(),
            components: vec![0, 2],
        }];
        let f = Featurizer::new(norm.clone(), eng.clone());
        let raw = [4.0, 1.0, 3.0];
        let base = norm.normalize(&raw);
        let expected = crate::feature_engineering::extend_features(&base, &eng);
        assert_eq!(f.featurize(&raw), expected);
    }

    #[test]
    #[should_panic(expected = "output dim mismatch")]
    fn featurize_into_rejects_wrong_output_length() {
        let f = Featurizer::baseline(Normalizer::new(2));
        f.featurize_into(&[1.0, 2.0], &mut [0.0f32; 3]);
    }

    #[test]
    fn window_ipc_reads_the_counters() {
        let dim = evax_sim::HPC_BASE_DIM;
        let mut values = vec![0.0f64; dim];
        values[evax_sim::hpc_index("cycles").unwrap()] = 200.0;
        values[evax_sim::hpc_index("commit.CommittedInsts").unwrap()] = 100.0;
        let w = RawWindow {
            values: &values,
            instructions: 100,
            cycle: 200,
        };
        assert!((w.ipc() - 0.5).abs() < 1e-12);
    }

    fn energy_cfg() -> evax_sim::CpuConfig {
        evax_sim::CpuConfig {
            sensor: evax_sim::SensorConfig::builder()
                .energy(true)
                .build()
                .unwrap(),
            ..evax_sim::CpuConfig::default()
        }
    }

    #[test]
    fn new_infers_baseline_schema_at_baseline_width() {
        let f = Featurizer::baseline(Normalizer::new(evax_sim::HPC_BASE_DIM));
        assert_eq!(f.base_schema(), FeatureSchema::baseline());
        let f = Featurizer::baseline(Normalizer::new(7));
        assert_eq!(f.base_schema(), FeatureSchema::anonymous(7));
    }

    #[test]
    fn with_schema_appends_engineered_columns() {
        let cfg = energy_cfg();
        let schema = FeatureSchema::for_config(&cfg);
        let eng = vec![EngineeredFeature {
            name: "sec_x".into(),
            components: vec![0, 1],
        }];
        let f =
            Featurizer::with_schema(schema.clone(), Normalizer::new(schema.dim()), eng).unwrap();
        assert_eq!(f.base_dim(), schema.dim());
        assert_eq!(f.feature_dim(), schema.dim() + 1);
        assert_eq!(f.schema().name(schema.dim()), "sec_x");
        assert_eq!(f.schema().count(Modality::Energy), evax_sim::ENERGY_DIM);
        assert_eq!(f.base_schema(), schema);
    }

    #[test]
    fn with_schema_rejects_width_mismatch_with_config_error() {
        let err =
            Featurizer::with_schema(FeatureSchema::baseline(), Normalizer::new(7), Vec::new())
                .unwrap_err();
        match err {
            crate::error::EvaxError::Config { what, reason } => {
                assert_eq!(what, "featurizer");
                assert!(reason.contains("width"), "{reason}");
            }
            other => panic!("expected Config, got {other:?}"),
        }
    }

    #[test]
    fn with_schema_rejects_pre_engineered_base() {
        let base = FeatureSchema::baseline().with_engineered(["already"]);
        let err = Featurizer::with_schema(base.clone(), Normalizer::new(base.dim()), Vec::new())
            .unwrap_err();
        assert!(
            matches!(err, crate::error::EvaxError::Config { .. }),
            "{err}"
        );
    }

    #[test]
    fn check_config_negotiates_window_width() {
        let baseline = Featurizer::baseline(Normalizer::new(evax_sim::HPC_BASE_DIM));
        baseline
            .check_config(&evax_sim::CpuConfig::default())
            .unwrap();
        // An energy-enabled core produces wider windows: typed refusal.
        let err = baseline.check_config(&energy_cfg()).unwrap_err();
        match err {
            crate::error::EvaxError::Config { what, reason } => {
                assert_eq!(what, "featurizer");
                assert!(reason.contains("wide windows"), "{reason}");
            }
            other => panic!("expected Config, got {other:?}"),
        }
        // And an energy-fitted featurizer refuses a baseline core.
        let cfg = energy_cfg();
        let schema = FeatureSchema::for_config(&cfg);
        let wide =
            Featurizer::with_schema(schema.clone(), Normalizer::new(schema.dim()), Vec::new())
                .unwrap();
        wide.check_config(&cfg).unwrap();
        assert!(wide.check_config(&evax_sim::CpuConfig::default()).is_err());
        // Legacy anonymous featurizers are checked by width only.
        let legacy = Featurizer::baseline(Normalizer::new(schema.dim()));
        assert_eq!(legacy.base_schema(), FeatureSchema::anonymous(schema.dim()));
        legacy.check_config(&cfg).unwrap();
    }
}
