//! Evasive-corpus generation: analogs of the automated attack-discovery
//! tools the paper evaluates against (Fig. 17) plus the "manual evasive
//! attacks" built with malware-community techniques (§VII).
//!
//! * **Transynther** (Moghimi et al.): mutates Meltdown/MDS-family building
//!   blocks — here, parameter mutation over the fault/assist kernels.
//! * **TRRespass** (Frigo et al.): many-sided Rowhammer patterns — aggressor
//!   count/stride mutations.
//! * **Osiris** (Weber et al.): automated side-channel discovery from
//!   (reset, trigger, measure) primitive triples — here, randomly composed
//!   timing kernels.
//! * **Manual evasion**: decoy injection and bandwidth dilution applied to
//!   every standard kernel.

use evax_attacks::{build_attack, AttackClass, KernelParams};
use evax_sim::isa::{AluOp, Cond, Program, ProgramBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::collect::{collect_program, CollectConfig};
use crate::dataset::{Dataset, Normalizer};

/// The fuzzing tool analogs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuzzTool {
    /// Meltdown/MDS-family mutation (Transynther analog).
    Transynther,
    /// Many-sided Rowhammer mutation (TRRespass analog).
    TrRespass,
    /// Random primitive composition (Osiris analog).
    Osiris,
    /// Manual evasion: decoys + bandwidth dilution on standard kernels.
    ManualEvasion,
}

impl std::fmt::Display for FuzzTool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FuzzTool::Transynther => "transynther",
            FuzzTool::TrRespass => "trrespass",
            FuzzTool::Osiris => "osiris",
            FuzzTool::ManualEvasion => "manual-evasion",
        };
        f.write_str(s)
    }
}

/// All tools.
pub const FUZZ_TOOLS: [FuzzTool; 4] = [
    FuzzTool::Transynther,
    FuzzTool::TrRespass,
    FuzzTool::Osiris,
    FuzzTool::ManualEvasion,
];

/// Generates `n_programs` evasive attack programs for a tool. Each is
/// returned with its ground-truth class label.
pub fn generate_programs(
    tool: FuzzTool,
    n_programs: usize,
    seed: u64,
) -> Vec<(Program, AttackClass)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF022);
    let mut out = Vec::with_capacity(n_programs);
    for _ in 0..n_programs {
        let entry = match tool {
            FuzzTool::Transynther => {
                let classes = [
                    AttackClass::Meltdown,
                    AttackClass::MedusaCacheIndexing,
                    AttackClass::MedusaUnalignedStl,
                    AttackClass::MedusaShadowRepMov,
                    AttackClass::Lvi,
                    AttackClass::Fallout,
                ];
                let class = classes[rng.gen_range(0..classes.len())];
                // Aggressive dilution: heavy decoys and long idle stretches
                // between rounds shrink the per-window footprint — the
                // bandwidth-evasion strategy that defeats per-window
                // detectors.
                let mut params = mutated_params(&mut rng, 2);
                params.decoy_ops = rng.gen_range(24..96);
                params.delay_ops = rng.gen_range(64..256);
                params.iterations = rng.gen_range(64..256);
                (build_attack(class, &params, &mut rng), class)
            }
            FuzzTool::TrRespass => {
                let params = KernelParams {
                    probe_lines: rng.gen_range(2..16), // many-sided hammering
                    iterations: rng.gen_range(64..256),
                    decoy_ops: rng.gen_range(16..64),
                    delay_ops: rng.gen_range(32..192),
                    seed: rng.gen(),
                    ..Default::default()
                };
                (
                    build_attack(AttackClass::Rowhammer, &params, &mut rng),
                    AttackClass::Rowhammer,
                )
            }
            FuzzTool::Osiris => {
                let class = osiris_class(&mut rng);
                (osiris_program(&mut rng), class)
            }
            FuzzTool::ManualEvasion => {
                let class = evax_attacks::ATTACK_CLASSES
                    [rng.gen_range(0..evax_attacks::ATTACK_CLASSES.len())];
                let params = KernelParams {
                    decoy_ops: rng.gen_range(32..96),
                    delay_ops: rng.gen_range(96..320),
                    iterations: rng.gen_range(32..128), // low bandwidth
                    seed: rng.gen(),
                    ..Default::default()
                };
                (build_attack(class, &params, &mut rng), class)
            }
        };
        out.push(entry);
    }
    out
}

fn mutated_params(rng: &mut StdRng, steps: usize) -> KernelParams {
    let mut p = KernelParams {
        seed: rng.gen(),
        ..Default::default()
    };
    for _ in 0..steps {
        p = p.mutate(rng);
    }
    p
}

/// Osiris emits timing kernels without knowing their class; for ground
/// truth we label by the primitive family it composed.
fn osiris_class(rng: &mut StdRng) -> AttackClass {
    match rng.gen_range(0..3) {
        0 => AttackClass::FlushReload,
        1 => AttackClass::RdRand,
        _ => AttackClass::PrimeProbe,
    }
}

/// Composes a random (reset, trigger, measure) side-channel kernel — the
/// Osiris search step. The composition is random but always ends in a timed
/// measurement, so every emitted program is a working timing channel.
fn osiris_program(rng: &mut StdRng) -> Program {
    use evax_attacks::common::{layout, regs};
    let (a, v, t1, t2) = (
        regs::attack(0),
        regs::attack(1),
        regs::attack(2),
        regs::attack(3),
    );
    let mut b = ProgramBuilder::new("osiris-generated");
    let target = layout::PROBE + rng.gen_range(0..32u64) * 64;
    b.li(a, target);
    let reset = rng.gen_range(0..3);
    let trigger = rng.gen_range(0..3);
    let iters = rng.gen_range(16..64u64);
    let ctr = regs::attack(7);
    let limit = regs::attack(8);
    b.li(ctr, 0);
    b.li(limit, iters);
    let top = b.label();
    // Reset primitive.
    match reset {
        0 => {
            b.flush(a, 0);
        }
        1 => {
            // Eviction-based reset.
            for w in 0..9i64 {
                b.load(v, a, w * 64 * 128);
            }
        }
        _ => {
            b.prefetch(a, 0);
            b.flush(a, 0);
        }
    }
    // Trigger primitive.
    match trigger {
        0 => {
            b.load(v, a, 0);
        }
        1 => {
            b.rdrand(v);
            b.rdrand(v);
        }
        _ => {
            b.store(v, a, 0);
        }
    }
    // Measure primitive (always timed).
    b.rdcycle(t1);
    match rng.gen_range(0..2) {
        0 => {
            b.load(v, a, 0);
        }
        _ => {
            b.rdrand(v);
        }
    }
    b.rdcycle(t2);
    b.alu(AluOp::Sub, t2, t2, t1);
    // Dilution: benign-looking filler between measurement rounds.
    let filler = rng.gen_range(8..64);
    let d = regs::decoy(4);
    for k in 0..filler {
        if k % 3 == 0 {
            b.load(v, a, 8);
        } else {
            b.alu_imm(AluOp::Add, d, d, 1);
        }
    }
    b.alu_imm(AluOp::Add, ctr, ctr, 1);
    b.branch(Cond::Lt, ctr, limit, top);
    b.halt();
    b.build()
}

/// Runs an evasive corpus through the simulator, producing a labeled
/// dataset of `n_programs` per tool under an existing normalizer.
///
/// Program *generation* is cheap and stays serial (it fixes the work list in
/// canonical tool/program order); the simulation of each program fans out
/// across `collect_cfg.parallelism` workers and merges back in that order,
/// so the corpus is bit-identical at any thread count.
pub fn collect_corpus(
    tools: &[FuzzTool],
    n_programs_per_tool: usize,
    collect_cfg: &CollectConfig,
    norm: &Normalizer,
    seed: u64,
) -> Dataset {
    let mut programs: Vec<(Program, AttackClass)> = Vec::new();
    for (ti, &tool) in tools.iter().enumerate() {
        programs.extend(generate_programs(
            tool,
            n_programs_per_tool,
            seed.wrapping_add(ti as u64 * 7919),
        ));
    }
    let per_program = crate::par::map(collect_cfg.parallelism, &programs, |(program, class)| {
        collect_program(program, class.label(), collect_cfg, norm)
    });
    let mut ds = Dataset::new();
    for s in per_program.into_iter().flatten() {
        ds.push(s);
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use evax_sim::{Cpu, CpuConfig};

    #[test]
    fn every_tool_generates_runnable_programs() {
        for tool in FUZZ_TOOLS {
            for (program, _class) in generate_programs(tool, 3, 11) {
                let mut cpu = Cpu::new(CpuConfig::default());
                cpu.memory_mut()
                    .write_u64(evax_attacks::mds::KERNEL_SECRET_ADDR, 5);
                let res = cpu.run(&program, 300_000);
                assert!(res.halted, "{tool}: {} did not halt", program.name());
            }
        }
    }

    #[test]
    fn mutation_produces_varied_programs() {
        let a = generate_programs(FuzzTool::Transynther, 8, 1);
        let lengths: std::collections::HashSet<usize> = a.iter().map(|(p, _)| p.len()).collect();
        assert!(lengths.len() > 2, "mutations should vary program shape");
    }

    #[test]
    fn osiris_programs_always_measure() {
        for (program, _) in generate_programs(FuzzTool::Osiris, 10, 3) {
            let has_timer = program
                .instructions()
                .iter()
                .any(|op| matches!(op, evax_sim::isa::Op::RdCycle { .. }));
            assert!(has_timer, "osiris kernels must time something");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_programs(FuzzTool::ManualEvasion, 4, 9);
        let b = generate_programs(FuzzTool::ManualEvasion, 4, 9);
        assert_eq!(
            a.iter().map(|(p, _)| p.len()).collect::<Vec<_>>(),
            b.iter().map(|(p, _)| p.len()).collect::<Vec<_>>()
        );
    }
}
