//! The AM-GAN: EVAX's asymmetric conditional GAN (paper §V, Figs. 3–5).
//!
//! The Generator is a deep network; the Discriminator has the architecture
//! of the deployed hardware detector (a single-layer perceptron) — the
//! asymmetry the paper names "AM-GAN". Training follows Fig. 4's algorithm;
//! sample collection for vaccination is gated by the Gram-matrix style loss
//! (`L_GM ≈ 0.1`, §V-D).

use evax_nn::{Activation, Adam, CondGan, GanConfig, Matrix, Network};
use evax_obs::MetricsSink;
use rand::Rng;

use crate::dataset::{Dataset, Sample, N_CLASSES};
use crate::gram::sample_style_loss;

/// AM-GAN training configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AmGanConfig {
    /// Noise-vector width (the paper uses `RandomNoise(145)`).
    pub noise_dim: usize,
    /// Hidden width of the deep Generator.
    pub hidden_width: usize,
    /// Hidden layers in the Generator (the asymmetry: ≥2 vs. the
    /// discriminator's 0).
    pub generator_hidden: usize,
    /// Training epochs (full passes over the dataset).
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Adam learning rate (β1 = 0.5 per GAN practice).
    pub lr: f32,
    /// Style-loss gate: generated samples are collected once the per-class
    /// `L_GM` falls below this (paper: 0.1 ± 0.006).
    pub style_gate: f32,
}

impl Default for AmGanConfig {
    fn default() -> Self {
        AmGanConfig {
            noise_dim: 145,
            hidden_width: 128,
            generator_hidden: 3,
            epochs: 30,
            batch: 64,
            lr: 2e-3,
            style_gate: 0.1,
        }
    }
}

impl AmGanConfig {
    /// A fast configuration for tests and laptop-scale experiments.
    pub fn small() -> Self {
        AmGanConfig {
            hidden_width: 64,
            generator_hidden: 2,
            epochs: 10,
            batch: 32,
            ..Default::default()
        }
    }
}

/// Loss in integer milli-units for deterministic histogram export (the NN
/// substrate is bit-exact, so the quantized value is too).
fn loss_milli(loss: f32) -> u64 {
    (loss.max(0.0) * 1000.0) as u64
}

/// Canonical security-relevant feature subset used for the style loss
/// (the "low-level microarchitectural states required for successful
/// construction of a channel", §V-D).
pub fn style_feature_indices() -> Vec<usize> {
    [
        "iew.ExecSquashedInsts",
        "lsq.squashedLoads",
        "lsq.forwLoads",
        "spec.InstsAdded",
        "dcache.ReadReq_misses",
        "dcache.flushes",
        "bp.condIncorrect",
        "faults.deferredWithData",
    ]
    .iter()
    .filter_map(|n| evax_sim::hpc_index(n))
    .collect()
}

/// One epoch's training telemetry (drives the paper's Fig. 7 curve).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Epoch index.
    pub epoch: usize,
    /// Mean discriminator loss.
    pub d_loss: f32,
    /// Mean generator loss.
    pub g_loss: f32,
    /// Mean attack style loss over sampled attack classes.
    pub style_loss: f32,
}

/// The trained AM-GAN with its telemetry.
#[derive(Debug, Clone)]
pub struct AmGan {
    gan: CondGan,
    cfg: AmGanConfig,
    history: Vec<EpochStats>,
}

impl AmGan {
    /// Trains the AM-GAN on a labeled dataset per Fig. 4's algorithm.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn train<R: Rng>(dataset: &Dataset, cfg: &AmGanConfig, rng: &mut R) -> AmGan {
        AmGan::train_with_metrics(dataset, cfg, rng, &MetricsSink::default())
    }

    /// [`train`](Self::train) with observability: records `gan.epochs` /
    /// `gan.steps` counters, milli-unit loss histograms (`gan.d_loss_milli`,
    /// `gan.g_loss_milli`, `gan.style_loss_milli` — deterministic, since the
    /// NN substrate is bit-exact) and a `gan.epoch_wall_ns` round timer.
    /// Recording never touches `rng`, so the trained GAN is bit-identical
    /// to [`train`](Self::train)'s.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn train_with_metrics<R: Rng>(
        dataset: &Dataset,
        cfg: &AmGanConfig,
        rng: &mut R,
        metrics: &MetricsSink,
    ) -> AmGan {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        let feature_dim = dataset.feature_dim();
        let gan_cfg = GanConfig {
            noise_dim: cfg.noise_dim,
            n_classes: N_CLASSES,
            feature_dim,
            mismatch_prob: 0.25,
        };
        let generator = Network::mlp(
            cfg.noise_dim + N_CLASSES,
            cfg.hidden_width,
            cfg.generator_hidden,
            feature_dim,
            Activation::LeakyRelu,
            Activation::Sigmoid,
            rng,
        );
        // Detector-shaped discriminator: a single layer (perceptron).
        let discriminator = Network::mlp(
            feature_dim + N_CLASSES,
            0,
            0,
            1,
            Activation::Identity,
            Activation::Sigmoid,
            rng,
        );
        let mut gan = CondGan::new(gan_cfg, generator, discriminator);
        let mut g_opt = Adam::with_betas(cfg.lr, 0.5, 0.999);
        let mut d_opt = Adam::with_betas(cfg.lr, 0.5, 0.999);

        // Style features live in the full HPC space; for reduced feature
        // spaces (tests, ablations) fall back to the leading features.
        let mut style_idx: Vec<usize> = style_feature_indices()
            .into_iter()
            .filter(|&i| i < feature_dim)
            .collect();
        if style_idx.is_empty() {
            style_idx = (0..feature_dim.min(8)).collect();
        }
        let mut history = Vec::with_capacity(cfg.epochs);
        let steps = (dataset.len() / cfg.batch).max(1);
        // GAN training oscillates and can collapse late; the paper collects
        // samples when the style loss is small, which amounts to keeping the
        // best checkpoint rather than the final state.
        let mut best = gan.clone();
        let mut best_style = f32::INFINITY;
        let epoch_counter = metrics.counter("gan.epochs");
        let step_counter = metrics.counter("gan.steps");
        let d_hist = metrics.histogram("gan.d_loss_milli");
        let g_hist = metrics.histogram("gan.g_loss_milli");
        let style_hist = metrics.histogram("gan.style_loss_milli");
        for epoch in 0..cfg.epochs {
            let round = metrics.span("gan.epoch_wall_ns");
            let mut d_sum = 0.0;
            let mut g_sum = 0.0;
            for _ in 0..steps {
                let idx = dataset.batch_indices(cfg.batch, rng);
                let rows: Vec<Vec<f32>> = idx
                    .iter()
                    .map(|&i| dataset.samples[i].features.clone())
                    .collect();
                let labels: Vec<usize> = idx.iter().map(|&i| dataset.samples[i].class).collect();
                let x = Matrix::from_rows(&rows);
                let stats = gan.train_step(&x, &labels, rng, &mut g_opt, &mut d_opt);
                d_sum += stats.d_loss;
                g_sum += stats.g_loss;
                step_counter.inc();
            }
            let am = AmGan {
                gan: gan.clone(),
                cfg: cfg.clone(),
                history: Vec::new(),
            };
            let style = am.mean_style_loss(dataset, &style_idx, rng);
            if style < best_style {
                best_style = style;
                best = gan.clone();
            }
            epoch_counter.inc();
            d_hist.observe(loss_milli(d_sum / steps as f32));
            g_hist.observe(loss_milli(g_sum / steps as f32));
            if style.is_finite() {
                style_hist.observe(loss_milli(style));
            }
            drop(round);
            history.push(EpochStats {
                epoch,
                d_loss: d_sum / steps as f32,
                g_loss: g_sum / steps as f32,
                style_loss: style,
            });
        }
        AmGan {
            gan: best,
            cfg: cfg.clone(),
            history,
        }
    }

    /// Per-epoch telemetry (Fig. 7's style-loss-vs-iteration series).
    pub fn history(&self) -> &[EpochStats] {
        &self.history
    }

    /// Borrow the trained generator (mined by feature engineering).
    pub fn generator(&self) -> &Network {
        self.gan.generator()
    }

    /// Borrow the underlying conditional GAN.
    pub fn gan(&self) -> &CondGan {
        &self.gan
    }

    /// `true` once the style loss has converged under the gate — the
    /// paper's criterion for starting sample collection.
    pub fn style_converged(&self) -> bool {
        self.history
            .last()
            .map(|h| h.style_loss <= self.cfg.style_gate)
            .unwrap_or(false)
    }

    /// Mean style loss of generated samples against real samples, over the
    /// attack classes present in `dataset`.
    pub fn mean_style_loss<R: Rng>(
        &self,
        dataset: &Dataset,
        style_idx: &[usize],
        rng: &mut R,
    ) -> f32 {
        let mut total = 0.0f32;
        let mut n = 0usize;
        for class in 1..N_CLASSES {
            let real: Vec<Sample> = dataset.of_class(class).take(32).cloned().collect();
            if real.len() < 4 {
                continue;
            }
            let generated = self.generate_samples(class, real.len(), rng);
            total += sample_style_loss(&real, &generated, style_idx);
            n += 1;
        }
        if n == 0 {
            f32::INFINITY
        } else {
            total / n as f32
        }
    }

    /// Generates `n` samples of the given class (Fig. 4,
    /// `AutomaticAttackGeneration(c', t')`).
    pub fn generate_samples<R: Rng>(&self, class: usize, n: usize, rng: &mut R) -> Vec<Sample> {
        let labels = vec![class; n];
        let m = self.gan.generate(&labels, rng);
        (0..n)
            .map(|i| Sample::new(m.row(i).to_vec(), class))
            .collect()
    }

    /// Generates `n` *vetted* samples: over-generates by 3x and keeps the
    /// candidates the Discriminator scores most realistic — the paper's
    /// "generated examples which consistently fool the Discriminator are
    /// used to train our EVAX" (§V-C).
    pub fn generate_vetted<R: Rng>(&self, class: usize, n: usize, rng: &mut R) -> Vec<Sample> {
        if n == 0 {
            return Vec::new();
        }
        let pool = 3 * n;
        let labels = vec![class; pool];
        let m = self.gan.generate(&labels, rng);
        let scores = self.gan.discriminate(&m, &labels);
        let mut ranked: Vec<(f32, usize)> = (0..pool).map(|i| (scores.get(i, 0), i)).collect();
        ranked.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        ranked[..n]
            .iter()
            .map(|&(_, i)| Sample::new(m.row(i).to_vec(), class))
            .collect()
    }

    /// Generates `n` *anchored* samples of a class: vetted Generator output
    /// blended with a random real sample of the same class. At the paper's
    /// corpus scale the Generator's class-conditional fidelity is high
    /// enough to sample directly; at laptop scale, anchoring keeps the
    /// samples on the class manifold while injecting the Generator's
    /// variation (see DESIGN.md, *Known deviations*).
    pub fn generate_anchored<R: Rng>(
        &self,
        dataset: &Dataset,
        class: usize,
        n: usize,
        rng: &mut R,
    ) -> Vec<Sample> {
        let real: Vec<&Sample> = dataset.of_class(class).collect();
        if real.is_empty() {
            return Vec::new();
        }
        self.generate_vetted(class, n, rng)
            .into_iter()
            .map(|mut s| {
                let anchor = real[rng.gen_range(0..real.len())];
                let alpha = rng.gen_range(0.5f32..0.8);
                for (v, &r) in s.features.iter_mut().zip(&anchor.features) {
                    *v = alpha * r + (1.0 - alpha) * *v;
                }
                s
            })
            .collect()
    }

    /// Builds the augmented training set: the original data plus
    /// `per_attack_class` generated samples per attack class and
    /// `benign_extra` generated benign samples (paper: 257,066 attack +
    /// 70,000 benign per fold, scaled here).
    ///
    /// Two quality gates apply, both from the paper: candidates must fool
    /// the Discriminator (§V-C) and must be *semantically consistent* with
    /// their label (§V-D verifies generated samples before collection) —
    /// here, closer to their own class's centroid than to the benign
    /// centroid. A generated "attack" inside the benign manifold is label
    /// noise that would push the decision boundary into benign territory
    /// and inflate false positives.
    pub fn augment<R: Rng>(
        &self,
        dataset: &Dataset,
        per_attack_class: usize,
        benign_extra: usize,
        rng: &mut R,
    ) -> Dataset {
        let centroids = class_centroids(dataset);
        let benign_centroid = centroids[crate::dataset::BENIGN_CLASS].clone();
        let mut out = dataset.clone();
        #[allow(clippy::needless_range_loop)] // class indexes both dataset and centroids
        for class in 1..N_CLASSES {
            // Only vaccinate classes the dataset actually contains — in a
            // leave-one-out fold the excluded class must stay excluded.
            let real = dataset.of_class(class).count();
            if real == 0 {
                continue;
            }
            // Generated samples never outnumber real ones by more than 2x:
            // an under-trained Generator must not be able to drown the seen
            // distribution (the paper collects only after the style loss
            // converges; this cap is the safety net at small scale).
            let n = per_attack_class.min(real * 2);
            let own = &centroids[class];
            let vetted = self
                .generate_anchored(dataset, class, 2 * n, rng)
                .into_iter()
                .filter(|s| {
                    benign_centroid.is_empty()
                        || dist(&s.features, own) < dist(&s.features, &benign_centroid)
                })
                .take(n);
            for s in vetted {
                out.push(s);
            }
        }
        let n_benign = benign_extra.min(dataset.n_benign() * 2);
        for s in self.generate_anchored(dataset, crate::dataset::BENIGN_CLASS, n_benign, rng) {
            out.push(s);
        }
        // Virtual-adversarial hardening (paper §I, Fig. 2; it cites Miyato
        // et al.'s virtual adversarial training): interpolate vetted attack
        // samples *toward* the benign centroid — the worst adversarial
        // direction — while staying closer to their own class. Retraining on
        // these pushes the decision boundary out along the evasion path, so
        // crossing it costs more transient-window budget than the attack
        // can spend.
        #[allow(clippy::needless_range_loop)] // class indexes both dataset and centroids
        for class in 1..N_CLASSES {
            let real = dataset.of_class(class).count();
            if real == 0 || benign_centroid.is_empty() {
                continue;
            }
            let n = per_attack_class.min(real);
            let own = &centroids[class];
            for mut s in self.generate_anchored(dataset, class, n, rng) {
                // Sweep the dilution continuum; the centroid gate below
                // still rejects anything that lands on the benign side.
                let lambda = rng.gen_range(0.2f32..0.7);
                for (v, &b) in s.features.iter_mut().zip(benign_centroid.iter()) {
                    *v += lambda * (b - *v);
                }
                if dist(&s.features, own) < dist(&s.features, &benign_centroid) {
                    out.push(s);
                }
            }
        }
        out
    }
}

/// Per-class feature centroids of the real dataset (empty vec for absent
/// classes).
fn class_centroids(dataset: &Dataset) -> Vec<Vec<f32>> {
    let dim = dataset.feature_dim();
    let mut sums = vec![vec![0.0f64; dim]; N_CLASSES];
    let mut counts = vec![0usize; N_CLASSES];
    for s in &dataset.samples {
        counts[s.class] += 1;
        for (acc, &v) in sums[s.class].iter_mut().zip(&s.features) {
            *acc += v as f64;
        }
    }
    sums.into_iter()
        .zip(counts)
        .map(|(sum, n)| {
            if n == 0 {
                Vec::new()
            } else {
                sum.into_iter().map(|v| (v / n as f64) as f32).collect()
            }
        })
        .collect()
}

fn dist(a: &[f32], b: &[f32]) -> f32 {
    if b.is_empty() {
        return f32::INFINITY;
    }
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// A synthetic dataset with well-separated class distributions.
    fn toy_dataset(rng: &mut impl Rng, dim: usize, per_class: usize) -> Dataset {
        let mut ds = Dataset::new();
        for class in [0usize, 1, 5] {
            for _ in 0..per_class {
                let base = class as f32 * 0.3 + 0.1;
                let features = (0..dim)
                    .map(|f| {
                        let bias = if f % (class + 1) == 0 { base } else { 0.05 };
                        (bias + rng.gen_range(-0.03f32..0.03)).clamp(0.0, 1.0)
                    })
                    .collect();
                ds.push(Sample::new(features, class));
            }
        }
        ds
    }

    fn tiny_cfg() -> AmGanConfig {
        AmGanConfig {
            noise_dim: 16,
            hidden_width: 32,
            generator_hidden: 2,
            epochs: 6,
            batch: 16,
            lr: 3e-3,
            style_gate: 0.5,
        }
    }

    #[test]
    fn trains_and_generates_labeled_samples() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let ds = toy_dataset(&mut rng, 12, 64);
        let gan = AmGan::train(&ds, &tiny_cfg(), &mut rng);
        assert_eq!(gan.history().len(), 6);
        let gen = gan.generate_samples(1, 10, &mut rng);
        assert_eq!(gen.len(), 10);
        assert!(gen.iter().all(|s| s.class == 1 && s.malicious));
        assert!(gen
            .iter()
            .all(|s| s.features.iter().all(|&v| (0.0..=1.0).contains(&v))));
    }

    #[test]
    fn augment_respects_excluded_class() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut ds = toy_dataset(&mut rng, 12, 48);
        let gan = AmGan::train(&ds, &tiny_cfg(), &mut rng);
        ds.remove_class(5);
        let aug = gan.augment(&ds, 20, 10, &mut rng);
        assert_eq!(aug.of_class(5).count(), 0, "held-out class must stay out");
        assert!(aug.of_class(1).count() > ds.of_class(1).count());
        assert!(aug.n_benign() > ds.n_benign());
    }

    #[test]
    fn style_loss_decreases_over_training() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let ds = toy_dataset(&mut rng, 12, 64);
        let mut cfg = tiny_cfg();
        cfg.epochs = 12;
        let gan = AmGan::train(&ds, &cfg, &mut rng);
        let h = gan.history();
        let early: f32 = h[..3].iter().map(|e| e.style_loss).sum::<f32>() / 3.0;
        let late: f32 = h[h.len() - 3..].iter().map(|e| e.style_loss).sum::<f32>() / 3.0;
        assert!(
            late < early,
            "style loss should fall with training: early={early} late={late}"
        );
    }

    #[test]
    fn style_indices_resolve() {
        let idx = style_feature_indices();
        assert!(idx.len() >= 6, "style features must exist in the HPC space");
    }
}
