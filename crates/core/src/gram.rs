//! The Gram-matrix *attack style loss* (paper §V-D).
//!
//! "To numerically measure how often two feature maps are present together,
//! we multiply the values of two vectors in each position and sum the
//! results" — the Gram matrix over feature time-series; the style loss
//! between a base attack B and a generated attack G is
//! `L_GM(B, G) = 1/(4·α·N²) · Σ_ij (GM(B)_ij − GM(G)_ij)²`.

/// Computes the `N x N` Gram matrix of `N` feature time-series, each of
/// length `T`: `GM_ij = Σ_t f_i(t)·f_j(t)`, normalized by `T` so series
/// length does not dominate.
///
/// `series` is indexed `[feature][time]`.
///
/// # Panics
/// Panics if series lengths differ or `series` is empty.
pub fn gram_matrix(series: &[Vec<f32>]) -> Vec<Vec<f32>> {
    assert!(!series.is_empty(), "gram matrix needs at least one series");
    let t = series[0].len();
    assert!(
        series.iter().all(|s| s.len() == t),
        "series length mismatch"
    );
    let n = series.len();
    let mut gm = vec![vec![0.0f32; n]; n];
    let norm = t.max(1) as f32;
    for i in 0..n {
        for j in i..n {
            let dot: f32 = series[i]
                .iter()
                .zip(series[j].iter())
                .map(|(a, b)| a * b)
                .sum();
            gm[i][j] = dot / norm;
            gm[j][i] = dot / norm;
        }
    }
    gm
}

/// Extracts per-feature time-series from a set of consecutive samples
/// restricted to `feature_indices`, ready for [`gram_matrix`].
pub fn series_of(samples: &[crate::dataset::Sample], feature_indices: &[usize]) -> Vec<Vec<f32>> {
    feature_indices
        .iter()
        .map(|&f| samples.iter().map(|s| s.features[f]).collect())
        .collect()
}

/// The attack style loss `L_GM(B, G)` between two Gram matrices
/// (α is the paper's scaling constant; we use α = 1).
///
/// # Panics
/// Panics if the matrices have different shapes.
pub fn style_loss(gm_base: &[Vec<f32>], gm_gen: &[Vec<f32>]) -> f32 {
    let n = gm_base.len();
    assert_eq!(n, gm_gen.len(), "gram matrix size mismatch");
    let mut sum = 0.0f32;
    for (row_b, row_g) in gm_base.iter().zip(gm_gen.iter()) {
        assert_eq!(row_b.len(), n, "gram matrix not square");
        assert_eq!(row_g.len(), n, "gram matrix not square");
        for (b, g) in row_b.iter().zip(row_g.iter()) {
            let d = b - g;
            sum += d * d;
        }
    }
    sum / (4.0 * n as f32 * n as f32)
}

/// Scale-invariant style loss: both Gram matrices are normalized to unit
/// Frobenius norm before comparison, so only the *correlation structure*
/// matters — "even though the values of the features may be very different,
/// the Gram matrix ... is similar" (paper Fig. 6). Use this to compare
/// attacks whose counter magnitudes differ wildly.
///
/// # Panics
/// Panics if the matrices have different shapes.
pub fn style_loss_normalized(gm_base: &[Vec<f32>], gm_gen: &[Vec<f32>]) -> f32 {
    fn unit(gm: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let norm = gm
            .iter()
            .flatten()
            .map(|v| v * v)
            .sum::<f32>()
            .sqrt()
            .max(1e-9);
        gm.iter()
            .map(|row| row.iter().map(|v| v / norm).collect())
            .collect()
    }
    style_loss(&unit(gm_base), &unit(gm_gen))
}

/// Convenience: style loss between two sets of samples over the given
/// features.
pub fn sample_style_loss(
    base: &[crate::dataset::Sample],
    generated: &[crate::dataset::Sample],
    feature_indices: &[usize],
) -> f32 {
    let gb = gram_matrix(&series_of(base, feature_indices));
    let gg = gram_matrix(&series_of(generated, feature_indices));
    style_loss(&gb, &gg)
}

/// Renders a Gram matrix as a text heat map (the paper's Fig. 6
/// visualization: "the darker color represents larger values").
pub fn render_gram(gm: &[Vec<f32>], labels: &[&str]) -> String {
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '@'];
    let max = gm
        .iter()
        .flatten()
        .fold(0.0f32, |m, &v| m.max(v.abs()))
        .max(1e-9);
    let mut out = String::new();
    for (i, row) in gm.iter().enumerate() {
        let label = labels.get(i).copied().unwrap_or("?");
        out.push_str(&format!("{label:>28} |"));
        for &v in row {
            let level = ((v.abs() / max) * (shades.len() - 1) as f32).round() as usize;
            let ch = shades[level.min(shades.len() - 1)];
            out.push(' ');
            out.push(ch);
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Sample;

    #[test]
    fn gram_of_identical_series_is_symmetric() {
        let s = vec![vec![1.0, 2.0, 3.0], vec![0.5, 0.5, 0.5]];
        let gm = gram_matrix(&s);
        assert_eq!(gm[0][1], gm[1][0]);
        assert!((gm[0][0] - (1.0 + 4.0 + 9.0) / 3.0).abs() < 1e-6);
    }

    #[test]
    fn correlated_features_have_large_entries() {
        // f0 and f1 fire together; f2 fires alone.
        let s = vec![
            vec![1.0, 0.0, 1.0, 0.0],
            vec![1.0, 0.0, 1.0, 0.0],
            vec![0.0, 1.0, 0.0, 1.0],
        ];
        let gm = gram_matrix(&s);
        assert!(gm[0][1] > gm[0][2], "co-firing pair must correlate more");
        assert_eq!(gm[0][2], 0.0);
    }

    #[test]
    fn style_loss_zero_for_same_style() {
        let s = vec![vec![0.2, 0.8, 0.4], vec![0.1, 0.9, 0.3]];
        let gm = gram_matrix(&s);
        assert_eq!(style_loss(&gm, &gm), 0.0);
    }

    #[test]
    fn style_loss_discriminates_attack_styles() {
        // "Attacks (B) and (C), similar in type, have similar Gram matrices"
        // even when feature values differ (Fig. 6).
        let base = vec![vec![1.0, 0.0, 1.0, 0.0], vec![1.0, 0.0, 1.0, 0.0]];
        let same_style = vec![vec![0.8, 0.0, 0.8, 0.0], vec![0.9, 0.0, 0.9, 0.0]];
        let diff_style = vec![vec![1.0, 0.0, 1.0, 0.0], vec![0.0, 1.0, 0.0, 1.0]];
        let gb = gram_matrix(&base);
        let gs = gram_matrix(&same_style);
        let gd = gram_matrix(&diff_style);
        assert!(
            style_loss(&gb, &gs) < style_loss(&gb, &gd),
            "same-type attacks must be closer in style"
        );
    }

    #[test]
    fn normalized_style_loss_ignores_magnitude() {
        // Same structure at 100x different magnitude: raw loss is large
        // relative to the normalized one, which is ~zero.
        let base = vec![vec![1.0, 0.0, 1.0, 0.0], vec![1.0, 0.0, 1.0, 0.0]];
        let scaled = vec![vec![0.01, 0.0, 0.01, 0.0], vec![0.01, 0.0, 0.01, 0.0]];
        let gb = gram_matrix(&base);
        let gs = gram_matrix(&scaled);
        assert!(style_loss(&gb, &gs) > 0.01);
        assert!(style_loss_normalized(&gb, &gs) < 1e-6);
        // Different structure stays distinguishable after normalization.
        let diff = vec![vec![1.0, 0.0, 1.0, 0.0], vec![0.0, 1.0, 0.0, 1.0]];
        let gd = gram_matrix(&diff);
        assert!(style_loss_normalized(&gb, &gd) > style_loss_normalized(&gb, &gs));
    }

    #[test]
    fn sample_series_extraction() {
        let samples = vec![
            Sample::new(vec![0.1, 0.2, 0.3], 1),
            Sample::new(vec![0.4, 0.5, 0.6], 1),
        ];
        let series = series_of(&samples, &[0, 2]);
        assert_eq!(series[0], vec![0.1, 0.4]);
        assert_eq!(series[1], vec![0.3, 0.6]);
    }

    #[test]
    fn render_is_nonempty_and_sized() {
        let gm = gram_matrix(&[vec![1.0, 0.0], vec![0.5, 0.5]]);
        let out = render_gram(&gm, &["a", "b"]);
        assert_eq!(out.lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "series length mismatch")]
    fn ragged_series_rejected() {
        let _ = gram_matrix(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
