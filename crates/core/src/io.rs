//! Dataset and model persistence: CSV for datasets (interoperable with any
//! external ML tooling), exact text formats for normalizers and
//! [`Featurizer`]s, and a bundled model format carrying the detector *and*
//! its featurizer in one artifact.
//!
//! The CSV layout is one row per sample: `class,<f0>,<f1>,...` with a header
//! row naming the HPCs, so a dataset exported here drops straight into
//! pandas/scikit-learn for anyone who wants to try their own detector on
//! the simulator's HPC streams.
//!
//! Floating-point state (normalizer maxima) is written with Rust's
//! shortest-round-trip formatting, so a load reproduces the exact `f64`
//! bits — deployment-time featurization is byte-identical to training-time.

use std::io::{BufRead, BufReader, Read, Write};

use crate::dataset::{Dataset, Normalizer, Sample, N_CLASSES};
use crate::detector::Detector;
use crate::feature_engineering::EngineeredFeature;
use crate::featurize::Featurizer;
use crate::patch::DetectorPatch;

/// Errors reading persisted datasets.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The content failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, reason } => write!(f, "parse error at line {line}: {reason}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes a dataset as CSV with a header naming each feature.
///
/// `feature_names` may be shorter than the feature dimension; missing names
/// are filled as `f<i>`.
///
/// # Errors
/// Propagates writer failures.
pub fn write_csv<W: Write>(ds: &Dataset, feature_names: &[&str], mut w: W) -> Result<(), IoError> {
    let dim = ds.feature_dim();
    write!(w, "class")?;
    for i in 0..dim {
        match feature_names.get(i) {
            Some(name) => write!(w, ",{name}")?,
            None => write!(w, ",f{i}")?,
        }
    }
    writeln!(w)?;
    for s in &ds.samples {
        write!(w, "{}", s.class)?;
        for &v in &s.features {
            write!(w, ",{v}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Reads a dataset from the CSV produced by [`write_csv`] (the header row is
/// required and skipped).
///
/// # Errors
/// Returns [`IoError::Parse`] with the offending line on malformed content.
pub fn read_csv<R: Read>(r: R) -> Result<Dataset, IoError> {
    let reader = BufReader::new(r);
    let mut ds = Dataset::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if idx == 0 {
            if !line.starts_with("class") {
                return Err(IoError::Parse {
                    line: 1,
                    reason: "missing 'class,...' header".into(),
                });
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let class: usize = fields
            .next()
            .ok_or_else(|| IoError::Parse {
                line: idx + 1,
                reason: "empty row".into(),
            })?
            .trim()
            .parse()
            .map_err(|e| IoError::Parse {
                line: idx + 1,
                reason: format!("bad class: {e}"),
            })?;
        if class >= N_CLASSES {
            return Err(IoError::Parse {
                line: idx + 1,
                reason: format!("class {class} out of range (< {N_CLASSES})"),
            });
        }
        let features: Result<Vec<f32>, IoError> = fields
            .map(|f| {
                f.trim().parse::<f32>().map_err(|e| IoError::Parse {
                    line: idx + 1,
                    reason: format!("bad feature '{f}': {e}"),
                })
            })
            .collect();
        let features = features?;
        if features.is_empty() {
            return Err(IoError::Parse {
                line: idx + 1,
                reason: "row has no features".into(),
            });
        }
        if ds.feature_dim() != 0 && features.len() != ds.feature_dim() {
            return Err(IoError::Parse {
                line: idx + 1,
                reason: format!(
                    "row has {} features, expected {}",
                    features.len(),
                    ds.feature_dim()
                ),
            });
        }
        ds.push(Sample::new(features, class));
    }
    Ok(ds)
}

/// Writes a normalizer's running maxima as one CSV row, with exact
/// (shortest-round-trip) `f64` formatting.
///
/// # Errors
/// Propagates writer failures.
pub fn write_normalizer<W: Write>(norm: &Normalizer, mut w: W) -> Result<(), IoError> {
    for (i, &m) in norm.maxima().iter().enumerate() {
        if i > 0 {
            write!(w, ",")?;
        }
        write!(w, "{m}")?;
    }
    writeln!(w)?;
    Ok(())
}

/// Reads a normalizer written by [`write_normalizer`].
///
/// # Errors
/// Returns [`IoError::Parse`] on malformed content.
pub fn read_normalizer<R: Read>(r: R) -> Result<Normalizer, IoError> {
    let mut reader = BufReader::new(r);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let maxes: Result<Vec<f64>, IoError> = line
        .trim()
        .split(',')
        .map(|f| {
            f.parse::<f64>().map_err(|e| IoError::Parse {
                line: 1,
                reason: format!("bad max '{f}': {e}"),
            })
        })
        .collect();
    let maxes = maxes?;
    let mut norm = Normalizer::new(maxes.len());
    norm.observe(&maxes);
    Ok(norm)
}

/// Magic first line of the featurizer text format.
const FEATURIZER_HEADER: &str = "evax-featurizer v1";
/// Magic first line of the bundled model format.
const MODEL_HEADER: &str = "evax-model v1";

/// Writes a [`Featurizer`] — the deployable window→feature transform — as a
/// small text document: header, dimensions, the normalizer maxima row, and
/// one `name|i,j,...` line per engineered security HPC.
///
/// # Errors
/// Propagates writer failures, or rejects a featurizer whose engineered
/// names contain the `|` / newline delimiters.
pub fn write_featurizer<W: Write>(f: &Featurizer, mut w: W) -> Result<(), IoError> {
    writeln!(w, "{FEATURIZER_HEADER}")?;
    writeln!(w, "{},{}", f.base_dim(), f.engineered().len())?;
    write_normalizer(f.normalizer(), &mut w)?;
    for e in f.engineered() {
        if e.name.contains('|') || e.name.contains('\n') {
            return Err(IoError::Parse {
                line: 0,
                reason: format!("engineered name {:?} contains a delimiter", e.name),
            });
        }
        write!(w, "{}|", e.name)?;
        for (i, c) in e.components.iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            write!(w, "{c}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Parses the featurizer block from an enumerated line stream (shared by
/// [`read_featurizer`] and [`read_model`]). Line numbers are 1-based.
fn parse_featurizer<'a, I>(lines: &mut I) -> Result<Featurizer, IoError>
where
    I: Iterator<Item = (usize, &'a str)>,
{
    let bad = |line: usize, reason: String| IoError::Parse { line, reason };
    let mut next = |what: &str| {
        lines
            .next()
            .ok_or_else(|| bad(0, format!("truncated featurizer: missing {what}")))
    };

    let (ln, header) = next("header")?;
    if header.trim() != FEATURIZER_HEADER {
        return Err(bad(ln, format!("expected '{FEATURIZER_HEADER}' header")));
    }
    let (ln, dims) = next("dimension row")?;
    let (base_dim, n_eng) = dims
        .trim()
        .split_once(',')
        .and_then(|(a, b)| Some((a.parse::<usize>().ok()?, b.parse::<usize>().ok()?)))
        .ok_or_else(|| bad(ln, format!("bad dimension row '{}'", dims.trim())))?;

    let (ln, maxima_row) = next("normalizer maxima")?;
    let maxima: Vec<f64> = maxima_row
        .trim()
        .split(',')
        .map(|f| {
            f.parse::<f64>()
                .map_err(|e| bad(ln, format!("bad max '{f}': {e}")))
        })
        .collect::<Result<_, _>>()?;
    if maxima.len() != base_dim {
        return Err(bad(
            ln,
            format!("{} maxima, header promised {base_dim}", maxima.len()),
        ));
    }

    let mut engineered = Vec::with_capacity(n_eng);
    for _ in 0..n_eng {
        let (ln, row) = next("engineered feature")?;
        let (name, comps) = row
            .trim_end()
            .split_once('|')
            .ok_or_else(|| bad(ln, format!("bad engineered row '{}'", row.trim_end())))?;
        let components: Vec<usize> = if comps.is_empty() {
            Vec::new()
        } else {
            comps
                .split(',')
                .map(|c| {
                    c.parse::<usize>()
                        .map_err(|e| bad(ln, format!("bad component '{c}': {e}")))
                })
                .collect::<Result<_, _>>()?
        };
        if let Some(&c) = components.iter().find(|&&c| c >= base_dim) {
            return Err(bad(
                ln,
                format!("component {c} out of range (< {base_dim})"),
            ));
        }
        engineered.push(EngineeredFeature {
            name: name.to_string(),
            components,
        });
    }
    Ok(Featurizer::new(Normalizer::from_maxima(maxima), engineered))
}

/// Reads a featurizer written by [`write_featurizer`]. The round trip is
/// exact: maxima are restored bit-for-bit, so deployment-time featurization
/// matches training-time byte-for-byte.
///
/// # Errors
/// Returns [`IoError::Parse`] on malformed content.
pub fn read_featurizer<R: Read>(mut r: R) -> Result<Featurizer, IoError> {
    let mut text = String::new();
    r.read_to_string(&mut text)?;
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
    parse_featurizer(&mut lines)
}

/// Writes a complete deployable model: the featurizer followed by the
/// vendor-patch encoding of the detector ([`DetectorPatch`], hex-armored).
/// One artifact carries the detector *and* the exact transform it was
/// trained on, so the two can never be deployed out of sync.
///
/// # Errors
/// Propagates writer failures.
pub fn write_model<W: Write>(
    detector: &Detector,
    featurizer: &Featurizer,
    revision: u32,
    mut w: W,
) -> Result<(), IoError> {
    writeln!(w, "{MODEL_HEADER}")?;
    write_featurizer(featurizer, &mut w)?;
    let blob = DetectorPatch::from_detector(detector, featurizer.base_dim(), revision).to_bytes();
    write!(w, "patch ")?;
    for b in blob {
        write!(w, "{b:02x}")?;
    }
    writeln!(w)?;
    Ok(())
}

/// A model loaded by [`read_model`]: detector, featurizer, and the patch
/// revision it shipped at.
#[derive(Debug, Clone)]
pub struct ModelBundle {
    /// The deployed detector, reconstructed from its patch encoding.
    pub detector: Detector,
    /// The window→feature transform the detector was trained on.
    pub featurizer: Featurizer,
    /// Patch revision of the bundled detector.
    pub revision: u32,
}

/// Reads a model written by [`write_model`], verifying the embedded patch
/// checksum and that the detector's base dimension matches the featurizer.
///
/// # Errors
/// Returns [`IoError::Parse`] on malformed content, checksum mismatch, or a
/// detector/featurizer dimension disagreement.
pub fn read_model<R: Read>(mut r: R) -> Result<ModelBundle, IoError> {
    let mut text = String::new();
    r.read_to_string(&mut text)?;
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
    let (ln, header) = lines.next().ok_or_else(|| IoError::Parse {
        line: 1,
        reason: "empty model file".into(),
    })?;
    if header.trim() != MODEL_HEADER {
        return Err(IoError::Parse {
            line: ln,
            reason: format!("expected '{MODEL_HEADER}' header"),
        });
    }
    let featurizer = parse_featurizer(&mut lines)?;
    let (ln, patch_row) = lines.next().ok_or_else(|| IoError::Parse {
        line: 0,
        reason: "truncated model: missing patch row".into(),
    })?;
    let hex = patch_row
        .strip_prefix("patch ")
        .ok_or_else(|| IoError::Parse {
            line: ln,
            reason: "expected 'patch <hex>' row".into(),
        })?
        .trim();
    if hex.len() % 2 != 0 {
        return Err(IoError::Parse {
            line: ln,
            reason: "odd-length hex payload".into(),
        });
    }
    let blob: Vec<u8> = (0..hex.len() / 2)
        .map(|i| {
            u8::from_str_radix(&hex[2 * i..2 * i + 2], 16).map_err(|e| IoError::Parse {
                line: ln,
                reason: format!("bad hex byte: {e}"),
            })
        })
        .collect::<Result<_, _>>()?;
    let patch = DetectorPatch::from_bytes(&blob).map_err(|e| IoError::Parse {
        line: ln,
        reason: format!("patch decode failed: {e}"),
    })?;
    let revision = patch.revision;
    let detector = patch
        .instantiate(featurizer.base_dim())
        .map_err(|e| IoError::Parse {
            line: ln,
            reason: format!("patch does not fit featurizer: {e}"),
        })?;
    Ok(ModelBundle {
        detector,
        featurizer,
        revision,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset() -> Dataset {
        let mut ds = Dataset::new();
        ds.push(Sample::new(vec![0.5, 0.25, 1.0], 0));
        ds.push(Sample::new(vec![0.1, 0.9, 0.0], 3));
        ds
    }

    #[test]
    fn csv_round_trip() {
        let ds = sample_dataset();
        let mut buf = Vec::new();
        write_csv(&ds, &["a", "b"], &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("class,a,b,f2\n"));
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.samples[0].features, ds.samples[0].features);
        assert_eq!(back.samples[1].class, 3);
        assert!(back.samples[1].malicious);
    }

    #[test]
    fn missing_header_rejected() {
        let err = read_csv("1,0.5,0.5\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }));
    }

    #[test]
    fn ragged_rows_rejected() {
        let csv = "class,a,b\n0,0.1,0.2\n1,0.3\n";
        let err = read_csv(csv.as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 3, .. }), "{err}");
    }

    #[test]
    fn out_of_range_class_rejected() {
        let csv = "class,a\n99,0.1\n";
        assert!(read_csv(csv.as_bytes()).is_err());
    }

    #[test]
    fn bad_feature_reports_line() {
        let csv = "class,a\n0,0.1\n0,oops\n";
        match read_csv(csv.as_bytes()) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn normalizer_round_trip_is_exact() {
        let mut norm = Normalizer::new(3);
        // Deliberately awkward values: shortest-round-trip formatting must
        // restore the exact bits, not a close approximation.
        norm.observe(&[10.0 / 3.0, 0.0, 0.1 + 0.2]);
        let mut buf = Vec::new();
        write_normalizer(&norm, &mut buf).unwrap();
        let back = read_normalizer(buf.as_slice()).unwrap();
        assert_eq!(back.dim(), 3);
        let bits = |n: &Normalizer| n.maxima().iter().map(|m| m.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&norm), bits(&back));
        let v = back.normalize(&[5.0, 1.0, 2.5]);
        assert_eq!(v[1], 0.0); // zero max stays degenerate
    }

    fn sample_featurizer() -> Featurizer {
        let mut norm = Normalizer::new(4);
        norm.observe(&[1.0 / 7.0, 3.0e-17, 0.0, 42.5]);
        Featurizer::new(
            norm,
            vec![
                EngineeredFeature {
                    name: "a_AND_b".into(),
                    components: vec![0, 1],
                },
                EngineeredFeature {
                    name: "c_AND_d_AND_a".into(),
                    components: vec![2, 3, 0],
                },
            ],
        )
    }

    #[test]
    fn featurizer_round_trip_is_exact() {
        let f = sample_featurizer();
        let mut buf = Vec::new();
        write_featurizer(&f, &mut buf).unwrap();
        let back = read_featurizer(buf.as_slice()).unwrap();
        assert_eq!(back, f);
        // Featurization through the restored transform is bit-identical.
        let raw = [0.05, 1.0e-18, 3.0, 40.0];
        assert_eq!(
            f.featurize(&raw)
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            back.featurize(&raw)
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn featurizer_rejects_corruption() {
        let f = sample_featurizer();
        let mut buf = Vec::new();
        write_featurizer(&f, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Missing header.
        assert!(read_featurizer(&text.as_bytes()["evax-".len()..]).is_err());
        // Truncated engineered block.
        let cut = text.trim_end().rfind('\n').unwrap();
        assert!(read_featurizer(&text.as_bytes()[..cut]).is_err());
        // Out-of-range component index.
        let poked = text.replace("|2,3,0", "|2,9,0");
        assert!(read_featurizer(poked.as_bytes()).is_err());
    }

    #[test]
    fn model_bundle_round_trip() {
        use crate::dataset::Sample;
        use crate::detector::{Detector, DetectorKind, TrainConfig};
        use rand::SeedableRng;

        let featurizer = sample_featurizer();
        let mut ds = Dataset::new();
        for i in 0..12 {
            let x = i as f32 / 12.0;
            ds.push(Sample::new(vec![x, 1.0 - x, x * x, 0.5], (i % 2) * 3));
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let detector = Detector::train(
            DetectorKind::Evax,
            &ds,
            featurizer.engineered().to_vec(),
            &TrainConfig::default(),
            &mut rng,
        );

        let mut buf = Vec::new();
        write_model(&detector, &featurizer, 3, &mut buf).unwrap();
        let bundle = read_model(buf.as_slice()).unwrap();
        assert_eq!(bundle.revision, 3);
        assert_eq!(bundle.featurizer, featurizer);
        // The detector survives exactly: same patch encoding, same verdicts.
        assert_eq!(
            DetectorPatch::from_detector(&bundle.detector, featurizer.base_dim(), 3),
            DetectorPatch::from_detector(&detector, featurizer.base_dim(), 3),
        );

        // A flipped byte in the hex payload is caught by the patch checksum.
        let text = String::from_utf8(buf).unwrap();
        let patch_at = text.find("patch ").unwrap() + "patch xxxxxxxx".len();
        let mut bad = text.clone().into_bytes();
        bad[patch_at] = if bad[patch_at] == b'0' { b'1' } else { b'0' };
        assert!(read_model(bad.as_slice()).is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = "class,a\n0,0.5\n\n1,0.7\n";
        let ds = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(ds.len(), 2);
    }
}
