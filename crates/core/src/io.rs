//! Dataset and model persistence: CSV for datasets (interoperable with any
//! external ML tooling), exact text formats for normalizers and
//! [`Featurizer`]s, and a bundled model format carrying the detector *and*
//! its featurizer in one artifact.
//!
//! The CSV layout is one row per sample: `class,<f0>,<f1>,...` with a header
//! row naming the HPCs, so a dataset exported here drops straight into
//! pandas/scikit-learn for anyone who wants to try their own detector on
//! the simulator's HPC streams.
//!
//! Floating-point state (normalizer maxima) is written with Rust's
//! shortest-round-trip formatting, so a load reproduces the exact `f64`
//! bits — deployment-time featurization is byte-identical to training-time.
//!
//! Every fallible function returns the crate-wide typed
//! [`EvaxError`]: [`EvaxError::Parse`] with a
//! 1-based line number for malformed fields, [`EvaxError::Corrupt`] with
//! expected/got context for bad magic headers, checksum failures and
//! dimension disagreements, and [`EvaxError::Io`] for the OS layer. The
//! `*_file` wrappers attach the path so "which file?" is always answerable.

// Lock in the error-API migration: this module must never panic on bad
// input (tests are exempt — unwrapping known-good fixtures is fine there).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use evax_sim::{Snapshot, SnapshotError};

use crate::dataset::{Dataset, Normalizer, Sample, N_CLASSES};
use crate::detector::Detector;
use crate::error::{EvaxError, Result};
use crate::feature_engineering::EngineeredFeature;
use crate::featurize::Featurizer;
use crate::patch::DetectorPatch;

/// Writes a dataset as CSV with a header naming each feature.
///
/// `feature_names` may be shorter than the feature dimension; missing names
/// are filled as `f<i>`.
///
/// # Errors
/// Propagates writer failures.
pub fn write_csv<W: Write>(ds: &Dataset, feature_names: &[&str], mut w: W) -> Result<()> {
    let dim = ds.feature_dim();
    write!(w, "class")?;
    for i in 0..dim {
        match feature_names.get(i) {
            Some(name) => write!(w, ",{name}")?,
            None => write!(w, ",f{i}")?,
        }
    }
    writeln!(w)?;
    for s in &ds.samples {
        write!(w, "{}", s.class)?;
        for &v in &s.features {
            write!(w, ",{v}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Reads a dataset from the CSV produced by [`write_csv`] (the header row is
/// required and skipped).
///
/// # Errors
/// Returns [`EvaxError::Corrupt`] on a missing header and
/// [`EvaxError::Parse`] with the offending line on malformed content.
pub fn read_csv<R: Read>(r: R) -> Result<Dataset> {
    let reader = BufReader::new(r);
    let mut ds = Dataset::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if idx == 0 {
            if !line.starts_with("class") {
                return Err(EvaxError::corrupt(
                    "csv header",
                    "a 'class,...' header row",
                    format!("'{}'", line.trim_end()),
                ));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let class: usize = fields
            .next()
            .ok_or_else(|| EvaxError::parse(idx + 1, "empty row"))?
            .trim()
            .parse()
            .map_err(|e| EvaxError::parse(idx + 1, format!("bad class: {e}")))?;
        if class >= N_CLASSES {
            return Err(EvaxError::parse(
                idx + 1,
                format!("class {class} out of range (< {N_CLASSES})"),
            ));
        }
        let features: Result<Vec<f32>> = fields
            .map(|f| {
                let v = f
                    .trim()
                    .parse::<f32>()
                    .map_err(|e| EvaxError::parse(idx + 1, format!("bad feature '{f}': {e}")))?;
                // "NaN"/"inf" parse successfully but would poison training
                // and scoring downstream; a corrupted dataset must surface
                // here, at the trust boundary.
                if !v.is_finite() {
                    return Err(EvaxError::parse(
                        idx + 1,
                        format!("non-finite feature '{}'", f.trim()),
                    ));
                }
                Ok(v)
            })
            .collect();
        let features = features?;
        if features.is_empty() {
            return Err(EvaxError::parse(idx + 1, "row has no features"));
        }
        if ds.feature_dim() != 0 && features.len() != ds.feature_dim() {
            return Err(EvaxError::parse(
                idx + 1,
                format!(
                    "row has {} features, expected {}",
                    features.len(),
                    ds.feature_dim()
                ),
            ));
        }
        ds.push(Sample::new(features, class));
    }
    Ok(ds)
}

/// Writes a normalizer's running maxima as one CSV row, with exact
/// (shortest-round-trip) `f64` formatting.
///
/// # Errors
/// Propagates writer failures.
pub fn write_normalizer<W: Write>(norm: &Normalizer, mut w: W) -> Result<()> {
    for (i, &m) in norm.maxima().iter().enumerate() {
        if i > 0 {
            write!(w, ",")?;
        }
        write!(w, "{m}")?;
    }
    writeln!(w)?;
    Ok(())
}

/// Reads a normalizer written by [`write_normalizer`].
///
/// # Errors
/// Returns [`EvaxError::Parse`] on malformed content.
pub fn read_normalizer<R: Read>(r: R) -> Result<Normalizer> {
    let mut reader = BufReader::new(r);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let maxes: Result<Vec<f64>> = line
        .trim()
        .split(',')
        .map(|f| {
            let v = f
                .parse::<f64>()
                .map_err(|e| EvaxError::parse(1, format!("bad max '{f}': {e}")))?;
            if !v.is_finite() {
                return Err(EvaxError::corrupt(
                    "normalizer maxima",
                    "finite values",
                    format!("'{f}'"),
                ));
            }
            Ok(v)
        })
        .collect();
    let maxes = maxes?;
    let mut norm = Normalizer::new(maxes.len());
    norm.observe(&maxes);
    Ok(norm)
}

/// Magic first line of the legacy (pre-schema) featurizer text format.
const FEATURIZER_HEADER: &str = "evax-featurizer v1";
/// Magic first line of the schema-versioned featurizer text format.
const FEATURIZER_HEADER_V2: &str = "evax-featurizer v2";
/// Magic first line of the legacy (pre-schema) bundled model format.
const MODEL_HEADER: &str = "evax-model v1";
/// Magic first line of the schema-versioned bundled model format.
const MODEL_HEADER_V2: &str = "evax-model v2";

/// Renders a featurizer's sensor schema as the v2 `schema` row:
/// `schema <fingerprint:016x> <name>:<tag>,...` using
/// [`Modality::tag`](evax_sim::Modality::tag) characters.
///
/// # Errors
/// Rejects column names containing the row's `:` / `,` / whitespace
/// delimiters (none of the canonical counter names do).
fn write_schema_row<W: Write>(schema: &evax_sim::FeatureSchema, mut w: W) -> Result<()> {
    write!(w, "schema {:016x} ", schema.fingerprint())?;
    for (i, (name, modality)) in schema.columns().enumerate() {
        if name.contains([':', ',']) || name.chars().any(char::is_whitespace) {
            return Err(EvaxError::parse(
                0,
                format!("schema column name {name:?} contains a delimiter"),
            ));
        }
        if i > 0 {
            write!(w, ",")?;
        }
        write!(w, "{}:{}", name, modality.tag())?;
    }
    writeln!(w)?;
    Ok(())
}

/// Parses the v2 `schema` row written by [`write_schema_row`], verifying
/// the recorded fingerprint against one recomputed from the parsed
/// columns (a digit flipped anywhere in the row surfaces as corruption).
fn parse_schema_row(row: &str, ln: usize) -> Result<evax_sim::FeatureSchema> {
    let rest = row
        .trim_end()
        .strip_prefix("schema ")
        .ok_or_else(|| EvaxError::parse(ln, "expected 'schema <fingerprint> <columns>' row"))?;
    let (fp_hex, cols) = rest
        .split_once(' ')
        .ok_or_else(|| EvaxError::parse(ln, "schema row missing column list"))?;
    let fingerprint = u64::from_str_radix(fp_hex, 16)
        .map_err(|e| EvaxError::parse(ln, format!("bad schema fingerprint '{fp_hex}': {e}")))?;
    let columns: Vec<(String, evax_sim::Modality)> = cols
        .split(',')
        .map(|c| {
            let (name, tag) = c
                .rsplit_once(':')
                .ok_or_else(|| EvaxError::parse(ln, format!("bad schema column '{c}'")))?;
            let tag_char = match tag.chars().next() {
                Some(t) if tag.len() == 1 => t,
                _ => return Err(EvaxError::parse(ln, format!("bad modality tag '{tag}'"))),
            };
            let modality = evax_sim::Modality::from_tag(tag_char)
                .ok_or_else(|| EvaxError::parse(ln, format!("unknown modality tag '{tag}'")))?;
            Ok((name.to_string(), modality))
        })
        .collect::<Result<_>>()?;
    let schema = evax_sim::FeatureSchema::from_columns(columns);
    if schema.fingerprint() != fingerprint {
        return Err(EvaxError::corrupt(
            "schema fingerprint",
            format!("{fingerprint:016x} (recorded in the header)"),
            format!(
                "{:016x} (recomputed from the columns)",
                schema.fingerprint()
            ),
        ));
    }
    Ok(schema)
}

/// Writes a [`Featurizer`] — the deployable window→feature transform — as a
/// small text document: header, the sensor-schema row (fingerprint plus
/// named, modality-tagged columns), dimensions, the normalizer maxima row,
/// and one `name|i,j,...` line per engineered security HPC.
///
/// Always writes the v2 (schema-versioned) format; [`read_featurizer`]
/// still accepts pre-schema v1 artifacts.
///
/// # Errors
/// Propagates writer failures, or rejects a featurizer whose engineered
/// names contain the `|` / newline delimiters.
pub fn write_featurizer<W: Write>(f: &Featurizer, mut w: W) -> Result<()> {
    writeln!(w, "{FEATURIZER_HEADER_V2}")?;
    write_schema_row(&f.base_schema(), &mut w)?;
    writeln!(w, "{},{}", f.base_dim(), f.engineered().len())?;
    write_normalizer(f.normalizer(), &mut w)?;
    for e in f.engineered() {
        if e.name.contains('|') || e.name.contains('\n') {
            return Err(EvaxError::parse(
                0,
                format!("engineered name {:?} contains a delimiter", e.name),
            ));
        }
        write!(w, "{}|", e.name)?;
        for (i, c) in e.components.iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            write!(w, "{c}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Parses the featurizer block from an enumerated line stream (shared by
/// [`read_featurizer`] and [`read_model`]). Line numbers are 1-based.
fn parse_featurizer<'a, I>(lines: &mut I) -> Result<Featurizer>
where
    I: Iterator<Item = (usize, &'a str)>,
{
    let mut next = |what: &str| {
        lines
            .next()
            .ok_or_else(|| EvaxError::parse(0, format!("truncated featurizer: missing {what}")))
    };

    let (_, header) = next("header")?;
    let versioned = match header.trim() {
        FEATURIZER_HEADER => false,
        FEATURIZER_HEADER_V2 => true,
        other => {
            return Err(EvaxError::corrupt(
                "featurizer header",
                format!("'{FEATURIZER_HEADER_V2}' (or legacy '{FEATURIZER_HEADER}')"),
                format!("'{other}'"),
            ))
        }
    };
    let base_schema = if versioned {
        let (ln, row) = next("schema row")?;
        Some(parse_schema_row(row, ln)?)
    } else {
        None
    };
    let (ln, dims) = next("dimension row")?;
    let (base_dim, n_eng) = dims
        .trim()
        .split_once(',')
        .and_then(|(a, b)| Some((a.parse::<usize>().ok()?, b.parse::<usize>().ok()?)))
        .ok_or_else(|| EvaxError::parse(ln, format!("bad dimension row '{}'", dims.trim())))?;

    let (ln, maxima_row) = next("normalizer maxima")?;
    let maxima: Vec<f64> = maxima_row
        .trim()
        .split(',')
        .map(|f| {
            let v = f
                .parse::<f64>()
                .map_err(|e| EvaxError::parse(ln, format!("bad max '{f}': {e}")))?;
            // A NaN/Inf maximum parses fine but silently zeroes (or NaNs)
            // every deployment-time feature: reject it as corruption.
            if !v.is_finite() {
                return Err(EvaxError::corrupt(
                    "featurizer maxima",
                    "finite values",
                    format!("'{f}'"),
                ));
            }
            Ok(v)
        })
        .collect::<Result<_>>()?;
    if maxima.len() != base_dim {
        return Err(EvaxError::corrupt(
            "featurizer maxima row",
            format!("{base_dim} maxima (per the dimension row)"),
            format!("{}", maxima.len()),
        ));
    }

    let mut engineered = Vec::with_capacity(n_eng);
    for _ in 0..n_eng {
        let (ln, row) = next("engineered feature")?;
        let (name, comps) = row.trim_end().split_once('|').ok_or_else(|| {
            EvaxError::parse(ln, format!("bad engineered row '{}'", row.trim_end()))
        })?;
        let components: Vec<usize> = if comps.is_empty() {
            Vec::new()
        } else {
            comps
                .split(',')
                .map(|c| {
                    c.parse::<usize>()
                        .map_err(|e| EvaxError::parse(ln, format!("bad component '{c}': {e}")))
                })
                .collect::<Result<_>>()?
        };
        if let Some(&c) = components.iter().find(|&&c| c >= base_dim) {
            return Err(EvaxError::corrupt(
                "engineered feature component",
                format!("an index below the base dimension {base_dim}"),
                format!("{c}"),
            ));
        }
        engineered.push(EngineeredFeature {
            name: name.to_string(),
            components,
        });
    }
    let normalizer = Normalizer::from_maxima(maxima);
    match base_schema {
        Some(schema) => {
            if schema.dim() != base_dim {
                return Err(EvaxError::corrupt(
                    "featurizer schema row",
                    format!("{base_dim} columns (per the dimension row)"),
                    format!("{}", schema.dim()),
                ));
            }
            Featurizer::with_schema(schema, normalizer, engineered)
        }
        // Legacy v1 artifacts carry no schema: infer it from the width
        // (baseline-133 gets the canonical named schema, so pre-redesign
        // artifacts keep their exact pre-redesign feature identity).
        None => Ok(Featurizer::new(normalizer, engineered)),
    }
}

/// Reads a featurizer written by [`write_featurizer`]. The round trip is
/// exact: maxima are restored bit-for-bit, so deployment-time featurization
/// matches training-time byte-for-byte.
///
/// # Errors
/// Returns [`EvaxError::Parse`] / [`EvaxError::Corrupt`] on malformed
/// content.
pub fn read_featurizer<R: Read>(mut r: R) -> Result<Featurizer> {
    let mut text = String::new();
    r.read_to_string(&mut text)?;
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
    parse_featurizer(&mut lines)
}

/// [`read_featurizer`] from a path, with the path attached to any error.
///
/// # Errors
/// As [`read_featurizer`], plus [`EvaxError::Io`] when the file cannot be
/// opened; every error carries the path.
pub fn read_featurizer_file<P: AsRef<Path>>(path: P) -> Result<Featurizer> {
    let path = path.as_ref();
    let file = std::fs::File::open(path).map_err(|e| EvaxError::from(e).with_path(path))?;
    read_featurizer(BufReader::new(file)).map_err(|e| e.with_path(path))
}

/// [`write_featurizer`] to a path, with the path attached to any error.
///
/// # Errors
/// As [`write_featurizer`]; every error carries the path.
pub fn write_featurizer_file<P: AsRef<Path>>(f: &Featurizer, path: P) -> Result<()> {
    let path = path.as_ref();
    let file = std::fs::File::create(path).map_err(|e| EvaxError::from(e).with_path(path))?;
    write_featurizer(f, std::io::BufWriter::new(file)).map_err(|e| e.with_path(path))
}

/// Writes a complete deployable model: the featurizer followed by the
/// vendor-patch encoding of the detector ([`DetectorPatch`], hex-armored).
/// One artifact carries the detector *and* the exact transform it was
/// trained on, so the two can never be deployed out of sync.
///
/// # Errors
/// Propagates writer failures.
pub fn write_model<W: Write>(
    detector: &Detector,
    featurizer: &Featurizer,
    revision: u32,
    w: W,
) -> Result<()> {
    write_model_with_hardened(detector, featurizer, revision, None, w)
}

/// [`write_model`] plus an optional hardened deployment variant (stochastic,
/// ensemble, quantized — any [`evax_nn::Detector`]): the trait-level model
/// is appended as a `hardened <kind> <hex>` row via its serialization hooks.
/// Bundles without the row read back exactly as before, so the format stays
/// backward compatible.
///
/// # Errors
/// Propagates writer failures.
pub fn write_model_with_hardened<W: Write>(
    detector: &Detector,
    featurizer: &Featurizer,
    revision: u32,
    hardened: Option<&dyn evax_nn::Detector>,
    mut w: W,
) -> Result<()> {
    writeln!(w, "{MODEL_HEADER_V2}")?;
    write_featurizer(featurizer, &mut w)?;
    let blob = DetectorPatch::from_detector(detector, featurizer.base_dim(), revision).to_bytes();
    write!(w, "patch ")?;
    for b in blob {
        write!(w, "{b:02x}")?;
    }
    writeln!(w)?;
    if let Some(model) = hardened {
        write!(w, "hardened {} ", model.kind())?;
        for b in model.save_bytes() {
            write!(w, "{b:02x}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// A model loaded by [`read_model`]: detector, featurizer, and the patch
/// revision it shipped at.
#[derive(Debug, Clone)]
pub struct ModelBundle {
    /// The deployed detector, reconstructed from its patch encoding.
    pub detector: Detector,
    /// The window→feature transform the detector was trained on.
    pub featurizer: Featurizer,
    /// Patch revision of the bundled detector.
    pub revision: u32,
    /// The hardened deployment variant, when the bundle carries one (see
    /// [`write_model_with_hardened`]).
    pub hardened: Option<Box<dyn evax_nn::Detector>>,
}

/// Reads a model written by [`write_model`], verifying the embedded patch
/// checksum and that the detector's base dimension matches the featurizer.
///
/// # Errors
/// Returns [`EvaxError::Parse`] on malformed content and
/// [`EvaxError::Corrupt`] on a bad header, checksum mismatch, or a
/// detector/featurizer dimension disagreement.
pub fn read_model<R: Read>(mut r: R) -> Result<ModelBundle> {
    let mut text = String::new();
    r.read_to_string(&mut text)?;
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
    let (_, header) = lines
        .next()
        .ok_or_else(|| EvaxError::parse(1, "empty model file"))?;
    if header.trim() != MODEL_HEADER_V2 && header.trim() != MODEL_HEADER {
        return Err(EvaxError::corrupt(
            "model header",
            format!("'{MODEL_HEADER_V2}' (or legacy '{MODEL_HEADER}')"),
            format!("'{}'", header.trim()),
        ));
    }
    let featurizer = parse_featurizer(&mut lines)?;
    let (ln, patch_row) = lines
        .next()
        .ok_or_else(|| EvaxError::parse(0, "truncated model: missing patch row"))?;
    let hex = patch_row
        .strip_prefix("patch ")
        .ok_or_else(|| EvaxError::parse(ln, "expected 'patch <hex>' row"))?
        .trim();
    let blob = parse_hex(hex, ln)?;
    let patch = DetectorPatch::from_bytes(&blob).map_err(|e| {
        EvaxError::corrupt("detector patch", "a checksummed patch blob", e.to_string())
    })?;
    let revision = patch.revision;
    let detector = patch.instantiate(featurizer.base_dim()).map_err(|e| {
        EvaxError::corrupt(
            "model bundle",
            format!("a patch fitting base dimension {}", featurizer.base_dim()),
            e.to_string(),
        )
    })?;
    // Optional trailing `hardened <kind> <hex>` row (newer bundles).
    let hardened = match lines.next() {
        None => None,
        Some((ln, row)) => {
            let rest = row
                .strip_prefix("hardened ")
                .ok_or_else(|| EvaxError::parse(ln, "expected 'hardened <kind> <hex>' row"))?;
            let (kind, hex) = rest
                .trim_end()
                .split_once(' ')
                .ok_or_else(|| EvaxError::parse(ln, "expected 'hardened <kind> <hex>' row"))?;
            let blob = parse_hex(hex, ln)?;
            let model = evax_nn::load_detector(kind, &blob).map_err(|e| {
                EvaxError::corrupt("hardened detector", "a valid detector encoding", e)
            })?;
            if model.n_features() != detector.extended_dim() {
                return Err(EvaxError::corrupt(
                    "hardened detector",
                    format!("feature dimension {}", detector.extended_dim()),
                    format!("{}", model.n_features()),
                ));
            }
            Some(model)
        }
    };
    Ok(ModelBundle {
        detector,
        featurizer,
        revision,
        hardened,
    })
}

/// Decodes a hex payload, blaming 1-based line `ln` on malformation.
fn parse_hex(hex: &str, ln: usize) -> Result<Vec<u8>> {
    if !hex.len().is_multiple_of(2) {
        return Err(EvaxError::parse(ln, "odd-length hex payload"));
    }
    (0..hex.len() / 2)
        .map(|i| {
            u8::from_str_radix(&hex[2 * i..2 * i + 2], 16)
                .map_err(|e| EvaxError::parse(ln, format!("bad hex byte: {e}")))
        })
        .collect()
}

/// [`read_model`] from a path, with the path attached to any error.
///
/// # Errors
/// As [`read_model`], plus [`EvaxError::Io`] when the file cannot be
/// opened; every error carries the path.
pub fn read_model_file<P: AsRef<Path>>(path: P) -> Result<ModelBundle> {
    let path = path.as_ref();
    let file = std::fs::File::open(path).map_err(|e| EvaxError::from(e).with_path(path))?;
    read_model(BufReader::new(file)).map_err(|e| e.with_path(path))
}

/// [`write_model`] to a path, with the path attached to any error.
///
/// # Errors
/// As [`write_model`]; every error carries the path.
pub fn write_model_file<P: AsRef<Path>>(
    detector: &Detector,
    featurizer: &Featurizer,
    revision: u32,
    path: P,
) -> Result<()> {
    let path = path.as_ref();
    let file = std::fs::File::create(path).map_err(|e| EvaxError::from(e).with_path(path))?;
    write_model(
        detector,
        featurizer,
        revision,
        std::io::BufWriter::new(file),
    )
    .map_err(|e| e.with_path(path))
}

/// Converts a simulator [`SnapshotError`] into the crate-wide typed error:
/// truncation becomes [`EvaxError::Parse`] (line 0 — binary streams are not
/// line-addressable), everything else becomes [`EvaxError::Corrupt`] with
/// expected/got context.
fn snapshot_error(e: SnapshotError) -> EvaxError {
    let magic = String::from_utf8_lossy(evax_sim::snapshot::SNAPSHOT_MAGIC);
    match e {
        SnapshotError::Header { got } => EvaxError::corrupt(
            "snapshot header",
            format!("{:?}", magic.trim_end()),
            format!("{got:?}"),
        ),
        SnapshotError::Truncated { what } => {
            EvaxError::parse(0, format!("snapshot truncated while reading {what}"))
        }
        SnapshotError::Checksum { expected, got } => EvaxError::corrupt(
            "snapshot checksum",
            format!("{expected:#018x}"),
            format!("{got:#018x}"),
        ),
        SnapshotError::ConfigMismatch { expected, got } => EvaxError::corrupt(
            "snapshot config fingerprint",
            format!("{expected:#018x}"),
            format!("{got:#018x}"),
        ),
        SnapshotError::Malformed { what } => {
            EvaxError::corrupt("snapshot payload", "a structurally valid word stream", what)
        }
    }
}

/// Writes a simulator checkpoint ([`Snapshot`]) to a path in its versioned,
/// checksummed binary format, with the path attached to any error.
///
/// # Errors
/// Returns [`EvaxError::Io`] when the file cannot be written; the error
/// carries the path.
pub fn write_snapshot_file<P: AsRef<Path>>(snap: &Snapshot, path: P) -> Result<()> {
    let path = path.as_ref();
    std::fs::write(path, snap.to_bytes()).map_err(|e| EvaxError::from(e).with_path(path))
}

/// Reads a simulator checkpoint written by [`write_snapshot_file`],
/// validating the magic header, section structure and trailing checksum.
///
/// # Errors
/// Returns [`EvaxError::Io`] when the file cannot be opened,
/// [`EvaxError::Parse`] on truncation and [`EvaxError::Corrupt`] on a bad
/// header, checksum mismatch or malformed payload; every error carries the
/// path.
pub fn read_snapshot_file<P: AsRef<Path>>(path: P) -> Result<Snapshot> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| EvaxError::from(e).with_path(path))?;
    Snapshot::from_bytes(&bytes).map_err(|e| snapshot_error(e).with_path(path))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset() -> Dataset {
        let mut ds = Dataset::new();
        ds.push(Sample::new(vec![0.5, 0.25, 1.0], 0));
        ds.push(Sample::new(vec![0.1, 0.9, 0.0], 3));
        ds
    }

    #[test]
    fn csv_round_trip() {
        let ds = sample_dataset();
        let mut buf = Vec::new();
        write_csv(&ds, &["a", "b"], &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("class,a,b,f2\n"));
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.samples[0].features, ds.samples[0].features);
        assert_eq!(back.samples[1].class, 3);
        assert!(back.samples[1].malicious);
    }

    #[test]
    fn missing_header_rejected() {
        let err = read_csv("1,0.5,0.5\n".as_bytes()).unwrap_err();
        assert!(matches!(err, EvaxError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("class"), "{err}");
    }

    #[test]
    fn ragged_rows_rejected() {
        let csv = "class,a,b\n0,0.1,0.2\n1,0.3\n";
        let err = read_csv(csv.as_bytes()).unwrap_err();
        assert!(matches!(err, EvaxError::Parse { line: 3, .. }), "{err}");
    }

    #[test]
    fn out_of_range_class_rejected() {
        let csv = "class,a\n99,0.1\n";
        assert!(read_csv(csv.as_bytes()).is_err());
    }

    #[test]
    fn bad_feature_reports_line() {
        let csv = "class,a\n0,0.1\n0,oops\n";
        match read_csv(csv.as_bytes()) {
            Err(EvaxError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn normalizer_round_trip_is_exact() {
        let mut norm = Normalizer::new(3);
        // Deliberately awkward values: shortest-round-trip formatting must
        // restore the exact bits, not a close approximation.
        norm.observe(&[10.0 / 3.0, 0.0, 0.1 + 0.2]);
        let mut buf = Vec::new();
        write_normalizer(&norm, &mut buf).unwrap();
        let back = read_normalizer(buf.as_slice()).unwrap();
        assert_eq!(back.dim(), 3);
        let bits = |n: &Normalizer| n.maxima().iter().map(|m| m.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&norm), bits(&back));
        let v = back.normalize(&[5.0, 1.0, 2.5]);
        assert_eq!(v[1], 0.0); // zero max stays degenerate
    }

    fn sample_featurizer() -> Featurizer {
        let mut norm = Normalizer::new(4);
        norm.observe(&[1.0 / 7.0, 3.0e-17, 0.0, 42.5]);
        Featurizer::new(
            norm,
            vec![
                EngineeredFeature {
                    name: "a_AND_b".into(),
                    components: vec![0, 1],
                },
                EngineeredFeature {
                    name: "c_AND_d_AND_a".into(),
                    components: vec![2, 3, 0],
                },
            ],
        )
    }

    #[test]
    fn featurizer_round_trip_is_exact() {
        let f = sample_featurizer();
        let mut buf = Vec::new();
        write_featurizer(&f, &mut buf).unwrap();
        let back = read_featurizer(buf.as_slice()).unwrap();
        assert_eq!(back, f);
        // Featurization through the restored transform is bit-identical.
        let raw = [0.05, 1.0e-18, 3.0, 40.0];
        assert_eq!(
            f.featurize(&raw)
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            back.featurize(&raw)
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn featurizer_rejects_corruption() {
        let f = sample_featurizer();
        let mut buf = Vec::new();
        write_featurizer(&f, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Missing header → Corrupt with expected/got context.
        let err = read_featurizer(&text.as_bytes()["evax-".len()..]).unwrap_err();
        assert!(matches!(err, EvaxError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains(FEATURIZER_HEADER), "{err}");
        // Truncated engineered block → Parse naming the missing piece.
        let cut = text.trim_end().rfind('\n').unwrap();
        let err = read_featurizer(&text.as_bytes()[..cut]).unwrap_err();
        assert!(matches!(err, EvaxError::Parse { .. }), "{err}");
        assert!(err.to_string().contains("truncated"), "{err}");
        // Out-of-range component index → Corrupt (pieces disagree).
        let poked = text.replace("|2,3,0", "|2,9,0");
        let err = read_featurizer(poked.as_bytes()).unwrap_err();
        assert!(matches!(err, EvaxError::Corrupt { .. }), "{err}");
        // Maxima row shorter than the dimension row promises.
        let shorter = text.replacen("4,2", "5,2", 1);
        let err = read_featurizer(shorter.as_bytes()).unwrap_err();
        assert!(matches!(err, EvaxError::Corrupt { .. }), "{err}");
    }

    fn sample_model_text() -> (Detector, Featurizer, String) {
        use crate::dataset::Sample;
        use crate::detector::{Detector, DetectorKind, TrainConfig};
        use rand::SeedableRng;

        let featurizer = sample_featurizer();
        let mut ds = Dataset::new();
        for i in 0..12 {
            let x = i as f32 / 12.0;
            ds.push(Sample::new(vec![x, 1.0 - x, x * x, 0.5], (i % 2) * 3));
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let detector = Detector::train(
            DetectorKind::Evax,
            &ds,
            featurizer.engineered().to_vec(),
            &TrainConfig::default(),
            &mut rng,
        );
        let mut buf = Vec::new();
        write_model(&detector, &featurizer, 3, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        (detector, featurizer, text)
    }

    #[test]
    fn model_bundle_round_trip() {
        let (detector, featurizer, text) = sample_model_text();
        let bundle = read_model(text.as_bytes()).unwrap();
        assert_eq!(bundle.revision, 3);
        assert_eq!(bundle.featurizer, featurizer);
        // The detector survives exactly: same patch encoding, same verdicts.
        assert_eq!(
            DetectorPatch::from_detector(&bundle.detector, featurizer.base_dim(), 3),
            DetectorPatch::from_detector(&detector, featurizer.base_dim(), 3),
        );
    }

    #[test]
    fn hardened_bundle_round_trips_every_kind() {
        let (detector, featurizer, plain) = sample_model_text();
        // Plain bundles (no hardened row) read back with `hardened: None`.
        assert!(read_model(plain.as_bytes()).unwrap().hardened.is_none());

        let stochastic = detector.harden_stochastic(42, 0.05);
        let ensemble = evax_nn::Ensemble::new(vec![
            Box::new(detector.to_model()),
            Box::new(detector.harden_stochastic(7, 0.02)),
        ]);
        let quant = detector.quantize_linear();
        let variants: Vec<&dyn evax_nn::Detector> = vec![&stochastic, &ensemble, &quant];
        for model in variants {
            let mut buf = Vec::new();
            write_model_with_hardened(&detector, &featurizer, 3, Some(model), &mut buf).unwrap();
            let bundle = read_model(buf.as_slice()).unwrap();
            let back = bundle.hardened.unwrap();
            assert_eq!(back.kind(), model.kind());
            // The restored model votes identically on a probe row.
            let probe: Vec<f32> = (0..detector.extended_dim())
                .map(|i| (i as f32 * 0.37).fract())
                .collect();
            let mut scratch = evax_nn::DetectorScratch::new();
            let (s0, v0) = model.decide(&probe, &mut scratch);
            let (s1, v1) = back.decide(&probe, &mut scratch);
            assert_eq!(s0.to_bits(), s1.to_bits());
            assert_eq!(v0, v1);

            // A mangled kind tag is rejected as corruption.
            let text = String::from_utf8(buf).unwrap();
            let bad = text.replacen(&format!("hardened {}", model.kind()), "hardened bogus", 1);
            let err = read_model(bad.as_bytes()).unwrap_err();
            assert!(matches!(err, EvaxError::Corrupt { .. }), "{err}");
        }
    }

    #[test]
    fn corrupt_model_payload_is_a_checksum_corruption() {
        let (_, _, text) = sample_model_text();
        // A flipped byte in the hex payload is caught by the patch checksum.
        let patch_at = text.find("patch ").unwrap() + "patch xxxxxxxx".len();
        let mut bad = text.clone().into_bytes();
        bad[patch_at] = if bad[patch_at] == b'0' { b'1' } else { b'0' };
        let err = read_model(bad.as_slice()).unwrap_err();
        assert!(matches!(err, EvaxError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn truncated_model_is_a_parse_error() {
        let (_, _, text) = sample_model_text();
        // Cut the file before the patch row.
        let cut = text.find("patch ").unwrap();
        let err = read_model(&text.as_bytes()[..cut]).unwrap_err();
        assert!(matches!(err, EvaxError::Parse { .. }), "{err}");
        assert!(err.to_string().contains("missing patch row"), "{err}");
        // Empty input names line 1.
        let err = read_model("".as_bytes()).unwrap_err();
        assert!(matches!(err, EvaxError::Parse { line: 1, .. }), "{err}");
    }

    #[test]
    fn bad_model_header_reports_expected_and_got() {
        let (_, _, text) = sample_model_text();
        let bad = text.replacen(MODEL_HEADER_V2, "evax-model v9", 1);
        match read_model(bad.as_bytes()) {
            Err(EvaxError::Corrupt { expected, got, .. }) => {
                assert!(expected.contains(MODEL_HEADER_V2));
                assert!(got.contains("evax-model v9"));
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn v2_featurizer_embeds_and_verifies_the_schema() {
        let f = sample_featurizer();
        let mut buf = Vec::new();
        write_featurizer(&f, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with(FEATURIZER_HEADER_V2), "{text}");
        let fp = f.base_schema().fingerprint();
        assert!(text.contains(&format!("schema {fp:016x} ")), "{text}");
        let back = read_featurizer(text.as_bytes()).unwrap();
        assert_eq!(back, f);
        assert_eq!(back.schema().fingerprint(), f.schema().fingerprint());
    }

    #[test]
    fn v2_schema_fingerprint_mismatch_is_corruption() {
        let f = sample_featurizer();
        let mut buf = Vec::new();
        write_featurizer(&f, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Rename a column without updating the recorded fingerprint: the
        // recomputed fingerprint disagrees → Corrupt naming both values.
        let poked = text.replacen("f0:h", "fX:h", 1);
        assert_ne!(poked, text);
        match read_featurizer(poked.as_bytes()) {
            Err(EvaxError::Corrupt { what, .. }) => assert_eq!(what, "schema fingerprint"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // Flip a digit of the recorded fingerprint itself: same detection.
        let fp = f.base_schema().fingerprint();
        let poked = text.replacen(
            &format!("schema {fp:016x}"),
            &format!("schema {:016x}", fp ^ 1),
            1,
        );
        assert_ne!(poked, text);
        match read_featurizer(poked.as_bytes()) {
            Err(EvaxError::Corrupt { what, .. }) => assert_eq!(what, "schema fingerprint"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn v2_schema_row_malformations_are_parse_errors() {
        let f = sample_featurizer();
        let mut buf = Vec::new();
        write_featurizer(&f, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let fp = format!("{:016x}", f.base_schema().fingerprint());
        for (from, to) in [
            ("schema ", "schemo "),           // wrong row keyword
            ("f1:h", "f1#h"),                 // column missing the ':' separator
            ("f2:h", "f2:z"),                 // unknown modality tag
            (fp.as_str(), "nothexadecimal0"), // unparsable fingerprint
        ] {
            let poked = text.replacen(from, to, 1);
            assert_ne!(poked, text, "{from} must appear in the fixture");
            let err = read_featurizer(poked.as_bytes()).unwrap_err();
            assert!(
                matches!(err, EvaxError::Parse { line: 2, .. }),
                "{from} -> {to}: {err}"
            );
        }
    }

    #[test]
    fn v2_schema_width_must_match_dimension_row() {
        let f = sample_featurizer();
        let mut buf = Vec::new();
        write_featurizer(&f, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Drop one column from the schema row (fingerprint updated so the
        // width disagreement is what surfaces, not the fingerprint).
        let narrower = evax_sim::FeatureSchema::from_columns(
            f.base_schema()
                .columns()
                .take(3)
                .map(|(n, m)| (n.to_string(), m))
                .collect(),
        );
        let mut row = Vec::new();
        write_schema_row(&narrower, &mut row).unwrap();
        let old_fp = f.base_schema().fingerprint();
        let poked = text.replacen(
            &format!("schema {old_fp:016x} f0:h,f1:h,f2:h,f3:h\n"),
            std::str::from_utf8(&row).unwrap(),
            1,
        );
        assert_ne!(poked, text);
        match read_featurizer(poked.as_bytes()) {
            Err(EvaxError::Corrupt { what, .. }) => assert_eq!(what, "featurizer schema row"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    /// Golden fixture: a pre-redesign (v1, schema-less) baseline-133
    /// artifact, byte-for-byte as `write_featurizer` used to emit it. It
    /// must keep loading, and must come back with the canonical named
    /// baseline schema — not an anonymous one — so old deployments keep
    /// their exact feature identity under the schema redesign.
    #[test]
    fn golden_v1_baseline_artifact_still_loads() {
        use evax_sim::HPC_BASE_DIM;
        let maxima: Vec<String> = (0..HPC_BASE_DIM)
            .map(|i| format!("{}", (i as f64 + 1.0) * 0.5))
            .collect();
        let v1 = format!(
            "evax-featurizer v1\n{},2\n{}\nsec_a|0,5\nsec_b|7,12,31\n",
            HPC_BASE_DIM,
            maxima.join(",")
        );
        let f = read_featurizer(v1.as_bytes()).unwrap();
        assert_eq!(f.base_dim(), HPC_BASE_DIM);
        assert_eq!(f.engineered().len(), 2);
        assert_eq!(f.base_schema(), evax_sim::FeatureSchema::baseline());
        assert_eq!(f.schema().name(0), "cycles");
        assert_eq!(f.schema().name(HPC_BASE_DIM), "sec_a");
        // Re-saving upgrades to v2 with the baseline fingerprint embedded;
        // the upgraded artifact round-trips to the identical featurizer.
        let mut buf = Vec::new();
        write_featurizer(&f, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with(FEATURIZER_HEADER_V2));
        let fp = evax_sim::FeatureSchema::baseline().fingerprint();
        assert!(
            text.contains(&format!("schema {fp:016x} cycles:h,")),
            "{text}"
        );
        assert_eq!(read_featurizer(text.as_bytes()).unwrap(), f);
    }

    /// Same guarantee for bundles: a v1 model (v1 header + v1 featurizer
    /// block + patch row) written before the redesign still loads.
    #[test]
    fn golden_v1_model_bundle_still_loads() {
        let (_, featurizer, v2_text) = sample_model_text();
        // Reconstruct the pre-redesign rendering of this bundle: v1
        // headers, no schema row. (The patch row encoding is unchanged.)
        let fp = featurizer.base_schema().fingerprint();
        let v1_text = v2_text
            .replacen(MODEL_HEADER_V2, MODEL_HEADER, 1)
            .replacen(FEATURIZER_HEADER_V2, FEATURIZER_HEADER, 1)
            .lines()
            .filter(|l| !l.starts_with(&format!("schema {fp:016x}")))
            .map(|l| format!("{l}\n"))
            .collect::<String>();
        assert_ne!(v1_text, v2_text);
        let bundle = read_model(v1_text.as_bytes()).unwrap();
        assert_eq!(bundle.revision, 3);
        assert_eq!(bundle.featurizer, featurizer);
    }

    #[test]
    fn schema_row_rejects_delimiter_names() {
        let schema = evax_sim::FeatureSchema::from_columns(vec![(
            "bad:name".into(),
            evax_sim::Modality::Hpc,
        )]);
        let mut buf = Vec::new();
        let err = write_schema_row(&schema, &mut buf).unwrap_err();
        assert!(matches!(err, EvaxError::Parse { .. }), "{err}");
        assert!(err.to_string().contains("delimiter"), "{err}");
    }

    #[test]
    fn file_wrappers_attach_the_path() {
        let missing = Path::new("/nonexistent/evax-test/model.txt");
        let err = read_model_file(missing).unwrap_err();
        match &err {
            EvaxError::Io { path, .. } => {
                assert_eq!(path.as_deref(), Some(missing));
            }
            other => panic!("expected Io, got {other:?}"),
        }
        assert!(err.to_string().contains("/nonexistent"), "{err}");

        let dir = std::env::temp_dir().join("evax-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.txt");
        let (detector, featurizer, _) = sample_model_text();
        write_model_file(&detector, &featurizer, 5, &path).unwrap();
        let bundle = read_model_file(&path).unwrap();
        assert_eq!(bundle.revision, 5);
        // Truncate the file on disk: the parse error names the file.
        std::fs::write(&path, "evax-model v1\n").unwrap();
        let err = read_model_file(&path).unwrap_err();
        assert!(matches!(err, EvaxError::Parse { .. }), "{err}");
        assert!(err.to_string().contains("model.txt"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn non_finite_csv_features_rejected() {
        for bad in ["NaN", "inf", "-inf"] {
            let csv = format!("class,a,b\n0,0.5,{bad}\n");
            match read_csv(csv.as_bytes()) {
                Err(EvaxError::Parse { line, reason, .. }) => {
                    assert_eq!(line, 2);
                    assert!(reason.contains("non-finite"), "{reason}");
                }
                other => panic!("expected parse error for {bad}, got {other:?}"),
            }
        }
    }

    #[test]
    fn non_finite_maxima_rejected_as_corruption() {
        let err = read_normalizer("1.5,NaN,2.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, EvaxError::Corrupt { .. }), "{err}");

        let f = sample_featurizer();
        let mut buf = Vec::new();
        write_featurizer(&f, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Poison one maximum in the serialized featurizer: the reload must
        // fail typed instead of deploying a NaN transform.
        let poked = text.replacen("42.5", "inf", 1);
        assert_ne!(poked, text, "fixture must contain the poisoned field");
        let err = read_featurizer(poked.as_bytes()).unwrap_err();
        assert!(matches!(err, EvaxError::Corrupt { .. }), "{err}");
        assert!(err.to_string().contains("finite"), "{err}");
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = "class,a\n0,0.5\n\n1,0.7\n";
        let ds = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn snapshot_file_round_trip() {
        let dir = std::env::temp_dir().join("evax-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.snap");
        let snap = Snapshot {
            config_fingerprint: 0x1234,
            cpu_words: vec![1, 2, 3, u64::MAX],
            cursor_words: Some(vec![7, 8, 9]),
        };
        write_snapshot_file(&snap, &path).unwrap();
        assert_eq!(read_snapshot_file(&path).unwrap(), snap);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_corruption_rejected_with_typed_errors() {
        let dir = std::env::temp_dir().join("evax-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let snap = Snapshot {
            config_fingerprint: 0x1234,
            cpu_words: vec![10, 20, 30],
            cursor_words: None,
        };
        let bytes = snap.to_bytes();

        // Truncation right after the magic → Parse, with the path attached.
        let path = dir.join("truncated.snap");
        std::fs::write(&path, &bytes[..20]).unwrap();
        let err = read_snapshot_file(&path).unwrap_err();
        assert!(matches!(err, EvaxError::Parse { .. }), "{err}");
        assert!(err.to_string().contains("truncated.snap"), "{err}");

        // Mid-stream truncation is caught by the trailing checksum → Corrupt.
        std::fs::write(&path, &bytes[..bytes.len() - 12]).unwrap();
        let err = read_snapshot_file(&path).unwrap_err();
        assert!(matches!(err, EvaxError::Corrupt { .. }), "{err}");

        // Bad magic → Corrupt naming the expected header.
        let path = dir.join("badmagic.snap");
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        match read_snapshot_file(&path).unwrap_err() {
            EvaxError::Corrupt { what, expected, .. } => {
                assert_eq!(what, "snapshot header");
                assert!(expected.contains("evax-snapshot v1"), "{expected}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // Mid-payload bit flip → checksum Corrupt.
        let path = dir.join("bitflip.snap");
        let mut bad = bytes.clone();
        let mid = bytes.len() / 2;
        bad[mid] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        match read_snapshot_file(&path).unwrap_err() {
            EvaxError::Corrupt { what, .. } => assert_eq!(what, "snapshot checksum"),
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // Missing file → Io with the path.
        let err = read_snapshot_file(dir.join("nonexistent.snap")).unwrap_err();
        assert!(matches!(err, EvaxError::Io { .. }), "{err}");

        for name in ["truncated.snap", "badmagic.snap", "bitflip.snap"] {
            std::fs::remove_file(dir.join(name)).ok();
        }
    }
}
