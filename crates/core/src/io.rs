//! Dataset and model persistence: CSV for datasets (interoperable with any
//! external ML tooling) and a compact binary format for normalizers.
//!
//! The CSV layout is one row per sample: `class,<f0>,<f1>,...` with a header
//! row naming the HPCs, so a dataset exported here drops straight into
//! pandas/scikit-learn for anyone who wants to try their own detector on
//! the simulator's HPC streams.

use std::io::{BufRead, BufReader, Read, Write};

use crate::dataset::{Dataset, Normalizer, Sample, N_CLASSES};

/// Errors reading persisted datasets.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The content failed to parse.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, reason } => write!(f, "parse error at line {line}: {reason}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes a dataset as CSV with a header naming each feature.
///
/// `feature_names` may be shorter than the feature dimension; missing names
/// are filled as `f<i>`.
///
/// # Errors
/// Propagates writer failures.
pub fn write_csv<W: Write>(ds: &Dataset, feature_names: &[&str], mut w: W) -> Result<(), IoError> {
    let dim = ds.feature_dim();
    write!(w, "class")?;
    for i in 0..dim {
        match feature_names.get(i) {
            Some(name) => write!(w, ",{name}")?,
            None => write!(w, ",f{i}")?,
        }
    }
    writeln!(w)?;
    for s in &ds.samples {
        write!(w, "{}", s.class)?;
        for &v in &s.features {
            write!(w, ",{v}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Reads a dataset from the CSV produced by [`write_csv`] (the header row is
/// required and skipped).
///
/// # Errors
/// Returns [`IoError::Parse`] with the offending line on malformed content.
pub fn read_csv<R: Read>(r: R) -> Result<Dataset, IoError> {
    let reader = BufReader::new(r);
    let mut ds = Dataset::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if idx == 0 {
            if !line.starts_with("class") {
                return Err(IoError::Parse {
                    line: 1,
                    reason: "missing 'class,...' header".into(),
                });
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let mut fields = line.split(',');
        let class: usize = fields
            .next()
            .ok_or_else(|| IoError::Parse {
                line: idx + 1,
                reason: "empty row".into(),
            })?
            .trim()
            .parse()
            .map_err(|e| IoError::Parse {
                line: idx + 1,
                reason: format!("bad class: {e}"),
            })?;
        if class >= N_CLASSES {
            return Err(IoError::Parse {
                line: idx + 1,
                reason: format!("class {class} out of range (< {N_CLASSES})"),
            });
        }
        let features: Result<Vec<f32>, IoError> = fields
            .map(|f| {
                f.trim().parse::<f32>().map_err(|e| IoError::Parse {
                    line: idx + 1,
                    reason: format!("bad feature '{f}': {e}"),
                })
            })
            .collect();
        let features = features?;
        if features.is_empty() {
            return Err(IoError::Parse {
                line: idx + 1,
                reason: "row has no features".into(),
            });
        }
        if ds.feature_dim() != 0 && features.len() != ds.feature_dim() {
            return Err(IoError::Parse {
                line: idx + 1,
                reason: format!(
                    "row has {} features, expected {}",
                    features.len(),
                    ds.feature_dim()
                ),
            });
        }
        ds.push(Sample::new(features, class));
    }
    Ok(ds)
}

/// Writes a normalizer's running maxima as one CSV row.
///
/// # Errors
/// Propagates writer failures.
pub fn write_normalizer<W: Write>(norm: &Normalizer, mut w: W) -> Result<(), IoError> {
    // Round-trip the maxima through a probe vector of ones: normalize(1s)
    // gives 1/max, guarded for zero maxima.
    let dim = norm.dim();
    let probe = vec![1.0f64; dim];
    let inv = norm.normalize(&probe);
    for (i, &v) in inv.iter().enumerate() {
        if i > 0 {
            write!(w, ",")?;
        }
        if v == 0.0 {
            write!(w, "0")?;
        } else {
            write!(w, "{}", 1.0 / v as f64)?;
        }
    }
    writeln!(w)?;
    Ok(())
}

/// Reads a normalizer written by [`write_normalizer`].
///
/// # Errors
/// Returns [`IoError::Parse`] on malformed content.
pub fn read_normalizer<R: Read>(r: R) -> Result<Normalizer, IoError> {
    let mut reader = BufReader::new(r);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let maxes: Result<Vec<f64>, IoError> = line
        .trim()
        .split(',')
        .map(|f| {
            f.parse::<f64>().map_err(|e| IoError::Parse {
                line: 1,
                reason: format!("bad max '{f}': {e}"),
            })
        })
        .collect();
    let maxes = maxes?;
    let mut norm = Normalizer::new(maxes.len());
    norm.observe(&maxes);
    Ok(norm)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dataset() -> Dataset {
        let mut ds = Dataset::new();
        ds.push(Sample::new(vec![0.5, 0.25, 1.0], 0));
        ds.push(Sample::new(vec![0.1, 0.9, 0.0], 3));
        ds
    }

    #[test]
    fn csv_round_trip() {
        let ds = sample_dataset();
        let mut buf = Vec::new();
        write_csv(&ds, &["a", "b"], &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("class,a,b,f2\n"));
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.samples[0].features, ds.samples[0].features);
        assert_eq!(back.samples[1].class, 3);
        assert!(back.samples[1].malicious);
    }

    #[test]
    fn missing_header_rejected() {
        let err = read_csv("1,0.5,0.5\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 1, .. }));
    }

    #[test]
    fn ragged_rows_rejected() {
        let csv = "class,a,b\n0,0.1,0.2\n1,0.3\n";
        let err = read_csv(csv.as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { line: 3, .. }), "{err}");
    }

    #[test]
    fn out_of_range_class_rejected() {
        let csv = "class,a\n99,0.1\n";
        assert!(read_csv(csv.as_bytes()).is_err());
    }

    #[test]
    fn bad_feature_reports_line() {
        let csv = "class,a\n0,0.1\n0,oops\n";
        match read_csv(csv.as_bytes()) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 3),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn normalizer_round_trip() {
        let mut norm = Normalizer::new(3);
        norm.observe(&[10.0, 0.0, 2.5]);
        let mut buf = Vec::new();
        write_normalizer(&norm, &mut buf).unwrap();
        let back = read_normalizer(buf.as_slice()).unwrap();
        assert_eq!(back.dim(), 3);
        let v = back.normalize(&[5.0, 1.0, 2.5]);
        assert!((v[0] - 0.5).abs() < 1e-5);
        assert_eq!(v[1], 0.0); // zero max stays degenerate
        assert!((v[2] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = "class,a\n0,0.5\n\n1,0.7\n";
        let ds = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(ds.len(), 2);
    }
}
