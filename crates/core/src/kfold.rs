//! Leave-one-attack-out cross-validation — the paper's zero-day setting
//! (§VII *Cross Validation Setting*, §VIII-C, Fig. 19).
//!
//! "At every fold, we remove all the samples belonging to one attack in the
//! test set so that they are not used for model selection or AM-GAN
//! training. ... We use a set of fixed features ... but we retrain the
//! weights at each fold."

use evax_attacks::AttackClass;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::collect::CollectConfig;
use crate::dataset::{Dataset, Normalizer};
use crate::detector::{Detector, DetectorKind, TrainConfig};
use crate::fuzz::{collect_corpus, FuzzTool};
use crate::gan::AmGanConfig;
use crate::metrics::Confusion;
use crate::par::{self, Parallelism};
use crate::pipeline::{vaccinate, StageTimings};

/// K-fold experiment configuration.
#[derive(Debug, Clone)]
pub struct KfoldConfig {
    /// AM-GAN training configuration (per fold).
    pub gan: AmGanConfig,
    /// Detector training configuration.
    pub detector: TrainConfig,
    /// Generated attack samples per class for vaccination.
    pub augment_per_class: usize,
    /// Generated benign samples for vaccination.
    pub augment_benign: usize,
    /// Fuzz programs per tool for the P.Fuzzer baseline.
    pub fuzz_programs_per_tool: usize,
    /// Collection config for the fuzz corpus.
    pub collect: CollectConfig,
    /// Sensitivity target when tuning detector thresholds.
    pub tpr_target: f64,
    /// Worker threads for the fold fan-out. Each fold's random stream is
    /// derived from the master seed and the fold index alone, so outcomes
    /// are bit-identical at any setting (see [`crate::par`]).
    pub parallelism: Parallelism,
}

impl Default for KfoldConfig {
    fn default() -> Self {
        KfoldConfig {
            gan: AmGanConfig::small(),
            detector: TrainConfig::default(),
            augment_per_class: 60,
            augment_benign: 200,
            fuzz_programs_per_tool: 2,
            collect: CollectConfig {
                runs_per_attack: 1,
                runs_per_benign: 1,
                ..Default::default()
            },
            tpr_target: 0.5,
            parallelism: Parallelism::Auto,
        }
    }
}

/// Per-fold, per-detector results.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldOutcome {
    /// The held-out attack class.
    pub class: AttackClass,
    /// TPR on the held-out class, per detector.
    pub tpr: DetectorTriple<f64>,
    /// Generalization error on held-out attack + benign holdout.
    pub error: DetectorTriple<f64>,
}

/// A value per compared detector: PerSpectron, fuzz-hardened PerSpectron
/// ("P.Fuzzer"), and EVAX.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DetectorTriple<T> {
    /// Plain PerSpectron baseline.
    pub perspectron: T,
    /// PerSpectron hardened with fuzz-tool samples.
    pub pfuzzer: T,
    /// The vaccinated EVAX detector.
    pub evax: T,
}

/// Runs leave-one-out folds for the given classes.
///
/// `dataset` must contain samples of every fold class plus benign samples;
/// `norm` is the normalizer fitted during collection (needed to normalize
/// the fuzz corpus consistently).
pub fn leave_one_out(
    dataset: &Dataset,
    norm: &Normalizer,
    classes: &[AttackClass],
    cfg: &KfoldConfig,
    seed: u64,
) -> Vec<FoldOutcome> {
    // The fuzz corpus is generated once; folds filter out their held-out
    // class so the baseline never trains on the attack it is tested on.
    let fuzz_all = collect_corpus(
        &[FuzzTool::Transynther, FuzzTool::TrRespass, FuzzTool::Osiris],
        cfg.fuzz_programs_per_tool,
        &cfg.collect,
        norm,
        seed ^ 0xFA77,
    );

    // Folds are independent by construction — each derives its random
    // stream from the master seed and its fold index alone — so they fan
    // out across workers and merge back in class order.
    par::map_indexed(cfg.parallelism, classes, |fold, &class| {
        run_fold(dataset, &fuzz_all, class, fold, cfg, seed)
    })
}

/// Runs one leave-one-out fold: retrains all three detectors without the
/// held-out class and scores them on it.
fn run_fold(
    dataset: &Dataset,
    fuzz_all: &Dataset,
    class: AttackClass,
    fold: usize,
    cfg: &KfoldConfig,
    seed: u64,
) -> FoldOutcome {
    {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(fold as u64 * 1315423911));
        let mut train = dataset.clone();
        let held_out = train.remove_class(class.label());
        // Benign holdout for error measurement.
        let (train, benign_holdout) = {
            let (mut tr, mut te) = train.split(0.2, &mut rng);
            te.samples.retain(|s| !s.malicious);
            tr.samples.extend(
                // Malicious samples from the split's test half return to
                // training (only benign is held out here).
                Vec::new(),
            );
            (tr, te)
        };
        let mut test = held_out;
        for s in &benign_holdout.samples {
            test.push(s.clone());
        }

        // --- PerSpectron ---
        let mut perspectron = Detector::train(
            DetectorKind::PerSpectron,
            &train,
            vec![],
            &cfg.detector,
            &mut rng,
        );
        perspectron.tune_above_benign(&train, 0.9995, 0.05);

        // --- P.Fuzzer: PerSpectron + fuzz corpus (held-out class removed) ---
        let mut fuzz_train = train.clone();
        for s in &fuzz_all.samples {
            if s.class != class.label() {
                fuzz_train.push(s.clone());
            }
        }
        let mut pfuzzer = Detector::train(
            DetectorKind::PerSpectron,
            &fuzz_train,
            vec![],
            &cfg.detector,
            &mut rng,
        );
        pfuzzer.tune_above_benign(&fuzz_train, 0.9995, 0.05);

        // --- EVAX: the shared vaccination sequence (AM-GAN → engineer →
        //     augment → train → tune) on the fold's training data ---
        let evax = vaccinate(
            &train,
            &cfg.gan,
            &cfg.detector,
            cfg.augment_per_class,
            cfg.augment_benign,
            &mut rng,
            &mut StageTimings::default(),
        )
        .detector;

        // Evaluation dispatches through the trait-level model view — the
        // same path hardened variants (stochastic/ensemble) take — which is
        // bit-identical to the inherent scoring chain for the concrete
        // detector (see `evax_nn::detector`'s pinning contract).
        let triple = |det: &Detector| {
            let mut attack_only = Dataset::new();
            for s in test.samples.iter().filter(|s| s.malicious) {
                attack_only.push(s.clone());
            }
            let model: &dyn evax_nn::detector::Detector = det;
            let tpr = Confusion::evaluate_model(det, model, &attack_only).tpr();
            let err = Confusion::evaluate_model(det, model, &test).error();
            (tpr, err)
        };
        let (p_tpr, p_err) = triple(&perspectron);
        let (f_tpr, f_err) = triple(&pfuzzer);
        let (e_tpr, e_err) = triple(&evax);
        FoldOutcome {
            class,
            tpr: DetectorTriple {
                perspectron: p_tpr,
                pfuzzer: f_tpr,
                evax: e_tpr,
            },
            error: DetectorTriple {
                perspectron: p_err,
                pfuzzer: f_err,
                evax: e_err,
            },
        }
    }
}

/// Mean generalization error over folds, per detector (Fig. 19's summary).
pub fn mean_errors(folds: &[FoldOutcome]) -> DetectorTriple<f64> {
    let n = folds.len().max(1) as f64;
    DetectorTriple {
        perspectron: folds.iter().map(|f| f.error.perspectron).sum::<f64>() / n,
        pfuzzer: folds.iter().map(|f| f.error.pfuzzer).sum::<f64>() / n,
        evax: folds.iter().map(|f| f.error.evax).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::collect_dataset;

    #[test]
    #[ignore = "slow: runs simulation + GAN training; exercised by the experiments harness"]
    fn single_fold_runs_end_to_end() {
        let collect = CollectConfig {
            interval: 200,
            runs_per_attack: 1,
            runs_per_benign: 1,
            max_instrs: 3_000,
            benign_scale: 3_000,
            ..Default::default()
        };
        let (ds, norm) = collect_dataset(&collect, 3);
        let cfg = KfoldConfig {
            gan: AmGanConfig {
                epochs: 3,
                ..AmGanConfig::small()
            },
            fuzz_programs_per_tool: 1,
            collect,
            ..Default::default()
        };
        let folds = leave_one_out(&ds, &norm, &[AttackClass::Drama], &cfg, 5);
        assert_eq!(folds.len(), 1);
        let f = &folds[0];
        assert!(f.tpr.evax >= 0.0 && f.tpr.evax <= 1.0);
        assert!(f.error.perspectron >= 0.0 && f.error.perspectron <= 1.0);
    }

    /// Fold fan-out equivalence: outcomes are byte-identical whether folds
    /// run serially or across more workers than this machine has cores.
    /// Slow (two full k-fold runs with GAN training), so it is gated the
    /// same way as the end-to-end pipeline test.
    #[test]
    fn parallel_folds_match_serial_bitwise() {
        if std::env::var("EVAX_SLOW_TESTS").is_err() {
            eprintln!("skipping parallel_folds_match_serial_bitwise: set EVAX_SLOW_TESTS=1");
            return;
        }
        let collect = CollectConfig {
            interval: 200,
            runs_per_attack: 1,
            runs_per_benign: 1,
            max_instrs: 3_000,
            benign_scale: 3_000,
            parallelism: Parallelism::serial(),
            ..Default::default()
        };
        let (ds, norm) = collect_dataset(&collect, 3);
        let base = KfoldConfig {
            gan: AmGanConfig {
                epochs: 2,
                ..AmGanConfig::small()
            },
            fuzz_programs_per_tool: 1,
            collect,
            parallelism: Parallelism::serial(),
            ..Default::default()
        };
        let classes = [AttackClass::Drama, AttackClass::FlushReload];
        let serial = leave_one_out(&ds, &norm, &classes, &base, 5);
        let mut par_cfg = base.clone();
        par_cfg.parallelism = Parallelism::Fixed(4);
        par_cfg.collect.parallelism = Parallelism::Fixed(3);
        let parallel = leave_one_out(&ds, &norm, &classes, &par_cfg, 5);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn mean_errors_averages() {
        let folds = vec![
            FoldOutcome {
                class: AttackClass::Drama,
                tpr: DetectorTriple::default(),
                error: DetectorTriple {
                    perspectron: 0.2,
                    pfuzzer: 0.1,
                    evax: 0.02,
                },
            },
            FoldOutcome {
                class: AttackClass::Lvi,
                tpr: DetectorTriple::default(),
                error: DetectorTriple {
                    perspectron: 0.4,
                    pfuzzer: 0.3,
                    evax: 0.04,
                },
            },
        ];
        let m = mean_errors(&folds);
        assert!((m.perspectron - 0.3).abs() < 1e-12);
        assert!((m.evax - 0.03).abs() < 1e-12);
    }
}
