//! # evax-core — the EVAX framework (paper §V–§VI)
//!
//! This crate implements the paper's primary contribution on top of the
//! `evax-sim`/`evax-attacks` substrate:
//!
//! * [`dataset`]/[`collect`] — HPC sample collection from simulated attack
//!   and benign runs, with running-max normalization (§VII).
//! * [`gram`] — the Gram-matrix *attack style loss* `L_GM`, EVAX's quality
//!   and interpretability metric for generated samples (§V-D, Figs. 6–7).
//! * [`gan`] — the **AM-GAN**: a deep conditional Generator against a
//!   shallow, detector-shaped Discriminator, trained per Fig. 4's algorithm;
//!   sample collection gated by the style loss.
//! * [`feature_engineering`] — automatic security-HPC engineering: mining
//!   the trained Generator's hidden weights for concentrated HPC
//!   combinations, yielding the 12 new counters of Table I (§VI-A).
//! * [`detector`] — the deployed hardware detector (quantized perceptron)
//!   and the PerSpectron baseline; *vaccination* = retraining on the
//!   AM-GAN-augmented dataset (§V-C).
//! * [`featurize`] — the unified streaming featurization pipeline: one
//!   window→feature path ([`featurize::WindowSource`] → delta → normalize →
//!   engineered projection → pluggable sinks) shared by collection,
//!   training corpora and the online adaptive defense, with a serializable
//!   [`featurize::Featurizer`] so train and deploy transforms never drift.
//! * [`fuzz`] — analogs of Transynther / TRRespass / Osiris plus manual
//!   evasive transforms, generating the evasive corpora of Fig. 17.
//! * [`aml`] — adversarial-ML evasion bounded by the transient window /
//!   ROB budget (Figs. 2 and 18): perturbations large enough to evade a
//!   hardened detector disable the attack.
//! * [`io`] — CSV dataset export/import (drop the HPC streams into any
//!   external ML tooling), normalizer/featurizer persistence, and the
//!   bundled model format.
//! * [`error`] — the crate-wide typed error ([`error::EvaxError`]) every
//!   fallible API returns, with path/line/expected-got context.
//! * [`faults`] — deterministic fault injection (storage / data /
//!   inference injectors, bounded retry) behind no-op-default hooks; the
//!   robustness layer the `evax-bench` `fault_matrix` chaos harness
//!   drives to prove the pipeline fails secure.
//! * [`prelude`] — one-import access to the stable API surface.
//! * [`metrics`] — accuracy, FP/FN rates per instruction window, ROC/AUC.
//! * [`patch`] — vendor-distributed detector updates (§VI-B), a
//!   microcode-style monotone-revision update slot with integrity checks.
//! * [`replicated`] — replicated per-pipeline-region feature detectors
//!   (§VI-A): suppressing one region's footprint does not evade the rest.
//! * [`kfold`] — leave-one-attack-out cross-validation (zero-day setting,
//!   Fig. 19 and the §VIII-C TPR headlines).
//! * [`par`] — the deterministic parallel execution substrate (scoped
//!   threads + atomic work-queue) behind collection, k-fold, fuzz corpora
//!   and holdout scoring; results are bit-identical at any thread count.
//! * [`deep_eval`] — EVAX training applied to 1/16/32-layer deep networks
//!   (Fig. 20).
//! * [`pipeline`] — the end-to-end `collect → AM-GAN → engineer →
//!   vaccinate` flow with one entry point.
//!
//! ## Example
//!
//! ```no_run
//! use evax_core::pipeline::{EvaxConfig, EvaxPipeline};
//!
//! let config = EvaxConfig::small(); // laptop-scale corpus
//! let pipeline = EvaxPipeline::run(&config, 42);
//! let report = pipeline.evaluate_holdout();
//! println!("detector accuracy: {:.3}", report.accuracy);
//! ```
//!
//! ## Stable vs. internal surface
//!
//! The *stable* surface is what [`prelude`] re-exports: the dataset types,
//! the detector, the streaming featurization entry points, persistence, the
//! error model, the parallelism switch and the pipeline configs with their
//! builders. Items reachable only through module paths (layer internals,
//! loss plumbing, the GAN's training internals) are *internal*: public for
//! reproduction scripts and tests, but free to change between minor
//! versions. New code should import from the prelude; if something you need
//! is missing there, treat that as an API request, not an invitation to
//! reach into internals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aml;
pub mod collect;
pub mod dataset;
pub mod deep_eval;
pub mod detector;
pub mod error;
pub mod faults;
pub mod feature_engineering;
pub mod featurize;
pub mod fuzz;
pub mod gan;
pub mod gram;
pub mod io;
pub mod kfold;
pub mod metrics;
pub mod par;
pub mod patch;
pub mod pipeline;
pub mod prelude;
pub mod replicated;

pub use dataset::{Dataset, Normalizer, Sample, BENIGN_CLASS, N_CLASSES};
pub use detector::{Detector, DetectorKind};
pub use error::{EvaxError, Result};
pub use featurize::{
    Featurizer, ProgramSource, RawWindow, StreamStats, WindowBatch, WindowSink, WindowSource,
};
pub use gram::{gram_matrix, style_loss, style_loss_normalized};
pub use par::Parallelism;
