//! Evaluation metrics: confusion counts, FP/FN per instruction window,
//! ROC/AUC and generalization error.

use crate::dataset::Dataset;
use crate::detector::Detector;
use crate::par::{self, Parallelism};

/// Binary confusion counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Confusion {
    /// Malicious classified malicious.
    pub tp: u64,
    /// Benign classified benign.
    pub tn: u64,
    /// Benign classified malicious.
    pub fp: u64,
    /// Malicious classified benign.
    pub fn_: u64,
}

impl Confusion {
    /// Evaluates a detector over a dataset, fanning scoring out across the
    /// machine's cores (counts are integer sums, so the result is identical
    /// at any thread count).
    pub fn evaluate(det: &Detector, ds: &Dataset) -> Confusion {
        Self::evaluate_par(det, ds, Parallelism::Auto)
    }

    /// Evaluates any trait-level model over a dataset: `transform` maps
    /// each sample's base features into the model's extended input space
    /// (see [`Detector::transform_into`]), and the verdict comes from the
    /// model's own [`evax_nn::detector::Detector::decide`]. With
    /// `model = transform` (the concrete detector's own trait impl) this is
    /// bit-identical to [`Confusion::evaluate`]; counts are integer sums,
    /// so the result is identical at any thread count.
    pub fn evaluate_model(
        transform: &Detector,
        model: &dyn evax_nn::detector::Detector,
        ds: &Dataset,
    ) -> Confusion {
        const CHUNK: usize = 256;
        let chunks: Vec<&[crate::dataset::Sample]> = ds.samples.chunks(CHUNK).collect();
        let partials = par::map(Parallelism::Auto, &chunks, |chunk| {
            let mut c = Confusion::default();
            let mut extended = Vec::new();
            let mut scratch = evax_nn::DetectorScratch::new();
            for s in *chunk {
                transform.transform_into(&s.features, &mut extended);
                let verdict = model.classify(&extended, &mut scratch);
                match (s.malicious, verdict) {
                    (true, true) => c.tp += 1,
                    (true, false) => c.fn_ += 1,
                    (false, true) => c.fp += 1,
                    (false, false) => c.tn += 1,
                }
            }
            c
        });
        partials
            .into_iter()
            .fold(Confusion::default(), |a, b| Confusion {
                tp: a.tp + b.tp,
                tn: a.tn + b.tn,
                fp: a.fp + b.fp,
                fn_: a.fn_ + b.fn_,
            })
    }

    /// [`Confusion::evaluate`] with an explicit thread policy.
    pub fn evaluate_par(det: &Detector, ds: &Dataset, parallelism: Parallelism) -> Confusion {
        // Coarse chunks: scoring one sample is cheap, so per-sample work
        // items would be all queue traffic.
        const CHUNK: usize = 256;
        let chunks: Vec<&[crate::dataset::Sample]> = ds.samples.chunks(CHUNK).collect();
        let partials = par::map(parallelism, &chunks, |chunk| {
            let mut c = Confusion::default();
            for s in *chunk {
                match (s.malicious, det.classify_sample(s)) {
                    (true, true) => c.tp += 1,
                    (true, false) => c.fn_ += 1,
                    (false, true) => c.fp += 1,
                    (false, false) => c.tn += 1,
                }
            }
            c
        });
        partials
            .into_iter()
            .fold(Confusion::default(), |a, b| Confusion {
                tp: a.tp + b.tp,
                tn: a.tn + b.tn,
                fp: a.fp + b.fp,
                fn_: a.fn_ + b.fn_,
            })
    }

    /// Total samples.
    pub fn total(&self) -> u64 {
        self.tp + self.tn + self.fp + self.fn_
    }

    /// Fraction correct.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / self.total() as f64
        }
    }

    /// True-positive rate (sensitivity).
    pub fn tpr(&self) -> f64 {
        let p = self.tp + self.fn_;
        if p == 0 {
            0.0
        } else {
            self.tp as f64 / p as f64
        }
    }

    /// False-positive rate.
    pub fn fpr(&self) -> f64 {
        let n = self.fp + self.tn;
        if n == 0 {
            0.0
        } else {
            self.fp as f64 / n as f64
        }
    }

    /// False-negative rate (0.0 when there are no malicious samples —
    /// `1.0 - tpr()` would claim a 100% miss rate on zero samples).
    pub fn fnr(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            1.0 - self.tpr()
        }
    }

    /// Generalization (classification) error (0.0 on an empty matrix —
    /// `1.0 - accuracy()` would claim 100% error on zero samples).
    pub fn error(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            1.0 - self.accuracy()
        }
    }

    /// False positives per `window` committed instructions, given that each
    /// sample covers `sample_interval` instructions (paper Fig. 15 reports
    /// FPs per 10k instructions at each sampling granularity).
    pub fn fp_per_instructions(&self, sample_interval: u64, window: u64) -> f64 {
        let benign = self.fp + self.tn;
        // A zero interval means zero instructions were covered: report 0
        // rather than ±Inf/NaN from the division.
        if benign == 0 || sample_interval == 0 {
            return 0.0;
        }
        let benign_instrs = benign * sample_interval;
        self.fp as f64 * window as f64 / benign_instrs as f64
    }

    /// False negatives per `window` instructions (over malicious samples).
    pub fn fn_per_instructions(&self, sample_interval: u64, window: u64) -> f64 {
        let mal = self.tp + self.fn_;
        if mal == 0 || sample_interval == 0 {
            return 0.0;
        }
        let mal_instrs = mal * sample_interval;
        self.fn_ as f64 * window as f64 / mal_instrs as f64
    }
}

/// A point on a ROC curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocPoint {
    /// False-positive rate.
    pub fpr: f64,
    /// True-positive rate.
    pub tpr: f64,
    /// The threshold that produced this point.
    pub threshold: f32,
}

/// The degenerate ROC: the `(0,0) → (1,1)` diagonal, returned for inputs
/// the sweep cannot rank (empty, all-NaN, or single-class). Its [`auc`] is
/// the chance level 0.5, which never over-states a detector.
fn trivial_roc() -> Vec<RocPoint> {
    vec![
        RocPoint {
            fpr: 0.0,
            tpr: 0.0,
            threshold: f32::INFINITY,
        },
        RocPoint {
            fpr: 1.0,
            tpr: 1.0,
            threshold: f32::NEG_INFINITY,
        },
    ]
}

/// Computes a ROC curve from `(score, is_malicious)` pairs, sweeping the
/// threshold over every distinct score. Points are ordered by ascending FPR.
///
/// Degenerate inputs are handled fail-safe rather than corrupting the
/// sweep: NaN scores are filtered out before sorting (they previously
/// scrambled the `partial_cmp` ordering and with it every downstream
/// point), and single-class inputs (`p == 0` or `n == 0`, whose rates
/// would divide by zero) return the trivial diagonal curve.
pub fn roc_curve(scored: &[(f32, bool)]) -> Vec<RocPoint> {
    let mut sorted: Vec<(f32, bool)> = scored
        .iter()
        .copied()
        .filter(|(s, _)| !s.is_nan())
        .collect();
    // Debug builds log the drop count; release builds filter silently
    // (the curve itself is the deliverable, and NaN scores carry no rank).
    #[cfg(debug_assertions)]
    if sorted.len() < scored.len() {
        eprintln!(
            "roc_curve: dropped {} NaN-scored samples of {}",
            scored.len() - sorted.len(),
            scored.len()
        );
    }
    // `total_cmp` is total on the NaN-free remainder (and deterministic
    // for ±0.0 ties, unlike the old `partial_cmp(..).unwrap_or(Equal)`).
    sorted.sort_by(|a, b| b.0.total_cmp(&a.0));
    let p = sorted.iter().filter(|(_, m)| *m).count() as f64;
    let n = sorted.len() as f64 - p;
    if p == 0.0 || n == 0.0 {
        return trivial_roc();
    }
    let mut points = vec![RocPoint {
        fpr: 0.0,
        tpr: 0.0,
        threshold: f32::INFINITY,
    }];
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut i = 0;
    while i < sorted.len() {
        let t = sorted[i].0;
        // Consume all samples at this threshold together.
        while i < sorted.len() && sorted[i].0 == t {
            if sorted[i].1 {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
            i += 1;
        }
        points.push(RocPoint {
            fpr: fp / n,
            tpr: tp / p,
            threshold: t,
        });
    }
    points
}

/// Area under a ROC curve (trapezoidal).
pub fn auc(points: &[RocPoint]) -> f64 {
    let mut area = 0.0;
    for w in points.windows(2) {
        area += (w[1].fpr - w[0].fpr) * (w[0].tpr + w[1].tpr) / 2.0;
    }
    area
}

/// Scores every sample of a dataset with a detector, for [`roc_curve`].
pub fn score_dataset(det: &Detector, ds: &Dataset) -> Vec<(f32, bool)> {
    ds.samples
        .iter()
        .map(|s| (det.score(&s.features), s.malicious))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_rates() {
        let c = Confusion {
            tp: 90,
            fn_: 10,
            fp: 5,
            tn: 95,
        };
        assert!((c.accuracy() - 0.925).abs() < 1e-12);
        assert!((c.tpr() - 0.9).abs() < 1e-12);
        assert!((c.fpr() - 0.05).abs() < 1e-12);
        assert!((c.error() - 0.075).abs() < 1e-12);
    }

    #[test]
    fn fp_per_10k_instructions() {
        // 100 benign samples at interval 100 = 10k benign instructions;
        // 2 FPs -> 2 per 10k.
        let c = Confusion {
            tp: 0,
            fn_: 0,
            fp: 2,
            tn: 98,
        };
        assert!((c.fp_per_instructions(100, 10_000) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_classifier_has_auc_one() {
        let scored = vec![(0.9, true), (0.8, true), (0.2, false), (0.1, false)];
        let roc = roc_curve(&scored);
        assert!((auc(&roc) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn random_classifier_has_auc_half() {
        // Interleaved scores -> diagonal ROC.
        let scored = vec![
            (0.8, true),
            (0.8, false),
            (0.6, true),
            (0.6, false),
            (0.4, true),
            (0.4, false),
        ];
        let roc = roc_curve(&scored);
        assert!((auc(&roc) - 0.5).abs() < 0.01, "auc={}", auc(&roc));
    }

    #[test]
    fn roc_monotone_in_fpr() {
        let scored = vec![
            (0.9, true),
            (0.5, false),
            (0.6, true),
            (0.2, false),
            (0.7, false),
        ];
        let roc = roc_curve(&scored);
        for w in roc.windows(2) {
            assert!(w[1].fpr >= w[0].fpr);
            assert!(w[1].tpr >= w[0].tpr);
        }
        assert_eq!(roc.last().unwrap().fpr, 1.0);
        assert_eq!(roc.last().unwrap().tpr, 1.0);
    }

    #[test]
    fn empty_confusion_reports_zero_not_one() {
        let c = Confusion::default();
        assert_eq!(c.fnr(), 0.0, "no samples means no misses");
        assert_eq!(c.error(), 0.0, "no samples means no errors");
        assert_eq!(c.tpr(), 0.0);
        assert_eq!(c.accuracy(), 0.0);
    }

    #[test]
    fn single_class_fnr_is_defined() {
        // Benign-only matrix: the malicious denominator is zero.
        let c = Confusion {
            tp: 0,
            fn_: 0,
            fp: 1,
            tn: 9,
        };
        assert_eq!(c.fnr(), 0.0);
        assert!((c.error() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_sample_interval_yields_zero_not_inf() {
        let c = Confusion {
            tp: 1,
            fn_: 2,
            fp: 3,
            tn: 4,
        };
        assert_eq!(c.fp_per_instructions(0, 10_000), 0.0);
        assert_eq!(c.fn_per_instructions(0, 10_000), 0.0);
        assert!(c.fp_per_instructions(100, 10_000).is_finite());
    }

    #[test]
    fn nan_scores_are_filtered_from_roc() {
        let clean = vec![(0.9, true), (0.8, true), (0.2, false), (0.1, false)];
        let mut noisy = clean.clone();
        noisy.insert(1, (f32::NAN, false));
        noisy.push((f32::NAN, true));
        let roc_clean = roc_curve(&clean);
        let roc_noisy = roc_curve(&noisy);
        assert_eq!(roc_clean, roc_noisy, "NaN rows must not perturb the curve");
        assert!((auc(&roc_noisy) - 1.0).abs() < 1e-9);
        for pt in &roc_noisy {
            assert!(pt.fpr.is_finite() && pt.tpr.is_finite());
        }
    }

    #[test]
    fn single_class_inputs_return_the_trivial_curve() {
        for scored in [
            vec![],                                    // empty
            vec![(f32::NAN, true), (f32::NAN, false)], // all NaN
            vec![(0.9, true), (0.3, true)],            // malicious only
            vec![(0.9, false), (0.3, false)],          // benign only
        ] {
            let roc = roc_curve(&scored);
            assert_eq!(roc.len(), 2, "trivial curve for {scored:?}");
            assert_eq!((roc[0].fpr, roc[0].tpr), (0.0, 0.0));
            assert_eq!((roc[1].fpr, roc[1].tpr), (1.0, 1.0));
            assert!((auc(&roc) - 0.5).abs() < 1e-12, "chance-level AUC");
        }
    }
}
