//! Dependency-free deterministic parallel execution substrate.
//!
//! The EVAX pipeline is dominated by embarrassingly-parallel work: running
//! attack/benign programs through the cycle-level simulator to collect HPC
//! windows, k-fold retraining, fuzz-corpus generation, and holdout scoring.
//! This module provides the one primitive they all share — a deterministic
//! `map` over a work list — built purely on `std::thread::scope` plus an
//! atomic work-queue, so the workspace stays hermetic (no rayon).
//!
//! # Determinism contract
//!
//! [`map`] guarantees the output is **bit-identical at any thread count**:
//!
//! 1. Work items are fixed before the fan-out; every per-item random stream
//!    is derived from a child seed assigned in canonical item order (callers
//!    pre-derive seeds from their master RNG — see
//!    [`crate::collect::collect_dataset`]).
//! 2. Each item is computed by exactly one worker, with no shared mutable
//!    state, so its result does not depend on scheduling.
//! 3. Results are merged back in item order, not completion order.
//!
//! Thread count resolution (highest priority first): explicit
//! [`Parallelism::Fixed`], the `EVAX_THREADS` environment variable, then
//! [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};

/// How many worker threads a parallel stage may use.
///
/// Plumbed through [`crate::pipeline::EvaxConfig`],
/// [`crate::collect::CollectConfig`] and [`crate::kfold::KfoldConfig`];
/// `Auto` defers to `EVAX_THREADS` / the machine size at call time, so a
/// stored config stays portable across hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Resolve from `EVAX_THREADS`, falling back to the available cores.
    #[default]
    Auto,
    /// Exactly this many threads (clamped to at least 1). `Fixed(1)` forces
    /// the serial path — useful for baselines and equivalence tests.
    Fixed(usize),
}

impl Parallelism {
    /// Single-threaded execution.
    pub const fn serial() -> Self {
        Parallelism::Fixed(1)
    }

    /// The concrete worker count this policy resolves to right now.
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Auto => env_threads().unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            }),
        }
    }
}

/// Parses `EVAX_THREADS` (ignored when unset, empty, zero or malformed).
fn env_threads() -> Option<usize> {
    let raw = std::env::var("EVAX_THREADS").ok()?;
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// Maps `f` over `items`, returning results in item order.
///
/// Runs serially when the policy resolves to one thread or there is at most
/// one item; otherwise spawns scoped workers that pull item indices from an
/// atomic queue. See the module docs for the determinism contract.
///
/// # Panics
/// Propagates the first worker panic (the panicking closure's payload).
pub fn map<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = par.threads().min(items.len().max(1));
    if threads <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    let worker = |queue: &AtomicUsize| {
        let mut produced: Vec<(usize, R)> = Vec::new();
        loop {
            let idx = queue.fetch_add(1, Ordering::Relaxed);
            if idx >= items.len() {
                return produced;
            }
            produced.push((idx, f(&items[idx])));
        }
    };

    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| scope.spawn(|| worker(&next)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(results) => results,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    for (idx, result) in per_worker.into_iter().flatten() {
        debug_assert!(slots[idx].is_none(), "work item {idx} produced twice");
        slots[idx] = Some(result);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(idx, slot)| slot.unwrap_or_else(|| panic!("work item {idx} never completed")))
        .collect()
}

/// Maps `f` over index/item pairs — convenience for callers whose work-item
/// identity is positional (fold number, experiment number, …).
pub fn map_indexed<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let indexed: Vec<(usize, &T)> = items.iter().enumerate().collect();
    map(par, &indexed, |(i, item)| f(*i, item))
}

/// Canonical round-robin shard assignment: item `i` goes to shard
/// `i % n_shards`, and each shard lists its items in ascending order.
///
/// This is the fleet scheduler's stream→shard layout. The shard count is
/// part of the *configuration*, never derived from the thread count, so the
/// work decomposition — and with it every shard-local decision (batch
/// composition, flush timing) — is identical no matter how many workers
/// [`map`] fans the shards out across. Empty when `n_items == 0`;
/// `n_shards` is clamped to at least 1 and at most `n_items`.
pub fn round_robin_shards(n_items: usize, n_shards: usize) -> Vec<Vec<usize>> {
    if n_items == 0 {
        return Vec::new();
    }
    let n_shards = n_shards.clamp(1, n_items);
    let mut shards = vec![Vec::with_capacity(n_items.div_ceil(n_shards)); n_shards];
    for i in 0..n_items {
        shards[i % n_shards].push(i);
    }
    shards
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_shards_cover_all_items_once() {
        let shards = round_robin_shards(10, 3);
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[0], vec![0, 3, 6, 9]);
        assert_eq!(shards[1], vec![1, 4, 7]);
        assert_eq!(shards[2], vec![2, 5, 8]);
        let mut all: Vec<usize> = shards.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        // Degenerate shapes.
        assert!(round_robin_shards(0, 4).is_empty());
        assert_eq!(round_robin_shards(2, 8).len(), 2); // clamped to n_items
        assert_eq!(round_robin_shards(5, 0).len(), 1); // clamped to 1
    }

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        let serial = map(Parallelism::serial(), &items, |&x| x * x);
        for threads in [2, 3, 8, 64] {
            let parallel = map(Parallelism::Fixed(threads), &items, |&x| x * x);
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(map(Parallelism::Fixed(4), &empty, |&x| x).is_empty());
        assert_eq!(map(Parallelism::Fixed(4), &[7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn map_indexed_passes_positions() {
        let items = ["a", "b", "c"];
        let out = map_indexed(Parallelism::Fixed(2), &items, |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn fixed_clamps_to_one() {
        assert_eq!(Parallelism::Fixed(0).threads(), 1);
        assert_eq!(Parallelism::serial().threads(), 1);
    }

    #[test]
    fn auto_resolves_to_at_least_one() {
        assert!(Parallelism::Auto.threads() >= 1);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items: Vec<u32> = (0..3).collect();
        assert_eq!(
            map(Parallelism::Fixed(16), &items, |&x| x + 1),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..8).collect();
        let result = std::panic::catch_unwind(|| {
            map(Parallelism::Fixed(2), &items, |&x| {
                assert!(x != 5, "boom on 5");
                x
            })
        });
        assert!(result.is_err());
    }
}
