//! Vendor-distributed detector updates (paper §VI-B, *Weight & Feature
//! Updates*): "EVAX is capable of being updated via a vendor distributed
//! patch. We anticipate newly emerging attacks in the future will require
//! updates to neural weights and additions to the set of features being
//! monitored. This is a process similar to microcode updates."
//!
//! A [`DetectorPatch`] carries the deployed perceptron's weights, threshold,
//! engineered-feature definitions and a version counter, serialized to a
//! self-describing binary blob with an integrity checksum — the artifact a
//! vendor would sign and ship.

use crate::detector::Detector;
use crate::feature_engineering::EngineeredFeature;

/// Magic prefix identifying a detector patch blob.
const MAGIC: &[u8; 4] = b"EVXP";
/// Current patch format version.
const FORMAT_VERSION: u16 = 1;

/// A deployable detector update.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DetectorPatch {
    /// Monotonically increasing patch revision (microcode-style).
    pub revision: u32,
    /// Baseline feature dimension the patch expects (must match the HPC
    /// space of the core being patched).
    pub base_dim: usize,
    /// Perceptron weights over the extended (base + engineered) space.
    pub weights: Vec<f32>,
    /// Perceptron bias.
    pub bias: f32,
    /// Decision threshold.
    pub threshold: f32,
    /// Presence-bit cut for the quantized datapath.
    pub presence_cut: f32,
    /// Engineered security-HPC definitions (wiring for the combiner logic).
    pub engineered: Vec<EngineeredFeature>,
}

/// Errors applying or decoding a patch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatchError {
    /// Blob does not start with the patch magic.
    BadMagic,
    /// Format version is newer than this implementation understands.
    UnsupportedVersion(u16),
    /// Integrity checksum mismatch (corrupt or tampered blob).
    ChecksumMismatch,
    /// Payload failed to decode.
    Malformed(String),
    /// The patch targets a different baseline feature dimension.
    DimensionMismatch {
        /// Dimension the patch expects.
        expected: usize,
        /// Dimension of the core being patched.
        actual: usize,
    },
    /// The patch revision does not advance the deployed revision.
    StaleRevision {
        /// Revision currently deployed.
        deployed: u32,
        /// Revision offered by the patch.
        offered: u32,
    },
}

impl std::fmt::Display for PatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatchError::BadMagic => write!(f, "not a detector patch blob"),
            PatchError::UnsupportedVersion(v) => write!(f, "unsupported patch format version {v}"),
            PatchError::ChecksumMismatch => write!(f, "patch integrity checksum mismatch"),
            PatchError::Malformed(e) => write!(f, "malformed patch payload: {e}"),
            PatchError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "patch expects {expected} baseline features, core has {actual}"
                )
            }
            PatchError::StaleRevision { deployed, offered } => {
                write!(
                    f,
                    "patch revision {offered} does not advance deployed revision {deployed}"
                )
            }
        }
    }
}

impl std::error::Error for PatchError {}

fn fletcher32(data: &[u8]) -> u32 {
    let mut a: u32 = 0;
    let mut b: u32 = 0;
    for &byte in data {
        a = (a + byte as u32) % 65535;
        b = (b + a) % 65535;
    }
    (b << 16) | a
}

impl DetectorPatch {
    /// Captures a trained detector as a shippable patch.
    pub fn from_detector(detector: &Detector, base_dim: usize, revision: u32) -> Self {
        DetectorPatch {
            revision,
            base_dim,
            weights: detector.perceptron().weights().to_vec(),
            bias: detector.perceptron().bias(),
            threshold: detector.threshold(),
            presence_cut: detector.presence_cut(),
            engineered: detector.engineered().to_vec(),
        }
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut p = Vec::new();
        p.extend_from_slice(&self.revision.to_le_bytes());
        p.extend_from_slice(&(self.base_dim as u32).to_le_bytes());
        p.extend_from_slice(&(self.weights.len() as u32).to_le_bytes());
        for w in &self.weights {
            p.extend_from_slice(&w.to_le_bytes());
        }
        p.extend_from_slice(&self.bias.to_le_bytes());
        p.extend_from_slice(&self.threshold.to_le_bytes());
        p.extend_from_slice(&self.presence_cut.to_le_bytes());
        p.extend_from_slice(&(self.engineered.len() as u32).to_le_bytes());
        for f in &self.engineered {
            let name = f.name.as_bytes();
            p.extend_from_slice(&(name.len() as u32).to_le_bytes());
            p.extend_from_slice(name);
            p.extend_from_slice(&(f.components.len() as u32).to_le_bytes());
            for &c in &f.components {
                p.extend_from_slice(&(c as u32).to_le_bytes());
            }
        }
        p
    }

    fn decode_payload(p: &[u8]) -> Result<Self, PatchError> {
        struct Reader<'a> {
            buf: &'a [u8],
            pos: usize,
        }
        impl<'a> Reader<'a> {
            fn take(&mut self, n: usize) -> Result<&'a [u8], PatchError> {
                let out = self
                    .buf
                    .get(self.pos..self.pos + n)
                    .ok_or_else(|| PatchError::Malformed("truncated field".into()))?;
                self.pos += n;
                Ok(out)
            }
            fn u32(&mut self) -> Result<u32, PatchError> {
                let b = self.take(4)?;
                Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            }
            fn f32(&mut self) -> Result<f32, PatchError> {
                let b = self.take(4)?;
                Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            }
        }
        let mut r = Reader { buf: p, pos: 0 };
        let revision = r.u32()?;
        let base_dim = r.u32()? as usize;
        let n_weights = r.u32()? as usize;
        if n_weights > 1 << 20 {
            return Err(PatchError::Malformed("implausible weight count".into()));
        }
        let mut weights = Vec::with_capacity(n_weights);
        for _ in 0..n_weights {
            weights.push(r.f32()?);
        }
        let bias = r.f32()?;
        let threshold = r.f32()?;
        let presence_cut = r.f32()?;
        let n_eng = r.u32()? as usize;
        if n_eng > 1 << 12 {
            return Err(PatchError::Malformed("implausible feature count".into()));
        }
        let mut engineered = Vec::with_capacity(n_eng);
        for _ in 0..n_eng {
            let name_len = r.u32()? as usize;
            if name_len > 4096 {
                return Err(PatchError::Malformed("implausible name length".into()));
            }
            let name = String::from_utf8(r.take(name_len)?.to_vec())
                .map_err(|_| PatchError::Malformed("feature name not UTF-8".into()))?;
            let n_comp = r.u32()? as usize;
            if n_comp > 64 {
                return Err(PatchError::Malformed("implausible component count".into()));
            }
            let mut components = Vec::with_capacity(n_comp);
            for _ in 0..n_comp {
                components.push(r.u32()? as usize);
            }
            engineered.push(EngineeredFeature { name, components });
        }
        Ok(DetectorPatch {
            revision,
            base_dim,
            weights,
            bias,
            threshold,
            presence_cut,
            engineered,
        })
    }

    /// Serializes to the signed-blob wire format:
    /// `MAGIC | version(u16) | checksum(u32) | payload-len(u32) | payload`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(payload.len() + 14);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&fletcher32(&payload).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes and integrity-checks a patch blob.
    ///
    /// # Errors
    /// Returns a [`PatchError`] for bad magic, unsupported versions,
    /// checksum mismatches or malformed payloads.
    pub fn from_bytes(blob: &[u8]) -> Result<Self, PatchError> {
        if blob.len() < 14 || &blob[..4] != MAGIC {
            return Err(PatchError::BadMagic);
        }
        let version = u16::from_le_bytes([blob[4], blob[5]]);
        if version > FORMAT_VERSION {
            return Err(PatchError::UnsupportedVersion(version));
        }
        let checksum = u32::from_le_bytes([blob[6], blob[7], blob[8], blob[9]]);
        let len = u32::from_le_bytes([blob[10], blob[11], blob[12], blob[13]]) as usize;
        let payload = blob
            .get(14..14 + len)
            .ok_or_else(|| PatchError::Malformed("truncated payload".into()))?;
        if fletcher32(payload) != checksum {
            return Err(PatchError::ChecksumMismatch);
        }
        Self::decode_payload(payload)
    }

    /// Instantiates the deployed detector this patch describes.
    ///
    /// # Errors
    /// Returns [`PatchError::DimensionMismatch`] if `core_base_dim` differs
    /// from the patch's target dimension, or if the weight vector does not
    /// cover base + engineered features.
    pub fn instantiate(&self, core_base_dim: usize) -> Result<Detector, PatchError> {
        if self.base_dim != core_base_dim {
            return Err(PatchError::DimensionMismatch {
                expected: self.base_dim,
                actual: core_base_dim,
            });
        }
        if self.weights.len() != self.base_dim + self.engineered.len() {
            return Err(PatchError::Malformed(format!(
                "weight vector has {} entries for {} features",
                self.weights.len(),
                self.base_dim + self.engineered.len()
            )));
        }
        for f in &self.engineered {
            if f.components.iter().any(|&c| c >= self.base_dim) {
                return Err(PatchError::Malformed(format!(
                    "engineered feature '{}' wires a nonexistent counter",
                    f.name
                )));
            }
        }
        Ok(Detector::from_patch_parts(
            self.weights.clone(),
            self.bias,
            self.threshold,
            self.presence_cut,
            self.engineered.clone(),
        ))
    }
}

/// The on-core update slot: holds the active detector and enforces
/// monotonically increasing revisions, like a microcode update facility.
#[derive(Debug, Clone)]
pub struct PatchableDetector {
    detector: Detector,
    revision: u32,
    base_dim: usize,
}

impl PatchableDetector {
    /// Deploys an initial (factory) detector at revision 0.
    pub fn factory(detector: Detector, base_dim: usize) -> Self {
        PatchableDetector {
            detector,
            revision: 0,
            base_dim,
        }
    }

    /// The active detector.
    pub fn detector(&self) -> &Detector {
        &self.detector
    }

    /// The deployed revision.
    pub fn revision(&self) -> u32 {
        self.revision
    }

    /// Applies a vendor patch blob: integrity check, dimension check,
    /// revision must strictly advance.
    ///
    /// # Errors
    /// All [`PatchError`] variants.
    pub fn apply(&mut self, blob: &[u8]) -> Result<(), PatchError> {
        let patch = DetectorPatch::from_bytes(blob)?;
        if patch.revision <= self.revision {
            return Err(PatchError::StaleRevision {
                deployed: self.revision,
                offered: patch.revision,
            });
        }
        let detector = patch.instantiate(self.base_dim)?;
        self.detector = detector;
        self.revision = patch.revision;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, Sample};
    use crate::detector::{DetectorKind, TrainConfig};
    use rand::{Rng, SeedableRng};

    fn trained(seed: u64) -> (Detector, usize) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new();
        for _ in 0..100 {
            let m: f32 = rng.gen_range(0.6..1.0);
            let b: f32 = rng.gen_range(0.0..0.4);
            ds.push(Sample::new(vec![m, b, 0.5], 1));
            ds.push(Sample::new(vec![b, m, 0.5], 0));
        }
        let eng = vec![EngineeredFeature {
            name: "f0_AND_f2".into(),
            components: vec![0, 2],
        }];
        let det = Detector::train(
            DetectorKind::Evax,
            &ds,
            eng,
            &TrainConfig::default(),
            &mut rng,
        );
        (det, 3)
    }

    #[test]
    fn round_trip_preserves_behaviour() {
        let (det, dim) = trained(1);
        let patch = DetectorPatch::from_detector(&det, dim, 5);
        let blob = patch.to_bytes();
        let restored = DetectorPatch::from_bytes(&blob)
            .unwrap()
            .instantiate(dim)
            .unwrap();
        for probe in [[0.9f32, 0.1, 0.5], [0.1, 0.9, 0.5], [0.5, 0.5, 0.0]] {
            assert_eq!(det.classify(&probe), restored.classify(&probe));
            assert!((det.score(&probe) - restored.score(&probe)).abs() < 1e-6);
        }
    }

    #[test]
    fn corruption_is_detected() {
        let (det, dim) = trained(2);
        let mut blob = DetectorPatch::from_detector(&det, dim, 1).to_bytes();
        let mid = blob.len() / 2;
        blob[mid] ^= 0xFF;
        assert!(matches!(
            DetectorPatch::from_bytes(&blob),
            Err(PatchError::ChecksumMismatch) | Err(PatchError::Malformed(_))
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            DetectorPatch::from_bytes(b"NOPE-----"),
            Err(PatchError::BadMagic)
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let (det, dim) = trained(3);
        let patch = DetectorPatch::from_detector(&det, dim, 1);
        assert!(matches!(
            patch.instantiate(dim + 1),
            Err(PatchError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn revisions_must_advance() {
        let (det, dim) = trained(4);
        let mut slot = PatchableDetector::factory(det.clone(), dim);
        let p1 = DetectorPatch::from_detector(&det, dim, 1).to_bytes();
        slot.apply(&p1).unwrap();
        assert_eq!(slot.revision(), 1);
        // Replaying the same revision fails (anti-rollback).
        assert!(matches!(
            slot.apply(&p1),
            Err(PatchError::StaleRevision { .. })
        ));
        let p2 = DetectorPatch::from_detector(&det, dim, 2).to_bytes();
        slot.apply(&p2).unwrap();
        assert_eq!(slot.revision(), 2);
    }

    #[test]
    fn patch_with_dangling_engineered_wiring_rejected() {
        let (det, dim) = trained(5);
        let mut patch = DetectorPatch::from_detector(&det, dim, 1);
        patch.engineered[0].components = vec![0, 99];
        assert!(matches!(
            patch.instantiate(dim),
            Err(PatchError::Malformed(_))
        ));
    }
}
