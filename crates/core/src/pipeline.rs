//! The end-to-end EVAX pipeline: collect → train AM-GAN → engineer
//! security HPCs → vaccinate the detector (paper Fig. 12's offline flow).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::collect::{collect_dataset, CollectConfig};
use crate::dataset::{Dataset, Normalizer};
use crate::detector::{Detector, DetectorKind, TrainConfig};
use crate::feature_engineering::{engineer_features, EngineeredFeature, N_ENGINEERED};
use crate::gan::{AmGan, AmGanConfig};
use crate::metrics::Confusion;

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct EvaxConfig {
    /// Sample collection.
    pub collect: CollectConfig,
    /// AM-GAN training.
    pub gan: AmGanConfig,
    /// Detector training.
    pub detector: TrainConfig,
    /// Generated attack samples per class for vaccination (paper: 257k
    /// attack samples per fold, scaled).
    pub augment_per_class: usize,
    /// Generated benign samples (paper: 70k, scaled).
    pub augment_benign: usize,
    /// Holdout fraction for evaluation.
    pub holdout: f64,
    /// Sensitivity target for threshold tuning (§VIII-A: "EVAX is tuned to
    /// have very high sensitivity"). Interpreted as per-attack-class window
    /// coverage: the first flagged window triggers secure mode, so coverage
    /// of a fraction of each attack's windows suffices for zero leakage.
    pub tpr_target: f64,
}

impl Default for EvaxConfig {
    fn default() -> Self {
        EvaxConfig {
            collect: CollectConfig::default(),
            gan: AmGanConfig::default(),
            detector: TrainConfig::default(),
            augment_per_class: 150,
            augment_benign: 600,
            holdout: 0.25,
            tpr_target: 0.5,
        }
    }
}

impl EvaxConfig {
    /// A laptop-scale configuration: smaller corpora, fewer epochs.
    pub fn small() -> Self {
        EvaxConfig {
            collect: CollectConfig {
                interval: 200,
                runs_per_attack: 2,
                runs_per_benign: 3,
                max_instrs: 6_000,
                benign_scale: 6_000,
                ..Default::default()
            },
            gan: AmGanConfig::small(),
            augment_per_class: 60,
            augment_benign: 200,
            ..Default::default()
        }
    }
}

/// Wall-clock seconds spent in each offline stage of [`EvaxPipeline::run`]
/// (the phase breakdown behind `experiments --json`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Simulating attack/benign programs and building the dataset.
    pub collect_secs: f64,
    /// AM-GAN training.
    pub gan_secs: f64,
    /// Mining the Generator for engineered security HPCs.
    pub engineer_secs: f64,
    /// Augmenting with generated samples + training the EVAX detector.
    pub vaccinate_secs: f64,
    /// Training the PerSpectron baseline.
    pub baseline_secs: f64,
}

impl StageTimings {
    /// Sum over all stages.
    pub fn total_secs(&self) -> f64 {
        self.collect_secs
            + self.gan_secs
            + self.engineer_secs
            + self.vaccinate_secs
            + self.baseline_secs
    }
}

/// Evaluation summary on the holdout set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoldoutReport {
    /// EVAX detector accuracy.
    pub accuracy: f64,
    /// EVAX confusion counts.
    pub confusion: Confusion,
    /// PerSpectron baseline accuracy on the same holdout.
    pub perspectron_accuracy: f64,
    /// PerSpectron confusion counts.
    pub perspectron_confusion: Confusion,
}

/// The trained pipeline and all its artifacts.
#[derive(Debug, Clone)]
pub struct EvaxPipeline {
    /// The training split.
    pub train: Dataset,
    /// The holdout split.
    pub holdout: Dataset,
    /// The normalizer fitted during collection.
    pub normalizer: Normalizer,
    /// The trained AM-GAN.
    pub gan: AmGan,
    /// The 12 engineered security HPCs (Table I).
    pub engineered: Vec<EngineeredFeature>,
    /// The vaccinated EVAX detector.
    pub evax: Detector,
    /// The PerSpectron baseline.
    pub perspectron: Detector,
    /// The configuration used.
    pub config: EvaxConfig,
    /// Sampling interval used during collection (for FP/instruction rates).
    pub sample_interval: u64,
    /// Wall-clock breakdown of the offline stages.
    pub timings: StageTimings,
}

impl EvaxPipeline {
    /// Runs the full offline pipeline.
    pub fn run(cfg: &EvaxConfig, seed: u64) -> EvaxPipeline {
        let mut timings = StageTimings::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let stage_start = std::time::Instant::now();
        let (dataset, normalizer) = collect_dataset(&cfg.collect, seed);
        let (train, holdout) = dataset.split(cfg.holdout, &mut rng);
        timings.collect_secs = stage_start.elapsed().as_secs_f64();

        // 1. Train the AM-GAN on seen data.
        let stage_start = std::time::Instant::now();
        let gan = AmGan::train(&train, &cfg.gan, &mut rng);
        timings.gan_secs = stage_start.elapsed().as_secs_f64();

        // 2. Mine the Generator for engineered security HPCs.
        let stage_start = std::time::Instant::now();
        let names = evax_sim::hpc_names();
        let engineered = engineer_features(gan.generator(), N_ENGINEERED, 2, names);
        timings.engineer_secs = stage_start.elapsed().as_secs_f64();

        // 3. Vaccinate: augment with generated samples, train the detector
        //    on 133 + 12 features.
        let stage_start = std::time::Instant::now();
        let augmented = gan.augment(&train, cfg.augment_per_class, cfg.augment_benign, &mut rng);
        let mut evax = Detector::train(
            DetectorKind::Evax,
            &augmented,
            engineered.clone(),
            &cfg.detector,
            &mut rng,
        );
        // Sensitivity is tuned on *real* attack samples — the requirement
        // "detect before leakage" applies to actual attacks, not to the
        // Generator's hard synthetic points.
        evax.tune_above_benign(&train, 0.9995, 0.05);
        timings.vaccinate_secs = stage_start.elapsed().as_secs_f64();

        // 4. Train the PerSpectron baseline: seen data only, no engineered
        //    features, no vaccination.
        let stage_start = std::time::Instant::now();
        let mut perspectron = Detector::train(
            DetectorKind::PerSpectron,
            &train,
            vec![],
            &cfg.detector,
            &mut rng,
        );
        perspectron.tune_above_benign(&train, 0.9995, 0.05);
        timings.baseline_secs = stage_start.elapsed().as_secs_f64();

        EvaxPipeline {
            train,
            holdout,
            normalizer,
            gan,
            engineered,
            evax,
            perspectron,
            config: cfg.clone(),
            sample_interval: cfg.collect.interval,
            timings,
        }
    }

    /// Evaluates both detectors on the holdout split.
    pub fn evaluate_holdout(&self) -> HoldoutReport {
        let c = Confusion::evaluate(&self.evax, &self.holdout);
        let p = Confusion::evaluate(&self.perspectron, &self.holdout);
        HoldoutReport {
            accuracy: c.accuracy(),
            confusion: c,
            perspectron_accuracy: p.accuracy(),
            perspectron_confusion: p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_pipeline_end_to_end() {
        // Slow (full collect + GAN + train): opt in via EVAX_SLOW_TESTS=1,
        // as the CI slow step does.
        if std::env::var("EVAX_SLOW_TESTS").is_err() {
            eprintln!("skipping small_pipeline_end_to_end; set EVAX_SLOW_TESTS=1 to run");
            return;
        }
        let mut cfg = EvaxConfig::small();
        cfg.collect.runs_per_attack = 1;
        cfg.collect.runs_per_benign = 1;
        cfg.collect.max_instrs = 3_000;
        cfg.gan.epochs = 4;
        let p = EvaxPipeline::run(&cfg, 42);
        assert_eq!(p.engineered.len(), crate::feature_engineering::N_ENGINEERED);
        let report = p.evaluate_holdout();
        assert!(report.accuracy > 0.6, "accuracy {}", report.accuracy);
        assert!(
            report.accuracy >= report.perspectron_accuracy - 0.05,
            "EVAX should not trail PerSpectron: {} vs {}",
            report.accuracy,
            report.perspectron_accuracy
        );
    }
}
