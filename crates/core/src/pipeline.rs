//! The end-to-end EVAX pipeline: collect → train AM-GAN → engineer
//! security HPCs → vaccinate the detector (paper Fig. 12's offline flow).
//!
//! The `AM-GAN → engineer → augment → train → tune` sequence is factored
//! into [`vaccinate`], the single implementation shared with every k-fold
//! retrain (see [`crate::kfold`]).

use evax_obs::MetricsSink;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::collect::{collect_dataset_stats_with, CollectConfig};
use crate::dataset::{Dataset, Normalizer};
use crate::detector::{Detector, DetectorKind, TrainConfig};
use crate::feature_engineering::{engineer_features, EngineeredFeature, N_ENGINEERED};
use crate::featurize::Featurizer;
use crate::gan::{AmGan, AmGanConfig};
use crate::metrics::Confusion;

/// Full pipeline configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaxConfig {
    /// Sample collection.
    pub collect: CollectConfig,
    /// AM-GAN training.
    pub gan: AmGanConfig,
    /// Detector training.
    pub detector: TrainConfig,
    /// Generated attack samples per class for vaccination (paper: 257k
    /// attack samples per fold, scaled).
    pub augment_per_class: usize,
    /// Generated benign samples (paper: 70k, scaled).
    pub augment_benign: usize,
    /// Holdout fraction for evaluation.
    pub holdout: f64,
    /// Sensitivity target for threshold tuning (§VIII-A: "EVAX is tuned to
    /// have very high sensitivity"). Interpreted as per-attack-class window
    /// coverage: the first flagged window triggers secure mode, so coverage
    /// of a fraction of each attack's windows suffices for zero leakage.
    pub tpr_target: f64,
}

impl Default for EvaxConfig {
    fn default() -> Self {
        EvaxConfig {
            collect: CollectConfig::default(),
            gan: AmGanConfig::default(),
            detector: TrainConfig::default(),
            augment_per_class: 150,
            augment_benign: 600,
            holdout: 0.25,
            tpr_target: 0.5,
        }
    }
}

impl EvaxConfig {
    /// A validating builder starting from [`EvaxConfig::default`].
    /// `builder().build()` is bit-compatible with `Default::default()`.
    pub fn builder() -> EvaxConfigBuilder {
        EvaxConfigBuilder {
            cfg: EvaxConfig::default(),
        }
    }

    /// A laptop-scale configuration: smaller corpora, fewer epochs.
    pub fn small() -> Self {
        EvaxConfig {
            collect: CollectConfig {
                interval: 200,
                runs_per_attack: 2,
                runs_per_benign: 3,
                max_instrs: 6_000,
                benign_scale: 6_000,
                ..Default::default()
            },
            gan: AmGanConfig::small(),
            augment_per_class: 60,
            augment_benign: 200,
            ..Default::default()
        }
    }
}

/// Validating builder for [`EvaxConfig`], obtained from
/// [`EvaxConfig::builder`]. Setters overwrite the defaults; [`build`] checks
/// the result and returns [`EvaxError::Config`] naming the offending field
/// instead of letting a degenerate configuration (zero-instruction windows,
/// an empty program registry, a holdout that leaves no training data) fail
/// deep inside a run.
///
/// [`build`]: EvaxConfigBuilder::build
/// [`EvaxError::Config`]: crate::error::EvaxError::Config
#[derive(Debug, Clone)]
pub struct EvaxConfigBuilder {
    cfg: EvaxConfig,
}

impl EvaxConfigBuilder {
    /// Replaces the collection configuration wholesale.
    pub fn collect(mut self, collect: CollectConfig) -> Self {
        self.cfg.collect = collect;
        self
    }

    /// Replaces the AM-GAN training configuration wholesale.
    pub fn gan(mut self, gan: AmGanConfig) -> Self {
        self.cfg.gan = gan;
        self
    }

    /// Replaces the detector training configuration wholesale.
    pub fn detector(mut self, detector: TrainConfig) -> Self {
        self.cfg.detector = detector;
        self
    }

    /// HPC sampling interval in committed instructions.
    pub fn interval(mut self, interval: u64) -> Self {
        self.cfg.collect.interval = interval;
        self
    }

    /// Program runs per attack class.
    pub fn runs_per_attack(mut self, runs: usize) -> Self {
        self.cfg.collect.runs_per_attack = runs;
        self
    }

    /// Program runs per benign kind.
    pub fn runs_per_benign(mut self, runs: usize) -> Self {
        self.cfg.collect.runs_per_benign = runs;
        self
    }

    /// Instruction budget per collection run.
    pub fn max_instrs(mut self, max_instrs: u64) -> Self {
        self.cfg.collect.max_instrs = max_instrs;
        self
    }

    /// Worker threads for the collection fan-out (bit-deterministic at any
    /// setting).
    pub fn parallelism(mut self, parallelism: crate::par::Parallelism) -> Self {
        self.cfg.collect.parallelism = parallelism;
        self
    }

    /// Generated attack samples per class for vaccination.
    pub fn augment_per_class(mut self, n: usize) -> Self {
        self.cfg.augment_per_class = n;
        self
    }

    /// Generated benign samples for vaccination.
    pub fn augment_benign(mut self, n: usize) -> Self {
        self.cfg.augment_benign = n;
        self
    }

    /// Holdout fraction for evaluation, in `(0, 1)`.
    pub fn holdout(mut self, holdout: f64) -> Self {
        self.cfg.holdout = holdout;
        self
    }

    /// Sensitivity target for threshold tuning, in `(0, 1]`.
    pub fn tpr_target(mut self, tpr_target: f64) -> Self {
        self.cfg.tpr_target = tpr_target;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    /// [`EvaxError::Config`](crate::error::EvaxError::Config) when a field
    /// is degenerate: a zero sampling interval or instruction budget (no
    /// windows would ever be produced), an interval beyond the instruction
    /// budget (every run would yield an empty stream), zero runs of both
    /// attack and benign programs (an empty registry/dataset), a holdout
    /// outside `(0, 1)`, or a sensitivity target outside `(0, 1]`.
    pub fn build(self) -> crate::error::Result<EvaxConfig> {
        use crate::error::EvaxError;
        let c = &self.cfg.collect;
        if c.interval == 0 {
            return Err(EvaxError::config(
                "collect.interval",
                "sampling interval must be positive",
            ));
        }
        if c.max_instrs == 0 {
            return Err(EvaxError::config(
                "collect.max_instrs",
                "instruction budget must be positive",
            ));
        }
        if c.interval > c.max_instrs {
            return Err(EvaxError::config(
                "collect.interval",
                format!(
                    "interval {} exceeds the {}-instruction budget: every run would \
                     produce zero windows",
                    c.interval, c.max_instrs
                ),
            ));
        }
        if c.benign_scale == 0 {
            return Err(EvaxError::config(
                "collect.benign_scale",
                "benign workload scale must be positive",
            ));
        }
        if c.runs_per_attack == 0 && c.runs_per_benign == 0 {
            return Err(EvaxError::config(
                "collect.runs_per_attack/runs_per_benign",
                "at least one program run is required (the registry would be empty)",
            ));
        }
        if !(self.cfg.holdout > 0.0 && self.cfg.holdout < 1.0) {
            return Err(EvaxError::config(
                "holdout",
                format!("must be in (0, 1), got {}", self.cfg.holdout),
            ));
        }
        if !(self.cfg.tpr_target > 0.0 && self.cfg.tpr_target <= 1.0) {
            return Err(EvaxError::config(
                "tpr_target",
                format!("must be in (0, 1], got {}", self.cfg.tpr_target),
            ));
        }
        Ok(self.cfg)
    }
}

/// Wall-clock seconds spent in each offline stage of [`EvaxPipeline::run`]
/// (the phase breakdown behind `experiments --json`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Simulating attack/benign programs and building the dataset.
    pub collect_secs: f64,
    /// AM-GAN training.
    pub gan_secs: f64,
    /// Mining the Generator for engineered security HPCs.
    pub engineer_secs: f64,
    /// Augmenting with generated samples + training the EVAX detector.
    pub vaccinate_secs: f64,
    /// Training the PerSpectron baseline.
    pub baseline_secs: f64,
}

impl StageTimings {
    /// Sum over all stages.
    pub fn total_secs(&self) -> f64 {
        self.collect_secs
            + self.gan_secs
            + self.engineer_secs
            + self.vaccinate_secs
            + self.baseline_secs
    }
}

/// Artifacts of one vaccination: the trained AM-GAN, the engineered
/// security HPCs mined from its Generator, and the vaccinated detector.
#[derive(Debug, Clone)]
pub struct Vaccination {
    /// The trained AM-GAN.
    pub gan: AmGan,
    /// The mined engineered security HPCs (Table I).
    pub engineered: Vec<EngineeredFeature>,
    /// The vaccinated EVAX detector, sensitivity-tuned on the real data.
    pub detector: Detector,
}

impl Vaccination {
    /// The deployed linear model as a trait-level object (see
    /// [`Detector::to_model`]).
    pub fn model(&self) -> evax_nn::ThresholdedPerceptron {
        self.detector.to_model()
    }

    /// The deployed model hardened with seeded inference-time
    /// weight/threshold jitter (see [`Detector::harden_stochastic`]).
    pub fn harden_stochastic(&self, seed: u64, jitter: f32) -> evax_nn::StochasticDetector {
        self.detector.harden_stochastic(seed, jitter)
    }
}

/// [`vaccinate`] plus a majority-vote committee: trains `members - 1`
/// additional detectors on *independent* AM-GAN augmentation draws (each
/// member sees the same real data but different generated hard samples and
/// a different weight init — the diversity source for the vote) and returns
/// the base vaccination together with an [`evax_nn::Ensemble`] whose first
/// member is the base detector's deployed model.
///
/// Every member is sensitivity-tuned on the real data exactly like the base
/// detector. The base `Vaccination` is bit-identical to calling
/// [`vaccinate`] with the same `rng` — the extra members draw from RNG
/// streams derived *after* the base sequence completes.
///
/// # Panics
/// Panics if `members == 0`.
#[allow(clippy::too_many_arguments)]
pub fn vaccinate_ensemble<R: Rng>(
    train: &Dataset,
    gan_cfg: &AmGanConfig,
    det_cfg: &TrainConfig,
    augment_per_class: usize,
    augment_benign: usize,
    members: usize,
    rng: &mut R,
    timings: &mut StageTimings,
) -> (Vaccination, evax_nn::Ensemble) {
    assert!(members > 0, "an ensemble needs at least one member");
    let vac = vaccinate(
        train,
        gan_cfg,
        det_cfg,
        augment_per_class,
        augment_benign,
        rng,
        timings,
    );
    let mut committee: Vec<Box<dyn evax_nn::Detector>> = vec![Box::new(vac.model())];
    for _ in 1..members {
        // One derived stream per member: augmentation draw + weight init.
        let mut member_rng = StdRng::seed_from_u64(rng.gen());
        let stage_start = std::time::Instant::now();
        let augmented = vac
            .gan
            .augment(train, augment_per_class, augment_benign, &mut member_rng);
        let mut det = Detector::train(
            DetectorKind::Evax,
            &augmented,
            vac.engineered.clone(),
            det_cfg,
            &mut member_rng,
        );
        det.tune_above_benign(train, 0.9995, 0.05);
        timings.vaccinate_secs += stage_start.elapsed().as_secs_f64();
        committee.push(Box::new(det.to_model()));
    }
    let ensemble = evax_nn::Ensemble::new(committee);
    (vac, ensemble)
}

/// Trains a vaccinated EVAX detector for one training split — the single
/// `AM-GAN → engineer → augment → train → tune` sequence shared by the
/// offline pipeline and every leave-one-out fold.
///
/// Stage wall-clock is accumulated into `timings` (`gan_secs`,
/// `engineer_secs`, `vaccinate_secs`); callers that do not report timings
/// pass a throwaway [`StageTimings`].
pub fn vaccinate<R: Rng>(
    train: &Dataset,
    gan_cfg: &AmGanConfig,
    det_cfg: &TrainConfig,
    augment_per_class: usize,
    augment_benign: usize,
    rng: &mut R,
    timings: &mut StageTimings,
) -> Vaccination {
    vaccinate_with_metrics(
        train,
        gan_cfg,
        det_cfg,
        augment_per_class,
        augment_benign,
        rng,
        timings,
        &MetricsSink::default(),
    )
}

/// [`vaccinate`] with observability: GAN round telemetry (via
/// [`AmGan::train_with_metrics`]), stage span timers and sample/parameter
/// tallies. Recording never touches `rng`, so artifacts are bit-identical
/// to [`vaccinate`]'s.
#[allow(clippy::too_many_arguments)]
pub fn vaccinate_with_metrics<R: Rng>(
    train: &Dataset,
    gan_cfg: &AmGanConfig,
    det_cfg: &TrainConfig,
    augment_per_class: usize,
    augment_benign: usize,
    rng: &mut R,
    timings: &mut StageTimings,
    metrics: &MetricsSink,
) -> Vaccination {
    // 1. Train the AM-GAN on seen data.
    let stage_start = std::time::Instant::now();
    let span = metrics.span("pipeline.gan_wall_ns");
    let gan = AmGan::train_with_metrics(train, gan_cfg, rng, metrics);
    drop(span);
    metrics.record_max("nn.generator_params", gan.generator().param_count() as u64);
    timings.gan_secs += stage_start.elapsed().as_secs_f64();

    // 2. Mine the Generator for engineered security HPCs ("we use a set of
    //    fixed features ... we retrain the weights at each fold" — the
    //    mining arity/count is fixed).
    let stage_start = std::time::Instant::now();
    let schema = evax_sim::FeatureSchema::for_dim(train.feature_dim());
    let engineered = engineer_features(gan.generator(), N_ENGINEERED, 2, &schema.names_vec());
    timings.engineer_secs += stage_start.elapsed().as_secs_f64();

    // 3. Vaccinate: augment with generated samples, train the detector on
    //    the extended (base + engineered) feature space.
    let stage_start = std::time::Instant::now();
    let span = metrics.span("pipeline.vaccinate_wall_ns");
    let augmented = gan.augment(train, augment_per_class, augment_benign, rng);
    metrics.add("pipeline.train_samples", train.len() as u64);
    metrics.add("pipeline.augmented_samples", augmented.len() as u64);
    metrics.add("pipeline.engineered_features", engineered.len() as u64);
    let mut detector = Detector::train(
        DetectorKind::Evax,
        &augmented,
        engineered.clone(),
        det_cfg,
        rng,
    );
    // Sensitivity is tuned on *real* attack samples — the requirement
    // "detect before leakage" applies to actual attacks, not to the
    // Generator's hard synthetic points.
    detector.tune_above_benign(train, 0.9995, 0.05);
    drop(span);
    timings.vaccinate_secs += stage_start.elapsed().as_secs_f64();

    Vaccination {
        gan,
        engineered,
        detector,
    }
}

/// Evaluation summary on the holdout set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoldoutReport {
    /// EVAX detector accuracy.
    pub accuracy: f64,
    /// EVAX confusion counts.
    pub confusion: Confusion,
    /// PerSpectron baseline accuracy on the same holdout.
    pub perspectron_accuracy: f64,
    /// PerSpectron confusion counts.
    pub perspectron_confusion: Confusion,
}

/// The trained pipeline and all its artifacts.
#[derive(Debug, Clone)]
pub struct EvaxPipeline {
    /// The training split.
    pub train: Dataset,
    /// The holdout split.
    pub holdout: Dataset,
    /// The normalizer fitted during collection.
    pub normalizer: Normalizer,
    /// The trained AM-GAN.
    pub gan: AmGan,
    /// The 12 engineered security HPCs (Table I).
    pub engineered: Vec<EngineeredFeature>,
    /// The vaccinated EVAX detector.
    pub evax: Detector,
    /// The PerSpectron baseline.
    pub perspectron: Detector,
    /// The configuration used.
    pub config: EvaxConfig,
    /// Sampling interval used during collection (for FP/instruction rates).
    pub sample_interval: u64,
    /// Wall-clock breakdown of the offline stages.
    pub timings: StageTimings,
}

impl EvaxPipeline {
    /// Runs the full offline pipeline.
    pub fn run(cfg: &EvaxConfig, seed: u64) -> EvaxPipeline {
        EvaxPipeline::run_with_metrics(cfg, seed, &MetricsSink::default())
    }

    /// [`run`](Self::run) with observability: per-stage span timers, sample
    /// tallies, simulator/GAN telemetry from the instrumented stages. With
    /// the default no-op sink this is exactly [`run`](Self::run); with a
    /// recording sink the trained artifacts are still bit-identical
    /// (recording never feeds back into collection or training).
    pub fn run_with_metrics(cfg: &EvaxConfig, seed: u64, metrics: &MetricsSink) -> EvaxPipeline {
        let mut timings = StageTimings::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let stage_start = std::time::Instant::now();
        let span = metrics.span("pipeline.collect_wall_ns");
        let (dataset, stats) = collect_dataset_stats_with(&cfg.collect, seed, metrics);
        let normalizer = stats.normalizer();
        drop(span);
        let (train, holdout) = dataset.split(cfg.holdout, &mut rng);
        timings.collect_secs = stage_start.elapsed().as_secs_f64();

        // 1.–3. The shared vaccination sequence: AM-GAN → engineered
        //        security HPCs → augment → train → sensitivity tune.
        let Vaccination {
            gan,
            engineered,
            detector: evax,
        } = vaccinate_with_metrics(
            &train,
            &cfg.gan,
            &cfg.detector,
            cfg.augment_per_class,
            cfg.augment_benign,
            &mut rng,
            &mut timings,
            metrics,
        );

        // 4. Train the PerSpectron baseline: seen data only, no engineered
        //    features, no vaccination.
        let stage_start = std::time::Instant::now();
        let span = metrics.span("pipeline.baseline_wall_ns");
        let mut perspectron = Detector::train(
            DetectorKind::PerSpectron,
            &train,
            vec![],
            &cfg.detector,
            &mut rng,
        );
        perspectron.tune_above_benign(&train, 0.9995, 0.05);
        drop(span);
        timings.baseline_secs = stage_start.elapsed().as_secs_f64();

        EvaxPipeline {
            train,
            holdout,
            normalizer,
            gan,
            engineered,
            evax,
            perspectron,
            config: cfg.clone(),
            sample_interval: cfg.collect.interval,
            timings,
        }
    }

    /// The deployable window→feature transform for the EVAX detector:
    /// collection-time normalization plus the mined engineered projection.
    /// Persist it alongside the detector (see [`crate::io`]) so train-time
    /// and deploy-time featurization can never diverge.
    pub fn featurizer(&self) -> Featurizer {
        Featurizer::new(self.normalizer.clone(), self.engineered.clone())
    }

    /// Evaluates both detectors on the holdout split.
    pub fn evaluate_holdout(&self) -> HoldoutReport {
        let c = Confusion::evaluate(&self.evax, &self.holdout);
        let p = Confusion::evaluate(&self.perspectron, &self.holdout);
        HoldoutReport {
            accuracy: c.accuracy(),
            confusion: c,
            perspectron_accuracy: p.accuracy(),
            perspectron_confusion: p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_pipeline_end_to_end() {
        // Slow (full collect + GAN + train): opt in via EVAX_SLOW_TESTS=1,
        // as the CI slow step does.
        if std::env::var("EVAX_SLOW_TESTS").is_err() {
            eprintln!("skipping small_pipeline_end_to_end; set EVAX_SLOW_TESTS=1 to run");
            return;
        }
        let mut cfg = EvaxConfig::small();
        cfg.collect.runs_per_attack = 1;
        cfg.collect.runs_per_benign = 1;
        cfg.collect.max_instrs = 3_000;
        cfg.gan.epochs = 4;
        let p = EvaxPipeline::run(&cfg, 42);
        assert_eq!(p.engineered.len(), crate::feature_engineering::N_ENGINEERED);
        let report = p.evaluate_holdout();
        assert!(report.accuracy > 0.6, "accuracy {}", report.accuracy);
        assert!(
            report.accuracy >= report.perspectron_accuracy - 0.05,
            "EVAX should not trail PerSpectron: {} vs {}",
            report.accuracy,
            report.perspectron_accuracy
        );
    }

    #[test]
    fn builder_defaults_match_default() {
        let built = EvaxConfig::builder().build().unwrap();
        assert_eq!(built, EvaxConfig::default());
    }

    #[test]
    fn builder_setters_apply() {
        let cfg = EvaxConfig::builder()
            .interval(200)
            .runs_per_attack(1)
            .runs_per_benign(2)
            .max_instrs(3_000)
            .parallelism(crate::par::Parallelism::Fixed(2))
            .augment_per_class(10)
            .augment_benign(20)
            .holdout(0.5)
            .tpr_target(0.9)
            .build()
            .unwrap();
        assert_eq!(cfg.collect.interval, 200);
        assert_eq!(cfg.collect.parallelism, crate::par::Parallelism::Fixed(2));
        assert_eq!(cfg.augment_per_class, 10);
        assert_eq!(cfg.holdout, 0.5);
    }

    #[test]
    fn builder_rejects_degenerate_configs() {
        use crate::error::EvaxError;
        let cases: Vec<(EvaxConfigBuilder, &str)> = vec![
            (EvaxConfig::builder().interval(0), "collect.interval"),
            (EvaxConfig::builder().max_instrs(0), "collect.max_instrs"),
            (
                // Interval beyond the budget: zero windows per run.
                EvaxConfig::builder().interval(50_000).max_instrs(1_000),
                "collect.interval",
            ),
            (
                EvaxConfig::builder().runs_per_attack(0).runs_per_benign(0),
                "collect.runs_per_attack/runs_per_benign",
            ),
            (EvaxConfig::builder().holdout(0.0), "holdout"),
            (EvaxConfig::builder().holdout(1.0), "holdout"),
            (EvaxConfig::builder().tpr_target(0.0), "tpr_target"),
            (EvaxConfig::builder().tpr_target(1.5), "tpr_target"),
        ];
        for (builder, field) in cases {
            match builder.build() {
                Err(EvaxError::Config { what, .. }) => {
                    assert_eq!(what, field, "wrong field blamed");
                }
                other => panic!("expected Config error for {field}, got {other:?}"),
            }
        }
    }
}
