//! One-import access to the stable API surface.
//!
//! ```
//! use evax_core::prelude::*;
//!
//! let cfg = EvaxConfig::builder().build().expect("defaults validate");
//! assert_eq!(cfg, EvaxConfig::default());
//! ```
//!
//! Everything here is the *stable* surface described in the crate docs:
//! examples, benches and downstream crates should import from this module.
//! Items not re-exported here are internal — public for reproduction
//! scripts, but free to change.

pub use crate::collect::CollectConfig;
pub use crate::dataset::{Dataset, Normalizer, Sample, BENIGN_CLASS, N_CLASSES};
pub use crate::detector::{Detector, DetectorKind, TrainConfig};
pub use crate::error::{EvaxError, Result};
pub use crate::faults::{
    read_featurizer_file_with_retry, read_model_file_with_retry, retry, FaultInjector, FaultKind,
    FaultingSink, RetryPolicy, SliceSource,
};
pub use crate::featurize::{
    Featurizer, ProgramSource, RawWindow, StreamStats, WindowBatch, WindowSink, WindowSource,
};
pub use crate::io::{
    read_csv, read_featurizer, read_featurizer_file, read_model, read_model_file, write_csv,
    write_featurizer, write_featurizer_file, write_model, write_model_file,
    write_model_with_hardened, ModelBundle,
};
pub use crate::par::Parallelism;
pub use crate::pipeline::{
    vaccinate, vaccinate_ensemble, EvaxConfig, EvaxPipeline, HoldoutReport, Vaccination,
};
pub use evax_nn::{
    load_detector, Detector as ModelDetector, DetectorScratch, Ensemble, StochasticDetector,
    ThresholdedPerceptron,
};
pub use evax_obs::{MetricsSink, Registry};
