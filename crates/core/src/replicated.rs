//! Replicated feature detectors (paper §VI-A, *Replicated Feature
//! Detector*): "if a feature vector was useful in detecting one target
//! (seen variant), it is likely that a similar feature detector in
//! different positions in the pipeline can detect the evaded information
//! (unseen variant). Replicated feature vectors also allow each patch of
//! program to be represented in several microarchitectural ways — making
//! the trained model resilient to several evasions."
//!
//! Each replica is a perceptron over one pipeline region's counters (fetch,
//! rename/issue, execute/LSQ, caches, DRAM, ...); the ensemble flags when
//! any replica (or a vote quorum) fires, so evading one region's footprint
//! is not enough.

use rand::Rng;

use crate::dataset::Dataset;
use crate::detector::{Detector, DetectorKind, TrainConfig};

/// One pipeline region a replica watches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Region name (for reports).
    pub name: &'static str,
    /// Baseline HPC indices this replica monitors.
    pub features: Vec<usize>,
}

/// Partitions the canonical HPC space into pipeline regions by counter name
/// prefix — the "different positions in the pipeline" of the paper.
pub fn pipeline_regions() -> Vec<Region> {
    let schema = evax_sim::FeatureSchema::baseline();
    let names = schema.names_vec();
    let groups: &[(&str, &[&str])] = &[
        ("front-end", &["fetch.", "bp.", "icache.", "itlb."]),
        ("rename-issue", &["rename.", "iq.", "spec."]),
        ("execute-lsq", &["iew.", "lsq.", "faults.", "commit."]),
        ("data-cache", &["dcache.", "l2.", "dtlb."]),
        (
            "memory-system",
            &["dram.", "rdrand.", "syscalls", "derived.", "cycles"],
        ),
    ];
    groups
        .iter()
        .map(|(name, prefixes)| Region {
            name,
            features: names
                .iter()
                .enumerate()
                .filter(|(_, n)| prefixes.iter().any(|p| n.starts_with(p)))
                .map(|(i, _)| i)
                .collect(),
        })
        .filter(|r| !r.features.is_empty())
        .collect()
}

/// How replicas combine into a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VotePolicy {
    /// Flag if *any* replica flags (maximum sensitivity — the paper's
    /// deployment posture).
    Any,
    /// Flag if at least `n` replicas flag.
    AtLeast(usize),
}

/// An ensemble of per-region perceptron replicas.
#[derive(Debug, Clone)]
pub struct ReplicatedDetector {
    regions: Vec<Region>,
    replicas: Vec<Detector>,
    policy: VotePolicy,
}

impl ReplicatedDetector {
    /// Trains one replica per region on the dataset (each sees only its
    /// region's counters).
    ///
    /// # Panics
    /// Panics if the dataset is empty or `regions` is empty.
    pub fn train<R: Rng>(
        dataset: &Dataset,
        regions: Vec<Region>,
        cfg: &TrainConfig,
        coverage_target: f64,
        rng: &mut R,
    ) -> ReplicatedDetector {
        assert!(!regions.is_empty(), "need at least one region");
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        let mut replicas = Vec::with_capacity(regions.len());
        for region in &regions {
            let mut sub = Dataset::new();
            for s in &dataset.samples {
                let features = region.features.iter().map(|&i| s.features[i]).collect();
                sub.push(crate::dataset::Sample::new(features, s.class));
            }
            let mut det = Detector::train(DetectorKind::Evax, &sub, vec![], cfg, rng);
            det.tune_for_class_coverage(&sub, coverage_target);
            replicas.push(det);
        }
        ReplicatedDetector {
            regions,
            replicas,
            policy: VotePolicy::Any,
        }
    }

    /// The regions monitored.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Sets the voting policy.
    pub fn set_policy(&mut self, policy: VotePolicy) {
        self.policy = policy;
    }

    /// Per-replica verdicts on a full baseline feature vector.
    pub fn replica_votes(&self, base: &[f32]) -> Vec<bool> {
        self.regions
            .iter()
            .zip(&self.replicas)
            .map(|(region, det)| {
                let features: Vec<f32> = region.features.iter().map(|&i| base[i]).collect();
                det.classify(&features)
            })
            .collect()
    }

    /// Ensemble verdict under the configured policy.
    pub fn classify(&self, base: &[f32]) -> bool {
        let votes = self.replica_votes(base).into_iter().filter(|&v| v).count();
        match self.policy {
            VotePolicy::Any => votes >= 1,
            VotePolicy::AtLeast(n) => votes >= n,
        }
    }

    /// Binary accuracy over a dataset.
    pub fn accuracy(&self, dataset: &Dataset) -> f64 {
        if dataset.is_empty() {
            return 0.0;
        }
        let correct = dataset
            .samples
            .iter()
            .filter(|s| self.classify(&s.features) == s.malicious)
            .count();
        correct as f64 / dataset.len() as f64
    }

    /// TPR when an attacker fully suppresses one region's counters (zeroing
    /// them) — the evasion the replication argument defends against.
    pub fn tpr_with_region_suppressed(&self, dataset: &Dataset, region_idx: usize) -> f64 {
        let region = &self.regions[region_idx];
        let malicious: Vec<_> = dataset.samples.iter().filter(|s| s.malicious).collect();
        if malicious.is_empty() {
            return 0.0;
        }
        let hits = malicious
            .iter()
            .filter(|s| {
                let mut suppressed = s.features.clone();
                for &i in &region.features {
                    suppressed[i] = 0.0;
                }
                self.classify(&suppressed)
            })
            .count();
        hits as f64 / malicious.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Sample;
    use rand::SeedableRng;

    /// Attacks fire in two independent regions; benign in neither.
    fn two_region_dataset(rng: &mut impl Rng, n: usize, dim: usize) -> Dataset {
        let mut ds = Dataset::new();
        for _ in 0..n {
            let mut attack = vec![0.05f32; dim];
            attack[0] = rng.gen_range(0.7..1.0); // region A signal
            attack[dim / 2] = rng.gen_range(0.7..1.0); // region B signal
            ds.push(Sample::new(attack, 1));
            let mut benign = vec![0.05f32; dim];
            benign[1] = rng.gen_range(0.0..0.3);
            ds.push(Sample::new(benign, 0));
        }
        ds
    }

    fn halves(dim: usize) -> Vec<Region> {
        vec![
            Region {
                name: "low",
                features: (0..dim / 2).collect(),
            },
            Region {
                name: "high",
                features: (dim / 2..dim).collect(),
            },
        ]
    }

    #[test]
    fn pipeline_regions_cover_every_counter_once() {
        let regions = pipeline_regions();
        let mut seen = vec![0usize; evax_sim::HPC_BASE_DIM];
        for r in &regions {
            for &f in &r.features {
                seen[f] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "regions must partition the HPC space"
        );
        assert!(regions.len() >= 4);
    }

    #[test]
    fn ensemble_learns_and_votes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let ds = two_region_dataset(&mut rng, 150, 8);
        let rep = ReplicatedDetector::train(&ds, halves(8), &TrainConfig::default(), 0.9, &mut rng);
        assert!(rep.accuracy(&ds) > 0.95, "accuracy {}", rep.accuracy(&ds));
    }

    #[test]
    fn suppressing_one_region_does_not_blind_the_ensemble() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let ds = two_region_dataset(&mut rng, 150, 8);
        let rep = ReplicatedDetector::train(&ds, halves(8), &TrainConfig::default(), 0.9, &mut rng);
        // The paper's claim: the replica in the *other* pipeline position
        // still sees the attack.
        for region in 0..2 {
            let tpr = rep.tpr_with_region_suppressed(&ds, region);
            assert!(
                tpr > 0.9,
                "suppressing region {region} should not evade: tpr={tpr}"
            );
        }
    }

    #[test]
    fn quorum_policy_is_stricter_than_any() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let ds = two_region_dataset(&mut rng, 100, 8);
        let mut rep =
            ReplicatedDetector::train(&ds, halves(8), &TrainConfig::default(), 0.9, &mut rng);
        let any_flags: usize = ds
            .samples
            .iter()
            .filter(|s| rep.classify(&s.features))
            .count();
        rep.set_policy(VotePolicy::AtLeast(2));
        let quorum_flags: usize = ds
            .samples
            .iter()
            .filter(|s| rep.classify(&s.features))
            .count();
        assert!(quorum_flags <= any_flags);
    }
}
