//! Golden contract for the disabled-device path: with `DeviceConfig` off —
//! whether the untouched default or an explicitly disabled builder carrying
//! live-looking timer/DMA settings — every streamed window and the final
//! architectural registers are bitwise-identical to the pre-device oracle
//! (the same trace driven directly through `Cpu::run_sampled`), and the
//! whole corpus reproduces bit-for-bit at 1, 4, and 16 kernel threads.
//! Mid-run snapshot round-trip of live timer/IRQ/DMA state is pinned in
//! `crates/sim/tests/devices.rs`.

use evax_attacks::benign::Scale;
use evax_attacks::{build_attack, build_benign, AttackClass, BenignKind, KernelParams};
use evax_core::featurize::{CollectingSink, ProgramSource, WindowSource};
use evax_core::par::{self, Parallelism};
use evax_sim::{Cpu, CpuConfig, DeviceConfig, DmaConfig, Program};
use rand::rngs::StdRng;
use rand::SeedableRng;

const INTERVAL: u64 = 200;
const MAX_INSTRS: u64 = 4_000;

/// A small mixed corpus: two attack kernels, two benign kernels.
fn small_corpus() -> Vec<Program> {
    let mut corpus = Vec::new();
    for (i, class) in [AttackClass::SpectrePht, AttackClass::FlushReload]
        .into_iter()
        .enumerate()
    {
        let mut rng = StdRng::seed_from_u64(0xE0 + i as u64);
        corpus.push(build_attack(class, &KernelParams::default(), &mut rng));
    }
    for (i, kind) in [BenignKind::Compression, BenignKind::MatrixAi]
        .into_iter()
        .enumerate()
    {
        let mut rng = StdRng::seed_from_u64(0xBE + i as u64);
        corpus.push(build_benign(kind, Scale(4_000), &mut rng));
    }
    corpus
}

/// A `DeviceConfig` that is disabled but carries non-default timer/DMA
/// settings — the strongest form of "off is invisible": the mere presence
/// of configuration must not perturb a single bit.
fn disabled_but_configured() -> DeviceConfig {
    DeviceConfig::builder()
        .enabled(false)
        .timer_period(300)
        .dma(DmaConfig {
            period: 64,
            burst_lines: 2,
            region_lines: 32,
            irq_every: 2,
        })
        .build()
        .expect("disabled configs always validate")
}

/// Streams `program` under `cfg` through the production source and folds
/// every window plus the final registers into a bit-exact trace.
fn stream_bits(program: &Program, cfg: &CpuConfig) -> Vec<u64> {
    let mut sink = CollectingSink::new();
    let result = ProgramSource::new(program, cfg, INTERVAL, MAX_INSTRS).stream(&mut sink);
    let mut bits: Vec<u64> = sink
        .into_windows()
        .into_iter()
        .flatten()
        .map(f64::to_bits)
        .collect();
    bits.extend(result.regs.iter().copied());
    bits.push(result.cycles);
    bits.push(result.committed_instructions);
    bits
}

/// The pre-device oracle: the same trace driven directly through
/// `Cpu::run_sampled` (the path every golden stream used before the device
/// subsystem existed), including the kernel-secret plant `ProgramSource`
/// performs.
fn oracle_bits(program: &Program, cfg: &CpuConfig) -> Vec<u64> {
    let mut cpu = Cpu::new(cfg.clone());
    cpu.memory_mut()
        .write_u64(evax_attacks::mds::KERNEL_SECRET_ADDR, 5);
    let mut bits = Vec::new();
    let result = cpu.run_sampled(program, MAX_INSTRS, INTERVAL, |s| {
        bits.extend(s.values.iter().map(|v| v.to_bits()));
        None
    });
    bits.extend(result.regs.iter().copied());
    bits.push(result.cycles);
    bits.push(result.committed_instructions);
    bits
}

#[test]
fn device_off_streams_match_the_pre_device_oracle() {
    let corpus = small_corpus();
    let default_cfg = CpuConfig::default();
    let configured_off = CpuConfig {
        devices: disabled_but_configured(),
        ..CpuConfig::default()
    };
    assert_eq!(
        evax_sim::dim_for(&default_cfg),
        evax_sim::dim_for(&configured_off),
        "a disabled device subsystem must not widen the feature vector"
    );
    for program in &corpus {
        let oracle = oracle_bits(program, &default_cfg);
        assert!(
            oracle.len() > 32,
            "{}: oracle produced no windows",
            program.name()
        );
        assert_eq!(
            stream_bits(program, &default_cfg),
            oracle,
            "{}: default-config stream diverged from the oracle",
            program.name()
        );
        assert_eq!(
            stream_bits(program, &configured_off),
            oracle,
            "{}: disabled-but-configured devices perturbed the stream",
            program.name()
        );
    }
}

#[test]
fn device_off_streams_are_identical_at_1_4_16_threads() {
    let corpus = small_corpus();
    let cfg = CpuConfig {
        devices: disabled_but_configured(),
        ..CpuConfig::default()
    };
    let at = |threads: usize| -> Vec<Vec<u64>> {
        par::map(Parallelism::Fixed(threads), &corpus, |program| {
            stream_bits(program, &cfg)
        })
    };
    let one = at(1);
    for (i, bits) in one.iter().enumerate() {
        assert!(!bits.is_empty(), "corpus entry {i} produced no trace");
    }
    assert_eq!(one, at(4), "1 vs 4 kernel threads diverged");
    assert_eq!(one, at(16), "1 vs 16 kernel threads diverged");
}
