//! Property tests for the metrics edge-case fixes: `roc_curve`/`auc` over
//! arbitrary score sets (including NaN scores and single-class inputs) and
//! the empty/degenerate `Confusion` rates. Every property pins the
//! fail-safe contract: rates are defined (never NaN/Inf), bounded, and
//! NaN scores never perturb the curve the finite scores alone define.

use evax_core::metrics::{auc, roc_curve, Confusion};
use proptest::collection;
use proptest::prelude::*;

/// Decodes a `(u8, u8)` raw pair into a score: mostly finite values in
/// [-4, 4], with NaN and the infinities mixed in (tag-driven, so every run
/// exercises the degenerate encodings).
fn decode_score(tag: u8, raw: u8) -> f32 {
    match tag % 8 {
        0 => f32::NAN,
        1 => f32::INFINITY,
        2 => f32::NEG_INFINITY,
        _ => (f32::from(raw) - 127.5) / 32.0,
    }
}

fn scored(input: &[(u8, u8, bool)]) -> Vec<(f32, bool)> {
    input
        .iter()
        .map(|&(tag, raw, mal)| (decode_score(tag, raw), mal))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The curve is always well-formed: at least the two trivial endpoints,
    /// every coordinate finite and inside the unit square, FPR
    /// non-decreasing, and it spans (0,0) → (1,1).
    #[test]
    fn roc_curve_is_always_well_formed(
        input in collection::vec((0u8..=255, 0u8..=255, proptest::arbitrary::any::<bool>()), 0..60)
    ) {
        let pts = roc_curve(&scored(&input));
        prop_assert!(pts.len() >= 2);
        for p in &pts {
            prop_assert!(p.fpr.is_finite() && (0.0..=1.0).contains(&p.fpr), "fpr={}", p.fpr);
            prop_assert!(p.tpr.is_finite() && (0.0..=1.0).contains(&p.tpr), "tpr={}", p.tpr);
        }
        for w in pts.windows(2) {
            prop_assert!(w[1].fpr >= w[0].fpr, "fpr must be non-decreasing");
            prop_assert!(w[1].tpr >= w[0].tpr, "tpr must be non-decreasing");
        }
        prop_assert_eq!(pts[0].fpr, 0.0);
        prop_assert_eq!(pts[0].tpr, 0.0);
        prop_assert_eq!(pts[pts.len() - 1].fpr, 1.0);
        prop_assert_eq!(pts[pts.len() - 1].tpr, 1.0);
        let a = auc(&pts);
        prop_assert!(a.is_finite() && (0.0..=1.0).contains(&a), "auc={a}");
    }

    /// NaN scores are dropped, not ranked: the curve over a NaN-polluted
    /// input equals the curve over its finite subset exactly.
    #[test]
    fn nan_scores_never_perturb_the_curve(
        input in collection::vec((0u8..=255, 0u8..=255, proptest::arbitrary::any::<bool>()), 0..60)
    ) {
        let polluted = scored(&input);
        let finite_only: Vec<(f32, bool)> =
            polluted.iter().copied().filter(|(s, _)| !s.is_nan()).collect();
        let a = roc_curve(&polluted);
        let b = roc_curve(&finite_only);
        prop_assert_eq!(a.len(), b.len());
        for (pa, pb) in a.iter().zip(&b) {
            prop_assert_eq!(pa.fpr.to_bits(), pb.fpr.to_bits());
            prop_assert_eq!(pa.tpr.to_bits(), pb.tpr.to_bits());
        }
    }

    /// Single-class inputs (all-malicious, all-benign — however large) give
    /// the trivial diagonal at chance-level AUC instead of dividing by zero.
    #[test]
    fn single_class_inputs_are_chance_level(
        raws in collection::vec((3u8..=255, 0u8..=255), 1..40),
        mal in proptest::arbitrary::any::<bool>()
    ) {
        let one_class: Vec<(f32, bool)> =
            raws.iter().map(|&(tag, raw)| (decode_score(tag, raw), mal)).collect();
        let pts = roc_curve(&one_class);
        prop_assert_eq!(pts.len(), 2);
        prop_assert!((auc(&pts) - 0.5).abs() < 1e-12);
    }

    /// Every confusion-matrix rate is defined and bounded for arbitrary
    /// counts, including the all-zero matrix (the seed bug returned 1.0
    /// error on an empty evaluation).
    #[test]
    fn confusion_rates_are_always_defined(
        tp in 0u64..1000, tn in 0u64..1000, fp in 0u64..1000, fn_ in 0u64..1000
    ) {
        let c = Confusion { tp, tn, fp, fn_ };
        for (name, rate) in [
            ("accuracy", c.accuracy()),
            ("tpr", c.tpr()),
            ("fpr", c.fpr()),
            ("fnr", c.fnr()),
            ("error", c.error()),
        ] {
            prop_assert!(rate.is_finite(), "{name} not finite: {rate}");
            prop_assert!((0.0..=1.0).contains(&rate), "{name} out of range: {rate}");
        }
        if c.total() == 0 {
            prop_assert_eq!(c.error(), 0.0, "empty matrix must report zero error");
            prop_assert_eq!(c.fnr(), 0.0, "empty matrix must report zero fnr");
        }
        // Degenerate reporting windows must not divide by zero either.
        for (interval, window) in [(0u64, 1_000u64), (200, 0), (0, 0), (200, 1_000)] {
            let fp_rate = c.fp_per_instructions(interval, window);
            let fn_rate = c.fn_per_instructions(interval, window);
            prop_assert!(fp_rate.is_finite(), "fp/instr not finite at ({interval},{window})");
            prop_assert!(fn_rate.is_finite(), "fn/instr not finite at ({interval},{window})");
        }
    }
}
