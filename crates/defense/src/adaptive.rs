//! The detector-gated adaptive controller.
//!
//! Paper §VIII-A: "we turn on mitigation at every true flag by our detector
//! and we execute 1M instructions in secure mode to deactivate possible
//! attacks" (the window is scaled by configuration here).
//!
//! The controller is a [`WindowSink`] on the unified streaming featurization
//! pipeline ([`evax_core::featurize`]): it consumes exactly the same
//! window→feature stage chain that produced the detector's training data —
//! there is no deployment-side copy of the featurization to drift.

use evax_core::prelude::{
    Detector, DetectorScratch, FaultInjector, ModelDetector, Normalizer, ProgramSource, RawWindow,
    WindowSink, WindowSource,
};
use evax_obs::MetricsSink;
use evax_sim::{CpuConfig, MitigationMode, Program, RunResult};

/// Which mitigation secure mode applies (paper Fig. 16 naming).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// `EVAX-SpectreSafe`: a fence after every branch.
    FenceSpectre,
    /// `EVAX-FuturisticSafe` / `Fences-FuturisticSafe`: a fence before every
    /// load (covers LVI-class attacks).
    FenceFuturistic,
    /// `EVAX-SafeSpec`: InvisiSpec under the Spectre threat model.
    InvisiSpecSpectre,
    /// `FuturisticSafeSpec`: InvisiSpec under the Futuristic threat model.
    InvisiSpecFuturistic,
}

impl Policy {
    /// The simulator mitigation mode secure mode engages.
    pub fn mode(self) -> MitigationMode {
        match self {
            Policy::FenceSpectre => MitigationMode::FenceSpectre,
            Policy::FenceFuturistic => MitigationMode::FenceFuturistic,
            Policy::InvisiSpecSpectre => MitigationMode::InvisiSpecSpectre,
            Policy::InvisiSpecFuturistic => MitigationMode::InvisiSpecFuturistic,
        }
    }

    /// Display name matching the paper's figure labels.
    pub fn name(self) -> &'static str {
        match self {
            Policy::FenceSpectre => "Fence-Spectre",
            Policy::FenceFuturistic => "Fence-Futuristic",
            Policy::InvisiSpecSpectre => "InvisiSpec-Spectre",
            Policy::InvisiSpecFuturistic => "InvisiSpec-Futuristic",
        }
    }
}

/// Adaptive controller configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// HPC sampling interval in committed instructions.
    pub sample_interval: u64,
    /// Instructions to stay in secure mode after a flag (paper: 1M; scale
    /// with your instruction budgets).
    pub secure_window: u64,
    /// The mitigation secure mode engages.
    pub policy: Policy,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            sample_interval: 100,
            secure_window: 10_000,
            policy: Policy::FenceSpectre,
        }
    }
}

impl AdaptiveConfig {
    /// A validating builder starting from [`AdaptiveConfig::default`].
    /// `builder().build()` is bit-compatible with `Default::default()`.
    pub fn builder() -> AdaptiveConfigBuilder {
        AdaptiveConfigBuilder {
            cfg: AdaptiveConfig::default(),
        }
    }
}

/// Validating builder for [`AdaptiveConfig`], obtained from
/// [`AdaptiveConfig::builder`]. [`build`](AdaptiveConfigBuilder::build)
/// rejects degenerate controllers — a zero sampling interval (the detector
/// never sees a window) or a secure window shorter than one sampling
/// interval (secure mode would expire before the next verdict, making the
/// mitigation a no-op).
#[derive(Debug, Clone)]
pub struct AdaptiveConfigBuilder {
    cfg: AdaptiveConfig,
}

impl AdaptiveConfigBuilder {
    /// HPC sampling interval in committed instructions.
    pub fn sample_interval(mut self, interval: u64) -> Self {
        self.cfg.sample_interval = interval;
        self
    }

    /// Instructions to stay in secure mode after a flag.
    pub fn secure_window(mut self, window: u64) -> Self {
        self.cfg.secure_window = window;
        self
    }

    /// The mitigation secure mode engages.
    pub fn policy(mut self, policy: Policy) -> Self {
        self.cfg.policy = policy;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    /// [`EvaxError::Config`](evax_core::error::EvaxError::Config) when the
    /// sampling interval is zero, the secure window is zero, or the secure
    /// window is shorter than the sampling interval.
    pub fn build(self) -> evax_core::error::Result<AdaptiveConfig> {
        use evax_core::error::EvaxError;
        if self.cfg.sample_interval == 0 {
            return Err(EvaxError::config(
                "sample_interval",
                "sampling interval must be positive",
            ));
        }
        if self.cfg.secure_window == 0 {
            return Err(EvaxError::config(
                "secure_window",
                "secure window must be positive",
            ));
        }
        if self.cfg.secure_window < self.cfg.sample_interval {
            return Err(EvaxError::config(
                "secure_window",
                format!(
                    "secure window ({}) must cover at least one sampling interval ({})",
                    self.cfg.secure_window, self.cfg.sample_interval
                ),
            ));
        }
        Ok(self.cfg)
    }
}

/// Per-stream secure-mode state machine: the detector-gated countdown the
/// [`AdaptiveController`] runs for its single program, factored out so the
/// fleet scheduler (`crate::fleet`) can hold one per tenant stream and
/// drain **batched** verdicts through exactly the same transitions.
///
/// Transitions (paper §VIII-A semantics, one call per sampling window):
/// a malicious verdict (re-)arms `secure_window` instructions of the
/// policy's mitigation; a benign verdict counts the window down and lifts
/// the mitigation on expiry; an untrustworthy verdict
/// ([`SecureModeState::fail_secure`]) is treated as "attack".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SecureModeState {
    /// Detector flags raised.
    pub flags: u64,
    /// Instructions executed while secure mode was active.
    pub secure_instructions: u64,
    /// Secure-mode instructions still to run before expiry.
    pub secure_remaining: u64,
    /// Untrustworthy verdicts routed to secure mode.
    pub fail_secure_switches: u64,
    /// Cycle of the first detector flag.
    pub first_flag_cycle: Option<u64>,
}

impl SecureModeState {
    /// Engages (or re-arms) secure mode for one untrustworthy verdict — a
    /// window with non-finite counters or a non-finite score. Fail-secure:
    /// an unobtainable verdict is treated as "attack".
    pub fn fail_secure(&mut self, cfg: &AdaptiveConfig) -> Option<MitigationMode> {
        self.fail_secure_switches += 1;
        self.secure_remaining = cfg.secure_window;
        self.secure_instructions += cfg.sample_interval;
        Some(cfg.policy.mode())
    }

    /// Applies one trusted verdict for the window ending at `cycle`,
    /// returning the mitigation switch to apply (if any).
    pub fn apply_verdict(
        &mut self,
        malicious: bool,
        cycle: u64,
        cfg: &AdaptiveConfig,
    ) -> Option<MitigationMode> {
        if malicious {
            self.flags += 1;
            if self.first_flag_cycle.is_none() {
                self.first_flag_cycle = Some(cycle);
            }
            self.secure_remaining = cfg.secure_window;
            self.secure_instructions += cfg.sample_interval;
            return Some(cfg.policy.mode());
        }
        if self.secure_remaining > 0 {
            self.secure_remaining = self.secure_remaining.saturating_sub(cfg.sample_interval);
            self.secure_instructions += cfg.sample_interval;
            if self.secure_remaining == 0 {
                // Window expired: back to performance mode.
                return Some(MitigationMode::None);
            }
        }
        None
    }
}

/// Outcome of an adaptive (or fixed-mode) run.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveRun {
    /// The simulator run result.
    pub result: RunResult,
    /// Detector flags raised.
    pub flags: u64,
    /// Instructions executed while secure mode was active.
    pub secure_instructions: u64,
    /// Windows whose verdict could not be trusted — a non-finite counter
    /// value or a non-finite detector score — and where the controller
    /// therefore engaged (or held) secure mode instead of guessing. The
    /// fail-secure policy: an unobtainable verdict is treated as "attack".
    pub fail_secure_switches: u64,
    /// Cycle of the first detector flag (`None` when nothing was flagged) —
    /// the paper's detection latency, measured from the start of the run
    /// (programs start at cycle 0 on a fresh core).
    pub first_flag_cycle: Option<u64>,
    /// `(instructions_committed, window_ipc)` series for Fig. 14 timelines.
    pub ipc_series: Vec<(u64, f64)>,
}

impl AdaptiveRun {
    /// Secure-window duty cycle in parts-per-million of committed
    /// instructions — an exact integer, so it is safe to export through the
    /// deterministic metrics block.
    pub fn secure_duty_ppm(&self) -> u64 {
        self.secure_instructions
            .min(self.result.committed_instructions)
            .saturating_mul(1_000_000)
            .checked_div(self.result.committed_instructions)
            .unwrap_or(0)
    }
}

/// The adaptive controller as a [`WindowSink`]: performance mode until the
/// detector flags, then `secure_window` instructions of the policy's
/// mitigation. Compose it with any [`WindowSource`]; [`run_adaptive`] wires
/// it to the canonical per-program source.
#[derive(Debug)]
pub struct AdaptiveController<'a> {
    detector: &'a Detector,
    /// Optional hardened deployment model (stochastic, ensemble, quantized —
    /// any [`ModelDetector`]) substituted for the detector's own linear
    /// model. The feature transform stays the detector's.
    model: Option<&'a dyn ModelDetector>,
    normalizer: &'a Normalizer,
    cfg: &'a AdaptiveConfig,
    /// One features buffer reused across every sampling window.
    features: Vec<f32>,
    /// Extended-feature scratch for the allocation-free scoring path.
    extended: Vec<f32>,
    /// Trait-level inference scratch (quantized/network model buffers).
    nn_scratch: DetectorScratch,
    state: SecureModeState,
    ipc_series: Vec<(u64, f64)>,
    faults: FaultInjector,
}

impl<'a> AdaptiveController<'a> {
    /// Creates a controller. The detector consumes *normalized* features,
    /// so the collection-time [`Normalizer`] must be supplied (persist it
    /// with the model — see `evax_core::io::write_featurizer`).
    pub fn new(
        detector: &'a Detector,
        normalizer: &'a Normalizer,
        cfg: &'a AdaptiveConfig,
    ) -> Self {
        AdaptiveController {
            detector,
            model: None,
            normalizer,
            cfg,
            features: vec![0.0f32; normalizer.dim()],
            extended: Vec::with_capacity(detector.extended_dim()),
            nn_scratch: DetectorScratch::new(),
            state: SecureModeState::default(),
            ipc_series: Vec::new(),
            faults: FaultInjector::disabled(),
        }
    }

    /// Substitutes a hardened deployment model for the detector's own
    /// linear model. Windows are still featurized through the detector's
    /// engineered transform; only the scoring/verdict step dispatches to
    /// `model` (its [`ModelDetector::decide`] — so integer-domain, jittered
    /// and majority-vote decision rules all stay exact). Without this call
    /// the controller's verdicts are bit-identical to the pre-trait path.
    ///
    /// # Panics
    /// Panics if `model` consumes a different feature dimension than the
    /// detector's extended space.
    pub fn with_model(mut self, model: &'a dyn ModelDetector) -> Self {
        assert_eq!(
            model.n_features(),
            self.detector.extended_dim(),
            "hardened model and detector disagree on the extended feature dimension"
        );
        self.model = Some(model);
        self
    }

    /// Routes the detector's raw score through a fault injector (chaos
    /// testing: [`evax_core::faults::FaultKind::NanScore`] /
    /// [`evax_core::faults::FaultKind::InfScore`]). The default disabled
    /// injector is bitwise invisible.
    pub fn with_faults(mut self, faults: FaultInjector) -> Self {
        self.faults = faults;
        self
    }

    /// Detector flags raised so far.
    pub fn flags(&self) -> u64 {
        self.state.flags
    }

    /// Fail-secure switches taken so far (untrustworthy verdicts).
    pub fn fail_secure_switches(&self) -> u64 {
        self.state.fail_secure_switches
    }

    /// Consumes the controller, pairing its tallies with the run result.
    pub fn finish(self, result: RunResult) -> AdaptiveRun {
        AdaptiveRun {
            result,
            flags: self.state.flags,
            secure_instructions: self.state.secure_instructions,
            fail_secure_switches: self.state.fail_secure_switches,
            first_flag_cycle: self.state.first_flag_cycle,
            ipc_series: self.ipc_series,
        }
    }
}

impl WindowSink for AdaptiveController<'_> {
    fn window(&mut self, w: &RawWindow<'_>) -> Option<MitigationMode> {
        // Non-finite IPC (a corrupted cycle count) must not poison the
        // exported timeline; record an explicit zero instead.
        let ipc = w.ipc();
        self.ipc_series
            .push((w.instructions, if ipc.is_finite() { ipc } else { 0.0 }));
        // Fail-secure gate #1: a window carrying non-finite counters cannot
        // be featurized honestly — treat the verdict as "attack".
        if w.values.iter().any(|v| !v.is_finite()) {
            return self.state.fail_secure(self.cfg);
        }
        self.normalizer.normalize_into(w.values, &mut self.features);
        // Score/verdict through the unified trait: the detector's own trait
        // impl reproduces the historical `score_with_scratch` chain bit for
        // bit, and a hardened model substituted via `with_model` brings its
        // own exact decision rule (integer compare, jittered threshold,
        // majority vote) along through `decide`.
        self.detector
            .transform_into(&self.features, &mut self.extended);
        let model = self.model.unwrap_or(self.detector as &dyn ModelDetector);
        let (raw, malicious) = model.decide(&self.extended, &mut self.nn_scratch);
        // Fail-secure gate #2: a non-finite detector score (faulted model,
        // injected inference fault) compares false against any threshold —
        // naive `score >= threshold` would fail *open*. Route non-finite
        // scores to secure mode instead.
        let score = self.faults.corrupt_score(raw);
        if !score.is_finite() {
            return self.state.fail_secure(self.cfg);
        }
        self.state.apply_verdict(malicious, w.cycle, self.cfg)
    }
}

/// Passive sink recording the per-window IPC timeline (fixed-mode baselines).
#[derive(Debug, Default)]
struct IpcTrace {
    series: Vec<(u64, f64)>,
}

impl WindowSink for IpcTrace {
    fn window(&mut self, w: &RawWindow<'_>) -> Option<MitigationMode> {
        self.series.push((w.instructions, w.ipc()));
        None
    }
}

/// Negotiates the controller's window width against the core's sensor
/// configuration before any window is sampled: a normalizer fitted on one
/// schema refuses a core producing another width up front, with
/// [`evax_core::error::EvaxError::Config`] context, instead of a bare
/// slice-length panic mid-run.
///
/// # Panics
/// Panics (with the typed error's message) on a width disagreement.
fn check_window_width(cpu_cfg: &CpuConfig, normalizer: &Normalizer) {
    let produced = evax_sim::dim_for(cpu_cfg);
    if normalizer.dim() != produced {
        let err = evax_core::error::EvaxError::config(
            "adaptive",
            format!(
                "configuration produces {produced}-wide windows but the \
                 normalizer was fitted on {}-wide windows",
                normalizer.dim()
            ),
        );
        panic!("{err}");
    }
}

/// Runs `program` under the adaptive architecture: performance mode until
/// the detector flags, then `secure_window` instructions of the policy's
/// mitigation.
///
/// The detector consumes *normalized* features, so the collection-time
/// [`Normalizer`] must be supplied.
pub fn run_adaptive(
    cpu_cfg: &CpuConfig,
    program: &Program,
    detector: &Detector,
    normalizer: &Normalizer,
    cfg: &AdaptiveConfig,
    max_instrs: u64,
) -> AdaptiveRun {
    check_window_width(cpu_cfg, normalizer);
    let mut controller = AdaptiveController::new(detector, normalizer, cfg);
    let result = ProgramSource::new(program, cpu_cfg, cfg.sample_interval, max_instrs)
        .stream(&mut controller);
    controller.finish(result)
}

/// [`run_adaptive`] with a hardened deployment model substituted for the
/// detector's own linear model (see [`AdaptiveController::with_model`]):
/// the arms-race deployment path for [`evax_nn::StochasticDetector`] /
/// [`evax_nn::Ensemble`] / [`evax_nn::QuantLinear`] variants.
pub fn run_adaptive_with_model(
    cpu_cfg: &CpuConfig,
    program: &Program,
    detector: &Detector,
    model: &dyn ModelDetector,
    normalizer: &Normalizer,
    cfg: &AdaptiveConfig,
    max_instrs: u64,
) -> AdaptiveRun {
    check_window_width(cpu_cfg, normalizer);
    let mut controller = AdaptiveController::new(detector, normalizer, cfg).with_model(model);
    let result = ProgramSource::new(program, cpu_cfg, cfg.sample_interval, max_instrs)
        .stream(&mut controller);
    controller.finish(result)
}

/// Runs `program` with a fixed mitigation mode (the always-on baselines and
/// the unprotected baseline).
pub fn run_fixed(
    cpu_cfg: &CpuConfig,
    program: &Program,
    mode: MitigationMode,
    sample_interval: u64,
    max_instrs: u64,
) -> AdaptiveRun {
    let mut cfg = cpu_cfg.clone();
    cfg.mitigation = mode;
    let mut trace = IpcTrace::default();
    let result = ProgramSource::new(program, &cfg, sample_interval, max_instrs).stream(&mut trace);
    let secure = if mode == MitigationMode::None {
        0
    } else {
        result.committed_instructions
    };
    AdaptiveRun {
        flags: 0,
        secure_instructions: secure,
        fail_secure_switches: 0,
        first_flag_cycle: None,
        result,
        ipc_series: trace.series,
    }
}

/// [`run_adaptive`] with observability: the underlying [`ProgramSource`]
/// records `featurize.*`/`sim.*` metrics, and the controller's verdicts are
/// exported under `adaptive.<label>.*` — per-run detection latency in
/// cycles (`detection_latency_cycles`, attacks start at cycle 0 on the
/// fresh core), secure-window duty cycle in ppm of committed instructions
/// (`secure_duty_ppm`), flag/window tallies, and — when `is_attack` is
/// `false` — the false-flag tally (`false_flags`) behind the paper's
/// false-switch overhead argument. All exported values are integers derived
/// from simulated quantities, so they are bit-identical across runs and
/// thread counts. Recording never feeds back into the run: the returned
/// [`AdaptiveRun`] equals [`run_adaptive`]'s.
#[allow(clippy::too_many_arguments)]
pub fn run_adaptive_with_metrics(
    cpu_cfg: &CpuConfig,
    program: &Program,
    detector: &Detector,
    normalizer: &Normalizer,
    cfg: &AdaptiveConfig,
    max_instrs: u64,
    metrics: &MetricsSink,
    label: &str,
    is_attack: bool,
) -> AdaptiveRun {
    check_window_width(cpu_cfg, normalizer);
    let mut controller = AdaptiveController::new(detector, normalizer, cfg);
    let result = ProgramSource::new(program, cpu_cfg, cfg.sample_interval, max_instrs)
        .with_metrics(metrics.clone())
        .stream(&mut controller);
    let run = controller.finish(result);
    if metrics.enabled() {
        let p = |m: &str| format!("adaptive.{label}.{m}");
        metrics.add(&p("runs"), 1);
        metrics.add(&p("windows"), run.ipc_series.len() as u64);
        metrics.add(&p("flags"), run.flags);
        metrics.add(&p("fail_secure_switches"), run.fail_secure_switches);
        metrics.add(&p("secure_instructions"), run.secure_instructions);
        metrics.add(
            &p("committed_instructions"),
            run.result.committed_instructions,
        );
        metrics.add(&p("cycles"), run.result.cycles);
        metrics.observe(&p("secure_duty_ppm"), run.secure_duty_ppm());
        if is_attack {
            match run.first_flag_cycle {
                Some(cycle) => metrics.observe(&p("detection_latency_cycles"), cycle),
                None => metrics.add(&p("missed_detections"), 1),
            }
        } else {
            metrics.add(&p("false_flags"), run.flags);
        }
    }
    run
}

/// [`run_fixed`] with observability: records the baseline/always-on
/// cycle and instruction tallies under `fixed.<label>.*` (the denominators
/// of the Fig. 16 overhead table `obs_report` renders).
pub fn run_fixed_with_metrics(
    cpu_cfg: &CpuConfig,
    program: &Program,
    mode: MitigationMode,
    sample_interval: u64,
    max_instrs: u64,
    metrics: &MetricsSink,
    label: &str,
) -> AdaptiveRun {
    let run = run_fixed(cpu_cfg, program, mode, sample_interval, max_instrs);
    if metrics.enabled() {
        let p = |m: &str| format!("fixed.{label}.{m}");
        metrics.add(&p("runs"), 1);
        metrics.add(&p("cycles"), run.result.cycles);
        metrics.add(
            &p("committed_instructions"),
            run.result.committed_instructions,
        );
        metrics.add(&p("secure_instructions"), run.secure_instructions);
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use evax_attacks::benign::Scale;
    use evax_core::collect::{collect_dataset, CollectConfig};
    use evax_core::detector::{DetectorKind, TrainConfig};
    use rand::SeedableRng;

    fn small_collect() -> CollectConfig {
        CollectConfig {
            interval: 200,
            runs_per_attack: 1,
            runs_per_benign: 1,
            max_instrs: 3_000,
            benign_scale: 3_000,
            ..Default::default()
        }
    }

    fn trained_detector(seed: u64) -> (Detector, Normalizer) {
        let (ds, norm) = collect_dataset(&small_collect(), seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut det = Detector::train(
            DetectorKind::Evax,
            &ds,
            vec![],
            &TrainConfig::default(),
            &mut rng,
        );
        det.tune_for_tpr(&ds, 0.99);
        (det, norm)
    }

    #[test]
    fn policies_map_to_modes() {
        assert_eq!(Policy::FenceSpectre.mode(), MitigationMode::FenceSpectre);
        assert_eq!(
            Policy::InvisiSpecFuturistic.mode(),
            MitigationMode::InvisiSpecFuturistic
        );
        assert!(!Policy::FenceFuturistic.name().is_empty());
    }

    #[test]
    #[should_panic(expected = "wide windows")]
    fn adaptive_refuses_mismatched_window_width() {
        let (det, norm) = trained_detector(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let attack = evax_attacks::build_attack(
            evax_attacks::AttackClass::SpectrePht,
            &evax_attacks::KernelParams::default(),
            &mut rng,
        );
        let cfg = AdaptiveConfig::default();
        // Baseline-fitted normalizer against an energy-enabled core: the
        // width negotiation fails up front with Config context.
        let cpu_cfg = CpuConfig {
            sensor: evax_sim::SensorConfig::builder()
                .energy(true)
                .build()
                .unwrap(),
            ..CpuConfig::default()
        };
        run_adaptive(&cpu_cfg, &attack, &det, &norm, &cfg, 20_000);
    }

    #[test]
    fn adaptive_flags_attack_and_engages_secure_mode() {
        let (det, norm) = trained_detector(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let attack = evax_attacks::build_attack(
            evax_attacks::AttackClass::SpectrePht,
            &evax_attacks::KernelParams::default(),
            &mut rng,
        );
        let cfg = AdaptiveConfig {
            sample_interval: 200,
            secure_window: 2_000,
            ..Default::default()
        };
        let run = run_adaptive(&CpuConfig::default(), &attack, &det, &norm, &cfg, 20_000);
        assert!(run.flags > 0, "detector must flag the attack");
        assert!(run.secure_instructions > 0);
    }

    #[test]
    fn trait_model_path_matches_plain_run_bitwise() {
        let (det, norm) = trained_detector(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let attack = evax_attacks::build_attack(
            evax_attacks::AttackClass::SpectrePht,
            &evax_attacks::KernelParams::default(),
            &mut rng,
        );
        let cfg = AdaptiveConfig {
            sample_interval: 200,
            secure_window: 2_000,
            ..Default::default()
        };
        let cpu = CpuConfig::default();
        let plain = run_adaptive(&cpu, &attack, &det, &norm, &cfg, 20_000);

        // The detector's deployed linear model through explicit trait
        // dispatch must reproduce the plain run exactly.
        let linear = det.to_model();
        let via_model = run_adaptive_with_model(&cpu, &attack, &det, &linear, &norm, &cfg, 20_000);
        assert_eq!(plain, via_model, "trait dispatch must be bitwise invisible");

        // Zero-jitter stochastic hardening is bitwise the base model too.
        let frozen = det.harden_stochastic(42, 0.0);
        let via_frozen = run_adaptive_with_model(&cpu, &attack, &det, &frozen, &norm, &cfg, 20_000);
        assert_eq!(plain, via_frozen, "jitter=0 must be the identity");

        // Hardened variants still catch the attack.
        let stochastic = det.harden_stochastic(42, 0.05);
        let run_s = run_adaptive_with_model(&cpu, &attack, &det, &stochastic, &norm, &cfg, 20_000);
        assert!(run_s.flags > 0, "stochastic detector must flag the attack");
        let ensemble = evax_nn::Ensemble::new(vec![
            Box::new(det.to_model()),
            Box::new(det.harden_stochastic(7, 0.03)),
            Box::new(det.quantize_linear()),
        ]);
        let run_e = run_adaptive_with_model(&cpu, &attack, &det, &ensemble, &norm, &cfg, 20_000);
        assert!(run_e.flags > 0, "ensemble must flag the attack");
    }

    #[test]
    fn metered_runs_match_unmetered_bit_for_bit() {
        use evax_core::prelude::{MetricsSink, Registry};
        let (det, norm) = trained_detector(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let attack = evax_attacks::build_attack(
            evax_attacks::AttackClass::SpectrePht,
            &evax_attacks::KernelParams::default(),
            &mut rng,
        );
        let cfg = AdaptiveConfig {
            sample_interval: 200,
            secure_window: 2_000,
            ..Default::default()
        };
        let cpu = CpuConfig::default();
        let registry = Registry::shared();
        let sink = MetricsSink::recording(&registry);

        let plain = run_adaptive(&cpu, &attack, &det, &norm, &cfg, 20_000);
        let metered =
            run_adaptive_with_metrics(&cpu, &attack, &det, &norm, &cfg, 20_000, &sink, "atk", true);
        assert_eq!(plain, metered, "recording must not perturb the run");
        assert_eq!(registry.get("adaptive.atk.flags"), Some(plain.flags));
        assert_eq!(
            registry.get("adaptive.atk.fail_secure_switches"),
            Some(plain.fail_secure_switches),
            "fail-secure tally must be exported even when zero"
        );
        assert_eq!(
            registry.get("adaptive.atk.detection_latency_cycles"),
            plain.first_flag_cycle,
            "latency histogram sum must equal the first flag cycle"
        );

        let fixed_plain = run_fixed(&cpu, &attack, MitigationMode::FenceSpectre, 200, 20_000);
        let fixed_metered = run_fixed_with_metrics(
            &cpu,
            &attack,
            MitigationMode::FenceSpectre,
            200,
            20_000,
            &sink,
            "atk_fence",
        );
        assert_eq!(fixed_plain, fixed_metered);
        assert_eq!(
            registry.get("fixed.atk_fence.cycles"),
            Some(fixed_plain.result.cycles)
        );
    }

    #[test]
    fn adaptive_on_benign_is_cheaper_than_always_on() {
        let (det, norm) = trained_detector(4);
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        // A workload with independent loads (memory-level parallelism for
        // fencing to destroy); pure pointer-chasing serializes anyway.
        let workload = evax_attacks::build_benign(
            evax_attacks::BenignKind::Compression,
            Scale(15_000),
            &mut rng,
        );
        let cfg = AdaptiveConfig {
            sample_interval: 200,
            secure_window: 2_000,
            policy: Policy::FenceFuturistic,
        };
        let base = run_fixed(
            &CpuConfig::default(),
            &workload,
            MitigationMode::None,
            200,
            40_000,
        );
        let always = run_fixed(
            &CpuConfig::default(),
            &workload,
            MitigationMode::FenceFuturistic,
            200,
            40_000,
        );
        let adaptive = run_adaptive(&CpuConfig::default(), &workload, &det, &norm, &cfg, 40_000);
        assert!(
            always.result.cycles > base.result.cycles,
            "always-on must cost cycles"
        );
        assert!(
            adaptive.result.cycles < always.result.cycles,
            "adaptive must beat always-on: adaptive={} always={}",
            adaptive.result.cycles,
            always.result.cycles
        );
    }

    #[test]
    fn ipc_series_is_populated() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let workload =
            evax_attacks::build_benign(evax_attacks::BenignKind::MatrixAi, Scale(8_000), &mut rng);
        let run = run_fixed(
            &CpuConfig::default(),
            &workload,
            MitigationMode::None,
            500,
            20_000,
        );
        assert!(run.ipc_series.len() >= 5);
        assert!(run.ipc_series.iter().all(|&(_, ipc)| ipc > 0.0));
    }

    #[test]
    fn non_finite_windows_fail_secure() {
        use evax_core::prelude::FaultKind;
        let (mut det, norm) = trained_detector(5);
        // Silence genuine flags so only the fail-secure path can engage
        // secure mode: no finite score reaches an infinite threshold.
        det.set_threshold(f32::INFINITY);
        let cfg = AdaptiveConfig {
            sample_interval: 200,
            secure_window: 400,
            ..Default::default()
        };
        let mut ctl = AdaptiveController::new(&det, &norm, &cfg);
        let dim = norm.dim();
        let clean = vec![1.0f64; dim];
        assert_eq!(
            ctl.window(&RawWindow {
                values: &clean,
                instructions: 200,
                cycle: 400
            }),
            None,
            "a finite benign window must stay in performance mode"
        );

        for (i, poison) in [f64::NAN, f64::INFINITY, u64::MAX as f64]
            .iter()
            .enumerate()
        {
            let mut bad = clean.clone();
            bad[dim - 1] = *poison;
            if poison.is_finite() {
                // Saturated-but-finite counters are hostile data, not an
                // unobtainable verdict: they flow through normalization
                // (which clamps to [0, 1]) and an ordinary verdict.
                ctl.window(&RawWindow {
                    values: &bad,
                    instructions: 200,
                    cycle: 400,
                });
                continue;
            }
            assert_eq!(
                ctl.window(&RawWindow {
                    values: &bad,
                    instructions: 200,
                    cycle: 400
                }),
                Some(cfg.policy.mode()),
                "non-finite window #{i} must engage secure mode"
            );
        }
        assert_eq!(ctl.fail_secure_switches(), 2, "NaN + Inf windows");
        assert_eq!(
            ctl.flags(),
            0,
            "fail-secure switches are not detector flags"
        );

        // Finite windows afterwards resume the ordinary secure-window
        // countdown: 400 instructions at interval 200 = two windows, and the
        // saturated (finite) window above already consumed the first.
        assert_eq!(
            ctl.window(&RawWindow {
                values: &clean,
                instructions: 200,
                cycle: 400
            }),
            Some(MitigationMode::None),
            "secure window must expire back to performance mode"
        );
        assert_eq!(
            ctl.window(&RawWindow {
                values: &clean,
                instructions: 200,
                cycle: 400
            }),
            None,
            "performance mode afterwards"
        );

        let run = ctl.finish(RunResult {
            committed_instructions: 1_000,
            cycles: 2_000,
            ipc: 0.5,
            halted: true,
            regs: [0; 32],
        });
        assert_eq!(run.fail_secure_switches, 2);
        assert!(
            run.ipc_series.iter().all(|&(_, ipc)| ipc.is_finite()),
            "exported IPC timeline must stay finite under poisoned windows"
        );
        // Keep FaultKind in scope meaningful: the same poison values drive
        // the injector-based test below.
        assert!(FaultKind::NanWindow.is_data());
    }

    #[test]
    fn non_finite_scores_fail_secure_not_open() {
        use evax_core::prelude::{FaultInjector, FaultKind};
        let (det, norm) = trained_detector(5);
        let cfg = AdaptiveConfig {
            sample_interval: 200,
            secure_window: 2_000,
            ..Default::default()
        };
        let dim = norm.dim();
        let clean = vec![1.0f64; dim];
        for kind in [FaultKind::NanScore, FaultKind::InfScore] {
            let inj = FaultInjector::new(kind, 7).with_intensity(1);
            let mut ctl = AdaptiveController::new(&det, &norm, &cfg).with_faults(inj.clone());
            assert_eq!(
                ctl.window(&RawWindow {
                    values: &clean,
                    instructions: 200,
                    cycle: 400
                }),
                Some(cfg.policy.mode()),
                "{kind:?}: an unscoreable verdict must hold mitigations ON"
            );
            assert_eq!(ctl.fail_secure_switches(), 1);
            assert_eq!(ctl.flags(), 0);
            assert_eq!(inj.injections(), 1);
        }
    }

    #[test]
    fn disabled_injector_is_bitwise_invisible_in_runs() {
        let (det, norm) = trained_detector(3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let attack = evax_attacks::build_attack(
            evax_attacks::AttackClass::SpectrePht,
            &evax_attacks::KernelParams::default(),
            &mut rng,
        );
        let cfg = AdaptiveConfig {
            sample_interval: 200,
            secure_window: 2_000,
            ..Default::default()
        };
        let cpu = CpuConfig::default();
        let plain = run_adaptive(&cpu, &attack, &det, &norm, &cfg, 20_000);
        let mut ctl = AdaptiveController::new(&det, &norm, &cfg)
            .with_faults(evax_core::prelude::FaultInjector::disabled());
        let result =
            ProgramSource::new(&attack, &cpu, cfg.sample_interval, 20_000).stream(&mut ctl);
        let hooked = ctl.finish(result);
        assert_eq!(
            plain, hooked,
            "a disabled injector must not perturb the run"
        );
        assert_eq!(plain.fail_secure_switches, 0);
    }

    #[test]
    fn builder_defaults_match_default() {
        let built = AdaptiveConfig::builder().build().unwrap();
        assert_eq!(built, AdaptiveConfig::default());
    }

    #[test]
    fn builder_rejects_degenerate_configs() {
        use evax_core::error::EvaxError;
        for (builder, field) in [
            (
                AdaptiveConfig::builder().sample_interval(0),
                "sample_interval",
            ),
            (AdaptiveConfig::builder().secure_window(0), "secure_window"),
            (
                // Secure mode would expire before the next verdict.
                AdaptiveConfig::builder()
                    .sample_interval(500)
                    .secure_window(100),
                "secure_window",
            ),
        ] {
            match builder.build() {
                Err(EvaxError::Config { what, .. }) => assert_eq!(what, field),
                other => panic!("expected Config error for {field}, got {other:?}"),
            }
        }
        let cfg = AdaptiveConfig::builder()
            .sample_interval(250)
            .secure_window(5_000)
            .policy(Policy::InvisiSpecFuturistic)
            .build()
            .unwrap();
        assert_eq!(cfg.sample_interval, 250);
        assert_eq!(cfg.policy, Policy::InvisiSpecFuturistic);
    }
}
