//! Fleet-scale detection service: a sharded multi-stream scheduler with
//! cross-stream batched (and optionally quantized) detector inference.
//!
//! The paper's HMD guards *many* programs at once with tiny per-window
//! inference cost (its hardware model even quantizes weights to 9-bit
//! integers, §VI-B) — yet a per-program `run_adaptive` call drives one
//! tenant to completion and classifies one window at a time. This module is
//! the many-tenant deployment shape:
//!
//! * **Streams** — one per simulated tenant, seeded deterministically from
//!   the attack/benign registry. Each stream owns a [`Cpu`] plus a
//!   [`SampledCursor`], so it advances one sampling window at a time
//!   without restarting its program.
//! * **Shards** — streams are assigned round-robin to a *fixed* number of
//!   shards ([`evax_core::par::round_robin_shards`]); shards fan out over
//!   [`evax_core::par::map`]. The shard count comes from configuration,
//!   never from the worker count, so the work decomposition — and with it
//!   batch composition and flush timing — is identical at any thread count.
//! * **Batched inference** — inside a shard, windows from all streams
//!   accumulate into a [`WindowBatch`] of extended feature rows. A full
//!   batch drains through the evax-nn batched scoring kernel; the partial
//!   remainder at the end of each round-robin pass drains through the
//!   in-place per-row path (the "tail"), bounding every window's verdict
//!   latency to one pass. Verdicts feed the same [`SecureModeState`]
//!   transitions the single-stream [`AdaptiveController`] uses — the batch
//!   drain is the controller's per-window logic, applied per tag.
//!
//! # Determinism contract
//!
//! In [`InferenceMode::BatchedF32`] mode the batched kernel reduces every
//! row with the exact accumulation chain of per-window scoring
//! (`evax_nn::tensor::matvec_bias_into`), so a window's score — and
//! therefore every verdict, flag, and secure-mode transition — is
//! independent of batch composition and thread count. `FleetReport`'s
//! deterministic block is **byte-identical** at 1, 4, or 16 threads; the
//! `fleet` bench binary's determinism test pins this.
//!
//! [`AdaptiveController`]: crate::adaptive::AdaptiveController

use std::collections::HashMap;
use std::time::Instant;

use evax_core::par::{self, round_robin_shards, Parallelism};
use evax_core::prelude::{Detector, Featurizer, WindowBatch};
use evax_nn::detector::{Detector as ModelDetector, DetectorScratch};
use evax_sim::{Cpu, CpuConfig, Program, RunResult, SampledCursor, SampledStep};
use rand::SeedableRng;

use crate::adaptive::{AdaptiveConfig, SecureModeState};

/// Inference backend for the fleet's batch drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferenceMode {
    /// One allocating `Detector::classify` call per window — the pre-fleet
    /// baseline path, kept as the throughput yardstick.
    PerWindow,
    /// Cross-stream batched f32 scoring through the threaded evax-nn
    /// kernel. Verdicts are bit-identical to per-window scoring.
    BatchedF32,
    /// Cross-stream batched 9-bit integer scoring
    /// ([`evax_nn::QuantLinear`]).
    /// Verdicts may differ from f32 only inside the kernel's provable
    /// ambiguity band around the threshold.
    BatchedQuant,
}

impl InferenceMode {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            InferenceMode::PerWindow => "per_window",
            InferenceMode::BatchedF32 => "batched_f32",
            InferenceMode::BatchedQuant => "batched_quant",
        }
    }
}

/// Fleet configuration.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of tenant streams.
    pub n_streams: usize,
    /// Every `attack_every`-th stream runs an attack kernel (cycling the
    /// registry's 21 classes); the rest run benign kernels (cycling the 10
    /// kinds). `0` makes the whole fleet benign.
    pub attack_every: usize,
    /// Per-stream committed-instruction budget.
    pub max_instrs: u64,
    /// Sampling interval / secure window / mitigation policy.
    pub adaptive: AdaptiveConfig,
    /// Windows per shard-local batch before a full (threaded) drain.
    pub batch_windows: usize,
    /// Fixed shard count — the determinism unit (see module docs).
    pub n_shards: usize,
    /// Worker threads for the in-shard batched kernel. Keep at 1 when the
    /// shard fan-out already owns the cores; the dedicated inference
    /// benchmark raises it.
    pub kernel_threads: usize,
    /// Inference backend.
    pub inference: InferenceMode,
    /// Master seed; per-stream program seeds derive from it by stream id.
    pub seed: u64,
    /// Warm-start tenant cores from a per-program-class snapshot pool: one
    /// representative core per distinct registry program is fast-forwarded
    /// (functional execution with approximate cache/TLB/predictor warm-up)
    /// and snapshotted before sharding, and every tenant stream of that
    /// class forks from the warm snapshot instead of a cold core. Windows
    /// are approximate (warm microarchitectural state from a sibling run);
    /// the `ff` bench quantifies the verdict drift.
    pub warm_start: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            n_streams: 1024,
            attack_every: 4,
            max_instrs: 2_000,
            adaptive: AdaptiveConfig {
                sample_interval: 200,
                secure_window: 1_000,
                ..AdaptiveConfig::default()
            },
            // 1024 streams / 64 shards = 16 streams per shard: a 16-window
            // batch fills once per full-strength pass (threaded drain) and
            // tails off as streams retire (in-place drain).
            batch_windows: 16,
            n_shards: 64,
            kernel_threads: 1,
            inference: InferenceMode::BatchedF32,
            seed: 0xF1EE7,
            warm_start: false,
        }
    }
}

/// Per-stream tallies, in ascending `stream_id` order in the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamOutcome {
    /// The stream's fleet-wide id.
    pub stream_id: usize,
    /// Attack class label (1-based registry label), or 0 for benign.
    pub class_label: usize,
    /// Sampling windows produced.
    pub windows: u64,
    /// Detector flags raised.
    pub flags: u64,
    /// Untrustworthy verdicts routed to secure mode.
    pub fail_secure_switches: u64,
    /// Cycle of the first flag.
    pub first_flag_cycle: Option<u64>,
    /// Instructions spent in secure mode.
    pub secure_instructions: u64,
    /// Instructions committed by the stream.
    pub committed_instructions: u64,
    /// Cycles the stream ran for.
    pub cycles: u64,
}

/// Outcome of a fleet run: per-stream tallies (deterministic) plus
/// wall-clock window→verdict latencies (not deterministic — excluded from
/// [`FleetReport::deterministic_json`]).
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-stream outcomes, ascending `stream_id`.
    pub outcomes: Vec<StreamOutcome>,
    /// Wall-clock nanoseconds from window production to verdict
    /// application, one entry per trusted-or-failed verdict, in
    /// shard-major order.
    pub latencies_ns: Vec<u64>,
    /// Full-batch (threaded kernel) drains.
    pub full_flushes: u64,
    /// End-of-pass partial drains through the in-place tail path.
    pub tail_flushes: u64,
    /// CPU nanoseconds spent stepping simulated cores (summed across shard
    /// workers, so this can exceed wall-clock on a multi-core run; compare
    /// against [`FleetReport::inference_ns`], measured the same way).
    pub sim_ns: u64,
    /// CPU nanoseconds spent in featurization + inference drains, summed
    /// across shard workers like [`FleetReport::sim_ns`].
    pub inference_ns: u64,
    /// Inference backend the run used.
    pub inference: InferenceMode,
}

impl FleetReport {
    /// Total sampling windows across the fleet.
    pub fn windows(&self) -> u64 {
        self.outcomes.iter().map(|o| o.windows).sum()
    }

    /// Total detector flags across the fleet.
    pub fn flags(&self) -> u64 {
        self.outcomes.iter().map(|o| o.flags).sum()
    }

    /// Total fail-secure switches across the fleet.
    pub fn fail_secure_switches(&self) -> u64 {
        self.outcomes.iter().map(|o| o.fail_secure_switches).sum()
    }

    /// Attack streams that raised at least one flag.
    pub fn flagged_attack_streams(&self) -> u64 {
        self.outcomes
            .iter()
            .filter(|o| o.class_label != 0 && o.flags > 0)
            .count() as u64
    }

    /// Benign streams that raised at least one (false) flag.
    pub fn false_flag_streams(&self) -> u64 {
        self.outcomes
            .iter()
            .filter(|o| o.class_label == 0 && o.flags > 0)
            .count() as u64
    }

    /// FNV-1a digest over every per-stream outcome field, in stream order —
    /// one u64 that changes if any window's verdict anywhere in the fleet
    /// changes. The determinism tests compare this (inside
    /// [`FleetReport::deterministic_json`]) across thread counts.
    pub fn verdict_digest(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        for o in &self.outcomes {
            eat(o.stream_id as u64);
            eat(o.class_label as u64);
            eat(o.windows);
            eat(o.flags);
            eat(o.fail_secure_switches);
            eat(o.first_flag_cycle.map_or(u64::MAX, |c| c));
            eat(o.secure_instructions);
            eat(o.committed_instructions);
            eat(o.cycles);
        }
        h
    }

    /// The deterministic block of `BENCH_fleet.json`: aggregates plus the
    /// per-stream verdict digest, rendered with a fixed field order. Every
    /// value is an integer derived from simulated quantities, so in f32
    /// mode the string is byte-identical at any thread count.
    pub fn deterministic_json(&self) -> String {
        let committed: u64 = self.outcomes.iter().map(|o| o.committed_instructions).sum();
        let cycles: u64 = self.outcomes.iter().map(|o| o.cycles).sum();
        let secure: u64 = self.outcomes.iter().map(|o| o.secure_instructions).sum();
        format!(
            concat!(
                "{{\"inference\":\"{}\",\"streams\":{},\"windows\":{},\"flags\":{},",
                "\"fail_secure_switches\":{},\"flagged_attack_streams\":{},",
                "\"false_flag_streams\":{},\"secure_instructions\":{},",
                "\"committed_instructions\":{},\"cycles\":{},\"full_flushes\":{},",
                "\"tail_flushes\":{},\"verdict_digest\":\"{:016x}\"}}"
            ),
            self.inference.name(),
            self.outcomes.len(),
            self.windows(),
            self.flags(),
            self.fail_secure_switches(),
            self.flagged_attack_streams(),
            self.false_flag_streams(),
            secure,
            committed,
            cycles,
            self.full_flushes,
            self.tail_flushes,
            self.verdict_digest(),
        )
    }
}

/// One tenant stream: program + core + resumable cursor + secure-mode state.
struct FleetStream {
    id: usize,
    class_label: usize,
    program: Program,
    cpu: Cpu,
    cursor: SampledCursor,
    state: SecureModeState,
    windows: u64,
    result: Option<RunResult>,
}

/// Builds stream `id`'s program deterministically from the registry: the
/// program choice and its seed depend only on `(cfg.seed, id)`.
fn stream_program(id: usize, cfg: &FleetConfig) -> (Program, usize) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(
        cfg.seed ^ (id as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    if cfg.attack_every > 0 && id.is_multiple_of(cfg.attack_every) {
        let class = evax_attacks::ATTACK_CLASSES
            [(id / cfg.attack_every) % evax_attacks::ATTACK_CLASSES.len()];
        (
            evax_attacks::build_attack(class, &evax_attacks::KernelParams::default(), &mut rng),
            class.label(),
        )
    } else {
        let kind = evax_attacks::BENIGN_KINDS[id % evax_attacks::BENIGN_KINDS.len()];
        (
            evax_attacks::build_benign(kind, evax_attacks::benign::Scale(cfg.max_instrs), &mut rng),
            0,
        )
    }
}

/// The per-program-class warm-start pool: `name → warm template core` for
/// one representative per distinct registry program. Templates are produced
/// by a snapshot→restore round trip (exercising the serialized format) and
/// then cloned per tenant stream — cloning forks the full core state at
/// memcpy speed, far cheaper than re-parsing the snapshot word stream per
/// stream.
type WarmPool = HashMap<String, Cpu>;

/// Warms one core per distinct registry program name (sequentially, before
/// the shard fan-out, so the pool is identical at any thread count): the
/// representative is fast-forwarded through half the stream budget and
/// snapshotted. That prefix then counts against every forked stream's
/// retirement budget (see [`build_stream`]), so half of each tenant's
/// instructions retire once per class at functional speed instead of per
/// stream at detailed speed. Programs that finish inside the warm-up budget
/// stay cold — they are cheap to run exactly, and a fully retired core has
/// nothing left to sample.
fn build_warm_pool(cfg: &FleetConfig, cpu_cfg: &CpuConfig) -> WarmPool {
    let warm = cfg.max_instrs / 2;
    let mut pool = WarmPool::new();
    if warm == 0 {
        return pool;
    }
    for id in 0..cfg.n_streams {
        let (program, _) = stream_program(id, cfg);
        if pool.contains_key(program.name()) {
            continue;
        }
        let mut cpu = Cpu::new(cpu_cfg.clone());
        if cpu.fast_forward(&program, warm) < warm {
            continue;
        }
        let snap = cpu.snapshot();
        if let Ok(template) = Cpu::restore(cpu_cfg.clone(), &snap) {
            pool.insert(program.name().to_string(), template);
        }
    }
    pool
}

/// Builds stream `id`: its registry program plus a core — forked from the
/// class's warm snapshot when the pool has one, cold otherwise.
fn build_stream(id: usize, cfg: &FleetConfig, cpu_cfg: &CpuConfig, pool: &WarmPool) -> FleetStream {
    let (program, class_label) = stream_program(id, cfg);
    let mut cpu = match pool.get(program.name()) {
        Some(template) => template.clone(),
        None => Cpu::new(cpu_cfg.clone()),
    };
    // `max_instrs` is the stream's total retirement budget: instructions the
    // warm template already retired functionally (once per program class, at
    // fast-forward speed) are not re-run on the detailed core per stream —
    // that amortization is what makes warm-start a throughput win.
    let budget = cfg.max_instrs.saturating_sub(cpu.stats().committed_insts);
    let cursor = cpu.begin_sampled(budget, cfg.adaptive.sample_interval);
    FleetStream {
        id,
        class_label,
        program,
        cpu,
        cursor,
        state: SecureModeState::default(),
        windows: 0,
        result: None,
    }
}

/// Shard-local drain scratch, reused across flushes.
struct DrainScratch {
    scores: Vec<f32>,
    verdicts: Vec<bool>,
    nn: DetectorScratch,
}

/// Drains every pending window in `batch` through the shard's model — any
/// [`ModelDetector`], so the same drain serves the f32 perceptron, the
/// 9-bit integer kernel, and hardened (stochastic/ensemble) variants — and
/// applies each verdict to its stream's secure-mode state (fail-secure on a
/// non-finite f32 score). `full` drains through the threaded batch kernel;
/// the tail path runs the same adapter single-threaded, which every adapter
/// pins bit-identical to its threaded reduction.
fn drain_batch(
    batch: &mut WindowBatch<(usize, u64, Instant)>,
    streams: &mut [FleetStream],
    model: &dyn ModelDetector,
    cfg: &FleetConfig,
    scratch: &mut DrainScratch,
    latencies: &mut Vec<u64>,
    full: bool,
) {
    let n = batch.len();
    if n == 0 {
        return;
    }
    scratch.scores.clear();
    scratch.scores.resize(n, 0.0);
    scratch.verdicts.clear();
    scratch.verdicts.resize(n, false);
    // Tail flushes are small partial batches: they take the single-threaded
    // reduction (no fan-out cost), which each adapter keeps bit-identical
    // to the threaded full-batch kernel.
    let threads = if full { cfg.kernel_threads } else { 1 };
    model.classify_rows_into(
        batch.rows(),
        threads,
        &mut scratch.nn,
        &mut scratch.scores,
        &mut scratch.verdicts,
    );
    for (i, &(slot, cycle, t0)) in batch.tags().iter().enumerate() {
        let s = &mut streams[slot];
        let mode = if !scratch.scores[i].is_finite() {
            // Fail-secure gate #2, batched form: an unscoreable window holds
            // mitigations ON rather than comparing false against the
            // threshold.
            s.state.fail_secure(&cfg.adaptive)
        } else {
            s.state
                .apply_verdict(scratch.verdicts[i], cycle, &cfg.adaptive)
        };
        if let Some(mode) = mode {
            s.cpu.set_mitigation(mode);
        }
        latencies.push(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
    }
    batch.clear();
}

/// Runs one shard to completion: round-robin passes over its live streams,
/// batching windows and draining verdicts, until every stream finishes.
#[allow(clippy::too_many_arguments)]
fn run_shard(
    indices: &[usize],
    cfg: &FleetConfig,
    cpu_cfg: &CpuConfig,
    detector: &Detector,
    featurizer: &Featurizer,
    model: &dyn ModelDetector,
    pool: &WarmPool,
) -> (Vec<StreamOutcome>, Vec<u64>, u64, u64, u64, u64) {
    let mut streams: Vec<FleetStream> = indices
        .iter()
        .map(|&id| build_stream(id, cfg, cpu_cfg, pool))
        .collect();
    let ext_dim = detector.extended_dim();
    let mut batch: WindowBatch<(usize, u64, Instant)> =
        WindowBatch::new(ext_dim, cfg.batch_windows);
    let mut raw = vec![0.0f64; evax_sim::dim_for(cpu_cfg)];
    let mut base = vec![0.0f32; featurizer.base_dim()];
    let mut scratch = DrainScratch {
        scores: Vec::new(),
        verdicts: Vec::new(),
        nn: DetectorScratch::new(),
    };
    let mut latencies: Vec<u64> = Vec::new();
    let mut full_flushes = 0u64;
    let mut tail_flushes = 0u64;
    let mut live: Vec<usize> = (0..streams.len()).collect();
    // Sim-vs-inference CPU split: stepping cores vs everything downstream
    // of a produced window. Pure observability — never branches behavior.
    let mut sim_ns = 0u64;
    let mut infer_ns = 0u64;
    while !live.is_empty() {
        let mut next_live = Vec::with_capacity(live.len());
        for &slot in &live {
            let step_t0 = Instant::now();
            let step = {
                let s = &mut streams[slot];
                s.cursor.next_window_into(&mut s.cpu, &s.program, &mut raw)
            };
            sim_ns += step_t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            match step {
                SampledStep::Window { cycle, .. } => {
                    streams[slot].windows += 1;
                    let t0 = Instant::now();
                    let infer_t0 = t0;
                    // Fail-secure gate #1 (shared with the per-window
                    // controller): non-finite counters never reach the
                    // featurizer or the batch.
                    if raw.iter().any(|v| !v.is_finite()) {
                        let s = &mut streams[slot];
                        if let Some(mode) = s.state.fail_secure(&cfg.adaptive) {
                            s.cpu.set_mitigation(mode);
                        }
                        latencies.push(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                    } else if cfg.inference == InferenceMode::PerWindow {
                        // Baseline path: the status-quo allocating
                        // per-window classify call, applied immediately.
                        featurizer.normalizer().normalize_into(&raw, &mut base);
                        let score = detector.score(&base);
                        let s = &mut streams[slot];
                        let mode = if !score.is_finite() {
                            s.state.fail_secure(&cfg.adaptive)
                        } else {
                            s.state.apply_verdict(
                                score >= detector.threshold(),
                                cycle,
                                &cfg.adaptive,
                            )
                        };
                        if let Some(mode) = mode {
                            s.cpu.set_mitigation(mode);
                        }
                        latencies.push(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                    } else {
                        let full = batch.push_with((slot, cycle, t0), |row| {
                            featurizer.featurize_into(&raw, row)
                        });
                        if full {
                            full_flushes += 1;
                            drain_batch(
                                &mut batch,
                                &mut streams,
                                model,
                                cfg,
                                &mut scratch,
                                &mut latencies,
                                true,
                            );
                        }
                    }
                    infer_ns += infer_t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                    next_live.push(slot);
                }
                SampledStep::Done(result) => {
                    streams[slot].result = Some(*result);
                }
            }
        }
        // End-of-pass tail drain: the partial batch goes through the
        // in-place per-row path, so no window waits longer than one pass.
        if !batch.is_empty() {
            tail_flushes += 1;
            let infer_t0 = Instant::now();
            drain_batch(
                &mut batch,
                &mut streams,
                model,
                cfg,
                &mut scratch,
                &mut latencies,
                false,
            );
            infer_ns += infer_t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        }
        live = next_live;
    }
    let outcomes = streams
        .into_iter()
        .map(|s| {
            let result = s.result.expect("stream left the live set only when done");
            StreamOutcome {
                stream_id: s.id,
                class_label: s.class_label,
                windows: s.windows,
                flags: s.state.flags,
                fail_secure_switches: s.state.fail_secure_switches,
                first_flag_cycle: s.state.first_flag_cycle,
                secure_instructions: s.state.secure_instructions,
                committed_instructions: result.committed_instructions,
                cycles: result.cycles,
            }
        })
        .collect();
    (
        outcomes,
        latencies,
        full_flushes,
        tail_flushes,
        sim_ns,
        infer_ns,
    )
}

/// Runs the whole fleet: `cfg.n_streams` tenant streams, round-robin
/// sharded over `cfg.n_shards` shards, shards fanned out across `par`.
///
/// The featurizer must share the detector's engineered-feature chain
/// (`featurizer.feature_dim() == detector.extended_dim()`), as produced by
/// one `EvaxPipeline`; scores are then bit-identical to the per-window
/// `AdaptiveController` path.
///
/// # Panics
/// Panics on a degenerate configuration (zero streams, zero batch size,
/// zero sampling interval) or a featurizer/detector dimension mismatch.
pub fn run_fleet(
    cfg: &FleetConfig,
    cpu_cfg: &CpuConfig,
    detector: &Detector,
    featurizer: &Featurizer,
    parallelism: Parallelism,
) -> FleetReport {
    let quant = match cfg.inference {
        InferenceMode::BatchedQuant => Some(detector.quantize_linear()),
        _ => None,
    };
    let model: &dyn ModelDetector = match quant.as_ref() {
        Some(q) => q,
        None => detector,
    };
    run_fleet_with_model(cfg, cpu_cfg, detector, featurizer, model, parallelism)
}

/// [`run_fleet`] with an explicit batch-drain model: any [`ModelDetector`]
/// whose feature dimension matches the featurizer — including hardened
/// variants ([`evax_nn::StochasticDetector`], [`evax_nn::Ensemble`]) that
/// have no [`InferenceMode`] of their own. The `PerWindow` baseline path
/// and fail-secure gates still run through the concrete `detector`.
///
/// # Panics
/// Panics on a degenerate configuration or a featurizer/detector/model
/// dimension mismatch.
pub fn run_fleet_with_model(
    cfg: &FleetConfig,
    cpu_cfg: &CpuConfig,
    detector: &Detector,
    featurizer: &Featurizer,
    model: &dyn ModelDetector,
    parallelism: Parallelism,
) -> FleetReport {
    assert!(cfg.n_streams > 0, "fleet needs at least one stream");
    assert!(cfg.batch_windows > 0, "batch must hold at least one window");
    assert!(
        cfg.adaptive.sample_interval > 0,
        "sampling interval must be positive"
    );
    assert_eq!(
        featurizer.feature_dim(),
        detector.extended_dim(),
        "featurizer and detector must share one engineered-feature chain"
    );
    // Schema negotiation: the featurizer refuses windows from a core whose
    // sensor configuration produces a different counter schema (typed
    // `EvaxError::Config` context instead of a slice-length panic mid-run).
    if let Err(e) = featurizer.check_config(cpu_cfg) {
        panic!("fleet schema negotiation failed: {e}");
    }
    assert_eq!(
        model.n_features(),
        detector.extended_dim(),
        "drain model must score the detector's extended feature rows"
    );
    // Warm the per-program snapshot pool sequentially before the fan-out:
    // every shard forks tenant cores from the same snapshots, so warm-start
    // runs stay bit-identical at any thread count.
    let pool = if cfg.warm_start {
        build_warm_pool(cfg, cpu_cfg)
    } else {
        WarmPool::new()
    };
    let shards = round_robin_shards(cfg.n_streams, cfg.n_shards.max(1));
    let shard_results = par::map(parallelism, &shards, |indices| {
        run_shard(indices, cfg, cpu_cfg, detector, featurizer, model, &pool)
    });
    let mut outcomes: Vec<StreamOutcome> = Vec::with_capacity(cfg.n_streams);
    let mut latencies: Vec<u64> = Vec::new();
    let mut full_flushes = 0u64;
    let mut tail_flushes = 0u64;
    let mut sim_ns = 0u64;
    let mut inference_ns = 0u64;
    for (o, l, f, t, s, i) in shard_results {
        outcomes.extend(o);
        latencies.extend(l);
        full_flushes += f;
        tail_flushes += t;
        sim_ns += s;
        inference_ns += i;
    }
    outcomes.sort_by_key(|o| o.stream_id);
    FleetReport {
        outcomes,
        latencies_ns: latencies,
        full_flushes,
        tail_flushes,
        sim_ns,
        inference_ns,
        inference: cfg.inference,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evax_core::collect::{collect_dataset, CollectConfig};
    use evax_core::prelude::{DetectorKind, Normalizer, TrainConfig};

    fn trained(seed: u64) -> (Detector, Normalizer) {
        let cfg = CollectConfig {
            interval: 200,
            runs_per_attack: 1,
            runs_per_benign: 1,
            max_instrs: 3_000,
            benign_scale: 3_000,
            ..Default::default()
        };
        let (ds, norm) = collect_dataset(&cfg, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut det = Detector::train(
            DetectorKind::Evax,
            &ds,
            vec![],
            &TrainConfig::default(),
            &mut rng,
        );
        det.tune_for_tpr(&ds, 0.99);
        (det, norm)
    }

    fn small_cfg(inference: InferenceMode) -> FleetConfig {
        FleetConfig {
            n_streams: 24,
            attack_every: 3,
            max_instrs: 2_000,
            adaptive: AdaptiveConfig {
                sample_interval: 200,
                secure_window: 1_000,
                ..AdaptiveConfig::default()
            },
            // 6 streams per shard vs a 4-window batch: every pass exercises
            // a full (threaded) flush and an end-of-pass tail flush.
            batch_windows: 4,
            n_shards: 4,
            kernel_threads: 1,
            inference,
            seed: 11,
            warm_start: false,
        }
    }

    #[test]
    fn deterministic_block_is_byte_identical_across_thread_counts() {
        let (det, norm) = trained(5);
        let feat = Featurizer::new(norm, det.engineered().to_vec());
        let cfg = small_cfg(InferenceMode::BatchedF32);
        let cpu_cfg = CpuConfig::default();
        let base = run_fleet(&cfg, &cpu_cfg, &det, &feat, Parallelism::Fixed(1));
        for threads in [2usize, 4, 16] {
            let r = run_fleet(&cfg, &cpu_cfg, &det, &feat, Parallelism::Fixed(threads));
            assert_eq!(
                base.deterministic_json(),
                r.deterministic_json(),
                "fleet verdicts must not depend on thread count ({} threads)",
                threads
            );
        }
    }

    #[test]
    #[should_panic(expected = "schema negotiation")]
    fn fleet_refuses_mismatched_sensor_schema() {
        let (det, norm) = trained(5);
        let feat = Featurizer::new(norm, det.engineered().to_vec());
        // The featurizer was fitted on baseline-133 windows; an
        // energy-enabled core produces a wider schema and must be refused
        // up front (typed Config context), not by a slice panic mid-run.
        let cpu_cfg = CpuConfig {
            sensor: evax_sim::SensorConfig::builder()
                .energy(true)
                .build()
                .unwrap(),
            ..CpuConfig::default()
        };
        run_fleet(
            &small_cfg(InferenceMode::PerWindow),
            &cpu_cfg,
            &det,
            &feat,
            Parallelism::Fixed(1),
        );
    }

    #[test]
    fn fleet_flags_attack_streams_and_accounts_every_window() {
        let (det, norm) = trained(5);
        let feat = Featurizer::new(norm, det.engineered().to_vec());
        let cfg = small_cfg(InferenceMode::BatchedF32);
        let report = run_fleet(
            &cfg,
            &CpuConfig::default(),
            &det,
            &feat,
            Parallelism::Fixed(2),
        );
        assert_eq!(report.outcomes.len(), cfg.n_streams);
        assert!(report.windows() > 0, "streams must produce windows");
        assert!(
            report.flagged_attack_streams() > 0,
            "a 99%-TPR detector must flag some attack streams"
        );
        // Every produced window gets exactly one verdict (and one latency
        // sample): nothing is dropped at the batch boundary.
        assert_eq!(report.latencies_ns.len() as u64, report.windows());
        assert!(report.full_flushes + report.tail_flushes > 0);
        // Stream outcomes come back in stream-id order regardless of
        // sharding.
        assert!(report
            .outcomes
            .windows(2)
            .all(|w| w[0].stream_id < w[1].stream_id));
    }

    #[test]
    fn per_window_mode_matches_batched_f32_window_counts() {
        let (det, norm) = trained(7);
        let feat = Featurizer::new(norm, det.engineered().to_vec());
        let batched = run_fleet(
            &small_cfg(InferenceMode::BatchedF32),
            &CpuConfig::default(),
            &det,
            &feat,
            Parallelism::Fixed(1),
        );
        let per_window = run_fleet(
            &small_cfg(InferenceMode::PerWindow),
            &CpuConfig::default(),
            &det,
            &feat,
            Parallelism::Fixed(1),
        );
        // Mitigation timing differs (batched verdicts apply at flush), but
        // both modes must drive every stream through the same sampling
        // schedule and commit the same work.
        assert_eq!(batched.windows(), per_window.windows());
        for (b, p) in batched.outcomes.iter().zip(per_window.outcomes.iter()) {
            assert_eq!(b.stream_id, p.stream_id);
            assert_eq!(b.class_label, p.class_label);
            assert_eq!(b.windows, p.windows);
        }
    }

    #[test]
    fn warm_start_fleet_is_deterministic_and_covers_every_stream() {
        let (det, norm) = trained(5);
        let feat = Featurizer::new(norm, det.engineered().to_vec());
        let cfg = FleetConfig {
            warm_start: true,
            ..small_cfg(InferenceMode::BatchedF32)
        };
        let cpu_cfg = CpuConfig::default();
        let base = run_fleet(&cfg, &cpu_cfg, &det, &feat, Parallelism::Fixed(1));
        assert_eq!(base.outcomes.len(), cfg.n_streams);
        assert!(base.windows() > 0);
        // Every window still gets exactly one verdict.
        assert_eq!(base.latencies_ns.len() as u64, base.windows());
        // Forking from the shared snapshot pool must not break the
        // thread-count determinism contract.
        for threads in [4usize, 16] {
            let r = run_fleet(&cfg, &cpu_cfg, &det, &feat, Parallelism::Fixed(threads));
            assert_eq!(base.deterministic_json(), r.deterministic_json());
        }
        // Warm streams run on pre-touched caches/predictors, so their cycle
        // totals should differ from a cold fleet (the snapshot actually
        // changed microarchitectural state).
        let cold = run_fleet(
            &small_cfg(InferenceMode::BatchedF32),
            &cpu_cfg,
            &det,
            &feat,
            Parallelism::Fixed(1),
        );
        assert_eq!(cold.outcomes.len(), base.outcomes.len());
        assert_ne!(
            base.outcomes.iter().map(|o| o.cycles).sum::<u64>(),
            cold.outcomes.iter().map(|o| o.cycles).sum::<u64>(),
            "warm-start must change timing-visible state"
        );
    }

    #[test]
    fn quantized_mode_runs_the_fleet_with_bounded_divergence() {
        let (det, norm) = trained(9);
        let feat = Featurizer::new(norm, det.engineered().to_vec());
        let f32_report = run_fleet(
            &small_cfg(InferenceMode::BatchedF32),
            &CpuConfig::default(),
            &det,
            &feat,
            Parallelism::Fixed(2),
        );
        let q_report = run_fleet(
            &small_cfg(InferenceMode::BatchedQuant),
            &CpuConfig::default(),
            &det,
            &feat,
            Parallelism::Fixed(2),
        );
        assert_eq!(q_report.outcomes.len(), f32_report.outcomes.len());
        assert_eq!(q_report.windows(), f32_report.windows());
        assert!(
            q_report.flagged_attack_streams() > 0,
            "quantized detector must still flag attacks"
        );
    }

    /// Hardened variants ride the same drain: a zero-jitter stochastic
    /// wrapper is byte-identical to the plain f32 fleet, and a mixed
    /// committee still flags attacks under the thread-count contract.
    #[test]
    fn hardened_models_drive_the_fleet_drain() {
        let (det, norm) = trained(5);
        let feat = Featurizer::new(norm, det.engineered().to_vec());
        let cfg = small_cfg(InferenceMode::BatchedF32);
        let cpu_cfg = CpuConfig::default();
        let base = run_fleet(&cfg, &cpu_cfg, &det, &feat, Parallelism::Fixed(2));

        // jitter = 0 pins the stochastic wrapper to the base perceptron
        // bitwise (w * (1 + 0*eps) == w exactly in IEEE 754).
        let frozen = det.harden_stochastic(0xD1CE, 0.0);
        let via_frozen =
            run_fleet_with_model(&cfg, &cpu_cfg, &det, &feat, &frozen, Parallelism::Fixed(2));
        assert_eq!(
            base.deterministic_json(),
            via_frozen.deterministic_json(),
            "zero-jitter stochastic drain must match the plain fleet byte-for-byte"
        );

        // A mixed committee (f32 + jittered + 9-bit integer member) has no
        // InferenceMode of its own but drains through the same kernel.
        let committee = evax_nn::Ensemble::new(vec![
            Box::new(det.to_model()),
            Box::new(det.harden_stochastic(7, 0.02)),
            Box::new(det.quantize_linear()),
        ]);
        let ens = run_fleet_with_model(
            &cfg,
            &cpu_cfg,
            &det,
            &feat,
            &committee,
            Parallelism::Fixed(1),
        );
        assert_eq!(ens.outcomes.len(), cfg.n_streams);
        assert_eq!(ens.windows(), base.windows());
        assert!(
            ens.flagged_attack_streams() > 0,
            "the committee must still flag attack streams"
        );
        for threads in [4usize, 16] {
            let r = run_fleet_with_model(
                &cfg,
                &cpu_cfg,
                &det,
                &feat,
                &committee,
                Parallelism::Fixed(threads),
            );
            assert_eq!(
                ens.deterministic_json(),
                r.deterministic_json(),
                "committee verdicts must not depend on thread count ({} threads)",
                threads
            );
        }
    }
}
