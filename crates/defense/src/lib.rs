//! # evax-defense — the adaptive architecture (paper §VIII-A, Figs. 14–16)
//!
//! EVAX's end-to-end system runs the processor in *performance mode*
//! (mitigations off) and switches to *secure mode* — fencing or InvisiSpec,
//! under the Spectre or Futuristic threat model — for a fixed instruction
//! window whenever the hardware detector flags a sample. This cuts the
//! overhead of always-on mitigations by ~95% while keeping leakage at zero
//! for detected attacks.
//!
//! * [`adaptive`] — the detector-gated controller driving
//!   [`evax_sim::Cpu::set_mitigation`] from HPC samples. It is a
//!   [`evax_core::featurize::WindowSink`] on the unified streaming
//!   featurization pipeline — the deployment loop consumes the exact
//!   window→feature stage chain the detector was trained on.
//! * [`overhead`] — end-to-end overhead measurement: always-on vs. adaptive
//!   across the benign workload suite (Fig. 16's bars), plus IPC timelines
//!   (Fig. 14's series).
//! * [`fleet`] — the many-tenant deployment shape: thousands of interleaved
//!   tenant streams round-robin sharded over [`evax_core::par`], with
//!   detector inference batched across streams' pending windows (and
//!   optionally quantized to the paper's 9-bit integer hardware model).
//!
//! ## Example
//!
//! ```no_run
//! use evax_defense::adaptive::{AdaptiveConfig, Policy};
//! use evax_defense::overhead::overhead_suite;
//! use evax_core::pipeline::{EvaxConfig, EvaxPipeline};
//!
//! let pipeline = EvaxPipeline::run(&EvaxConfig::small(), 1);
//! let rows = overhead_suite(&pipeline, Policy::FenceSpectre, 7);
//! for row in rows {
//!     println!("{}: always-on {:.1}% vs adaptive {:.1}%",
//!         row.workload, row.always_on_overhead * 100.0, row.adaptive_overhead * 100.0);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod fleet;
pub mod overhead;

pub use adaptive::{
    run_adaptive, run_adaptive_with_metrics, run_adaptive_with_model, run_fixed,
    run_fixed_with_metrics, AdaptiveConfig, AdaptiveController, AdaptiveRun, Policy,
    SecureModeState,
};
pub use fleet::{
    run_fleet, run_fleet_with_model, FleetConfig, FleetReport, InferenceMode, StreamOutcome,
};
pub use overhead::{measure_workload, measure_workload_with, overhead_suite, OverheadRow};
