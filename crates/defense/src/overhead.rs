//! End-to-end overhead measurement (paper Fig. 16): always-on mitigation
//! vs. the EVAX-gated adaptive architecture, across the benign workload
//! suite. "We only measure performance of benign programs since performance
//! of malicious programs is not a concern."

use evax_attacks::benign::Scale;
use evax_attacks::{build_benign, BenignKind, BENIGN_KINDS};
use evax_core::pipeline::EvaxPipeline;
use evax_sim::{CpuConfig, MitigationMode};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::adaptive::{run_adaptive, run_fixed, AdaptiveConfig, Policy};

/// One workload's overhead comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadRow {
    /// Workload name.
    pub workload: String,
    /// Baseline (no mitigation) cycles.
    pub baseline_cycles: u64,
    /// Always-on mitigation cycles.
    pub always_on_cycles: u64,
    /// Adaptive (detector-gated) cycles.
    pub adaptive_cycles: u64,
    /// Always-on overhead fraction (e.g. 0.74 = 74%).
    pub always_on_overhead: f64,
    /// Adaptive overhead fraction.
    pub adaptive_overhead: f64,
    /// Detector flags raised on this (benign) workload — false positives.
    pub false_flags: u64,
}

impl OverheadRow {
    /// Fraction of the always-on overhead eliminated by gating
    /// (the paper's "95% reduction").
    pub fn reduction(&self) -> f64 {
        if self.always_on_overhead <= 0.0 {
            return 0.0;
        }
        1.0 - self.adaptive_overhead / self.always_on_overhead
    }
}

/// Measures one workload under baseline / always-on / adaptive, with an
/// explicit detector (lets experiments compare EVAX- vs PerSpectron-gated
/// adaptive architectures).
#[allow(clippy::too_many_arguments)]
pub fn measure_workload_with(
    detector: &evax_core::detector::Detector,
    normalizer: &evax_core::dataset::Normalizer,
    sample_interval: u64,
    kind: BenignKind,
    policy: Policy,
    max_instrs: u64,
    scale: u64,
    seed: u64,
) -> OverheadRow {
    let cpu_cfg = CpuConfig::default();
    let adaptive_cfg = AdaptiveConfig {
        sample_interval,
        secure_window: (sample_interval * 100)
            .min(max_instrs / 4)
            .max(sample_interval),
        policy,
    };
    // Identical programs per mode: same generator seed.
    let program = |s: u64| {
        let mut rng = StdRng::seed_from_u64(s);
        build_benign(kind, Scale(scale), &mut rng)
    };
    let base = run_fixed(
        &cpu_cfg,
        &program(seed),
        MitigationMode::None,
        sample_interval,
        max_instrs,
    );
    let always = run_fixed(
        &cpu_cfg,
        &program(seed),
        policy.mode(),
        sample_interval,
        max_instrs,
    );
    let adaptive = run_adaptive(
        &cpu_cfg,
        &program(seed),
        detector,
        normalizer,
        &adaptive_cfg,
        max_instrs,
    );
    let overhead = |c: u64| c as f64 / base.result.cycles.max(1) as f64 - 1.0;
    OverheadRow {
        workload: kind.name().to_string(),
        baseline_cycles: base.result.cycles,
        always_on_cycles: always.result.cycles,
        adaptive_cycles: adaptive.result.cycles,
        always_on_overhead: overhead(always.result.cycles),
        adaptive_overhead: overhead(adaptive.result.cycles),
        false_flags: adaptive.flags,
    }
}

/// Measures one workload with the pipeline's EVAX detector.
pub fn measure_workload(
    pipeline: &EvaxPipeline,
    kind: BenignKind,
    policy: Policy,
    max_instrs: u64,
    scale: u64,
    seed: u64,
) -> OverheadRow {
    measure_workload_with(
        &pipeline.evax,
        &pipeline.normalizer,
        pipeline.sample_interval,
        kind,
        policy,
        max_instrs,
        scale,
        seed,
    )
}

/// The full Fig. 16 sweep: every benign workload under one policy.
pub fn overhead_suite(pipeline: &EvaxPipeline, policy: Policy, seed: u64) -> Vec<OverheadRow> {
    BENIGN_KINDS
        .iter()
        .map(|&kind| measure_workload(pipeline, kind, policy, 60_000, 50_000, seed))
        .collect()
}

/// Geometric-mean overheads over a suite: `(always_on, adaptive)`.
pub fn summarize(rows: &[OverheadRow]) -> (f64, f64) {
    if rows.is_empty() {
        return (0.0, 0.0);
    }
    let geo = |f: &dyn Fn(&OverheadRow) -> f64| {
        let ln_sum: f64 = rows.iter().map(|r| (1.0 + f(r).max(0.0)).ln()).sum();
        (ln_sum / rows.len() as f64).exp() - 1.0
    };
    (
        geo(&|r| r.always_on_overhead),
        geo(&|r| r.adaptive_overhead),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_math() {
        let row = OverheadRow {
            workload: "x".into(),
            baseline_cycles: 100,
            always_on_cycles: 174,
            adaptive_cycles: 103,
            always_on_overhead: 0.74,
            adaptive_overhead: 0.03,
            false_flags: 1,
        };
        assert!((row.reduction() - (1.0 - 0.03 / 0.74)).abs() < 1e-12);
    }

    #[test]
    fn summarize_geomean() {
        let rows = vec![
            OverheadRow {
                workload: "a".into(),
                baseline_cycles: 100,
                always_on_cycles: 150,
                adaptive_cycles: 102,
                always_on_overhead: 0.5,
                adaptive_overhead: 0.02,
                false_flags: 0,
            },
            OverheadRow {
                workload: "b".into(),
                baseline_cycles: 100,
                always_on_cycles: 200,
                adaptive_cycles: 105,
                always_on_overhead: 1.0,
                adaptive_overhead: 0.05,
                false_flags: 0,
            },
        ];
        let (always, adaptive) = summarize(&rows);
        assert!(always > 0.5 && always < 1.0);
        assert!(adaptive > 0.02 && adaptive < 0.05);
    }

    #[test]
    fn empty_suite_summarizes_to_zero() {
        assert_eq!(summarize(&[]), (0.0, 0.0));
    }
}
