//! DRAM organization and timing parameters.

/// Configuration for the [`crate::Dram`] model.
///
/// Timing values are in CPU cycles (the paper simulates a 2.0 GHz core; a
/// DRAM access in the low hundreds of cycles matches gem5's classic memory
/// defaults).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DramConfig {
    /// Number of banks (address-interleaved).
    pub banks: usize,
    /// Rows per bank.
    pub rows_per_bank: u64,
    /// Bytes per row (row-buffer size).
    pub row_bytes: u64,
    /// Row-to-column delay: cycles to activate (open) a row.
    pub t_rcd: u32,
    /// Precharge delay: cycles to close an open row.
    pub t_rp: u32,
    /// Column access latency once the row is open.
    pub t_cas: u32,
    /// Bus/transfer overhead added to every access.
    pub t_bus: u32,
    /// Cycles between refresh sweeps; a sweep resets disturbance counts.
    pub refresh_interval: u64,
    /// Base Rowhammer threshold: activations of an aggressor row since the
    /// last refresh needed to flip a bit in a neighbour. Real DDR3/DDR4 parts
    /// need ~50k–139k activations; the default is scaled down so simulations
    /// of a few million cycles can exhibit flips, preserving behaviour.
    pub hammer_threshold: u32,
    /// Per-row threshold jitter: row `r` flips at
    /// `hammer_threshold + (hash(r) % hammer_jitter)` activations, modelling
    /// the paper's "affects one bit-flip threshold to each row".
    pub hammer_jitter: u32,
    /// How many rows on each side of an aggressor are disturbed (1 = classic
    /// adjacent-row hammering; 2 covers half-double style patterns).
    pub blast_radius: u64,
    /// Write-queue capacity; a full queue forces a drain (write burst).
    pub write_queue_capacity: usize,
    /// Energy accounting: picojoules charged per activation (abstract units
    /// feeding the `selfRefreshEnergy`-style counters EVAX monitors).
    pub energy_per_activate: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            banks: 8,
            rows_per_bank: 1 << 15,
            row_bytes: 8192,
            t_rcd: 44,
            t_rp: 44,
            t_cas: 44,
            t_bus: 16,
            refresh_interval: 500_000,
            hammer_threshold: 2_000,
            hammer_jitter: 256,
            blast_radius: 1,
            write_queue_capacity: 32,
            energy_per_activate: 1,
        }
    }
}

impl DramConfig {
    /// Validates invariants the model relies on.
    ///
    /// # Errors
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.banks == 0 || !self.banks.is_power_of_two() {
            return Err("banks must be a nonzero power of two".into());
        }
        if self.rows_per_bank == 0 {
            return Err("rows_per_bank must be nonzero".into());
        }
        if self.row_bytes == 0 || !self.row_bytes.is_power_of_two() {
            return Err("row_bytes must be a nonzero power of two".into());
        }
        if self.hammer_threshold == 0 {
            return Err("hammer_threshold must be nonzero".into());
        }
        if self.write_queue_capacity == 0 {
            return Err("write_queue_capacity must be nonzero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(DramConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_banks_rejected() {
        let cfg = DramConfig {
            banks: 3,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_threshold_rejected() {
        let cfg = DramConfig {
            hammer_threshold: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }
}
