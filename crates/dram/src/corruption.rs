//! The Rowhammer disturbance / memory-corruption module.
//!
//! Mirrors the paper's gem5 extension (§VII): "It determines the neighbors of
//! each row and establishes the affected ones, counts the number of
//! activations in each row since the last refresh, and affects one bit-flip
//! threshold to each row. It establishes if one bit-flip occurs and modifies
//! the affected cells in consequence."

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for `(bank, row)` keys. Activation bookkeeping
/// sits on the DRAM hot path (every row activation probes these maps
/// several times), where SipHash dominates; the keys are small integers,
/// so a multiply-xorshift suffices.
#[derive(Debug, Clone, Copy, Default)]
pub struct RowHasher(u64);

impl Hasher for RowHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u64(&mut self, v: u64) {
        let mut h = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 32;
        self.0 = h;
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type RowMap<V> = HashMap<(usize, u64), V, BuildHasherDefault<RowHasher>>;

/// A single induced bit flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct BitFlip {
    /// Bank containing the victim row.
    pub bank: usize,
    /// Victim row index.
    pub row: u64,
    /// Byte offset within the row.
    pub byte: u64,
    /// Bit index within the byte (0..8).
    pub bit: u8,
}

/// Tracks per-row activation counts since the last refresh and induces bit
/// flips in neighbour rows when a row-specific threshold is exceeded.
#[derive(Debug, Clone)]
pub struct CorruptionModule {
    base_threshold: u32,
    jitter: u32,
    blast_radius: u64,
    rows_per_bank: u64,
    row_bytes: u64,
    /// (bank, row) -> activations since last refresh.
    counts: RowMap<u32>,
    /// All flips induced since construction (a victim bit flips at most once
    /// per refresh window; charge loss is not re-applied to an already
    /// flipped cell).
    flips: Vec<BitFlip>,
    /// (bank, victim row) pairs already flipped in the current refresh window.
    flipped_this_window: RowMap<()>,
    /// Rows whose count crossed half their threshold this refresh window —
    /// maintained incrementally so [`Self::rows_near_threshold`] is O(1)
    /// instead of a full map scan per activation.
    near_threshold: u64,
}

impl CorruptionModule {
    /// Creates a module with the given disturbance parameters.
    ///
    /// # Panics
    /// Panics if `base_threshold == 0` or `rows_per_bank == 0`.
    pub fn new(
        base_threshold: u32,
        jitter: u32,
        blast_radius: u64,
        rows_per_bank: u64,
        row_bytes: u64,
    ) -> Self {
        assert!(base_threshold > 0, "threshold must be nonzero");
        assert!(rows_per_bank > 0, "rows_per_bank must be nonzero");
        CorruptionModule {
            base_threshold,
            jitter,
            blast_radius,
            rows_per_bank,
            row_bytes,
            counts: RowMap::default(),
            flips: Vec::new(),
            flipped_this_window: RowMap::default(),
            near_threshold: 0,
        }
    }

    /// Deterministic per-row flip threshold: `base + hash(row) % jitter`
    /// ("one bit-flip threshold to each row").
    pub fn row_threshold(&self, bank: usize, row: u64) -> u32 {
        if self.jitter == 0 {
            return self.base_threshold;
        }
        // SplitMix64-style hash for determinism without a rand dependency.
        let mut h = row
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(bank as u64);
        h ^= h >> 30;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
        self.base_threshold + (h % self.jitter as u64) as u32
    }

    /// Activations a row has received since the last refresh.
    pub fn activation_count(&self, bank: usize, row: u64) -> u32 {
        self.counts.get(&(bank, row)).copied().unwrap_or(0)
    }

    /// Records an activation of `(bank, row)` and returns any bit flips this
    /// activation induced in neighbour rows.
    pub fn on_activate(&mut self, bank: usize, row: u64) -> Vec<BitFlip> {
        let count = self.counts.entry((bank, row)).or_insert(0);
        *count += 1;
        let count = *count;
        // Incremental near-threshold bookkeeping: a row is counted exactly
        // once, on the activation where it crosses half its threshold.
        let threshold = self.row_threshold(bank, row);
        if count * 2 >= threshold && (count - 1) * 2 < threshold {
            self.near_threshold += 1;
        }
        let mut out = Vec::new();
        for dist in 1..=self.blast_radius {
            for victim in [row.checked_sub(dist), row.checked_add(dist)]
                .into_iter()
                .flatten()
            {
                if victim >= self.rows_per_bank {
                    continue;
                }
                // Farther victims need proportionally more hammering.
                let needed = self.row_threshold(bank, victim).saturating_mul(dist as u32);
                if count >= needed && !self.flipped_this_window.contains_key(&(bank, victim)) {
                    self.flipped_this_window.insert((bank, victim), ());
                    let flip = self.flip_for(bank, victim);
                    self.flips.push(flip);
                    out.push(flip);
                }
            }
        }
        out
    }

    /// Deterministically chooses which cell of the victim row flips.
    fn flip_for(&self, bank: usize, victim: u64) -> BitFlip {
        let mut h = victim
            .wrapping_mul(0xD134_2543_DE82_EF95)
            .wrapping_add(0x1234_5678 + bank as u64);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        BitFlip {
            bank,
            row: victim,
            byte: h % self.row_bytes.max(1),
            bit: (h >> 32) as u8 % 8,
        }
    }

    /// Refresh sweep: resets all activation counters and re-arms flips.
    pub fn on_refresh(&mut self) {
        self.counts.clear();
        self.flipped_this_window.clear();
        self.near_threshold = 0;
    }

    /// All flips induced since construction.
    pub fn flips(&self) -> &[BitFlip] {
        &self.flips
    }

    /// Appends disturbance state (activation counts, induced flips, armed
    /// victims) to a snapshot word stream. Maps are emitted sorted by key so
    /// the stream is independent of `HashMap` iteration order.
    pub(crate) fn save_state(&self, out: &mut Vec<u64>) {
        let mut counts: Vec<((usize, u64), u32)> =
            self.counts.iter().map(|(&k, &v)| (k, v)).collect();
        counts.sort_unstable_by_key(|&(k, _)| k);
        out.push(counts.len() as u64);
        for ((bank, row), count) in counts {
            out.extend_from_slice(&[bank as u64, row, count as u64]);
        }
        out.push(self.flips.len() as u64);
        for flip in &self.flips {
            out.extend_from_slice(&[flip.bank as u64, flip.row, flip.byte, flip.bit as u64]);
        }
        let mut armed: Vec<(usize, u64)> = self.flipped_this_window.keys().copied().collect();
        armed.sort_unstable();
        out.push(armed.len() as u64);
        for (bank, row) in armed {
            out.push(bank as u64);
            out.push(row);
        }
    }

    /// Restores state written by [`CorruptionModule::save_state`]. Returns
    /// `None` on a truncated or malformed stream.
    pub(crate) fn load_state(&mut self, w: &mut std::slice::Iter<'_, u64>) -> Option<()> {
        let n = usize::try_from(*w.next()?).ok()?;
        self.counts.clear();
        for _ in 0..n {
            let bank = usize::try_from(*w.next()?).ok()?;
            let row = *w.next()?;
            let count = u32::try_from(*w.next()?).ok()?;
            self.counts.insert((bank, row), count);
        }
        let near = self
            .counts
            .iter()
            .filter(|(&(bank, row), &c)| c * 2 >= self.row_threshold(bank, row))
            .count() as u64;
        self.near_threshold = near;
        let n = usize::try_from(*w.next()?).ok()?;
        self.flips.clear();
        for _ in 0..n {
            let bank = usize::try_from(*w.next()?).ok()?;
            let row = *w.next()?;
            let byte = *w.next()?;
            let bit = u8::try_from(*w.next()?).ok()?;
            if bit >= 8 {
                return None;
            }
            self.flips.push(BitFlip {
                bank,
                row,
                byte,
                bit,
            });
        }
        let n = usize::try_from(*w.next()?).ok()?;
        self.flipped_this_window.clear();
        for _ in 0..n {
            let bank = usize::try_from(*w.next()?).ok()?;
            let row = *w.next()?;
            self.flipped_this_window.insert((bank, row), ());
        }
        Some(())
    }

    /// Number of rows whose count exceeds half their threshold (early-warning
    /// signal exported to the HPC space).
    pub fn rows_near_threshold(&self) -> u64 {
        self.near_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module() -> CorruptionModule {
        CorruptionModule::new(100, 0, 1, 1 << 10, 8192)
    }

    #[test]
    fn no_flip_below_threshold() {
        let mut m = module();
        for _ in 0..99 {
            assert!(m.on_activate(0, 5).is_empty());
        }
        assert!(m.flips().is_empty());
    }

    #[test]
    fn flips_both_neighbours_at_threshold() {
        let mut m = module();
        let mut flipped = Vec::new();
        for _ in 0..100 {
            flipped.extend(m.on_activate(0, 5));
        }
        let rows: Vec<u64> = flipped.iter().map(|f| f.row).collect();
        assert!(rows.contains(&4) && rows.contains(&6), "rows={rows:?}");
    }

    #[test]
    fn refresh_resets_counts() {
        let mut m = module();
        for _ in 0..99 {
            m.on_activate(0, 5);
        }
        m.on_refresh();
        assert_eq!(m.activation_count(0, 5), 0);
        for _ in 0..99 {
            assert!(m.on_activate(0, 5).is_empty());
        }
    }

    #[test]
    fn victim_flips_once_per_window() {
        let mut m = module();
        let mut n = 0;
        for _ in 0..300 {
            n += m.on_activate(0, 5).len();
        }
        assert_eq!(n, 2); // one per neighbour
        m.on_refresh();
        for _ in 0..100 {
            n += m.on_activate(0, 5).len();
        }
        assert_eq!(n, 4);
    }

    #[test]
    fn edge_rows_have_one_neighbour() {
        let mut m = module();
        let mut flipped = Vec::new();
        for _ in 0..100 {
            flipped.extend(m.on_activate(0, 0));
        }
        assert_eq!(flipped.len(), 1);
        assert_eq!(flipped[0].row, 1);
    }

    #[test]
    fn jitter_varies_threshold_per_row() {
        let m = CorruptionModule::new(100, 64, 1, 1 << 10, 8192);
        let t: Vec<u32> = (0..32).map(|r| m.row_threshold(0, r)).collect();
        assert!(
            t.iter().any(|&x| x != t[0]),
            "jitter should vary thresholds"
        );
        assert!(t.iter().all(|&x| (100..164).contains(&x)));
    }

    #[test]
    fn near_threshold_counter() {
        let mut m = module();
        for _ in 0..60 {
            m.on_activate(0, 7);
        }
        assert_eq!(m.rows_near_threshold(), 1);
    }

    #[test]
    fn banks_are_independent() {
        let mut m = module();
        for _ in 0..99 {
            m.on_activate(0, 5);
            m.on_activate(1, 5);
        }
        assert_eq!(m.activation_count(0, 5), 99);
        assert_eq!(m.activation_count(1, 5), 99);
        assert!(m.flips().is_empty());
    }
}
