//! The DRAM device model: banks, row buffers, write queue, refresh, and the
//! disturbance module wired together.

use std::collections::VecDeque;

use crate::config::DramConfig;
use crate::corruption::{BitFlip, CorruptionModule};
use crate::stats::DramStats;

/// Kind of memory access presented to the DRAM controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Demand or prefetch read (cache fill).
    Read,
    /// Writeback from the cache hierarchy.
    Write,
}

/// Result of a DRAM access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramResponse {
    /// Cycles from request to data.
    pub latency: u32,
    /// `true` if the access hit the open row buffer.
    pub row_hit: bool,
    /// Bit flips induced by the activation this access caused (Rowhammer).
    pub flips: Vec<BitFlip>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RowState {
    Idle,
    Open(u64),
}

/// A single DRAM device: per-bank row buffers, a controller write queue, a
/// periodic refresh sweep, and the Rowhammer [`CorruptionModule`].
///
/// Addresses are physical byte addresses; the mapping interleaves cache lines
/// across banks (low-order bank bits), the standard open-page layout.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<RowState>,
    write_queue: VecDeque<u64>,
    corruption: CorruptionModule,
    stats: DramStats,
    last_refresh: u64,
    access_granularity: u64,
}

impl Dram {
    /// Creates a DRAM device.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see [`DramConfig::validate`]).
    pub fn new(cfg: DramConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid DRAM config: {e}");
        }
        let corruption = CorruptionModule::new(
            cfg.hammer_threshold,
            cfg.hammer_jitter,
            cfg.blast_radius,
            cfg.rows_per_bank,
            cfg.row_bytes,
        );
        Dram {
            banks: vec![RowState::Idle; cfg.banks],
            write_queue: VecDeque::new(),
            corruption,
            stats: DramStats::default(),
            last_refresh: 0,
            access_granularity: 64,
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// All Rowhammer bit flips induced so far.
    pub fn flips(&self) -> &[BitFlip] {
        self.corruption.flips()
    }

    /// Decomposes a physical address into `(bank, row, column byte)`.
    pub fn map_address(&self, addr: u64) -> (usize, u64, u64) {
        let line = addr / self.access_granularity;
        let bank = (line % self.cfg.banks as u64) as usize;
        let frame = line / self.cfg.banks as u64;
        let lines_per_row = self.cfg.row_bytes / self.access_granularity;
        let row = (frame / lines_per_row) % self.cfg.rows_per_bank;
        let col =
            (frame % lines_per_row) * self.access_granularity + addr % self.access_granularity;
        (bank, row, col)
    }

    /// Returns the smallest physical address mapping to `(bank, row)` —
    /// useful for constructing Rowhammer aggressor/victim address pairs in
    /// tests and attack kernels.
    pub fn address_of(&self, bank: usize, row: u64) -> u64 {
        let lines_per_row = self.cfg.row_bytes / self.access_granularity;
        let frame = row * lines_per_row;
        (frame * self.cfg.banks as u64 + bank as u64) * self.access_granularity
    }

    /// Physical byte address of a [`BitFlip`], accounting for the
    /// line-interleaved layout of a row across the address space.
    pub fn flip_address(&self, flip: &BitFlip) -> u64 {
        let line = flip.byte / self.access_granularity;
        let off = flip.byte % self.access_granularity;
        self.address_of(flip.bank, flip.row)
            + line * self.cfg.banks as u64 * self.access_granularity
            + off
    }

    /// Services one access at time `now` (CPU cycles), returning its latency
    /// and any induced bit flips. Also performs any due refresh sweep.
    pub fn access(&mut self, addr: u64, kind: AccessKind, now: u64) -> DramResponse {
        self.maybe_refresh(now);
        let (bank_idx, row, _col) = self.map_address(addr);

        if kind == AccessKind::Write {
            self.stats.write_reqs += 1;
            self.stats.bytes_written += self.access_granularity;
            self.write_queue.push_back(addr / self.access_granularity);
            if self.write_queue.len() > self.cfg.write_queue_capacity {
                // Forced drain: the oldest write is issued to its bank.
                self.stats.write_bursts += 1;
                if let Some(line) = self.write_queue.pop_front() {
                    let (b, r, _) = self.map_address(line * self.access_granularity);
                    let _ = self.issue_to_bank(b, r);
                }
            }
            // Writes complete into the queue from the CPU's perspective.
            return DramResponse {
                latency: self.cfg.t_bus,
                row_hit: true,
                flips: Vec::new(),
            };
        }

        self.stats.read_reqs += 1;
        self.stats.bytes_read += self.access_granularity;

        // Read hit in the write queue: serviced without touching the array.
        let line = addr / self.access_granularity;
        if self.write_queue.contains(&line) {
            self.stats.bytes_read_wr_q += self.access_granularity;
            return DramResponse {
                latency: self.cfg.t_bus,
                row_hit: true,
                flips: Vec::new(),
            };
        }

        let (latency, row_hit, flips) = self.issue_to_bank(bank_idx, row);
        DramResponse {
            latency: latency + self.cfg.t_bus,
            row_hit,
            flips,
        }
    }

    /// Issues a column access to `(bank, row)`, activating as needed.
    fn issue_to_bank(&mut self, bank_idx: usize, row: u64) -> (u32, bool, Vec<BitFlip>) {
        let state = self.banks[bank_idx];
        match state {
            RowState::Open(open) if open == row => {
                self.stats.row_buffer_hits += 1;
                (self.cfg.t_cas, true, Vec::new())
            }
            RowState::Open(_) => {
                self.stats.row_buffer_conflicts += 1;
                self.stats.precharges += 1;
                let flips = self.activate(bank_idx, row);
                (
                    self.cfg.t_rp + self.cfg.t_rcd + self.cfg.t_cas,
                    false,
                    flips,
                )
            }
            RowState::Idle => {
                self.stats.row_buffer_empty += 1;
                let flips = self.activate(bank_idx, row);
                (self.cfg.t_rcd + self.cfg.t_cas, false, flips)
            }
        }
    }

    fn activate(&mut self, bank_idx: usize, row: u64) -> Vec<BitFlip> {
        self.banks[bank_idx] = RowState::Open(row);
        self.stats.activations += 1;
        self.stats.energy += self.cfg.energy_per_activate;
        let flips = self.corruption.on_activate(bank_idx, row);
        self.stats.bit_flips += flips.len() as u64;
        self.stats.rows_near_threshold = self.corruption.rows_near_threshold();
        flips
    }

    fn maybe_refresh(&mut self, now: u64) {
        while now.saturating_sub(self.last_refresh) >= self.cfg.refresh_interval {
            self.last_refresh += self.cfg.refresh_interval;
            self.stats.refreshes += 1;
            self.stats.energy += self.cfg.energy_per_activate * self.cfg.banks as u64;
            self.corruption.on_refresh();
            // Refresh closes all rows.
            for b in &mut self.banks {
                *b = RowState::Idle;
            }
            self.stats.rows_near_threshold = 0;
        }
    }

    /// Appends the full device state — bank row buffers, write queue,
    /// refresh clock, disturbance module, and statistics — to a snapshot
    /// word stream. Geometry/timing come from the [`DramConfig`] at restore;
    /// callers are responsible for restoring into an identically configured
    /// device (the simulator's snapshot header fingerprints the config).
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.last_refresh);
        for bank in &self.banks {
            out.push(match bank {
                RowState::Idle => u64::MAX,
                RowState::Open(row) => *row,
            });
        }
        out.push(self.write_queue.len() as u64);
        for &line in &self.write_queue {
            out.push(line);
        }
        self.corruption.save_state(out);
        self.stats.save_state(out);
    }

    /// Restores state written by [`Dram::save_state`] into a device built
    /// from the same configuration. Returns `None` on a truncated or
    /// malformed stream.
    pub fn load_state(&mut self, w: &mut std::slice::Iter<'_, u64>) -> Option<()> {
        self.last_refresh = *w.next()?;
        for bank in &mut self.banks {
            let row = *w.next()?;
            *bank = if row == u64::MAX {
                RowState::Idle
            } else if row < self.cfg.rows_per_bank {
                RowState::Open(row)
            } else {
                return None;
            };
        }
        let n = usize::try_from(*w.next()?).ok()?;
        self.write_queue.clear();
        for _ in 0..n {
            self.write_queue.push_back(*w.next()?);
        }
        self.corruption.load_state(w)?;
        self.stats.load_state(w)?;
        Some(())
    }

    /// Drains the entire write queue to the array (end-of-simulation flush).
    pub fn drain_writes(&mut self) {
        while let Some(line) = self.write_queue.pop_front() {
            let (b, r, _) = self.map_address(line * self.access_granularity);
            let _ = self.issue_to_bank(b, r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig {
            hammer_threshold: 50,
            hammer_jitter: 0,
            ..Default::default()
        })
    }

    #[test]
    fn row_hit_is_faster_than_miss() {
        let mut d = dram();
        let miss = d.access(0, AccessKind::Read, 0);
        let hit = d.access(64 * d.config().banks as u64, AccessKind::Read, 100);
        assert!(!miss.row_hit);
        assert!(hit.row_hit);
        assert!(hit.latency < miss.latency);
    }

    #[test]
    fn conflict_pays_precharge() {
        let mut d = dram();
        let a = d.address_of(0, 0);
        let b = d.address_of(0, 1);
        let first = d.access(a, AccessKind::Read, 0);
        let conflict = d.access(b, AccessKind::Read, 100);
        assert!(conflict.latency > first.latency);
        assert_eq!(d.stats().row_buffer_conflicts, 1);
    }

    #[test]
    fn address_map_round_trips() {
        let d = dram();
        for (bank, row) in [(0usize, 0u64), (3, 17), (7, 1000)] {
            let addr = d.address_of(bank, row);
            let (b, r, _) = d.map_address(addr);
            assert_eq!((b, r), (bank, row));
        }
    }

    #[test]
    fn hammering_flips_victim() {
        let mut d = dram();
        let aggr1 = d.address_of(0, 10);
        let aggr2 = d.address_of(0, 12);
        let mut flips = Vec::new();
        // Alternate rows 10 and 12 (classic double-sided hammer of victim 11);
        // each access is a row conflict, so every one is an activation.
        for i in 0..120u64 {
            let addr = if i % 2 == 0 { aggr1 } else { aggr2 };
            flips.extend(d.access(addr, AccessKind::Read, i * 10).flips);
        }
        assert!(flips.iter().any(|f| f.row == 11), "flips={flips:?}");
        assert!(d.stats().bit_flips > 0);
    }

    #[test]
    fn refresh_prevents_slow_hammering() {
        let mut d = Dram::new(DramConfig {
            hammer_threshold: 50,
            hammer_jitter: 0,
            refresh_interval: 1_000,
            ..Default::default()
        });
        let aggr1 = d.address_of(0, 10);
        let aggr2 = d.address_of(0, 12);
        // Spread the same 120 activations over many refresh windows.
        for i in 0..120u64 {
            let addr = if i % 2 == 0 { aggr1 } else { aggr2 };
            let r = d.access(addr, AccessKind::Read, i * 400);
            assert!(r.flips.is_empty(), "slow hammering must not flip");
        }
        assert!(d.stats().refreshes > 0);
    }

    #[test]
    fn write_queue_services_reads() {
        let mut d = dram();
        d.access(0x1000, AccessKind::Write, 0);
        let before = d.stats().bytes_read_wr_q;
        let r = d.access(0x1000, AccessKind::Read, 10);
        assert_eq!(r.latency, d.config().t_bus);
        assert_eq!(d.stats().bytes_read_wr_q, before + 64);
    }

    #[test]
    fn write_queue_overflow_bursts() {
        let mut d = dram();
        for i in 0..40u64 {
            d.access(0x10_0000 + i * 64, AccessKind::Write, i);
        }
        assert!(d.stats().write_bursts > 0);
    }

    #[test]
    fn drain_writes_empties_queue() {
        let mut d = dram();
        for i in 0..10u64 {
            d.access(i * 64, AccessKind::Write, i);
        }
        d.drain_writes();
        // After drain, a read to a written line goes to the array, not the WQ.
        let before = d.stats().bytes_read_wr_q;
        d.access(0, AccessKind::Read, 1000);
        assert_eq!(d.stats().bytes_read_wr_q, before);
    }

    #[test]
    fn energy_accrues_with_activity() {
        let mut d = dram();
        let e0 = d.stats().energy;
        d.access(d.address_of(0, 0), AccessKind::Read, 0);
        d.access(d.address_of(0, 5), AccessKind::Read, 10);
        assert!(d.stats().energy > e0);
    }
}
