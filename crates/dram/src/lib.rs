//! # evax-dram — DRAM timing + Rowhammer disturbance model
//!
//! The EVAX paper evaluates on gem5 coupled with the Ramulator DRAM simulator,
//! extended with "a dedicated memory corruption module" so that Rowhammer
//! attacks actually flip bits (paper §VII, *Attack Generation in gem5*):
//! it tracks the neighbours of each row, counts activations per row since the
//! last refresh, assigns a bit-flip threshold to each row, and corrupts the
//! affected cells when the threshold is exceeded.
//!
//! This crate is that substrate, built from scratch: a bank/row-buffer timing
//! model (open-page policy, tRCD/tRP/tCAS), periodic refresh, a write queue
//! that can service reads (the `bytesReadWrQ` counter EVAX's DRAMA/TRRespass
//! detection keys on), and the Rowhammer disturbance module.
//!
//! ## Example
//!
//! ```
//! use evax_dram::{Dram, DramConfig, AccessKind};
//!
//! let mut dram = Dram::new(DramConfig::default());
//! let r1 = dram.access(0x0, AccessKind::Read, 0);
//! // Next cache line in the same bank and row (lines interleave across banks).
//! let next = 64 * dram.config().banks as u64;
//! let r2 = dram.access(next, AccessKind::Read, r1.latency as u64);
//! // Second access hits the open row buffer and is faster.
//! assert!(r2.row_hit && r2.latency < r1.latency);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod corruption;
pub mod dram;
pub mod stats;

pub use config::DramConfig;
pub use corruption::{BitFlip, CorruptionModule};
pub use dram::{AccessKind, Dram, DramResponse};
pub use stats::DramStats;
