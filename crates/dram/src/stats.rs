//! DRAM-side event counters exported to the detector feature space.

/// Counters maintained by [`crate::Dram`], named after the Ramulator/gem5
/// statistics the EVAX paper lists as highly correlated with DRAM-side
/// attacks (`selfRefreshEnergy`, `bytesPerActivate`, `bytesReadWrQ`, §VIII-C).
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct DramStats {
    /// Row activations (ACT commands).
    pub activations: u64,
    /// Accesses that hit the open row buffer.
    pub row_buffer_hits: u64,
    /// Accesses that required closing one row and opening another.
    pub row_buffer_conflicts: u64,
    /// Accesses to an idle (precharged) bank.
    pub row_buffer_empty: u64,
    /// Precharge (row close) commands.
    pub precharges: u64,
    /// Refresh sweeps completed.
    pub refreshes: u64,
    /// Read requests serviced.
    pub read_reqs: u64,
    /// Write requests enqueued.
    pub write_reqs: u64,
    /// Bytes read in total.
    pub bytes_read: u64,
    /// Bytes written in total.
    pub bytes_written: u64,
    /// Reads serviced directly from the write queue (`bytesReadWrQ`).
    pub bytes_read_wr_q: u64,
    /// Write-queue forced drains (queue full).
    pub write_bursts: u64,
    /// Abstract energy charged for activations + refreshes
    /// (`selfRefreshEnergy` analog).
    pub energy: u64,
    /// Bit flips induced by disturbance (Rowhammer) since start.
    pub bit_flips: u64,
    /// Rows whose disturbance count crossed half the flip threshold —
    /// an early-warning signal.
    pub rows_near_threshold: u64,
}

impl DramStats {
    /// Appends every counter to a snapshot word stream, in field order.
    pub(crate) fn save_state(&self, out: &mut Vec<u64>) {
        let DramStats {
            activations,
            row_buffer_hits,
            row_buffer_conflicts,
            row_buffer_empty,
            precharges,
            refreshes,
            read_reqs,
            write_reqs,
            bytes_read,
            bytes_written,
            bytes_read_wr_q,
            write_bursts,
            energy,
            bit_flips,
            rows_near_threshold,
        } = self.clone();
        out.extend_from_slice(&[
            activations,
            row_buffer_hits,
            row_buffer_conflicts,
            row_buffer_empty,
            precharges,
            refreshes,
            read_reqs,
            write_reqs,
            bytes_read,
            bytes_written,
            bytes_read_wr_q,
            write_bursts,
            energy,
            bit_flips,
            rows_near_threshold,
        ]);
    }

    /// Reads every counter back from a snapshot word stream. Returns `None`
    /// if the stream runs out.
    pub(crate) fn load_state(&mut self, w: &mut std::slice::Iter<'_, u64>) -> Option<()> {
        for field in [
            &mut self.activations,
            &mut self.row_buffer_hits,
            &mut self.row_buffer_conflicts,
            &mut self.row_buffer_empty,
            &mut self.precharges,
            &mut self.refreshes,
            &mut self.read_reqs,
            &mut self.write_reqs,
            &mut self.bytes_read,
            &mut self.bytes_written,
            &mut self.bytes_read_wr_q,
            &mut self.write_bursts,
            &mut self.energy,
            &mut self.bit_flips,
            &mut self.rows_near_threshold,
        ] {
            *field = *w.next()?;
        }
        Some(())
    }

    /// Bytes accessed per row activation — the paper's `bytesPerActivate`.
    /// High values mean streaming; values near one cache line mean
    /// activation-thrashing (Rowhammer/DRAMA signature).
    pub fn bytes_per_activate(&self) -> f64 {
        if self.activations == 0 {
            0.0
        } else {
            (self.bytes_read + self.bytes_written) as f64 / self.activations as f64
        }
    }

    /// Row-buffer hit rate over all accesses.
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_buffer_hits + self.row_buffer_conflicts + self.row_buffer_empty;
        if total == 0 {
            0.0
        } else {
            self.row_buffer_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_per_activate_handles_zero() {
        assert_eq!(DramStats::default().bytes_per_activate(), 0.0);
    }

    #[test]
    fn bytes_per_activate_ratio() {
        let s = DramStats {
            activations: 4,
            bytes_read: 64,
            bytes_written: 64,
            ..Default::default()
        };
        assert_eq!(s.bytes_per_activate(), 32.0);
    }

    #[test]
    fn hit_rate() {
        let s = DramStats {
            row_buffer_hits: 3,
            row_buffer_conflicts: 1,
            row_buffer_empty: 0,
            ..Default::default()
        };
        assert!((s.row_hit_rate() - 0.75).abs() < 1e-12);
    }
}
