//! Property tests for the DRAM model: address mapping bijectivity, refresh
//! semantics, disturbance locality, and timing invariants.

use evax_dram::{AccessKind, CorruptionModule, Dram, DramConfig};
use proptest::prelude::*;

fn dram(threshold: u32) -> Dram {
    Dram::new(DramConfig {
        hammer_threshold: threshold,
        hammer_jitter: 0,
        ..Default::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn address_mapping_is_injective_per_line(
        a in 0u64..1u64 << 24, b in 0u64..1u64 << 24
    ) {
        let d = dram(1000);
        let (ba, ra, ca) = d.map_address(a);
        let (bb, rb, cb) = d.map_address(b);
        if a / 64 != b / 64 {
            prop_assert!(
                (ba, ra, ca / 64) != (bb, rb, cb / 64),
                "distinct lines must map to distinct (bank,row,col-line)"
            );
        }
    }

    #[test]
    fn read_latency_is_bounded(addrs in proptest::collection::vec(0u64..1u64 << 22, 1..100)) {
        let mut d = dram(100_000);
        let cfg = d.config().clone();
        let worst = cfg.t_rp + cfg.t_rcd + cfg.t_cas + cfg.t_bus;
        let best = cfg.t_bus;
        for (t, &a) in addrs.iter().enumerate() {
            let r = d.access(a, AccessKind::Read, t as u64 * 10);
            prop_assert!(r.latency >= best && r.latency <= worst, "latency {} out of range", r.latency);
        }
    }

    #[test]
    fn flips_only_hit_rows_within_blast_radius(
        row in 5u64..1000, hammers in 1u32..400
    ) {
        let mut m = CorruptionModule::new(100, 0, 1, 1 << 15, 8192);
        let mut flips = Vec::new();
        for _ in 0..hammers {
            flips.extend(m.on_activate(0, row));
        }
        for f in &flips {
            prop_assert!(f.row == row - 1 || f.row == row + 1, "flip outside blast radius: {}", f.row);
            prop_assert!(f.bit < 8);
            prop_assert!(f.byte < 8192);
        }
        if hammers >= 100 {
            prop_assert_eq!(flips.len(), 2, "both neighbours flip exactly once per window");
        } else {
            prop_assert!(flips.is_empty());
        }
    }

    #[test]
    fn refresh_always_resets_disturbance(rows in proptest::collection::vec(0u64..100, 1..50)) {
        let mut m = CorruptionModule::new(1_000, 0, 1, 1 << 10, 8192);
        for &r in &rows {
            m.on_activate(0, r);
        }
        m.on_refresh();
        for &r in &rows {
            prop_assert_eq!(m.activation_count(0, r), 0);
        }
        prop_assert_eq!(m.rows_near_threshold(), 0);
    }

    #[test]
    fn row_thresholds_are_deterministic_and_bounded(row in 0u64..10_000) {
        let m = CorruptionModule::new(500, 128, 1, 1 << 15, 8192);
        let t1 = m.row_threshold(2, row);
        let t2 = m.row_threshold(2, row);
        prop_assert_eq!(t1, t2);
        prop_assert!((500..500 + 128).contains(&t1));
    }

    #[test]
    fn write_queue_reads_are_exact_line_matches(base in 0u64..1u64 << 20) {
        let base = base & !63; // line-align
        let mut d = dram(100_000);
        d.access(base, AccessKind::Write, 0);
        let hit = d.access(base, AccessKind::Read, 1);
        prop_assert_eq!(hit.latency, d.config().t_bus, "same line must hit the WQ");
        let miss = d.access(base ^ 0x40_000, AccessKind::Read, 2);
        prop_assert!(miss.latency > d.config().t_bus, "different line must miss the WQ");
    }

    #[test]
    fn energy_is_monotone_in_activity(n in 1usize..100) {
        let mut d = dram(100_000);
        let mut last = d.stats().energy;
        for i in 0..n {
            d.access((i as u64) * 8192, AccessKind::Read, i as u64 * 50);
            prop_assert!(d.stats().energy >= last);
            last = d.stats().energy;
        }
    }
}
