//! Activation functions and their derivatives.

use crate::tensor::Matrix;

/// Activation function applied element-wise after a dense layer's affine map.
///
/// # Example
/// ```
/// use evax_nn::Activation;
/// assert_eq!(Activation::Relu.apply(-1.0), 0.0);
/// assert_eq!(Activation::Relu.apply(2.5), 2.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize, Default,
)]
pub enum Activation {
    /// Identity (no nonlinearity) — used for logits / output layers.
    #[default]
    Identity,
    /// Rectified linear unit.
    Relu,
    /// Leaky ReLU with slope 0.2 on the negative side (the conventional GAN
    /// choice, used by the AM-GAN Generator).
    LeakyRelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Activation::Identity => "identity",
            Activation::Relu => "relu",
            Activation::LeakyRelu => "leaky_relu",
            Activation::Tanh => "tanh",
            Activation::Sigmoid => "sigmoid",
        };
        f.write_str(name)
    }
}

const LEAKY_SLOPE: f32 = 0.2;

impl Activation {
    /// Applies the activation to a scalar.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu => {
                if x >= 0.0 {
                    x
                } else {
                    LEAKY_SLOPE * x
                }
            }
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative with respect to the pre-activation, expressed in terms of the
    /// *activated output* `y = apply(x)` (cheaper for tanh/sigmoid and exact
    /// for the piecewise-linear activations away from the kink).
    #[inline]
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu => {
                if y > 0.0 {
                    1.0
                } else {
                    LEAKY_SLOPE
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
        }
    }

    /// Applies the activation element-wise, in place.
    pub fn apply_matrix(self, m: &mut Matrix) {
        if self == Activation::Identity {
            return;
        }
        m.map_inplace(|v| self.apply(v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_behaviour() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
        assert_eq!(Activation::Relu.derivative_from_output(0.0), 0.0);
        assert_eq!(Activation::Relu.derivative_from_output(1.0), 1.0);
    }

    #[test]
    fn leaky_relu_negative_slope() {
        let y = Activation::LeakyRelu.apply(-10.0);
        assert!((y + 2.0).abs() < 1e-6);
        assert!((Activation::LeakyRelu.derivative_from_output(y) - 0.2).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_range_and_derivative() {
        let y = Activation::Sigmoid.apply(0.0);
        assert!((y - 0.5).abs() < 1e-6);
        assert!((Activation::Sigmoid.derivative_from_output(0.5) - 0.25).abs() < 1e-6);
        assert!(Activation::Sigmoid.apply(100.0) <= 1.0);
        assert!(Activation::Sigmoid.apply(-100.0) >= 0.0);
    }

    #[test]
    fn tanh_derivative_matches_numeric() {
        let x = 0.37f32;
        let y = Activation::Tanh.apply(x);
        let eps = 1e-3;
        let numeric =
            (Activation::Tanh.apply(x + eps) - Activation::Tanh.apply(x - eps)) / (2.0 * eps);
        assert!((Activation::Tanh.derivative_from_output(y) - numeric).abs() < 1e-3);
    }

    #[test]
    fn identity_is_noop_on_matrix() {
        let mut m = Matrix::from_rows(&[vec![-1.0, 2.0]]);
        Activation::Identity.apply_matrix(&mut m);
        assert_eq!(m.row(0), &[-1.0, 2.0]);
    }
}
