//! Unsupervised anomaly detection: a diagonal-covariance Mahalanobis
//! scorer fitted on **benign windows only**.
//!
//! Supervised EVAX detectors can only flag what their training corpus
//! labeled; a zero-day attack family contributes no labeled rows. This
//! scorer learns the benign distribution instead (Tang et al.'s
//! unsupervised HMD premise): fit per-feature mean/variance on benign
//! feature rows, score a row by its mean squared z-score (the diagonal
//! Mahalanobis distance²/dim), and alarm when the score clears a threshold
//! calibrated to a benign-validation false-positive quantile. Nothing
//! about any attack is consulted at training time, so a held-out attack
//! category is detected exactly when it *behaves* abnormally.
//!
//! The scorer implements the object-safe [`Detector`] trait (kind
//! `"anomaly"`), so it drops into every deployment path — model bundles,
//! the fleet drain, the adaptive controller — unchanged. Scoring is a
//! pure per-row function (no batch-composition or thread-count
//! dependence), keeping the repo-wide bit-reproducibility contract.

use crate::detector::{Detector, DetectorScratch};

/// Variance floor: a feature constant in the benign fit still scores
/// finite (but large) z when an attack moves it. The floor is absolute —
/// feature rows here are normalizer outputs, already in O(1) scale.
const VAR_FLOOR: f64 = 1e-12;

/// A diagonal Mahalanobis anomaly scorer: per-feature benign mean and
/// inverse standard deviation, a calibrated alarm threshold, and an
/// optional top-`k` focus (score only the `k` most-deviant features,
/// which sharpens localized attacks against high-dimensional noise).
#[derive(Debug, Clone, PartialEq)]
pub struct AnomalyScorer {
    mean: Vec<f32>,
    inv_std: Vec<f32>,
    threshold: f32,
    top_k: u32,
}

impl AnomalyScorer {
    /// Fits the benign distribution from `rows` (flat row-major, `dim`
    /// features per row) with Welford's online mean/variance in `f64`.
    /// The threshold starts at `f32::INFINITY` (never alarms) — calibrate
    /// it with [`calibrate_threshold`](Self::calibrate_threshold) or set
    /// it explicitly with [`set_threshold`](Self::set_threshold).
    ///
    /// # Errors
    /// Rejects an empty corpus, a zero `dim`, a ragged `rows` length, or
    /// non-finite training values.
    pub fn fit(rows: &[f32], dim: usize) -> Result<AnomalyScorer, String> {
        if dim == 0 {
            return Err("anomaly fit: zero feature dimension".into());
        }
        if rows.is_empty() || !rows.len().is_multiple_of(dim) {
            return Err(format!(
                "anomaly fit: {} values is not a positive multiple of dim {dim}",
                rows.len()
            ));
        }
        if rows.iter().any(|v| !v.is_finite()) {
            return Err("anomaly fit: non-finite training value".into());
        }
        let n_rows = rows.len() / dim;
        let mut mean = vec![0.0f64; dim];
        let mut m2 = vec![0.0f64; dim];
        for (r, row) in rows.chunks_exact(dim).enumerate() {
            let count = (r + 1) as f64;
            for ((m, s), &x) in mean.iter_mut().zip(m2.iter_mut()).zip(row) {
                let x = x as f64;
                let d = x - *m;
                *m += d / count;
                *s += d * (x - *m);
            }
        }
        let denom = (n_rows as f64).max(1.0);
        let inv_std: Vec<f32> = m2
            .iter()
            .map(|&s| (1.0 / (s / denom).max(VAR_FLOOR).sqrt()) as f32)
            .collect();
        Ok(AnomalyScorer {
            mean: mean.iter().map(|&m| m as f32).collect(),
            inv_std,
            threshold: f32::INFINITY,
            top_k: 0,
        })
    }

    /// Restricts scoring to the `k` most-deviant features per row
    /// (builder style; `0` restores all-feature scoring). Values of `k`
    /// at or above the dimension are equivalent to `0`.
    pub fn with_top_k(mut self, k: usize) -> AnomalyScorer {
        self.top_k = if k >= self.mean.len() { 0 } else { k as u32 };
        self
    }

    /// Sets the alarm threshold directly.
    pub fn set_threshold(&mut self, t: f32) {
        self.threshold = t;
    }

    /// Calibrates the threshold so at most a `fpr` fraction of the given
    /// benign validation rows alarm: the threshold becomes the
    /// `(1 - fpr)` quantile of their scores (exclusive — scores strictly
    /// above it alarm via [`Detector::decide`]'s `>=` rule after the
    /// returned epsilon bump).
    ///
    /// Returns the calibrated threshold.
    ///
    /// # Panics
    /// Panics if `rows` is empty or not a multiple of the dimension.
    pub fn calibrate_threshold(&mut self, rows: &[f32], fpr: f64) -> f32 {
        let dim = self.mean.len();
        assert!(
            !rows.is_empty() && rows.len().is_multiple_of(dim),
            "calibration rows must be a positive multiple of dim {dim}"
        );
        let mut scratch = DetectorScratch::new();
        let mut scores: Vec<f32> = rows
            .chunks_exact(dim)
            .map(|r| self.score_into(r, &mut scratch))
            .collect();
        scores.sort_unstable_by(f32::total_cmp);
        let n = scores.len();
        // Index of the highest benign score that must stay below the
        // threshold: ceil((1-fpr)*n) - 1 keeps the alarm fraction <= fpr.
        let keep = ((1.0 - fpr.clamp(0.0, 1.0)) * n as f64).ceil().max(1.0) as usize;
        let idx = keep.min(n) - 1;
        // Nudge past the kept score so `>=` does not alarm on it. The
        // next-representable bump is exact and deterministic.
        let t = next_up(scores[idx]);
        self.threshold = t;
        t
    }

    /// Per-feature benign means.
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// Per-feature inverse standard deviations.
    pub fn inv_std(&self) -> &[f32] {
        &self.inv_std
    }

    /// The top-`k` focus (`0` = score every feature).
    pub fn top_k(&self) -> usize {
        self.top_k as usize
    }
}

/// The next `f32` strictly greater than `v` (finite inputs; infinities
/// and NaN pass through unchanged).
fn next_up(v: f32) -> f32 {
    if !v.is_finite() {
        return v;
    }
    let bits = v.to_bits();
    f32::from_bits(if v >= 0.0 {
        bits + 1
    } else if bits == 0x8000_0000 {
        0 // -0.0 steps to +0.0... then the caller's >= rule handles 0.0
    } else {
        bits - 1
    })
}

impl Detector for AnomalyScorer {
    fn n_features(&self) -> usize {
        self.mean.len()
    }

    fn threshold(&self) -> f32 {
        self.threshold
    }

    fn kind(&self) -> &'static str {
        "anomaly"
    }

    fn score_into(&self, x: &[f32], scratch: &mut DetectorScratch) -> f32 {
        let _ = scratch;
        let dim = self.mean.len();
        assert_eq!(x.len(), dim, "anomaly input dim mismatch");
        if self.top_k == 0 {
            let mut acc = 0.0f64;
            for ((&x, &m), &s) in x.iter().zip(&self.mean).zip(&self.inv_std) {
                let z = ((x - m) * s) as f64;
                acc += z * z;
            }
            (acc / dim as f64) as f32
        } else {
            // Top-k mean z²: per-row partial selection. The allocation
            // here is small (dim f32s) and the result is a pure function
            // of the row, preserving batch/thread independence.
            let mut zsq: Vec<f32> = x
                .iter()
                .zip(&self.mean)
                .zip(&self.inv_std)
                .map(|((&x, &m), &s)| {
                    let z = (x - m) * s;
                    z * z
                })
                .collect();
            let k = self.top_k as usize;
            zsq.sort_unstable_by(|a, b| f32::total_cmp(b, a));
            let mut acc = 0.0f64;
            for &z in &zsq[..k] {
                acc += z as f64;
            }
            (acc / k as f64) as f32
        }
    }

    fn save_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        crate::detector::put_u32(&mut out, self.mean.len() as u32);
        crate::detector::put_u32(&mut out, self.top_k);
        for &m in &self.mean {
            crate::detector::put_f32(&mut out, m);
        }
        for &s in &self.inv_std {
            crate::detector::put_f32(&mut out, s);
        }
        crate::detector::put_f32(&mut out, self.threshold);
        out
    }

    fn clone_box(&self) -> Box<dyn Detector> {
        Box::new(self.clone())
    }
}

/// Reconstructs an [`AnomalyScorer`] from its [`Detector::save_bytes`]
/// blob.
///
/// # Errors
/// Returns a description of the malformation: truncation, trailing bytes,
/// implausible dimensions, or non-finite parameters.
pub(crate) fn load_anomaly(bytes: &[u8]) -> Result<AnomalyScorer, String> {
    let mut c = crate::detector::Cursor::new(bytes);
    let dim = crate::detector::checked_dim(c.u32()?, "anomaly")?;
    let top_k = c.u32()?;
    if top_k as usize >= dim && top_k != 0 {
        return Err(format!("anomaly top_k {top_k} not below dimension {dim}"));
    }
    let mean = c.f32_vec(dim)?;
    let inv_std = c.f32_vec(dim)?;
    let threshold = c.f32()?;
    c.done()?;
    if mean.iter().chain(&inv_std).any(|v| !v.is_finite()) {
        return Err("anomaly parameters must be finite".into());
    }
    if threshold.is_nan() {
        return Err("anomaly threshold must not be NaN".into());
    }
    Ok(AnomalyScorer {
        mean,
        inv_std,
        threshold,
        top_k,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Benign corpus: rows near (0.5, 0.2, 0.8) with small deterministic
    /// wobble.
    fn benign_rows(n: usize) -> Vec<f32> {
        let mut out = Vec::with_capacity(n * 3);
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut noise = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (((state >> 40) as f32) / ((1u64 << 24) as f32) - 0.5) * 0.1
        };
        for _ in 0..n {
            out.extend_from_slice(&[0.5 + noise(), 0.2 + noise(), 0.8 + noise()]);
        }
        out
    }

    #[test]
    fn benign_scores_low_anomalies_score_high() {
        let train = benign_rows(256);
        let mut a = AnomalyScorer::fit(&train, 3).unwrap();
        let holdout = benign_rows(64);
        a.calibrate_threshold(&holdout, 0.05);
        let mut scratch = DetectorScratch::new();
        let benign_alarms = holdout
            .chunks_exact(3)
            .filter(|r| a.classify(r, &mut scratch))
            .count();
        assert!(benign_alarms <= 4, "{benign_alarms} alarms > 5% of 64");
        // A shifted row is far outside the benign cloud.
        assert!(a.classify(&[0.9, 0.9, 0.1], &mut scratch));
    }

    #[test]
    fn fit_rejects_degenerate_input() {
        assert!(AnomalyScorer::fit(&[], 3).is_err());
        assert!(AnomalyScorer::fit(&[1.0, 2.0], 0).is_err());
        assert!(AnomalyScorer::fit(&[1.0, 2.0], 3).is_err());
        assert!(AnomalyScorer::fit(&[1.0, f32::NAN, 2.0], 3).is_err());
    }

    #[test]
    fn uncalibrated_scorer_never_alarms() {
        let a = AnomalyScorer::fit(&benign_rows(16), 3).unwrap();
        let mut scratch = DetectorScratch::new();
        assert!(!a.classify(&[100.0, -50.0, 3.0], &mut scratch));
    }

    #[test]
    fn top_k_scores_the_most_deviant_features() {
        let mut a = AnomalyScorer::fit(&benign_rows(256), 3).unwrap();
        a.set_threshold(0.0);
        let mut scratch = DetectorScratch::new();
        let row = [0.5, 0.2, 0.2]; // only the third feature deviates
        let all = a.score_into(&row, &mut scratch);
        let focused = a.clone().with_top_k(1).score_into(&row, &mut scratch);
        // Focusing on the single most-deviant feature must not dilute it.
        assert!(focused >= all, "{focused} < {all}");
    }

    #[test]
    fn round_trips_through_save_bytes() {
        let mut a = AnomalyScorer::fit(&benign_rows(64), 3)
            .unwrap()
            .with_top_k(2);
        a.calibrate_threshold(&benign_rows(32), 0.05);
        let blob = a.save_bytes();
        let back = crate::load_detector("anomaly", &blob).unwrap();
        assert_eq!(back.kind(), "anomaly");
        assert_eq!(back.n_features(), 3);
        let mut scratch = DetectorScratch::new();
        for row in benign_rows(8).chunks_exact(3) {
            let (s0, v0) = a.decide(row, &mut scratch);
            let (s1, v1) = back.decide(row, &mut scratch);
            assert_eq!(s0.to_bits(), s1.to_bits());
            assert_eq!(v0, v1);
        }
    }

    #[test]
    fn corrupt_blobs_are_rejected() {
        let a = AnomalyScorer::fit(&benign_rows(16), 3).unwrap();
        let blob = a.save_bytes();
        // Truncation.
        assert!(load_anomaly(&blob[..blob.len() - 2]).is_err());
        // Trailing garbage.
        let mut long = blob.clone();
        long.push(0);
        assert!(load_anomaly(&long).is_err());
        // Implausible dimension.
        let mut bad = blob.clone();
        bad[0..4].copy_from_slice(&0u32.to_le_bytes());
        assert!(load_anomaly(&bad).is_err());
        // Non-finite parameter.
        let mut nan = blob.clone();
        nan[8..12].copy_from_slice(&f32::NAN.to_bits().to_le_bytes());
        assert!(load_anomaly(&nan).is_err());
    }

    #[test]
    fn calibration_is_an_exclusive_quantile() {
        let mut a = AnomalyScorer::fit(&benign_rows(128), 3).unwrap();
        let val = benign_rows(100);
        let t = a.calibrate_threshold(&val, 0.05);
        let mut scratch = DetectorScratch::new();
        let alarms = val
            .chunks_exact(3)
            .filter(|r| a.classify(r, &mut scratch))
            .count();
        assert!(alarms <= 5, "{alarms} alarms > 5% of 100");
        assert!(t.is_finite());
    }
}
