//! The unified, object-safe detector abstraction.
//!
//! Every scoring/classification surface in the workspace — the adaptive
//! controller, the fleet batch drain, k-fold evaluation, model bundles —
//! dispatches through one trait, [`Detector`], so evasive attacks and
//! hardened detector variants can be plugged into any deployment path
//! without touching the call sites.
//!
//! # Contract
//!
//! * **Input space.** A detector consumes *model-input* feature rows — for
//!   the EVAX pipeline, the extended (base + engineered) feature space the
//!   featurizer emits. `n_features()` is that dimensionality.
//! * **Bitwise pinning.** The adapter impls for [`HwPerceptron`],
//!   [`QuantLinear`] and [`Network`] reproduce the exact accumulation chain
//!   of their inherent methods: `score_into` equals `HwPerceptron::score` /
//!   `QuantLinear::score_q` (dequantized) / `Network::forward` bit for bit,
//!   and the batched paths are bit-identical to the per-row ones at any
//!   thread count. Golden tests pin this at 1/4/16 threads.
//! * **Verdicts through [`Detector::decide`].** Deployment code must take
//!   verdicts from `decide` (or the batched `classify_rows_into`), never by
//!   re-comparing `score_into` against `threshold()`: quantized detectors
//!   decide in the integer domain, and stochastic detectors decide against
//!   a per-row jittered threshold.
//! * **Determinism.** Inference is a pure function of `(detector, row)` —
//!   never of batch composition, call order, wall clock or thread count.
//!   [`StochasticDetector`] derives its per-row randomness by hashing the
//!   row's bits with the run seed, which keeps even randomized inference
//!   inside the repo-wide bit-reproducibility contract.
//!
//! # Hardened variants
//!
//! [`StochasticDetector`] reproduces the *Stochastic-HMDs* defense shape
//! (inference-time weight/threshold randomization): a white-box attacker
//! who read the deployed weights optimizes against a model the defender
//! never actually evaluates. [`Ensemble`] is a small majority-vote
//! committee (adversarially-retrained HMDs à la Kuruvila et al. train the
//! members; the vote has an exact, documented tie-break rule).

use crate::net::Network;
use crate::perceptron::HwPerceptron;
use crate::quant::QuantLinear;
use crate::tensor::Matrix;

/// Reusable scratch buffers for allocation-free trait-dispatched inference.
///
/// One scratch serves any [`Detector`] impl; buffers grow to the largest
/// use and are reused. Scratch contents never affect results — it exists
/// purely so hot paths stay allocation-free.
#[derive(Debug, Clone)]
pub struct DetectorScratch {
    /// Quantized-input buffer ([`QuantLinear`] adapter).
    xq: Vec<u8>,
    /// Integer score buffer (batched [`QuantLinear`] path).
    q_scores: Vec<i64>,
    /// 1×n input staging matrix ([`Network`] adapter).
    input: Matrix,
    /// Ping activation buffer ([`Network::forward_into`]).
    ping: Matrix,
    /// Pong activation buffer ([`Network::forward_into`]).
    pong: Matrix,
}

impl Default for DetectorScratch {
    fn default() -> Self {
        DetectorScratch::new()
    }
}

impl DetectorScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        DetectorScratch {
            xq: Vec::new(),
            q_scores: Vec::new(),
            input: Matrix::zeros(0, 0),
            ping: Matrix::zeros(0, 0),
            pong: Matrix::zeros(0, 0),
        }
    }
}

/// The object-safe scoring/classification interface every deployment path
/// dispatches through (see the [module docs](self) for the full contract).
pub trait Detector: std::fmt::Debug + Send + Sync {
    /// Model-input feature dimensionality this detector consumes.
    fn n_features(&self) -> usize;

    /// The nominal decision threshold on the raw score. Informational for
    /// impls that decide in another domain (integer scores, per-row
    /// jittered thresholds) — verdicts come from [`Detector::decide`].
    fn threshold(&self) -> f32;

    /// Stable kind tag for serialization and reports (e.g.
    /// `"hw-perceptron"`). [`load_detector`] dispatches on it.
    fn kind(&self) -> &'static str;

    /// Raw decision score of one feature row.
    ///
    /// # Panics
    /// Panics if `x.len() != self.n_features()`.
    fn score_into(&self, x: &[f32], scratch: &mut DetectorScratch) -> f32;

    /// Score and verdict of one feature row — the deployment primitive.
    ///
    /// The default is `score >= threshold()`; impls whose decision rule
    /// lives in another domain (integer compare, jittered threshold,
    /// majority vote) override it so the verdict matches their exact rule.
    fn decide(&self, x: &[f32], scratch: &mut DetectorScratch) -> (f32, bool) {
        let s = self.score_into(x, scratch);
        (s, s >= self.threshold())
    }

    /// Verdict of one feature row (`true` = malicious).
    fn classify(&self, x: &[f32], scratch: &mut DetectorScratch) -> bool {
        self.decide(x, scratch).1
    }

    /// Batched scoring over a flat row-major slice of feature rows.
    /// `out[i]` is bit-identical to `score_into` on row `i` alone — scores
    /// are independent of batch composition and of `threads` (`0` = auto).
    ///
    /// # Panics
    /// Panics if `rows.len() != out.len() * n_features()`.
    fn score_rows_into(
        &self,
        rows: &[f32],
        threads: usize,
        scratch: &mut DetectorScratch,
        out: &mut [f32],
    ) {
        let _ = threads; // per-row dispatch; threaded impls override
        let n = self.n_features();
        assert_eq!(rows.len(), out.len() * n, "batch length mismatch");
        for (o, row) in out.iter_mut().zip(rows.chunks_exact(n)) {
            *o = self.score_into(row, scratch);
        }
    }

    /// Batched scoring + verdicts; per-row results are bit-identical to
    /// [`Detector::decide`] regardless of batch composition or `threads`.
    ///
    /// # Panics
    /// Panics on `rows`/`scores`/`verdicts` length mismatches.
    fn classify_rows_into(
        &self,
        rows: &[f32],
        threads: usize,
        scratch: &mut DetectorScratch,
        scores: &mut [f32],
        verdicts: &mut [bool],
    ) {
        let _ = threads;
        let n = self.n_features();
        assert_eq!(rows.len(), scores.len() * n, "batch length mismatch");
        assert_eq!(scores.len(), verdicts.len(), "score/verdict mismatch");
        for (i, row) in rows.chunks_exact(n).enumerate() {
            let (s, v) = self.decide(row, scratch);
            scores[i] = s;
            verdicts[i] = v;
        }
    }

    /// Serialization hook: the detector's parameters as a self-contained
    /// little-endian byte blob. [`load_detector`] with
    /// [`Detector::kind`] reconstructs it.
    fn save_bytes(&self) -> Vec<u8>;

    /// Clones the detector behind a fresh box (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn Detector>;
}

impl Clone for Box<dyn Detector> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

// ---------------------------------------------------------------------------
// Little-endian byte-blob helpers shared by the serialization hooks.
// ---------------------------------------------------------------------------

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("truncated detector blob at byte {}", self.pos))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn i64(&mut self) -> Result<i64, String> {
        Ok(self.u64()? as i64)
    }

    pub(crate) fn f32(&mut self) -> Result<f32, String> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn i16(&mut self) -> Result<i16, String> {
        let b = self.take(2)?;
        Ok(i16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn f32_vec(&mut self, n: usize) -> Result<Vec<f32>, String> {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.f32()?);
        }
        Ok(v)
    }

    pub(crate) fn done(&self) -> Result<(), String> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(format!(
                "trailing garbage: {} bytes past the end of the encoding",
                self.bytes.len() - self.pos
            ))
        }
    }
}

/// A sane upper bound on serialized dimensions — rejects length prefixes
/// from corrupted blobs before they drive an allocation.
const MAX_SERIALIZED_DIM: u32 = 1 << 24;

pub(crate) fn checked_dim(n: u32, what: &str) -> Result<usize, String> {
    if n == 0 || n > MAX_SERIALIZED_DIM {
        return Err(format!("implausible {what} dimension {n}"));
    }
    Ok(n as usize)
}

// ---------------------------------------------------------------------------
// Adapter: HwPerceptron (natural 0.0 boundary)
// ---------------------------------------------------------------------------

impl Detector for HwPerceptron {
    fn n_features(&self) -> usize {
        HwPerceptron::n_features(self)
    }

    /// The bare perceptron's natural decision boundary (score `>= 0`).
    /// Deployments with a tuned threshold wrap it in
    /// [`ThresholdedPerceptron`].
    fn threshold(&self) -> f32 {
        0.0
    }

    fn kind(&self) -> &'static str {
        "hw-perceptron"
    }

    /// Bitwise-pinned to [`HwPerceptron::score`]'s accumulation chain.
    fn score_into(&self, x: &[f32], _scratch: &mut DetectorScratch) -> f32 {
        self.score(x)
    }

    /// Bitwise-pinned to the per-row reduction via the threaded
    /// `matvec_bias_into` kernel.
    fn score_rows_into(
        &self,
        rows: &[f32],
        threads: usize,
        _scratch: &mut DetectorScratch,
        out: &mut [f32],
    ) {
        HwPerceptron::score_rows_into(self, rows, threads, out);
    }

    fn classify_rows_into(
        &self,
        rows: &[f32],
        threads: usize,
        _scratch: &mut DetectorScratch,
        scores: &mut [f32],
        verdicts: &mut [bool],
    ) {
        self.classify_batch_into(rows, 0.0, threads, scores, verdicts);
    }

    fn save_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 4 * HwPerceptron::n_features(self));
        put_u32(&mut out, HwPerceptron::n_features(self) as u32);
        for &w in self.weights() {
            put_f32(&mut out, w);
        }
        put_f32(&mut out, self.bias());
        out
    }

    fn clone_box(&self) -> Box<dyn Detector> {
        Box::new(self.clone())
    }
}

fn load_hw_perceptron(bytes: &[u8]) -> Result<HwPerceptron, String> {
    let mut c = Cursor::new(bytes);
    let n = checked_dim(c.u32()?, "perceptron")?;
    let weights = c.f32_vec(n)?;
    let bias = c.f32()?;
    c.done()?;
    Ok(HwPerceptron::from_parts(weights, bias))
}

// ---------------------------------------------------------------------------
// ThresholdedPerceptron: the deployed linear shape at trait level
// ---------------------------------------------------------------------------

/// An [`HwPerceptron`] plus its tuned decision threshold — the trait-level
/// shape of the deployed EVAX/PerSpectron detector (the engineered-feature
/// transform lives in the featurizer, not here). Ensemble committees are
/// built from these.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdedPerceptron {
    perceptron: HwPerceptron,
    threshold: f32,
}

impl ThresholdedPerceptron {
    /// Pairs a perceptron with its decision threshold.
    pub fn new(perceptron: HwPerceptron, threshold: f32) -> Self {
        ThresholdedPerceptron {
            perceptron,
            threshold,
        }
    }

    /// The underlying perceptron.
    pub fn perceptron(&self) -> &HwPerceptron {
        &self.perceptron
    }
}

impl Detector for ThresholdedPerceptron {
    fn n_features(&self) -> usize {
        self.perceptron.n_features()
    }

    fn threshold(&self) -> f32 {
        self.threshold
    }

    fn kind(&self) -> &'static str {
        "thresholded-perceptron"
    }

    /// Bitwise-pinned to [`HwPerceptron::score`].
    fn score_into(&self, x: &[f32], _scratch: &mut DetectorScratch) -> f32 {
        self.perceptron.score(x)
    }

    fn score_rows_into(
        &self,
        rows: &[f32],
        threads: usize,
        _scratch: &mut DetectorScratch,
        out: &mut [f32],
    ) {
        self.perceptron.score_rows_into(rows, threads, out);
    }

    fn classify_rows_into(
        &self,
        rows: &[f32],
        threads: usize,
        _scratch: &mut DetectorScratch,
        scores: &mut [f32],
        verdicts: &mut [bool],
    ) {
        self.perceptron
            .classify_batch_into(rows, self.threshold, threads, scores, verdicts);
    }

    fn save_bytes(&self) -> Vec<u8> {
        let mut out = self.perceptron.save_bytes();
        put_f32(&mut out, self.threshold);
        out
    }

    fn clone_box(&self) -> Box<dyn Detector> {
        Box::new(self.clone())
    }
}

fn load_thresholded(bytes: &[u8]) -> Result<ThresholdedPerceptron, String> {
    let mut c = Cursor::new(bytes);
    let n = checked_dim(c.u32()?, "perceptron")?;
    let weights = c.f32_vec(n)?;
    let bias = c.f32()?;
    let threshold = c.f32()?;
    c.done()?;
    Ok(ThresholdedPerceptron::new(
        HwPerceptron::from_parts(weights, bias),
        threshold,
    ))
}

// ---------------------------------------------------------------------------
// Adapter: QuantLinear (integer-domain verdicts)
// ---------------------------------------------------------------------------

impl Detector for QuantLinear {
    fn n_features(&self) -> usize {
        QuantLinear::n_features(self)
    }

    /// The integer decision boundary, dequantized. Informational only —
    /// verdicts compare in the exact integer domain ([`Detector::decide`]).
    fn threshold(&self) -> f32 {
        self.dequantize(self.threshold_q())
    }

    fn kind(&self) -> &'static str {
        "quant-linear"
    }

    /// Quantizes the row to `u8` and returns the dequantized exact integer
    /// score — bitwise-pinned to
    /// `dequantize(score_q(quantize_input(x)))`.
    fn score_into(&self, x: &[f32], scratch: &mut DetectorScratch) -> f32 {
        self.decide(x, scratch).0
    }

    /// Verdict in the integer domain: `score_q >= threshold_q`, exactly as
    /// [`QuantLinear::classify_q`]. Never re-derive it from the f32 mirror.
    fn decide(&self, x: &[f32], scratch: &mut DetectorScratch) -> (f32, bool) {
        scratch.xq.clear();
        scratch.xq.resize(x.len(), 0);
        QuantLinear::quantize_input_into(x, &mut scratch.xq);
        let sq = self.score_q(&scratch.xq);
        (self.dequantize(sq), sq >= self.threshold_q())
    }

    fn score_rows_into(
        &self,
        rows: &[f32],
        threads: usize,
        scratch: &mut DetectorScratch,
        out: &mut [f32],
    ) {
        scratch.xq.clear();
        scratch.xq.resize(rows.len(), 0);
        QuantLinear::quantize_input_into(rows, &mut scratch.xq);
        scratch.q_scores.clear();
        scratch.q_scores.resize(out.len(), 0);
        self.score_rows_q_into(&scratch.xq, threads, &mut scratch.q_scores);
        for (o, &sq) in out.iter_mut().zip(scratch.q_scores.iter()) {
            *o = self.dequantize(sq);
        }
    }

    fn classify_rows_into(
        &self,
        rows: &[f32],
        threads: usize,
        scratch: &mut DetectorScratch,
        scores: &mut [f32],
        verdicts: &mut [bool],
    ) {
        assert_eq!(scores.len(), verdicts.len(), "score/verdict mismatch");
        scratch.xq.clear();
        scratch.xq.resize(rows.len(), 0);
        QuantLinear::quantize_input_into(rows, &mut scratch.xq);
        scratch.q_scores.clear();
        scratch.q_scores.resize(scores.len(), 0);
        self.score_rows_q_into(&scratch.xq, threads, &mut scratch.q_scores);
        for i in 0..scores.len() {
            let sq = scratch.q_scores[i];
            scores[i] = self.dequantize(sq);
            verdicts[i] = sq >= self.threshold_q();
        }
    }

    fn save_bytes(&self) -> Vec<u8> {
        let w = self.weights();
        let mut out = Vec::with_capacity(4 + 2 * w.len() + 8 + 8 + 4);
        put_u32(&mut out, w.len() as u32);
        for &q in w {
            out.extend_from_slice(&q.to_le_bytes());
        }
        out.extend_from_slice(&self.bias_q().to_le_bytes());
        out.extend_from_slice(&self.threshold_q().to_le_bytes());
        put_f32(&mut out, self.w_scale());
        put_f32(&mut out, self.score_error_bound());
        out
    }

    fn clone_box(&self) -> Box<dyn Detector> {
        Box::new(self.clone())
    }
}

fn load_quant_linear(bytes: &[u8]) -> Result<QuantLinear, String> {
    let mut c = Cursor::new(bytes);
    let n = checked_dim(c.u32()?, "quantized weight")?;
    let mut weights = Vec::with_capacity(n);
    for _ in 0..n {
        weights.push(c.i16()?);
    }
    let bias_q = c.i64()?;
    let threshold_q = c.i64()?;
    let w_scale = c.f32()?;
    let error_bound = c.f32()?;
    c.done()?;
    QuantLinear::from_parts(weights, bias_q, threshold_q, w_scale, error_bound)
}

// ---------------------------------------------------------------------------
// Adapter: Network (deep scorer; sigmoid-style 0.5 boundary)
// ---------------------------------------------------------------------------

impl Detector for Network {
    fn n_features(&self) -> usize {
        self.input_dim()
    }

    /// The conventional probability boundary for a sigmoid-output scorer.
    fn threshold(&self) -> f32 {
        0.5
    }

    fn kind(&self) -> &'static str {
        "network"
    }

    /// The first output of an allocation-free forward pass —
    /// bitwise-pinned to `Network::forward(&row)[0]`
    /// ([`Network::forward_into`] is documented bit-identical to
    /// [`Network::forward`]).
    fn score_into(&self, x: &[f32], scratch: &mut DetectorScratch) -> f32 {
        assert_eq!(x.len(), self.input_dim(), "feature dimension mismatch");
        if scratch.input.rows() != 1 || scratch.input.cols() != x.len() {
            scratch.input = Matrix::zeros(1, x.len());
        }
        scratch.input.row_mut(0).copy_from_slice(x);
        let out = self.forward_into(&scratch.input, &mut scratch.ping, &mut scratch.pong);
        out.get(0, 0)
    }

    fn save_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, self.depth() as u32);
        for layer in self.layers() {
            put_u32(&mut out, layer.fan_in() as u32);
            put_u32(&mut out, layer.fan_out() as u32);
            out.push(match layer.activation() {
                crate::Activation::Identity => 0,
                crate::Activation::Relu => 1,
                crate::Activation::LeakyRelu => 2,
                crate::Activation::Tanh => 3,
                crate::Activation::Sigmoid => 4,
            });
            for &w in layer.weights().as_slice() {
                put_f32(&mut out, w);
            }
            for &b in layer.bias() {
                put_f32(&mut out, b);
            }
        }
        out
    }

    fn clone_box(&self) -> Box<dyn Detector> {
        Box::new(self.clone())
    }
}

fn load_network(bytes: &[u8]) -> Result<Network, String> {
    let mut c = Cursor::new(bytes);
    let depth = checked_dim(c.u32()?, "network depth")?;
    if depth > 1024 {
        return Err(format!("implausible network depth {depth}"));
    }
    let mut layers = Vec::with_capacity(depth);
    for _ in 0..depth {
        let fan_in = checked_dim(c.u32()?, "layer fan-in")?;
        let fan_out = checked_dim(c.u32()?, "layer fan-out")?;
        let act = match c.u8()? {
            0 => crate::Activation::Identity,
            1 => crate::Activation::Relu,
            2 => crate::Activation::LeakyRelu,
            3 => crate::Activation::Tanh,
            4 => crate::Activation::Sigmoid,
            other => return Err(format!("unknown activation tag {other}")),
        };
        let w = c.f32_vec(
            fan_in
                .checked_mul(fan_out)
                .ok_or_else(|| "layer size overflow".to_string())?,
        )?;
        let b = c.f32_vec(fan_out)?;
        layers.push(crate::Dense::from_parts(
            Matrix::from_vec(fan_in, fan_out, w),
            b,
            act,
        ));
    }
    c.done()?;
    if layers.is_empty() {
        return Err("network with zero layers".to_string());
    }
    Ok(Network::new(layers))
}

// ---------------------------------------------------------------------------
// StochasticDetector: seeded inference-time weight/threshold jitter
// ---------------------------------------------------------------------------

/// A linear detector with *seeded, deterministic-per-run* inference-time
/// randomization (the Stochastic-HMDs defense shape).
///
/// Every weight is scaled by `1 + jitter · ε_i` and the threshold by
/// `1 + jitter · ε_thr`, where the `ε` values are drawn from a SplitMix64
/// stream seeded by `FNV-1a(seed ‖ row bits)` — the weight epsilons first
/// (in index order), the threshold epsilon last. Because the stream is a
/// pure function of `(seed, row)`:
///
/// * the same run (same seed) always produces the same verdict for the
///   same window — reproducible, thread-count invariant, independent of
///   batch composition;
/// * two rows an attacker crafted to be near-identical but not bit-equal see
///   *different* effective models, so a gradient computed against the
///   published weights is noise-injected at every probe;
/// * `jitter == 0.0` is bitwise-identical to the underlying
///   [`ThresholdedPerceptron`] (`w · (1 + 0·ε) = w` exactly in IEEE 754).
#[derive(Debug, Clone, PartialEq)]
pub struct StochasticDetector {
    perceptron: HwPerceptron,
    threshold: f32,
    seed: u64,
    jitter: f32,
}

impl StochasticDetector {
    /// Wraps a perceptron + threshold with jitter magnitude `jitter`
    /// (relative, e.g. `0.05` = ±5%) under run seed `seed`.
    ///
    /// # Panics
    /// Panics if `jitter` is negative or not finite.
    pub fn new(perceptron: HwPerceptron, threshold: f32, seed: u64, jitter: f32) -> Self {
        assert!(
            jitter.is_finite() && jitter >= 0.0,
            "jitter must be finite and non-negative"
        );
        StochasticDetector {
            perceptron,
            threshold,
            seed,
            jitter,
        }
    }

    /// The underlying (unjittered) perceptron.
    pub fn perceptron(&self) -> &HwPerceptron {
        &self.perceptron
    }

    /// The jitter magnitude.
    pub fn jitter(&self) -> f32 {
        self.jitter
    }

    /// The run seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// FNV-1a over the seed and the row's exact f32 bit patterns: the
    /// per-row randomization key. Pure in `(seed, row)`.
    fn row_key(&self, x: &[f32]) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        let mut eat = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        };
        for b in self.seed.to_le_bytes() {
            eat(b);
        }
        for &v in x {
            for b in v.to_bits().to_le_bytes() {
                eat(b);
            }
        }
        h
    }

    /// Jittered score and jittered threshold for one row.
    fn jittered(&self, x: &[f32]) -> (f32, f32) {
        assert_eq!(
            x.len(),
            self.perceptron.n_features(),
            "feature dimension mismatch"
        );
        let mut state = self.row_key(x);
        let mut eps = move || {
            // SplitMix64 → uniform in [-1, 1).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            ((z >> 40) as f32) / ((1u64 << 23) as f32) - 1.0
        };
        let j = self.jitter;
        let score = self
            .perceptron
            .weights()
            .iter()
            .zip(x.iter())
            .map(|(&w, &v)| (w * (1.0 + j * eps())) * v)
            .sum::<f32>()
            + self.perceptron.bias();
        let thr = self.threshold * (1.0 + j * eps());
        (score, thr)
    }
}

impl Detector for StochasticDetector {
    fn n_features(&self) -> usize {
        self.perceptron.n_features()
    }

    /// The *nominal* (unjittered) threshold; verdicts compare against the
    /// per-row jittered one ([`Detector::decide`]).
    fn threshold(&self) -> f32 {
        self.threshold
    }

    fn kind(&self) -> &'static str {
        "stochastic"
    }

    fn score_into(&self, x: &[f32], _scratch: &mut DetectorScratch) -> f32 {
        self.jittered(x).0
    }

    /// Jittered score against jittered threshold — both from the row's own
    /// randomization stream.
    fn decide(&self, x: &[f32], _scratch: &mut DetectorScratch) -> (f32, bool) {
        let (score, thr) = self.jittered(x);
        (score, score >= thr)
    }

    fn save_bytes(&self) -> Vec<u8> {
        let mut out = self.perceptron.save_bytes();
        put_f32(&mut out, self.threshold);
        out.extend_from_slice(&self.seed.to_le_bytes());
        put_f32(&mut out, self.jitter);
        out
    }

    fn clone_box(&self) -> Box<dyn Detector> {
        Box::new(self.clone())
    }
}

fn load_stochastic(bytes: &[u8]) -> Result<StochasticDetector, String> {
    let mut c = Cursor::new(bytes);
    let n = checked_dim(c.u32()?, "perceptron")?;
    let weights = c.f32_vec(n)?;
    let bias = c.f32()?;
    let threshold = c.f32()?;
    let seed = c.u64()?;
    let jitter = c.f32()?;
    c.done()?;
    if !(jitter.is_finite() && jitter >= 0.0) {
        return Err(format!("implausible jitter {jitter}"));
    }
    Ok(StochasticDetector::new(
        HwPerceptron::from_parts(weights, bias),
        threshold,
        seed,
        jitter,
    ))
}

// ---------------------------------------------------------------------------
// Ensemble: majority-vote committee with an exact tie-break rule
// ---------------------------------------------------------------------------

/// A small majority-vote committee of heterogeneous detectors.
///
/// # Exact decision rule
///
/// Each member votes via its own [`Detector::decide`]. A member whose
/// score comes back non-finite votes **malicious** (fail-secure inside the
/// committee — an unobtainable member verdict is treated as "attack", the
/// same policy as [`SecureModeState::fail_secure`] upstream). The
/// committee verdict is malicious iff `2 · malicious_votes >= members`,
/// i.e. **ties go to malicious** — computed in exact integer arithmetic.
/// The reported score is the malicious-vote fraction
/// (`votes as f32 / members as f32`), against a nominal 0.5 threshold.
///
/// Verdicts are per-row pure, so they are independent of batch
/// composition and thread count like every other impl.
///
/// [`SecureModeState::fail_secure`]: ../../evax_defense/adaptive/struct.SecureModeState.html#method.fail_secure
#[derive(Debug, Clone)]
pub struct Ensemble {
    members: Vec<Box<dyn Detector>>,
}

impl Ensemble {
    /// Builds a committee.
    ///
    /// # Panics
    /// Panics if `members` is empty or members disagree on `n_features`.
    pub fn new(members: Vec<Box<dyn Detector>>) -> Self {
        assert!(!members.is_empty(), "an ensemble needs at least one member");
        let dim = members[0].n_features();
        assert!(
            members.iter().all(|m| m.n_features() == dim),
            "ensemble members must share one feature space"
        );
        Ensemble { members }
    }

    /// The committee members.
    pub fn members(&self) -> &[Box<dyn Detector>] {
        &self.members
    }

    /// Malicious votes for one row (non-finite member scores vote
    /// malicious).
    fn votes(&self, x: &[f32], scratch: &mut DetectorScratch) -> usize {
        self.members
            .iter()
            .filter(|m| {
                let (s, v) = m.decide(x, scratch);
                !s.is_finite() || v
            })
            .count()
    }
}

impl Detector for Ensemble {
    fn n_features(&self) -> usize {
        self.members[0].n_features()
    }

    /// The nominal vote-fraction boundary; the verdict itself is the exact
    /// integer rule `2 · votes >= members`.
    fn threshold(&self) -> f32 {
        0.5
    }

    fn kind(&self) -> &'static str {
        "ensemble"
    }

    /// The malicious-vote fraction in `[0, 1]` (always finite).
    fn score_into(&self, x: &[f32], scratch: &mut DetectorScratch) -> f32 {
        self.votes(x, scratch) as f32 / self.members.len() as f32
    }

    fn decide(&self, x: &[f32], scratch: &mut DetectorScratch) -> (f32, bool) {
        let votes = self.votes(x, scratch);
        (
            votes as f32 / self.members.len() as f32,
            2 * votes >= self.members.len(),
        )
    }

    fn save_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, self.members.len() as u32);
        for m in &self.members {
            let kind = m.kind().as_bytes();
            out.push(kind.len() as u8);
            out.extend_from_slice(kind);
            let blob = m.save_bytes();
            put_u32(&mut out, blob.len() as u32);
            out.extend_from_slice(&blob);
        }
        out
    }

    fn clone_box(&self) -> Box<dyn Detector> {
        Box::new(self.clone())
    }
}

fn load_ensemble(bytes: &[u8]) -> Result<Ensemble, String> {
    let mut c = Cursor::new(bytes);
    let n = c.u32()?;
    if n == 0 || n > 1024 {
        return Err(format!("implausible committee size {n}"));
    }
    let mut members: Vec<Box<dyn Detector>> = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let kind_len = c.u8()? as usize;
        let kind = std::str::from_utf8(c.take(kind_len)?)
            .map_err(|_| "non-UTF8 member kind tag".to_string())?
            .to_string();
        let blob_len = c.u32()? as usize;
        let blob = c.take(blob_len)?;
        members.push(load_detector(&kind, blob)?);
    }
    c.done()?;
    let dim = members[0].n_features();
    if members.iter().any(|m| m.n_features() != dim) {
        return Err("ensemble members disagree on feature dimension".to_string());
    }
    Ok(Ensemble::new(members))
}

/// Reconstructs a boxed detector from its [`Detector::kind`] tag and
/// [`Detector::save_bytes`] blob — the load half of the trait's
/// serialization hooks.
///
/// # Errors
/// Returns a description of the first malformation: an unknown kind tag, a
/// truncated or oversized blob, or trailing bytes.
pub fn load_detector(kind: &str, bytes: &[u8]) -> Result<Box<dyn Detector>, String> {
    match kind {
        "hw-perceptron" => Ok(Box::new(load_hw_perceptron(bytes)?)),
        "thresholded-perceptron" => Ok(Box::new(load_thresholded(bytes)?)),
        "quant-linear" => Ok(Box::new(load_quant_linear(bytes)?)),
        "network" => Ok(Box::new(load_network(bytes)?)),
        "stochastic" => Ok(Box::new(load_stochastic(bytes)?)),
        "ensemble" => Ok(Box::new(load_ensemble(bytes)?)),
        "anomaly" => Ok(Box::new(crate::anomaly::load_anomaly(bytes)?)),
        other => Err(format!("unknown detector kind '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn perceptron(n: usize, seed: u64) -> HwPerceptron {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let trainer = crate::PerceptronTrainer::new(n, &mut rng);
        trainer.into_perceptron()
    }

    fn rows(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut state = seed | 1;
        (0..n * dim)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 40) as f32) / ((1u64 << 24) as f32)
            })
            .collect()
    }

    #[test]
    fn hw_perceptron_adapter_is_bitwise_pinned() {
        let p = perceptron(13, 3);
        let data = rows(9, 13, 7);
        let mut scratch = DetectorScratch::new();
        let d: &dyn Detector = &p;
        for row in data.chunks(13) {
            assert_eq!(
                d.score_into(row, &mut scratch).to_bits(),
                p.score(row).to_bits()
            );
        }
        let mut out = vec![0.0f32; 9];
        for threads in [1usize, 4, 16] {
            d.score_rows_into(&data, threads, &mut scratch, &mut out);
            for (o, row) in out.iter().zip(data.chunks(13)) {
                assert_eq!(o.to_bits(), p.score(row).to_bits());
            }
        }
    }

    #[test]
    fn quant_adapter_decides_in_integer_domain() {
        let p = perceptron(8, 5);
        let q = QuantLinear::from_f32(p.weights(), p.bias(), 0.1);
        let data = rows(6, 8, 9);
        let mut scratch = DetectorScratch::new();
        let d: &dyn Detector = &q;
        let mut xq = vec![0u8; 8];
        for row in data.chunks(8) {
            QuantLinear::quantize_input_into(row, &mut xq);
            let sq = q.score_q(&xq);
            let (s, v) = d.decide(row, &mut scratch);
            assert_eq!(s.to_bits(), q.dequantize(sq).to_bits());
            assert_eq!(v, q.classify_q(&xq));
        }
    }

    #[test]
    fn network_adapter_matches_forward() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let net = Network::mlp(
            6,
            5,
            1,
            1,
            crate::Activation::Tanh,
            crate::Activation::Sigmoid,
            &mut rng,
        );
        let data = rows(4, 6, 3);
        let mut scratch = DetectorScratch::new();
        let d: &dyn Detector = &net;
        for row in data.chunks(6) {
            let want = net.forward(&Matrix::from_row(row)).get(0, 0);
            assert_eq!(d.score_into(row, &mut scratch).to_bits(), want.to_bits());
        }
    }

    #[test]
    fn stochastic_zero_jitter_is_bitwise_base() {
        let p = perceptron(10, 4);
        let s = StochasticDetector::new(p.clone(), 0.25, 99, 0.0);
        let data = rows(5, 10, 13);
        let mut scratch = DetectorScratch::new();
        for row in data.chunks(10) {
            assert_eq!(
                s.score_into(row, &mut scratch).to_bits(),
                p.score(row).to_bits()
            );
            assert_eq!(s.decide(row, &mut scratch).1, p.score(row) >= 0.25);
        }
    }

    #[test]
    fn stochastic_same_seed_same_verdicts_different_seed_perturbs() {
        let p = perceptron(10, 4);
        let a = StochasticDetector::new(p.clone(), 0.2, 7, 0.08);
        let a2 = StochasticDetector::new(p.clone(), 0.2, 7, 0.08);
        let c = StochasticDetector::new(p.clone(), 0.2, 8, 0.08);
        let data = rows(40, 10, 21);
        let mut scratch = DetectorScratch::new();
        let mut differs = false;
        for row in data.chunks(10) {
            let sa = a.score_into(row, &mut scratch);
            assert_eq!(sa.to_bits(), a2.score_into(row, &mut scratch).to_bits());
            if sa.to_bits() != c.score_into(row, &mut scratch).to_bits() {
                differs = true;
            }
        }
        assert!(differs, "a different seed must perturb at least one score");
    }

    #[test]
    fn ensemble_tie_breaks_malicious_and_fails_secure() {
        // Two members that disagree on everything: a tie on every row.
        let yes = ThresholdedPerceptron::new(HwPerceptron::from_parts(vec![0.0; 4], 1.0), 0.0);
        let no = ThresholdedPerceptron::new(HwPerceptron::from_parts(vec![0.0; 4], -1.0), 0.0);
        let e = Ensemble::new(vec![Box::new(yes.clone()), Box::new(no.clone())]);
        let mut scratch = DetectorScratch::new();
        let row = [0.1f32, 0.2, 0.3, 0.4];
        let (score, verdict) = e.decide(&row, &mut scratch);
        assert_eq!(score, 0.5);
        assert!(verdict, "a 1-1 tie must resolve malicious (fail-secure)");

        // A NaN-scoring member votes malicious.
        let nan = ThresholdedPerceptron::new(HwPerceptron::from_parts(vec![0.0; 4], f32::NAN), 0.0);
        let e2 = Ensemble::new(vec![Box::new(no.clone()), Box::new(no), Box::new(nan)]);
        let (s2, v2) = e2.decide(&row, &mut scratch);
        assert!(
            s2.is_finite(),
            "vote fraction stays finite under NaN members"
        );
        assert!(!v2, "1 of 3 votes is not a majority");
        let e3 = Ensemble::new(vec![
            Box::new(ThresholdedPerceptron::new(
                HwPerceptron::from_parts(vec![0.0; 4], f32::NAN),
                0.0,
            )),
            Box::new(yes),
        ]);
        assert!(e3.decide(&row, &mut scratch).1, "NaN + yes = 2/2 malicious");
    }

    #[test]
    fn serialization_round_trips_every_kind() {
        let p = perceptron(7, 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let net = Network::mlp(
            7,
            4,
            1,
            1,
            crate::Activation::Relu,
            crate::Activation::Sigmoid,
            &mut rng,
        );
        let kinds: Vec<Box<dyn Detector>> = vec![
            Box::new(p.clone()),
            Box::new(ThresholdedPerceptron::new(p.clone(), 0.3)),
            Box::new(QuantLinear::from_f32(p.weights(), p.bias(), 0.3)),
            Box::new(net),
            Box::new(StochasticDetector::new(p.clone(), 0.3, 42, 0.05)),
            Box::new(Ensemble::new(vec![
                Box::new(ThresholdedPerceptron::new(p.clone(), 0.3)),
                Box::new(StochasticDetector::new(p.clone(), 0.2, 1, 0.02)),
                Box::new(QuantLinear::from_f32(p.weights(), p.bias(), 0.25)),
            ])),
        ];
        let data = rows(5, 7, 17);
        let mut scratch = DetectorScratch::new();
        for d in &kinds {
            let loaded = load_detector(d.kind(), &d.save_bytes())
                .unwrap_or_else(|e| panic!("{} round-trip: {e}", d.kind()));
            assert_eq!(loaded.kind(), d.kind());
            assert_eq!(loaded.n_features(), d.n_features());
            for row in data.chunks(7) {
                let (s0, v0) = d.decide(row, &mut scratch);
                let (s1, v1) = loaded.decide(row, &mut scratch);
                assert_eq!(s0.to_bits(), s1.to_bits(), "{} score drift", d.kind());
                assert_eq!(v0, v1, "{} verdict drift", d.kind());
            }
        }
    }

    #[test]
    fn load_rejects_malformed_blobs() {
        assert!(load_detector("no-such-kind", &[]).is_err());
        let p = perceptron(5, 1);
        let blob = Detector::save_bytes(&p);
        assert!(load_detector("hw-perceptron", &blob[..blob.len() - 1]).is_err());
        let mut trailing = blob.clone();
        trailing.push(0);
        assert!(load_detector("hw-perceptron", &trailing).is_err());
        let mut huge = blob;
        huge[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(load_detector("hw-perceptron", &huge).is_err());
    }
}
