//! Conditional GAN harness — the training loop behind EVAX's AM-GAN.
//!
//! The paper's AM-GAN (§V) is a *class-conditioned* GAN with a deliberate
//! asymmetry: the Generator is a deep network, while the Discriminator has
//! the architecture of the deployed hardware detector (shallow). Both are
//! conditioned on the attack-type label; the Discriminator learns to accept
//! *matching* (sample, label) pairs drawn from the seen database and to
//! reject generated pairs and mismatched pairs.
//!
//! This module provides the generic machinery; the EVAX-specific training
//! schedule (style-loss gating, sample collection) lives in `evax-core`.

use rand::Rng;

use crate::loss::Loss;
use crate::net::Network;
use crate::optim::Optimizer;
use crate::tensor::Matrix;

/// Configuration for a [`CondGan`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GanConfig {
    /// Dimension of the noise vector fed to the Generator. The paper uses a
    /// 145-wide noise vector (`RandomNoise(145)`, Fig. 4).
    pub noise_dim: usize,
    /// Number of condition classes (attack types + benign).
    pub n_classes: usize,
    /// Dimension of a generated sample (the HPC feature vector).
    pub feature_dim: usize,
    /// Probability of showing the Discriminator a *mismatched* real pair
    /// (real sample, wrong label) with target 0, per CGAN training.
    pub mismatch_prob: f64,
}

impl Default for GanConfig {
    fn default() -> Self {
        GanConfig {
            noise_dim: 145,
            n_classes: 20,
            feature_dim: 145,
            mismatch_prob: 0.25,
        }
    }
}

/// Losses observed during one adversarial training step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GanStats {
    /// Discriminator BCE over the real + fake (+ mismatched) batch.
    pub d_loss: f32,
    /// Generator BCE (how far it is from fooling the Discriminator).
    pub g_loss: f32,
    /// Fraction of fake samples the Discriminator scored above 0.5. Near 0.5
    /// at (approximate) Nash equilibrium.
    pub fooled_rate: f32,
}

/// A class-conditioned GAN: `generator: (noise ++ onehot(c)) -> sample`,
/// `discriminator: (sample ++ onehot(c)) -> realness in (0,1)`.
///
/// # Example
/// ```
/// use evax_nn::{CondGan, GanConfig, Network, Dense, Activation, Adam, Matrix};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let cfg = GanConfig { noise_dim: 8, n_classes: 2, feature_dim: 4, mismatch_prob: 0.25 };
/// let gen = Network::mlp(cfg.noise_dim + cfg.n_classes, 16, 2, cfg.feature_dim,
///     Activation::LeakyRelu, Activation::Sigmoid, &mut rng);
/// let disc = Network::mlp(cfg.feature_dim + cfg.n_classes, 0, 0, 1,
///     Activation::Identity, Activation::Sigmoid, &mut rng);
/// let mut gan = CondGan::new(cfg, gen, disc);
/// let samples = gan.generate(&[0, 1], &mut rng);
/// assert_eq!((samples.rows(), samples.cols()), (2, 4));
/// ```
#[derive(Debug, Clone)]
pub struct CondGan {
    cfg: GanConfig,
    generator: Network,
    discriminator: Network,
}

impl CondGan {
    /// Assembles a conditional GAN from its two players.
    ///
    /// # Panics
    /// Panics if network shapes are inconsistent with `cfg`.
    pub fn new(cfg: GanConfig, generator: Network, discriminator: Network) -> Self {
        assert_eq!(
            generator.input_dim(),
            cfg.noise_dim + cfg.n_classes,
            "generator input must be noise_dim + n_classes"
        );
        assert_eq!(
            generator.output_dim(),
            cfg.feature_dim,
            "generator output must be feature_dim"
        );
        assert_eq!(
            discriminator.input_dim(),
            cfg.feature_dim + cfg.n_classes,
            "discriminator input must be feature_dim + n_classes"
        );
        assert_eq!(
            discriminator.output_dim(),
            1,
            "discriminator must output one unit"
        );
        CondGan {
            cfg,
            generator,
            discriminator,
        }
    }

    /// The configuration this GAN was built with.
    pub fn config(&self) -> &GanConfig {
        &self.cfg
    }

    /// Borrow the Generator (EVAX mines its hidden weights for feature
    /// engineering).
    pub fn generator(&self) -> &Network {
        &self.generator
    }

    /// Borrow the Discriminator.
    pub fn discriminator(&self) -> &Network {
        &self.discriminator
    }

    /// One-hot encodes class labels into an `n x n_classes` matrix.
    ///
    /// # Panics
    /// Panics if any label is out of range.
    pub fn one_hot(&self, labels: &[usize]) -> Matrix {
        let mut m = Matrix::zeros(labels.len(), self.cfg.n_classes);
        for (i, &c) in labels.iter().enumerate() {
            assert!(c < self.cfg.n_classes, "label {c} out of range");
            m.set(i, c, 1.0);
        }
        m
    }

    /// Samples a batch of standard-normal noise vectors.
    pub fn sample_noise<R: Rng>(&self, n: usize, rng: &mut R) -> Matrix {
        let mut m = Matrix::zeros(n, self.cfg.noise_dim);
        for v in m.as_mut_slice() {
            // Box-Muller from two uniforms keeps us independent of rand_distr.
            let u1: f32 = rng.gen_range(1e-6f32..1.0);
            let u2: f32 = rng.gen_range(0.0f32..1.0);
            *v = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        }
        m
    }

    /// Generates one sample per label (paper Fig. 4, `AutomaticAttackGeneration`).
    pub fn generate<R: Rng>(&self, labels: &[usize], rng: &mut R) -> Matrix {
        let z = self.sample_noise(labels.len(), rng);
        let input = z.hcat(&self.one_hot(labels));
        self.generator.forward(&input)
    }

    /// Scores (sample, label) pairs with the Discriminator; column 0 is the
    /// realness probability.
    ///
    /// # Panics
    /// Panics if shapes mismatch.
    pub fn discriminate(&self, samples: &Matrix, labels: &[usize]) -> Matrix {
        assert_eq!(samples.rows(), labels.len(), "label count mismatch");
        let input = samples.hcat(&self.one_hot(labels));
        self.discriminator.forward(&input)
    }

    /// One full adversarial step (paper Fig. 4): trains the Discriminator on
    /// real-matching (target 1), generated (target 0) and mismatched-real
    /// (target 0) pairs, then trains the Generator to fool the updated
    /// Discriminator.
    ///
    /// # Panics
    /// Panics if `real.rows() != labels.len()` or the batch is empty.
    pub fn train_step<R, OG, OD>(
        &mut self,
        real: &Matrix,
        labels: &[usize],
        rng: &mut R,
        g_opt: &mut OG,
        d_opt: &mut OD,
    ) -> GanStats
    where
        R: Rng,
        OG: Optimizer,
        OD: Optimizer,
    {
        assert_eq!(real.rows(), labels.len(), "label count mismatch");
        assert!(real.rows() > 0, "empty batch");
        let n = real.rows();

        // ---- Discriminator phase ----
        let fake = self.generate(labels, rng);
        let mut d_in_rows: Vec<Vec<f32>> = Vec::with_capacity(2 * n + n / 2);
        let mut d_targets: Vec<f32> = Vec::with_capacity(2 * n + n / 2);
        let onehot = self.one_hot(labels);
        for i in 0..n {
            let mut row = real.row(i).to_vec();
            row.extend_from_slice(onehot.row(i));
            d_in_rows.push(row);
            d_targets.push(1.0);
        }
        for i in 0..n {
            let mut row = fake.row(i).to_vec();
            row.extend_from_slice(onehot.row(i));
            d_in_rows.push(row);
            d_targets.push(0.0);
        }
        // Mismatched real pairs teach the Discriminator that labels matter.
        if self.cfg.n_classes > 1 {
            #[allow(clippy::needless_range_loop)] // i indexes labels, real and onehot together
            for i in 0..n {
                if rng.gen_bool(self.cfg.mismatch_prob) {
                    let wrong = (labels[i] + 1 + rng.gen_range(0..self.cfg.n_classes - 1))
                        % self.cfg.n_classes;
                    let mut row = real.row(i).to_vec();
                    let mut oh = vec![0.0; self.cfg.n_classes];
                    oh[wrong] = 1.0;
                    row.extend_from_slice(&oh);
                    d_in_rows.push(row);
                    d_targets.push(0.0);
                }
            }
        }
        let d_in = Matrix::from_rows(&d_in_rows);
        let d_target = Matrix::from_vec(d_targets.len(), 1, d_targets);
        let d_loss = {
            let pred = self.discriminator.forward_train(&d_in);
            let value = Loss::Bce.value(&pred, &d_target);
            let grad = Loss::Bce.gradient(&pred, &d_target);
            self.discriminator.backward(&grad);
            self.discriminator.apply_grads(d_opt, 0);
            value
        };

        // ---- Generator phase ----
        let z = self.sample_noise(n, rng);
        let g_in = z.hcat(&onehot);
        let g_out = self.generator.forward_train(&g_in);
        let d_in_fake = g_out.hcat(&onehot);
        let d_pred = self.discriminator.forward_train(&d_in_fake);
        let want_real = Matrix::full(n, 1, 1.0);
        let g_loss = Loss::Bce.value(&d_pred, &want_real);
        let fooled = (0..n).filter(|&i| d_pred.get(i, 0) > 0.5).count() as f32 / n as f32;
        let grad = Loss::Bce.gradient(&d_pred, &want_real);
        let grad_d_in = self.discriminator.backward(&grad);
        self.discriminator.discard_grads(); // D is frozen in this phase.
                                            // Route the gradient on the sample slice back into the Generator.
        let mut grad_g_out = Matrix::zeros(n, self.cfg.feature_dim);
        for i in 0..n {
            grad_g_out
                .row_mut(i)
                .copy_from_slice(&grad_d_in.row(i)[..self.cfg.feature_dim]);
        }
        self.generator.backward(&grad_g_out);
        self.generator.apply_grads(g_opt, 1000);

        GanStats {
            d_loss,
            g_loss,
            fooled_rate: fooled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Adam};
    use rand::SeedableRng;

    fn small_gan(rng: &mut rand::rngs::StdRng) -> CondGan {
        let cfg = GanConfig {
            noise_dim: 6,
            n_classes: 2,
            feature_dim: 4,
            mismatch_prob: 0.25,
        };
        let gen = Network::mlp(
            cfg.noise_dim + cfg.n_classes,
            16,
            2,
            cfg.feature_dim,
            Activation::LeakyRelu,
            Activation::Sigmoid,
            rng,
        );
        let disc = Network::mlp(
            cfg.feature_dim + cfg.n_classes,
            8,
            1,
            1,
            Activation::LeakyRelu,
            Activation::Sigmoid,
            rng,
        );
        CondGan::new(cfg, gen, disc)
    }

    /// Two well-separated class distributions the GAN should learn.
    fn real_batch(rng: &mut rand::rngs::StdRng, n: usize) -> (Matrix, Vec<usize>) {
        use rand::Rng;
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let c = i % 2;
            let base = if c == 0 { 0.15 } else { 0.85 };
            rows.push(
                (0..4)
                    .map(|_| base + rng.gen_range(-0.05f32..0.05))
                    .collect(),
            );
            labels.push(c);
        }
        (Matrix::from_rows(&rows), labels)
    }

    #[test]
    fn generate_shapes_and_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let gan = small_gan(&mut rng);
        let s = gan.generate(&[0, 1, 0], &mut rng);
        assert_eq!((s.rows(), s.cols()), (3, 4));
        assert!(s.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn training_learns_conditional_means() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut gan = small_gan(&mut rng);
        let mut g_opt = Adam::with_betas(0.01, 0.5, 0.999);
        let mut d_opt = Adam::with_betas(0.01, 0.5, 0.999);
        for _ in 0..400 {
            let (x, labels) = real_batch(&mut rng, 16);
            gan.train_step(&x, &labels, &mut rng, &mut g_opt, &mut d_opt);
        }
        let lo = gan.generate(&[0; 64], &mut rng).mean();
        let hi = gan.generate(&[1; 64], &mut rng).mean();
        assert!(
            hi - lo > 0.3,
            "conditioned generation should separate classes: lo={lo} hi={hi}"
        );
    }

    #[test]
    fn noise_is_roughly_standard_normal() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let gan = small_gan(&mut rng);
        let z = gan.sample_noise(2000, &mut rng);
        let mean = z.mean();
        let var = z
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / z.as_slice().len() as f32;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.1, "var={var}");
    }

    #[test]
    #[should_panic(expected = "label 5 out of range")]
    fn out_of_range_label_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let gan = small_gan(&mut rng);
        let _ = gan.one_hot(&[5]);
    }
}
