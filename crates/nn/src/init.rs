//! Weight initialization schemes.

use rand::Rng;

use crate::activation::Activation;

/// Samples a weight for a layer with `fan_in` inputs and `fan_out` outputs,
/// using the initializer conventionally paired with the given activation:
/// He-uniform for (leaky-)ReLU, Xavier/Glorot-uniform otherwise.
///
/// # Example
/// ```
/// use evax_nn::init::sample_weight;
/// use evax_nn::Activation;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let w = sample_weight(&mut rng, 64, 32, Activation::Relu);
/// assert!(w.abs() < 1.0);
/// ```
pub fn sample_weight<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize, act: Activation) -> f32 {
    let limit = match act {
        Activation::Relu | Activation::LeakyRelu => (6.0 / fan_in.max(1) as f32).sqrt(),
        _ => (6.0 / (fan_in + fan_out).max(1) as f32).sqrt(),
    };
    rng.gen_range(-limit..limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn weights_bounded_by_limit() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let limit = (6.0f32 / 100.0).sqrt();
        for _ in 0..1000 {
            let w = sample_weight(&mut rng, 100, 50, Activation::Relu);
            assert!(w.abs() <= limit);
        }
    }

    #[test]
    fn xavier_uses_fan_in_plus_out() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let limit = (6.0f32 / 150.0).sqrt();
        for _ in 0..1000 {
            let w = sample_weight(&mut rng, 100, 50, Activation::Tanh);
            assert!(w.abs() <= limit);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = rand::rngs::StdRng::seed_from_u64(9);
        let mut b = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..10 {
            assert_eq!(
                sample_weight(&mut a, 10, 10, Activation::Sigmoid),
                sample_weight(&mut b, 10, 10, Activation::Sigmoid)
            );
        }
    }
}
