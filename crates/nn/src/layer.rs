//! Dense (fully-connected) layer with cached activations for backprop.

use rand::Rng;

use crate::activation::Activation;
use crate::init::sample_weight;
use crate::tensor::Matrix;

/// A fully-connected layer `y = act(x W + b)`.
///
/// Weights are stored as an `in x out` matrix so a batch forward pass is a
/// single `batch x in` · `in x out` product. The layer caches its input and
/// activated output during [`Dense::forward_train`] so that
/// [`Dense::backward`] can compute gradients.
///
/// Weight access ([`Dense::weights`]) is public because EVAX's automatic
/// performance-counter engineering (paper §VI-A) mines the trained
/// Generator's hidden-layer weights.
///
/// # Example
/// ```
/// use evax_nn::{Dense, Activation, Matrix};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut layer = Dense::new(3, 2, Activation::Relu, &mut rng);
/// let x = Matrix::from_row(&[1.0, 0.5, -0.5]);
/// let y = layer.forward_train(&x);
/// assert_eq!(y.cols(), 2);
/// ```
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Dense {
    w: Matrix,
    b: Vec<f32>,
    act: Activation,
    #[serde(skip)]
    cached_input: Option<Matrix>,
    #[serde(skip)]
    cached_output: Option<Matrix>,
    #[serde(skip)]
    grad_w: Option<Matrix>,
    #[serde(skip)]
    grad_b: Option<Vec<f32>>,
}

impl Dense {
    /// Creates a layer with `fan_in` inputs and `fan_out` outputs, initialized
    /// per [`crate::init::sample_weight`] and zero bias.
    ///
    /// # Panics
    /// Panics if `fan_in` or `fan_out` is zero.
    pub fn new<R: Rng>(fan_in: usize, fan_out: usize, act: Activation, rng: &mut R) -> Self {
        assert!(
            fan_in > 0 && fan_out > 0,
            "layer dimensions must be nonzero"
        );
        let mut w = Matrix::zeros(fan_in, fan_out);
        for v in w.as_mut_slice() {
            *v = sample_weight(rng, fan_in, fan_out, act);
        }
        Dense {
            w,
            b: vec![0.0; fan_out],
            act,
            cached_input: None,
            cached_output: None,
            grad_w: None,
            grad_b: None,
        }
    }

    /// Builds a layer from explicit weights and bias (for tests and for
    /// loading vendor-distributed detector patches, paper §VI-B).
    ///
    /// # Panics
    /// Panics if `bias.len() != w.cols()`.
    pub fn from_parts(w: Matrix, bias: Vec<f32>, act: Activation) -> Self {
        assert_eq!(bias.len(), w.cols(), "bias width mismatch");
        Dense {
            w,
            b: bias,
            act,
            cached_input: None,
            cached_output: None,
            grad_w: None,
            grad_b: None,
        }
    }

    /// Number of inputs.
    pub fn fan_in(&self) -> usize {
        self.w.rows()
    }

    /// Number of outputs (units).
    pub fn fan_out(&self) -> usize {
        self.w.cols()
    }

    /// The layer's activation function.
    pub fn activation(&self) -> Activation {
        self.act
    }

    /// Borrow the `in x out` weight matrix.
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Mutably borrow the weight matrix.
    pub fn weights_mut(&mut self) -> &mut Matrix {
        &mut self.w
    }

    /// Borrow the bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.b
    }

    /// Inference-only forward pass (no caches touched).
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut out = x.matmul(&self.w);
        out.add_row_broadcast(&self.b);
        self.act.apply_matrix(&mut out);
        out
    }

    /// Inference forward pass into a caller-owned buffer — same result as
    /// [`Dense::forward`], no per-call output allocation once `out` has
    /// capacity.
    pub fn forward_into(&self, x: &Matrix, out: &mut Matrix) {
        x.matmul_into(&self.w, out);
        out.add_row_broadcast(&self.b);
        self.act.apply_matrix(out);
    }

    /// Forward pass that caches input and output for a later
    /// [`Dense::backward`].
    pub fn forward_train(&mut self, x: &Matrix) -> Matrix {
        let out = self.forward(x);
        self.cached_input = Some(x.clone());
        self.cached_output = Some(out.clone());
        out
    }

    /// Backward pass. `grad_out` is dL/dy (same shape as the cached output);
    /// returns dL/dx and accumulates dL/dW, dL/db internally (retrieved by the
    /// optimizer through [`Dense::take_grads`]).
    ///
    /// # Panics
    /// Panics if called before [`Dense::forward_train`].
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let y = self
            .cached_output
            .as_ref()
            .expect("backward called before forward_train");
        let x = self.cached_input.as_ref().expect("missing cached input");
        // dL/dz where z is the pre-activation.
        let mut grad_z = grad_out.clone();
        for (g, &o) in grad_z.as_mut_slice().iter_mut().zip(y.as_slice().iter()) {
            *g *= self.act.derivative_from_output(o);
        }
        let gw = x.matmul_tn(&grad_z);
        let gb = grad_z.col_sums();
        match (&mut self.grad_w, &mut self.grad_b) {
            (Some(acc_w), Some(acc_b)) => {
                acc_w.add_assign(&gw);
                for (a, b) in acc_b.iter_mut().zip(gb.iter()) {
                    *a += b;
                }
            }
            _ => {
                self.grad_w = Some(gw);
                self.grad_b = Some(gb);
            }
        }
        grad_z.matmul_nt(&self.w)
    }

    /// Takes (and clears) the accumulated gradients, if any.
    pub fn take_grads(&mut self) -> Option<(Matrix, Vec<f32>)> {
        match (self.grad_w.take(), self.grad_b.take()) {
            (Some(w), Some(b)) => Some((w, b)),
            _ => None,
        }
    }

    /// Applies a raw parameter update `w -= dw`, `b -= db` (used by
    /// optimizers).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn apply_update(&mut self, dw: &Matrix, db: &[f32]) {
        self.w.sub_assign(dw);
        assert_eq!(db.len(), self.b.len(), "bias update width mismatch");
        for (b, &d) in self.b.iter_mut().zip(db.iter()) {
            *b -= d;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn forward_shape() {
        let mut r = rng();
        let layer = Dense::new(4, 3, Activation::Identity, &mut r);
        let x = Matrix::zeros(5, 4);
        let y = layer.forward(&x);
        assert_eq!((y.rows(), y.cols()), (5, 3));
    }

    #[test]
    fn identity_layer_is_affine() {
        let w = Matrix::from_rows(&[vec![2.0], vec![3.0]]);
        let layer = Dense::from_parts(w, vec![1.0], Activation::Identity);
        let y = layer.forward(&Matrix::from_row(&[1.0, 1.0]));
        assert!((y.get(0, 0) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn gradient_check_single_layer() {
        // Numeric gradient check on a tiny layer with MSE loss L = 0.5*(y-t)^2.
        let mut r = rng();
        let mut layer = Dense::new(2, 1, Activation::Tanh, &mut r);
        let x = Matrix::from_row(&[0.3, -0.7]);
        let target = 0.5f32;

        let y = layer.forward_train(&x);
        let grad_out = Matrix::from_row(&[y.get(0, 0) - target]);
        layer.backward(&grad_out);
        let (gw, _) = layer.take_grads().unwrap();

        let eps = 1e-3f32;
        for i in 0..2 {
            let orig = layer.weights().get(i, 0);
            layer.weights_mut().set(i, 0, orig + eps);
            let yp = layer.forward(&x).get(0, 0);
            layer.weights_mut().set(i, 0, orig - eps);
            let ym = layer.forward(&x).get(0, 0);
            layer.weights_mut().set(i, 0, orig);
            let lp = 0.5 * (yp - target) * (yp - target);
            let lm = 0.5 * (ym - target) * (ym - target);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - gw.get(i, 0)).abs() < 1e-3,
                "grad mismatch at {i}: numeric={numeric} analytic={}",
                gw.get(i, 0)
            );
        }
    }

    #[test]
    fn grads_accumulate_until_taken() {
        let mut r = rng();
        let mut layer = Dense::new(2, 2, Activation::Identity, &mut r);
        let x = Matrix::from_row(&[1.0, 1.0]);
        let g = Matrix::from_row(&[1.0, 1.0]);
        layer.forward_train(&x);
        layer.backward(&g);
        layer.forward_train(&x);
        layer.backward(&g);
        let (gw, _) = layer.take_grads().unwrap();
        // Each backward adds x^T g = all-ones; two passes -> all twos.
        assert!(gw.as_slice().iter().all(|&v| (v - 2.0).abs() < 1e-6));
        assert!(layer.take_grads().is_none());
    }

    #[test]
    #[should_panic(expected = "backward called before forward_train")]
    fn backward_without_forward_panics() {
        let mut r = rng();
        let mut layer = Dense::new(2, 2, Activation::Identity, &mut r);
        layer.backward(&Matrix::zeros(1, 2));
    }
}
