//! # evax-nn — neural-network substrate for the EVAX reproduction
//!
//! The EVAX paper (MICRO 2022) trains three kinds of models:
//!
//! 1. a **deep conditional Generator** (the "AM" in AM-GAN — a deep network
//!    playing against a shallow discriminator),
//! 2. a **shallow, detector-shaped Discriminator**, and
//! 3. the deployed **hardware detector**: a single-layer perceptron whose
//!    weights are quantized to a handful of integer levels and evaluated by a
//!    serial 9-bit adder in hardware.
//!
//! The Rust ML ecosystem offers no equivalent of the paper's Keras + FANN
//! pipeline that also exposes raw hidden-layer weights (needed for EVAX's
//! automatic performance-counter engineering, paper §VI-A), so this crate
//! implements the whole substrate from scratch: row-major `f32` matrices,
//! dense layers, activations, losses, SGD/Adam, a conditional-GAN harness,
//! and the quantized hardware perceptron model.
//!
//! Everything is deterministic given a seeded [`rand::rngs::StdRng`].
//!
//! ## Example
//!
//! ```
//! use evax_nn::{Network, Dense, Activation, Loss, Sgd, Matrix};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! // Learn XOR with a tiny MLP.
//! let mut net = Network::new(vec![
//!     Dense::new(2, 8, Activation::Tanh, &mut rng),
//!     Dense::new(8, 1, Activation::Sigmoid, &mut rng),
//! ]);
//! let x = Matrix::from_rows(&[vec![0., 0.], vec![0., 1.], vec![1., 0.], vec![1., 1.]]);
//! let y = Matrix::from_rows(&[vec![0.], vec![1.], vec![1.], vec![0.]]);
//! let mut opt = Sgd::new(0.5, 0.9);
//! for _ in 0..2000 {
//!     net.train_batch(&x, &y, Loss::Bce, &mut opt);
//! }
//! let out = net.forward(&x);
//! assert!(out.get(0, 0) < 0.2 && out.get(1, 0) > 0.8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod anomaly;
pub mod detector;
pub mod gan;
pub mod init;
pub mod layer;
pub mod loss;
pub mod net;
pub mod optim;
pub mod perceptron;
pub mod quant;
pub mod tensor;

pub use activation::Activation;
pub use anomaly::AnomalyScorer;
pub use detector::{
    load_detector, Detector, DetectorScratch, Ensemble, StochasticDetector, ThresholdedPerceptron,
};
pub use gan::{CondGan, GanConfig, GanStats};
pub use layer::Dense;
pub use loss::Loss;
pub use net::Network;
pub use optim::{Adam, Optimizer, Sgd};
pub use perceptron::{HwPerceptron, PerceptronTrainer, QuantizedWeights};
pub use quant::QuantLinear;
pub use tensor::{matvec_bias_into, Matrix};
