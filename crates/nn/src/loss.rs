//! Loss functions.

use crate::tensor::Matrix;

/// Training loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Loss {
    /// Mean squared error, `1/(2N) Σ (y - t)^2`.
    Mse,
    /// Binary cross-entropy over sigmoid outputs in `(0, 1)`.
    Bce,
}

impl Loss {
    /// Computes the scalar loss averaged over all elements.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn value(self, pred: &Matrix, target: &Matrix) -> f32 {
        assert_eq!(
            (pred.rows(), pred.cols()),
            (target.rows(), target.cols()),
            "loss shape mismatch"
        );
        let n = pred.as_slice().len().max(1) as f32;
        match self {
            Loss::Mse => {
                let sum: f32 = pred
                    .as_slice()
                    .iter()
                    .zip(target.as_slice())
                    .map(|(&y, &t)| (y - t) * (y - t))
                    .sum();
                sum / (2.0 * n)
            }
            Loss::Bce => {
                let sum: f32 = pred
                    .as_slice()
                    .iter()
                    .zip(target.as_slice())
                    .map(|(&y, &t)| {
                        let y = y.clamp(1e-7, 1.0 - 1e-7);
                        -(t * y.ln() + (1.0 - t) * (1.0 - y).ln())
                    })
                    .sum();
                sum / n
            }
        }
    }

    /// Gradient of the loss with respect to the prediction, averaged over all
    /// elements (matches [`Loss::value`]).
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn gradient(self, pred: &Matrix, target: &Matrix) -> Matrix {
        assert_eq!(
            (pred.rows(), pred.cols()),
            (target.rows(), target.cols()),
            "loss shape mismatch"
        );
        let n = pred.as_slice().len().max(1) as f32;
        let mut grad = Matrix::zeros(pred.rows(), pred.cols());
        match self {
            Loss::Mse => {
                for ((g, &y), &t) in grad
                    .as_mut_slice()
                    .iter_mut()
                    .zip(pred.as_slice())
                    .zip(target.as_slice())
                {
                    *g = (y - t) / n;
                }
            }
            Loss::Bce => {
                for ((g, &y), &t) in grad
                    .as_mut_slice()
                    .iter_mut()
                    .zip(pred.as_slice())
                    .zip(target.as_slice())
                {
                    let y = y.clamp(1e-7, 1.0 - 1e-7);
                    *g = (y - t) / (y * (1.0 - y)) / n;
                }
            }
        }
        grad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_at_target() {
        let p = Matrix::from_row(&[1.0, 2.0]);
        assert_eq!(Loss::Mse.value(&p, &p), 0.0);
    }

    #[test]
    fn mse_gradient_direction() {
        let p = Matrix::from_row(&[1.0]);
        let t = Matrix::from_row(&[0.0]);
        let g = Loss::Mse.gradient(&p, &t);
        assert!(g.get(0, 0) > 0.0, "overshoot should give positive gradient");
    }

    #[test]
    fn bce_penalizes_confident_wrong() {
        let right = Matrix::from_row(&[0.99]);
        let wrong = Matrix::from_row(&[0.01]);
        let t = Matrix::from_row(&[1.0]);
        assert!(Loss::Bce.value(&wrong, &t) > Loss::Bce.value(&right, &t));
    }

    #[test]
    fn bce_gradient_matches_numeric() {
        let t = Matrix::from_row(&[1.0]);
        let y = 0.3f32;
        let eps = 1e-4;
        let lp = Loss::Bce.value(&Matrix::from_row(&[y + eps]), &t);
        let lm = Loss::Bce.value(&Matrix::from_row(&[y - eps]), &t);
        let numeric = (lp - lm) / (2.0 * eps);
        let analytic = Loss::Bce.gradient(&Matrix::from_row(&[y]), &t).get(0, 0);
        assert!((numeric - analytic).abs() < 1e-2);
    }

    #[test]
    fn bce_clamps_extremes() {
        let t = Matrix::from_row(&[1.0]);
        let v = Loss::Bce.value(&Matrix::from_row(&[0.0]), &t);
        assert!(v.is_finite());
    }
}
