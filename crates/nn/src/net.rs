//! Sequential network of dense layers.

use crate::layer::Dense;
use crate::loss::Loss;
use crate::optim::Optimizer;
use crate::tensor::Matrix;

/// A sequential feed-forward network (a stack of [`Dense`] layers).
///
/// # Example
/// ```
/// use evax_nn::{Network, Dense, Activation, Matrix};
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let net = Network::new(vec![
///     Dense::new(4, 8, Activation::Relu, &mut rng),
///     Dense::new(8, 1, Activation::Sigmoid, &mut rng),
/// ]);
/// let y = net.forward(&Matrix::zeros(2, 4));
/// assert_eq!((y.rows(), y.cols()), (2, 1));
/// ```
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Network {
    layers: Vec<Dense>,
}

impl Network {
    /// Creates a network from a stack of layers.
    ///
    /// # Panics
    /// Panics if `layers` is empty or consecutive layer shapes do not chain.
    pub fn new(layers: Vec<Dense>) -> Self {
        assert!(!layers.is_empty(), "network requires at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].fan_out(),
                pair[1].fan_in(),
                "layer shapes do not chain"
            );
        }
        Network { layers }
    }

    /// Convenience constructor: an MLP with `hidden` hidden layers of width
    /// `width` using `hidden_act`, and a final layer with `out_act`.
    ///
    /// `hidden = 0` yields a single-layer (perceptron-shaped) network — the
    /// "1-layer NN" of the paper's Fig. 20 ablation.
    pub fn mlp<R: rand::Rng>(
        input: usize,
        width: usize,
        hidden: usize,
        output: usize,
        hidden_act: crate::Activation,
        out_act: crate::Activation,
        rng: &mut R,
    ) -> Self {
        let mut layers = Vec::with_capacity(hidden + 1);
        let mut prev = input;
        for _ in 0..hidden {
            layers.push(Dense::new(prev, width, hidden_act, rng));
            prev = width;
        }
        layers.push(Dense::new(prev, output, out_act, rng));
        Network::new(layers)
    }

    /// Number of layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Input width of the first layer.
    pub fn input_dim(&self) -> usize {
        self.layers[0].fan_in()
    }

    /// Output width of the last layer.
    pub fn output_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].fan_out()
    }

    /// Total trainable parameters (weights + biases) across all layers —
    /// the model-size figure observability reports alongside timings.
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.fan_in() * l.fan_out() + l.fan_out())
            .sum()
    }

    /// Borrow the layer stack (EVAX mines hidden-layer weights from here).
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutably borrow the layer stack.
    pub fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Inference forward pass.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut cur = self.layers[0].forward(x);
        for layer in &self.layers[1..] {
            cur = layer.forward(&cur);
        }
        cur
    }

    /// Allocation-free inference forward pass: activations ping-pong
    /// between the two caller-owned buffers (grown once, then reused), and
    /// a reference to the buffer holding the final layer's output is
    /// returned. Bit-identical to [`Network::forward`].
    pub fn forward_into<'a>(
        &self,
        x: &Matrix,
        ping: &'a mut Matrix,
        pong: &'a mut Matrix,
    ) -> &'a Matrix {
        self.layers[0].forward_into(x, ping);
        let mut in_ping = true;
        for layer in &self.layers[1..] {
            if in_ping {
                layer.forward_into(ping, pong);
            } else {
                layer.forward_into(pong, ping);
            }
            in_ping = !in_ping;
        }
        if in_ping {
            ping
        } else {
            pong
        }
    }

    /// Forward pass that caches intermediate activations for backprop.
    pub fn forward_train(&mut self, x: &Matrix) -> Matrix {
        let mut cur = self.layers[0].forward_train(x);
        for layer in &mut self.layers[1..] {
            cur = layer.forward_train(&cur);
        }
        cur
    }

    /// Backpropagates `grad_out` (dL/d output) through all layers, leaving
    /// accumulated gradients in each layer. Returns dL/d input.
    pub fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mut grad = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        grad
    }

    /// Applies one optimizer step using each layer's accumulated gradients,
    /// clearing them. Layers without gradients are skipped.
    ///
    /// `id_base` offsets optimizer state keys, letting one optimizer instance
    /// serve several networks without key collisions.
    pub fn apply_grads<O: Optimizer>(&mut self, opt: &mut O, id_base: usize) {
        for (i, layer) in self.layers.iter_mut().enumerate() {
            if let Some((gw, gb)) = layer.take_grads() {
                let (dw, db) = opt.compute_update(id_base + i, &gw, &gb);
                layer.apply_update(&dw, &db);
            }
        }
    }

    /// Discards any accumulated gradients without applying them (used when a
    /// network is driven through backprop only to obtain input gradients, as
    /// the frozen Discriminator is during Generator training).
    pub fn discard_grads(&mut self) {
        for layer in &mut self.layers {
            let _ = layer.take_grads();
        }
    }

    /// One supervised training step on a batch; returns the loss before the
    /// update.
    pub fn train_batch<O: Optimizer>(
        &mut self,
        x: &Matrix,
        y: &Matrix,
        loss: Loss,
        opt: &mut O,
    ) -> f32 {
        let pred = self.forward_train(x);
        let value = loss.value(&pred, y);
        let grad = loss.gradient(&pred, y);
        self.backward(&grad);
        self.apply_grads(opt, 0);
        value
    }

    /// Binary-classification accuracy of column 0 against targets in `{0,1}`
    /// at threshold 0.5.
    ///
    /// # Panics
    /// Panics if `x.rows() != targets.len()`.
    pub fn binary_accuracy(&self, x: &Matrix, targets: &[f32]) -> f32 {
        assert_eq!(x.rows(), targets.len(), "target count mismatch");
        if targets.is_empty() {
            return 0.0;
        }
        let pred = self.forward(x);
        let correct = targets
            .iter()
            .enumerate()
            .filter(|(i, &t)| (pred.get(*i, 0) >= 0.5) == (t >= 0.5))
            .count();
        correct as f32 / targets.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Sgd};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn mlp_shapes() {
        let mut r = rng();
        let net = Network::mlp(10, 16, 3, 2, Activation::Relu, Activation::Sigmoid, &mut r);
        assert_eq!(net.depth(), 4);
        assert_eq!(net.input_dim(), 10);
        assert_eq!(net.output_dim(), 2);
    }

    #[test]
    fn learns_xor() {
        let mut r = rng();
        let mut net = Network::mlp(2, 8, 1, 1, Activation::Tanh, Activation::Sigmoid, &mut r);
        let x = Matrix::from_rows(&[vec![0., 0.], vec![0., 1.], vec![1., 0.], vec![1., 1.]]);
        let y = Matrix::from_rows(&[vec![0.], vec![1.], vec![1.], vec![0.]]);
        let mut opt = Sgd::new(0.5, 0.9);
        for _ in 0..3000 {
            net.train_batch(&x, &y, Loss::Bce, &mut opt);
        }
        assert!(net.binary_accuracy(&x, &[0., 1., 1., 0.]) >= 0.99);
    }

    #[test]
    fn loss_decreases_on_linear_task() {
        let mut r = rng();
        let mut net = Network::mlp(
            3,
            0,
            0,
            1,
            Activation::Identity,
            Activation::Identity,
            &mut r,
        );
        let x = Matrix::from_rows(&[vec![1., 0., 0.], vec![0., 1., 0.], vec![0., 0., 1.]]);
        let y = Matrix::from_rows(&[vec![1.], vec![2.], vec![3.]]);
        let mut opt = Sgd::new(0.1, 0.0);
        let first = net.train_batch(&x, &y, Loss::Mse, &mut opt);
        let mut last = first;
        for _ in 0..200 {
            last = net.train_batch(&x, &y, Loss::Mse, &mut opt);
        }
        assert!(last < first * 0.01, "first={first} last={last}");
    }

    #[test]
    #[should_panic(expected = "layer shapes do not chain")]
    fn mismatched_layers_panic() {
        let mut r = rng();
        let _ = Network::new(vec![
            Dense::new(2, 3, Activation::Relu, &mut r),
            Dense::new(4, 1, Activation::Relu, &mut r),
        ]);
    }
}
